#!/usr/bin/env python3
"""Validator for Chrome-trace JSON emitted by src/common/trace_export.cc.

Checks, per file:

  well-formed     parses as JSON with a top-level "traceEvents" list whose
                  entries carry name/ph/ts/pid/tid of the right types
  balanced        every 'B' has a matching 'E' on the same tid, properly
                  nested (span ends close the most recent open begin with
                  the same name), and no 'E' without an open 'B'
  monotonic       timestamps never decrease within one tid (events are
                  recorded append-only into per-thread buffers)
  phases          only phases the exporter emits appear (B, E, I, C)

Optionally asserts content with --require-span NAME (repeatable): the trace
must contain at least one complete B/E pair with that name, and
--require-counter NAME: at least one 'C' sample with that name.

Usage: tools/check_trace.py TRACE.json [TRACE2.json ...]
           [--require-span NAME]... [--require-counter NAME]...
Exit status: 0 valid, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "I", "C"}


def validate(path, require_spans, require_counters):
    """Returns a list of finding strings for one trace file."""
    findings = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: unreadable or malformed JSON: %s" % (path, e)]

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no top-level 'traceEvents' list" % path]

    open_spans = {}  # tid -> stack of open span names
    last_ts = {}  # tid -> last timestamp seen
    complete_spans = set()
    counters = set()
    for i, ev in enumerate(events):
        where = "%s: event %d" % (path, i)
        if not isinstance(ev, dict):
            findings.append("%s: not an object" % where)
            continue
        name = ev.get("name")
        phase = ev.get("ph")
        ts = ev.get("ts")
        tid = ev.get("tid")
        if not isinstance(name, str) or not name:
            findings.append("%s: missing/empty 'name'" % where)
            continue
        if phase not in ALLOWED_PHASES:
            findings.append("%s (%s): unexpected phase %r" %
                            (where, name, phase))
            continue
        if not isinstance(ts, (int, float)) or ts < 0:
            findings.append("%s (%s): bad 'ts' %r" % (where, name, ts))
            continue
        if not isinstance(tid, int):
            findings.append("%s (%s): bad 'tid' %r" % (where, name, tid))
            continue
        if "pid" not in ev:
            findings.append("%s (%s): missing 'pid'" % (where, name))

        if tid in last_ts and ts < last_ts[tid]:
            findings.append(
                "%s (%s): timestamp %s < previous %s on tid %d" %
                (where, name, ts, last_ts[tid], tid))
        last_ts[tid] = ts

        stack = open_spans.setdefault(tid, [])
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                findings.append("%s (%s): 'E' with no open span on tid %d" %
                                (where, name, tid))
            elif stack[-1] != name:
                findings.append(
                    "%s: 'E' for %r but innermost open span on tid %d "
                    "is %r (misnested)" % (where, name, tid, stack[-1]))
                stack.pop()
            else:
                stack.pop()
                complete_spans.add(name)
        elif phase == "C":
            counters.add(name)
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                    args.get("value"), (int, float)):
                findings.append(
                    "%s (%s): 'C' without numeric args.value" % (where, name))

    for tid, stack in sorted(open_spans.items()):
        for name in stack:
            findings.append("%s: span %r on tid %d never ended" %
                            (path, name, tid))

    for name in require_spans:
        if name not in complete_spans:
            findings.append("%s: required span %r not found" % (path, name))
    for name in require_counters:
        if name not in counters:
            findings.append("%s: required counter %r not found" %
                            (path, name))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate Chrome-trace JSON emitted by ie::Tracer.")
    parser.add_argument("traces", nargs="+", metavar="TRACE.json")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="require a complete B/E pair with this name")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="require a 'C' sample with this name")
    args = parser.parse_args(argv)

    findings = []
    for path in args.traces:
        findings.extend(
            validate(path, args.require_span, args.require_counter))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print("check_trace: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("check_trace: %d file(s) OK" % len(args.traces))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
