#!/usr/bin/env python3
"""Validator for Chrome-trace JSON emitted by src/common/trace_export.cc.

Checks, per file:

  well-formed     parses as JSON with a top-level "traceEvents" list whose
                  entries carry name/ph/ts/pid/tid of the right types
  balanced        every 'B' has a matching 'E' on the same tid, properly
                  nested (span ends close the most recent open begin with
                  the same name), and no 'E' without an open 'B'
  monotonic       timestamps never decrease within one tid (events are
                  recorded append-only into per-thread buffers)
  phases          only phases the exporter emits appear (B, E, I, C)

Optionally asserts content with --require-span NAME (repeatable): the trace
must contain at least one complete B/E pair with that name, and
--require-counter NAME: at least one 'C' sample with that name.

With --ledger LEDGER the trace is cross-checked against a flight-recorder
run ledger (tools/report.py) from an identical configuration: the number
of 'pipeline.update' spans must equal the ledger's retrain count, and the
'executor.task' + 'executor.inline_task' span total must equal the
ledger's iteration count (every consumed document was extracted exactly
once somewhere). Both checks are skipped with a note when the trace
reports dropped events — a truncated trace undercounts spans by design.

Usage: tools/check_trace.py TRACE.json [TRACE2.json ...]
           [--require-span NAME]... [--require-counter NAME]...
           [--ledger LEDGER.jsonl]
Exit status: 0 valid, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "I", "C"}


def validate(path, require_spans, require_counters, span_counts=None,
             dropped_out=None):
    """Returns a list of finding strings for one trace file.

    When `span_counts` (a dict) is given, the count of complete B/E pairs
    per span name is accumulated into it; `dropped_out` (a list) receives
    the exporter's otherData.dropped_events value.
    """
    findings = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: unreadable or malformed JSON: %s" % (path, e)]

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["%s: no top-level 'traceEvents' list" % path]
    if dropped_out is not None:
        other = trace.get("otherData")
        dropped_out.append(other.get("dropped_events", 0)
                           if isinstance(other, dict) else 0)

    open_spans = {}  # tid -> stack of open span names
    last_ts = {}  # tid -> last timestamp seen
    complete_spans = set()
    counters = set()
    for i, ev in enumerate(events):
        where = "%s: event %d" % (path, i)
        if not isinstance(ev, dict):
            findings.append("%s: not an object" % where)
            continue
        name = ev.get("name")
        phase = ev.get("ph")
        ts = ev.get("ts")
        tid = ev.get("tid")
        if not isinstance(name, str) or not name:
            findings.append("%s: missing/empty 'name'" % where)
            continue
        if phase not in ALLOWED_PHASES:
            findings.append("%s (%s): unexpected phase %r" %
                            (where, name, phase))
            continue
        if not isinstance(ts, (int, float)) or ts < 0:
            findings.append("%s (%s): bad 'ts' %r" % (where, name, ts))
            continue
        if not isinstance(tid, int):
            findings.append("%s (%s): bad 'tid' %r" % (where, name, tid))
            continue
        if "pid" not in ev:
            findings.append("%s (%s): missing 'pid'" % (where, name))

        if tid in last_ts and ts < last_ts[tid]:
            findings.append(
                "%s (%s): timestamp %s < previous %s on tid %d" %
                (where, name, ts, last_ts[tid], tid))
        last_ts[tid] = ts

        stack = open_spans.setdefault(tid, [])
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                findings.append("%s (%s): 'E' with no open span on tid %d" %
                                (where, name, tid))
            elif stack[-1] != name:
                findings.append(
                    "%s: 'E' for %r but innermost open span on tid %d "
                    "is %r (misnested)" % (where, name, tid, stack[-1]))
                stack.pop()
            else:
                stack.pop()
                complete_spans.add(name)
                if span_counts is not None:
                    span_counts[name] = span_counts.get(name, 0) + 1
        elif phase == "C":
            counters.add(name)
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(
                    args.get("value"), (int, float)):
                findings.append(
                    "%s (%s): 'C' without numeric args.value" % (where, name))

    for tid, stack in sorted(open_spans.items()):
        for name in stack:
            findings.append("%s: span %r on tid %d never ended" %
                            (path, name, tid))

    for name in require_spans:
        if name not in complete_spans:
            findings.append("%s: required span %r not found" % (path, name))
    for name in require_counters:
        if name not in counters:
            findings.append("%s: required counter %r not found" %
                            (path, name))
    return findings


def read_ledger_counts(path):
    """Returns (iterations, retrains) from a flight-recorder ledger, or a
    finding string on parse failure. Counts iter lines directly, so a
    truncated ledger (missing footer) still cross-checks."""
    iterations = 0
    retrains = 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # trailing partial line of a crashed run
                if obj.get("type") == "iter":
                    iterations += 1
                    retrains += 1 if obj.get("retrain") else 0
    except OSError as e:
        return "%s: unreadable ledger: %s" % (path, e)
    return iterations, retrains


def cross_check_ledger(ledger_path, span_counts, dropped):
    """Trace-vs-ledger consistency: spans that must match ledger counts."""
    counts = read_ledger_counts(ledger_path)
    if isinstance(counts, str):
        return [counts]
    iterations, retrains = counts
    if dropped:
        print("check_trace: trace dropped %d event(s); "
              "skipping ledger count cross-check" % dropped)
        return []
    findings = []
    updates = span_counts.get("pipeline.update", 0)
    if updates != retrains:
        findings.append(
            "%s: %d 'pipeline.update' span(s) but ledger has %d "
            "retrain(s)" % (ledger_path, updates, retrains))
    extracted = span_counts.get("executor.task", 0) + \
        span_counts.get("executor.inline_task", 0)
    if extracted != iterations:
        findings.append(
            "%s: %d extraction span(s) (executor.task + "
            "executor.inline_task) but ledger has %d iteration(s)" %
            (ledger_path, extracted, iterations))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate Chrome-trace JSON emitted by ie::Tracer.")
    parser.add_argument("traces", nargs="+", metavar="TRACE.json")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="require a complete B/E pair with this name")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="require a 'C' sample with this name")
    parser.add_argument("--ledger", metavar="LEDGER.jsonl",
                        help="cross-check span counts against a "
                             "flight-recorder run ledger")
    args = parser.parse_args(argv)

    findings = []
    span_counts = {}
    dropped_events = []
    for path in args.traces:
        findings.extend(
            validate(path, args.require_span, args.require_counter,
                     span_counts, dropped_events))
    if args.ledger:
        findings.extend(
            cross_check_ledger(args.ledger, span_counts,
                               sum(dropped_events)))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print("check_trace: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("check_trace: %d file(s) OK" % len(args.traces))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
