#!/usr/bin/env python3
"""Perf-trajectory trend gate (DESIGN.md §14).

Compares fresh bench JSON outputs against the committed baselines at the
repo root (BENCH_rerank.json, BENCH_extract.json, BENCH_index.json) and
fails on regressions of the *gated* metrics:

  rerank   update_batch2.speedup, featurize.speedup   (>= gate, trend)
  extract  speedup_at_8                               (trend, when gated)
  index    per-tier compression_ratio                 (>= gate, trend)

Two layers of checking:

  1. Hard invariants — always enforced on the fresh run, at any scale:
     byte_identical must be true and the bench's own gate must not be
     FAIL (SKIP is fine: e.g. the extract speedup gate on small hosts,
     the index compression gate below the million-doc tier).

  2. Trend — when fresh and baseline ran at the same scale (same docs /
     matching tier), each gated metric must not regress by more than
     --tolerance (default 15%). All gated metrics are ratios, so they
     are host-speed invariant; scale still shifts them, which is why
     mismatched-scale runs (the CI smoke at IE_BENCH_DOCS=4000 vs the
     committed 20k-doc trajectory) only get layer 1 plus the bench's
     own absolute gate threshold.

Usage:
  tools/bench_trend.py --fresh DIR [--baseline DIR] [--tolerance 0.15]
                       [--benches rerank,extract,index]

Exit codes: 0 ok, 1 regression/invariant failure, 2 usage/IO error.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ALL_BENCHES = ("rerank", "extract", "index")

failures = []


def fail(msg):
    failures.append(msg)
    print("FAIL: %s" % msg)


def note(msg):
    print("      %s" % msg)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        fail("%s: invalid JSON (%s)" % (path, e))
        return None


def check_invariants(name, fresh):
    ok = True
    if fresh.get("byte_identical") is not True:
        fail("%s: byte_identical is %r" % (name, fresh.get("byte_identical")))
        ok = False
    gate = fresh.get("gate", fresh.get("compression_gate"))
    if gate == "FAIL":
        fail("%s: bench's own gate reports FAIL" % name)
        ok = False
    return ok


def check_trend(name, metric, fresh_value, base_value, tolerance):
    """Gated metrics are higher-is-better ratios."""
    if base_value is None or base_value <= 0.0:
        note("%s.%s: no baseline value; skipping trend" % (name, metric))
        return
    floor = base_value * (1.0 - tolerance)
    status = "ok" if fresh_value >= floor else "REGRESSION"
    print("      %s.%s: fresh=%.3f baseline=%.3f floor=%.3f %s"
          % (name, metric, fresh_value, base_value, floor, status))
    if fresh_value < floor:
        fail("%s.%s regressed >%d%%: %.3f < %.3f (baseline %.3f)"
             % (name, metric, round(tolerance * 100), fresh_value, floor,
                base_value))


def compare_rerank(fresh, base, tolerance):
    check_invariants("rerank", fresh)
    threshold = fresh.get("gate_threshold", 1.5)
    gated = [
        ("update_batch2.speedup",
         fresh.get("update_batch2", {}).get("speedup"),
         (base or {}).get("update_batch2", {}).get("speedup")),
        ("featurize.speedup",
         fresh.get("featurize", {}).get("speedup"),
         (base or {}).get("featurize", {}).get("speedup")),
    ]
    same_scale = base is not None and fresh.get("docs") == base.get("docs") \
        and fresh.get("pool") == base.get("pool")
    for metric, fresh_value, base_value in gated:
        if fresh_value is None:
            fail("rerank: missing gated metric %s" % metric)
            continue
        if fresh_value < threshold:
            fail("rerank.%s below gate threshold: %.3f < %.2f"
                 % (metric, fresh_value, threshold))
        if same_scale:
            check_trend("rerank", metric, fresh_value, base_value, tolerance)
        else:
            note("rerank.%s: fresh=%.3f (scale differs from baseline; "
                 "gate-threshold check only)" % (metric, fresh_value))
    kernel = fresh.get("kernel", {}).get("speedup")
    if kernel is not None:
        note("rerank.kernel.speedup: %.3f (informational)" % kernel)


def compare_extract(fresh, base, tolerance):
    check_invariants("extract", fresh)
    fresh_gated = fresh.get("gate") in ("PASS", "FAIL")
    base_gated = base is not None and base.get("gate") in ("PASS", "FAIL")
    if not fresh_gated:
        note("extract.speedup_at_8: gate SKIP on this host; "
             "determinism invariants only")
        return
    fresh_value = fresh.get("speedup_at_8")
    if fresh_value is None:
        fail("extract: gate applies but speedup_at_8 missing")
        return
    same_scale = base_gated and fresh.get("docs") == base.get("docs")
    if same_scale:
        check_trend("extract", "speedup_at_8", fresh_value,
                    base.get("speedup_at_8"), tolerance)
    else:
        note("extract.speedup_at_8: fresh=%.3f (no same-scale gated "
             "baseline; bench's own gate already enforced)" % fresh_value)


def compare_index(fresh, base, tolerance):
    check_invariants("index", fresh)
    base_tiers = {t.get("docs"): t for t in (base or {}).get("tiers", [])}
    for tier in fresh.get("tiers", []):
        docs = tier.get("docs")
        ratio = tier.get("compression_ratio")
        if ratio is None:
            fail("index: tier docs=%s missing compression_ratio" % docs)
            continue
        base_tier = base_tiers.get(docs)
        if base_tier is None:
            note("index.compression_ratio[docs=%s]: fresh=%.3f "
                 "(no matching baseline tier)" % (docs, ratio))
        else:
            check_trend("index", "compression_ratio[docs=%s]" % docs, ratio,
                        base_tier.get("compression_ratio"), tolerance)
        for point in tier.get("finalize_sweep", []):
            if point.get("identical") is not True:
                fail("index: finalize_sweep docs=%s threads=%s not identical"
                     % (docs, point.get("threads")))


COMPARATORS = {
    "rerank": compare_rerank,
    "extract": compare_extract,
    "index": compare_index,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default=REPO_ROOT,
                        help="directory holding committed baselines "
                             "(default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional regression of gated "
                             "metrics (default 0.15)")
    parser.add_argument("--benches", default=",".join(ALL_BENCHES),
                        help="comma-separated subset of: %s"
                             % ",".join(ALL_BENCHES))
    args = parser.parse_args()

    benches = [b.strip() for b in args.benches.split(",") if b.strip()]
    unknown = [b for b in benches if b not in COMPARATORS]
    if unknown:
        print("unknown bench(es): %s" % ", ".join(unknown), file=sys.stderr)
        return 2

    compared = 0
    for name in benches:
        filename = "BENCH_%s.json" % name
        fresh = load(os.path.join(args.fresh, filename))
        if fresh is None:
            note("%s: no fresh %s; skipping" % (name, filename))
            continue
        base = load(os.path.join(args.baseline, filename))
        if base is None:
            note("%s: no committed baseline %s; invariants only"
                 % (name, filename))
        print("[trend] %s (fresh %s vs baseline %s)"
              % (name, args.fresh, args.baseline))
        COMPARATORS[name](fresh, base, args.tolerance)
        compared += 1

    if compared == 0:
        print("no fresh bench files found under %s" % args.fresh,
              file=sys.stderr)
        return 2
    if failures:
        print("\nbench_trend: %d failure(s)" % len(failures))
        return 1
    print("\nbench_trend: OK (%d bench(es) checked)" % compared)
    return 0


if __name__ == "__main__":
    sys.exit(main())
