#!/usr/bin/env python3
"""Project lint for adaptive_ie.

Enforces repo-local correctness rules that compilers don't:

  pragma-once        every header uses `#pragma once` (no ad-hoc include
                     guards, no unguarded headers)
  using-namespace    no `using namespace` at any scope in headers (pollutes
                     every includer)
  raw-random         no rand()/srand()/time(nullptr) seeding outside
                     src/common/rng.* — all randomness goes through ie::Rng
                     so runs stay reproducible
  naked-new          no naked new/delete in src/ — use std::make_unique /
                     containers / values (leaky singletons included; use a
                     Meyers static instead)
  raw-mutex          no bare std:: sync primitives (mutex, shared_mutex,
                     lock_guard, unique_lock, shared_lock, scoped_lock,
                     condition_variable, ...) outside src/common/sync.h —
                     use the capability-annotated ie::Mutex/SharedMutex/
                     CondVar wrappers so Clang thread-safety analysis can
                     prove lock discipline (DESIGN.md §11)

Suppress a finding on one line with `// NOLINT(ie-<rule>)`.

Usage: tools/lint.py [paths...]   (defaults to src tests bench examples)
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HEADER_EXTS = (".h", ".hpp", ".hh")
SOURCE_EXTS = (".cc", ".cpp", ".cxx") + HEADER_EXTS

DEFAULT_PATHS = ("src", "tests", "bench", "examples")

# raw-random is allowed only in the RNG facade itself.
RAW_RANDOM_ALLOWED = ("src/common/rng.h", "src/common/rng.cc")

# raw-mutex is allowed only in the annotated sync facade itself.
RAW_MUTEX_ALLOWED = ("src/common/sync.h",)
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_mutex|recursive_timed_mutex|timed_mutex|"
    r"mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable_any|condition_variable)\b")

NOLINT_RE = re.compile(r"//\s*NOLINT\(ie-([a-z-]+)\)")

# A `"` opens a raw string literal when the code immediately before it is
# an R / uR / UR / LR / u8R prefix that is itself a token start (not the
# tail of a longer identifier: `FOOR"x"` is the identifier FOOR followed
# by an ordinary string).
RAW_STR_PREFIX_RE = re.compile(r"(?:^|[^A-Za-z0-9_])(?:u8|u|U|L)?R$")
# d-char-seq: up to 16 chars, no parens/backslash/whitespace, then `(`.
RAW_STR_DELIM_RE = re.compile(r"[^ ()\\\t\r\n\v\f]{0,16}\(")


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? The prefix (R / uR / u8R / ...) was
                # already emitted as code; escapes are inert inside it and
                # it closes only at `)delim"`.
                if RAW_STR_PREFIX_RE.search(text[max(0, i - 4):i]):
                    dm = RAW_STR_DELIM_RE.match(text, i + 1)
                    if dm:
                        delim = text[i + 1:dm.end() - 1]
                        close = text.find(')' + delim + '"', dm.end())
                        end = n if close < 0 else close + len(delim) + 2
                        out.append('"')
                        for ch in text[i + 1:end - 1] if close >= 0 \
                                else text[i + 1:end]:
                            out.append("\n" if ch == "\n" else " ")
                        if close >= 0:
                            out.append('"')
                        i = end
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressed(raw_line, rule):
    m = NOLINT_RE.search(raw_line)
    return bool(m and m.group(1) == rule)


def relpath(path):
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


def check_file(path, findings):
    rel = relpath(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as err:
        findings.append((rel, 0, "io", str(err)))
        return
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    is_header = rel.endswith(HEADER_EXTS)

    if is_header:
        if "#pragma once" not in raw:
            findings.append((rel, 1, "pragma-once",
                             "header missing `#pragma once`"))
        for idx, line in enumerate(code_lines, 1):
            if re.search(r"#\s*ifndef\s+\w*_H_?\b", line):
                if not suppressed(raw_lines[idx - 1], "pragma-once"):
                    findings.append((rel, idx, "pragma-once",
                                     "ad-hoc include guard; use `#pragma once`"))
                break

    for idx, line in enumerate(code_lines, 1):
        raw_line = raw_lines[idx - 1] if idx <= len(raw_lines) else ""

        if is_header and re.search(r"\busing\s+namespace\b", line):
            if not suppressed(raw_line, "using-namespace"):
                findings.append((rel, idx, "using-namespace",
                                 "`using namespace` in a header"))

        if rel not in RAW_MUTEX_ALLOWED and RAW_MUTEX_RE.search(line):
            if not suppressed(raw_line, "raw-mutex"):
                findings.append((rel, idx, "raw-mutex",
                                 "bare std:: sync primitive; use the "
                                 "capability-annotated wrappers in "
                                 "src/common/sync.h (ie::Mutex, MutexLock, "
                                 "CondVar, ...)"))

        if rel not in RAW_RANDOM_ALLOWED:
            if re.search(r"(?<![\w:.])s?rand\s*\(", line) or \
               re.search(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)\s*\)", line):
                if not suppressed(raw_line, "raw-random"):
                    findings.append((rel, idx, "raw-random",
                                     "raw rand()/time() seeding; use "
                                     "ie::Rng (src/common/rng.h)"))

        if rel.startswith("src/"):
            new_m = re.search(r"(?<![\w.])new\b(?!\s*\()", line)
            if new_m and not re.search(r"placement\s+new", line):
                if not suppressed(raw_line, "naked-new"):
                    findings.append((rel, idx, "naked-new",
                                     "naked `new`; use std::make_unique or a "
                                     "container/value"))
            del_m = re.search(r"(?<![\w.])delete\b(?!\s*\[?\]?\s*;?\s*$)", line)
            # `= delete` declarations and `operator delete` are fine.
            if del_m and not re.search(r"=\s*delete\b|operator\s+delete", line):
                if not suppressed(raw_line, "naked-new"):
                    findings.append((rel, idx, "naked-new",
                                     "naked `delete`; manage lifetime with "
                                     "smart pointers/containers"))


def collect_files(paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(ap):
            if ap.endswith(SOURCE_EXTS):
                files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = [d for d in dirnames
                               if not d.startswith(("build", ".git"))]
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, fn))
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            return None
    return files


def main(argv):
    paths = argv[1:] or [p for p in DEFAULT_PATHS
                         if os.path.isdir(os.path.join(REPO_ROOT, p))]
    files = collect_files(paths)
    if files is None:
        return 2
    findings = []
    for path in files:
        check_file(path, findings)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in "
              f"{len({f[0] for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
