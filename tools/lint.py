#!/usr/bin/env python3
"""Project lint (detlint) for adaptive_ie.

A small rule engine enforcing repo-local correctness rules that compilers
don't. Each rule is a registered object with a stable id; findings are
suppressed per line with `// NOLINT(ie-<rule>)`, and the determinism rules
additionally honor the waiver comment documented below. Files are read and
tokenized (comment/string stripping) exactly once; every rule works off
that shared FileContext.

Style / hygiene rules:

  pragma-once          every header uses `#pragma once` (no ad-hoc include
                       guards, no unguarded headers)
  using-namespace      no `using namespace` at any scope in headers
  raw-random           no rand()/srand()/time(nullptr) seeding outside
                       src/common/rng.* — all randomness goes through
                       ie::Rng so runs stay reproducible
  naked-new            no naked new/delete in src/
  raw-mutex            no bare std:: sync primitives outside
                       src/common/sync.h — use the capability-annotated
                       ie::Mutex/SharedMutex/CondVar wrappers (DESIGN.md
                       §11)

Determinism rules (DESIGN.md §12) — the static side of the byte-identical
output guarantee:

  unordered-iteration  no range-for / .begin() / .ForEach() iteration
                       over std::unordered_map/set or ie::FlatHashMap in
                       src/ outside the facades src/common/ordered.h and
                       src/common/flat_hash.h. Iterate via
                       ie::ForEachSorted / SortedKeys / SortedItems, or
                       waive the site with `// DETERMINISM:
                       order-insensitive (<reason>)` on the same or
                       preceding line — the reason is mandatory.
  pointer-key          no pointer-keyed maps/sets and no std::hash over
                       pointer types in src/ — addresses differ run to
                       run, so anything ordered or iterated by them is
                       nondeterministic. Key by a stable id instead.
  locale-format        in export paths (files carrying a
                       `detlint: export-path` marker comment): no
                       std::to_string, no printf-family %f/%e/%g
                       conversions, no iostream formatting machinery.
                       Use FormatDouble / FormatJsonNumber
                       (common/string_util.h): locale-independent,
                       shortest round-trip.
  float-reduce         in files that include common/parallel.h: no
                       std::accumulate / std::reduce over floating
                       accumulators — use ie::FixedOrderSum
                       (common/ordered.h) so the association order is
                       explicit and cannot be silently parallelized.

Architecture rules (archlint, DESIGN.md §16) — the static side of the
module layering and the shared-vs-session state split:

  layering-violation   an `#include` that points up or across the declared
                       module DAG (common → text → corpus → index →
                       {extract, learn, ranking, sampling, update, eval} →
                       pipeline → {bench, tools, tests, examples}; the
                       middle layer's intra-layer edges are listed in
                       INTRA_LAYER_DEPS and must themselves stay acyclic).
                       Waive a site with `// ARCH: layering (<reason>)` —
                       the reason is mandatory.
  cycle                any include cycle reachable from the linted files
                       (graph-level: the include-graph extractor chases
                       quoted includes transitively). Waivable on the
                       anchoring include line with `// ARCH: cycle
                       (<reason>)`.
  const-escape         no `const_cast` and no `mutable` members in src/.
                       `mutable` on the sync-facade primitives (ie::Mutex,
                       SharedMutex, CondVar) is the sanctioned
                       synchronized-interior handle and is exempt; any
                       other site needs `// ARCH: const-escape (<reason>)`
                       naming why the mutation is unobservable (e.g. a
                       lock-guarded cache behind a deterministic warm
                       pass).
  shared-immutable     cross-check of the IE_SHARED_IMMUTABLE marker
                       (common/arch.h): inside a marked struct/class body,
                       every data member must be const (deep-const views
                       only, so no non-const member function of a pointee
                       is reachable), no `mutable` members, and every
                       member function must be const-qualified. Waive a
                       member with `// ARCH: shared-immutable (<reason>)`.

Advisory (not in the default rule set, no CI gate):

  unused-include       with --unused-include, flags quoted includes of
                       repo headers none of whose provided names (types,
                       functions, macros, constants) appear in the
                       including file. Heuristic — verify a removal still
                       builds before committing it.

Usage: tools/lint.py [paths...] [--format=text|json] [--treat-as-src]
                     [--unused-include]
       (paths default to src tests bench examples; the violation corpora
        tests/detlint/cases and tests/archlint/cases are skipped in
        directory walks and only linted when a case file is passed
        explicitly — their files violate rules on purpose)
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HEADER_EXTS = (".h", ".hpp", ".hh")
SOURCE_EXTS = (".cc", ".cpp", ".cxx") + HEADER_EXTS

DEFAULT_PATHS = ("src", "tests", "bench", "examples")

# Per-rule allowlists: the facade a rule protects is the one place the raw
# construct may appear.
RAW_RANDOM_ALLOWED = ("src/common/rng.h", "src/common/rng.cc")
RAW_MUTEX_ALLOWED = ("src/common/sync.h",)
UNORDERED_ITERATION_ALLOWED = ("src/common/ordered.h",
                               "src/common/flat_hash.h")

NOLINT_RE = re.compile(r"//\s*NOLINT\(ie-([a-z-]+)\)")
# Determinism waiver: reason is mandatory and must be non-empty — a bare
# `// DETERMINISM: order-insensitive` or `(...)` with only whitespace does
# not waive anything.
WAIVER_RE = re.compile(
    r"//\s*DETERMINISM:\s*order-insensitive\s*\(\s*[^)\s][^)]*\)")

# ---------------------------------------------------------------------------
# Architecture model (archlint, DESIGN.md §16).
#
# The declared module DAG. Layers are ordered bottom to top; a module may
# include modules in strictly lower layers, itself, and — inside the
# middle layer — the explicit intra-layer edges below. Everything else is
# a layering-violation.
MODULE_LAYERS = (
    ("common",),
    ("text",),
    ("corpus",),
    ("index",),
    ("extract", "learn", "ranking", "sampling", "update", "eval"),
    ("pipeline",),
    ("bench", "tools", "tests", "examples"),
)
# Directed intra-layer edges within the middle layer (module -> modules it
# may additionally include). These must form a DAG among themselves; the
# closure is validated at import time so a bad edit fails loudly.
INTRA_LAYER_DEPS = {
    "extract": ("learn",),
    "ranking": ("learn",),
    "sampling": ("extract", "learn", "ranking"),
    "update": ("learn", "ranking"),
    "eval": ("extract", "learn", "ranking"),
}

SRC_MODULES = frozenset(
    m for layer in MODULE_LAYERS[:-1] for m in layer)
TOP_MODULES = frozenset(MODULE_LAYERS[-1])


def _build_allowed_includes():
    """Maps module -> frozenset of modules it may #include (not counting
    itself). Validates that INTRA_LAYER_DEPS stays within one layer and is
    acyclic."""
    layer_of = {}
    for rank, layer in enumerate(MODULE_LAYERS):
        for module in layer:
            layer_of[module] = rank
    for module, deps in INTRA_LAYER_DEPS.items():
        for dep in deps:
            if layer_of[dep] != layer_of[module]:
                raise AssertionError(
                    f"INTRA_LAYER_DEPS: {module} -> {dep} crosses layers")
    # Transitive closure of the intra-layer edges, with cycle detection.
    closure = {}

    def close(module, trail):
        if module in closure:
            return closure[module]
        if module in trail:
            raise AssertionError(
                f"INTRA_LAYER_DEPS cycle through {module}")
        deps = set(INTRA_LAYER_DEPS.get(module, ()))
        for dep in tuple(deps):
            deps |= close(dep, trail + (module,))
        closure[module] = deps
        return deps

    allowed = {}
    for module, rank in layer_of.items():
        lower = {m for m, r in layer_of.items() if r < rank}
        allowed[module] = frozenset(lower | close(module, ()))
    return allowed

ALLOWED_INCLUDES = _build_allowed_includes()

# Module override for files outside src/ (the archlint violation corpus
# and lint tests): `// archlint: module=<name>` pins the file's module.
ARCH_MODULE_RE = re.compile(r"//\s*archlint:\s*module=([a-z]+)")
# Architecture waiver: per-site, reason mandatory and non-empty, tag must
# name the rule being waived.
ARCH_WAIVER_RE_TEMPLATE = r"//\s*ARCH:\s*%s\s*\(\s*[^)\s][^)]*\)"
_ARCH_WAIVER_RES = {
    tag: re.compile(ARCH_WAIVER_RE_TEMPLATE % re.escape(tag))
    for tag in ("layering", "cycle", "const-escape", "shared-immutable")
}

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"',
                        re.MULTILINE)

CPP_KEYWORDS = frozenset((
    "alignas", "auto", "bool", "break", "case", "catch", "char", "class",
    "const", "constexpr", "continue", "decltype", "default", "delete", "do",
    "double", "else", "enum", "explicit", "extern", "false", "float", "for",
    "friend", "goto", "if", "inline", "int", "long", "mutable", "namespace",
    "new", "noexcept", "nullptr", "operator", "private", "protected",
    "public", "return", "short", "signed", "sizeof", "static", "struct",
    "switch", "template", "this", "throw", "true", "try", "typedef",
    "typename", "union", "unsigned", "using", "virtual", "void", "volatile",
    "while", "std", "size_t", "uint32_t", "uint64_t", "int32_t", "int64_t",
))

# A `"` opens a raw string literal when the code immediately before it is
# an R / uR / UR / LR / u8R prefix that is itself a token start (not the
# tail of a longer identifier: `FOOR"x"` is the identifier FOOR followed
# by an ordinary string).
RAW_STR_PREFIX_RE = re.compile(r"(?:^|[^A-Za-z0-9_])(?:u8|u|U|L)?R$")
# d-char-seq: up to 16 chars, no parens/backslash/whitespace, then `(`.
RAW_STR_DELIM_RE = re.compile(r"[^ ()\\\t\r\n\v\f]{0,16}\(")


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? The prefix (R / uR / u8R / ...) was
                # already emitted as code; escapes are inert inside it and
                # it closes only at `)delim"`.
                if RAW_STR_PREFIX_RE.search(text[max(0, i - 4):i]):
                    dm = RAW_STR_DELIM_RE.match(text, i + 1)
                    if dm:
                        delim = text[i + 1:dm.end() - 1]
                        close = text.find(')' + delim + '"', dm.end())
                        end = n if close < 0 else close + len(delim) + 2
                        out.append('"')
                        for ch in text[i + 1:end - 1] if close >= 0 \
                                else text[i + 1:end]:
                            out.append("\n" if ch == "\n" else " ")
                        if close >= 0:
                            out.append('"')
                        i = end
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def relpath(path):
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


def _blank_template_args(text):
    """Blanks the contents of balanced <...> groups (keeping the brackets)
    so declaration parsing sees `std::unordered_map<> name`. Unbalanced
    `<`/`>` (comparisons, shifts) simply never closes / never opens, which
    is harmless for the declaration statements this feeds."""
    out = []
    depth = 0
    for c in text:
        if c == "<":
            depth += 1
            out.append(c if depth == 1 else " ")
        elif c == ">":
            if depth > 0:
                depth -= 1
                out.append(c if depth == 0 else " ")
            else:
                out.append(c)
        else:
            out.append(c if depth == 0 else " ")
    return "".join(out)


# FlatHashMap (src/common/flat_hash.h) exposes slot-order iteration via
# ForEach(); slot order is as nondeterministic as unordered_map bucket
# order, so its declarations are tracked by the same rule.
_UNORDERED_DECL_RE = re.compile(r"\b(?:unordered_(?:map|set)|FlatHashMap)\s*<")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def collect_unordered_names(code):
    """Identifiers declared (anywhere in `code`) with a type mentioning
    std::unordered_map/set or ie::FlatHashMap: variables, members,
    parameters, and functions returning one. Used by the
    unordered-iteration rule to recognize iteration sites without a real
    type system."""
    names = set()
    # Statement-ish granularity: declarations end at ; = { or (.
    for statement in re.split(r"[;{}]", code):
        if not _UNORDERED_DECL_RE.search(statement):
            continue
        flat = _blank_template_args(statement)
        # The declared name is the last identifier before the statement
        # ends or its initializer/body/argument list starts.
        decl = re.split(r"[=({]", flat, maxsplit=0)[0] if False else flat
        # Cut at the first initializer/call marker AFTER the template args.
        m = re.search(r"<\s*>", decl)
        tail = decl[m.end():] if m else decl
        cut = re.search(r"[=({]", tail)
        head = tail[:cut.start()] if cut else tail
        idents = [i for i in _IDENT_RE.findall(head)
                  if i not in CPP_KEYWORDS]
        if idents:
            names.add(idents[-1])
    return names


class FileContext:
    """Everything the rules need about one file, computed once."""

    def __init__(self, path, rel, raw, treat_as_src=False):
        self.path = path
        self.rel = rel
        self.raw = raw
        self.raw_lines = raw.splitlines()
        self.code = strip_comments_and_strings(raw)
        self.code_lines = self.code.splitlines()
        self.is_header = rel.endswith(HEADER_EXTS)
        self.in_src = rel.startswith("src/") or treat_as_src
        self.is_export_path = "detlint: export-path" in raw
        # Matched against raw text: the stripper blanks string contents,
        # and include paths are string literals.
        self.includes_parallel = re.search(
            r'#\s*include\s*"common/parallel\.h"', raw) is not None
        # Quoted includes as (line, path) pairs — from raw text, since the
        # stripper blanks string contents.
        self.includes = [(raw.count("\n", 0, m.start()) + 1, m.group(1))
                         for m in INCLUDE_RE.finditer(raw)]
        self.module = self._module_of(rel, raw)
        self._unordered_names = None

    @staticmethod
    def _module_of(rel, raw):
        """The file's module in the declared DAG: the directory under
        src/, the top-level tree for bench/tools/tests/examples, or an
        explicit `// archlint: module=<m>` marker (corpus/test files)."""
        m = ARCH_MODULE_RE.search(raw)
        if m and m.group(1) in SRC_MODULES | TOP_MODULES:
            return m.group(1)
        parts = rel.split("/")
        if parts[0] == "src" and len(parts) > 2 and parts[1] in SRC_MODULES:
            return parts[1]
        if parts[0] in TOP_MODULES:
            return parts[0]
        return None

    def arch_waived(self, idx, tag):
        """Architecture waiver for `tag` on this line or in the contiguous
        comment block immediately above it (reasons routinely wrap)."""
        pattern = _ARCH_WAIVER_RES[tag]
        lines = [self.raw_line(idx)]
        j = idx - 1
        while j >= 1 and len(lines) <= 6 and \
                self.raw_line(j).lstrip().startswith("//"):
            lines.append(self.raw_line(j))
            j -= 1
        return bool(pattern.search(" ".join(reversed(lines))))

    @property
    def unordered_names(self):
        if self._unordered_names is None:
            code = self.code
            # Members declared in the companion header are iterated from
            # the .cc: fold its declarations in.
            if not self.is_header:
                base, _ = os.path.splitext(self.path)
                for ext in HEADER_EXTS:
                    try:
                        with open(base + ext, encoding="utf-8",
                                  errors="replace") as f:
                            code = code + "\n" + \
                                strip_comments_and_strings(f.read())
                        break
                    except OSError:
                        continue
            self._unordered_names = collect_unordered_names(code)
        return self._unordered_names

    def raw_line(self, idx):
        """1-based; empty string past EOF."""
        return self.raw_lines[idx - 1] if 1 <= idx <= len(self.raw_lines) \
            else ""

    def line_of_offset(self, offset):
        return self.code.count("\n", 0, offset) + 1

    def waived(self, idx):
        """Determinism waiver on this line or in the contiguous comment
        block immediately above it (reasons routinely wrap)."""
        lines = [self.raw_line(idx)]
        j = idx - 1
        while j >= 1 and len(lines) <= 6 and \
                self.raw_line(j).lstrip().startswith("//"):
            lines.append(self.raw_line(j))
            j -= 1
        return bool(WAIVER_RE.search(" ".join(reversed(lines))))


class Rule:
    """Base class: subclasses set `rule_id` and implement check(ctx)
    yielding (line, message) pairs. NOLINT suppression is engine-wide."""

    rule_id = None

    def check(self, ctx):
        raise NotImplementedError


class PragmaOnceRule(Rule):
    rule_id = "pragma-once"

    def check(self, ctx):
        if not ctx.is_header:
            return
        if "#pragma once" not in ctx.raw:
            yield 1, "header missing `#pragma once`"
        for idx, line in enumerate(ctx.code_lines, 1):
            if re.search(r"#\s*ifndef\s+\w*_H_?\b", line):
                yield idx, "ad-hoc include guard; use `#pragma once`"
                break


class UsingNamespaceRule(Rule):
    rule_id = "using-namespace"

    def check(self, ctx):
        if not ctx.is_header:
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            if re.search(r"\busing\s+namespace\b", line):
                yield idx, "`using namespace` in a header"


class RawRandomRule(Rule):
    rule_id = "raw-random"

    def check(self, ctx):
        if ctx.rel in RAW_RANDOM_ALLOWED:
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            if re.search(r"(?<![\w:.])s?rand\s*\(", line) or \
               re.search(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)\s*\)",
                         line):
                yield idx, ("raw rand()/time() seeding; use ie::Rng "
                            "(src/common/rng.h)")


class NakedNewRule(Rule):
    rule_id = "naked-new"

    def check(self, ctx):
        if not ctx.in_src:
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            new_m = re.search(r"(?<![\w.])new\b(?!\s*\()", line)
            if new_m and not re.search(r"placement\s+new", line):
                yield idx, ("naked `new`; use std::make_unique or a "
                            "container/value")
            del_m = re.search(r"(?<![\w.])delete\b(?!\s*\[?\]?\s*;?\s*$)",
                              line)
            # `= delete` declarations and `operator delete` are fine.
            if del_m and not re.search(r"=\s*delete\b|operator\s+delete",
                                       line):
                yield idx, ("naked `delete`; manage lifetime with smart "
                            "pointers/containers")


class RawMutexRule(Rule):
    rule_id = "raw-mutex"

    PATTERN = re.compile(
        r"\bstd\s*::\s*(?:recursive_mutex|recursive_timed_mutex|timed_mutex|"
        r"mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|"
        r"shared_lock|scoped_lock|condition_variable_any|condition_variable"
        r")\b")

    def check(self, ctx):
        if ctx.rel in RAW_MUTEX_ALLOWED:
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            if self.PATTERN.search(line):
                yield idx, ("bare std:: sync primitive; use the "
                            "capability-annotated wrappers in "
                            "src/common/sync.h (ie::Mutex, MutexLock, "
                            "CondVar, ...)")


def _match_paren(text, open_pos):
    """Index just past the `)` matching the `(` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


class UnorderedIterationRule(Rule):
    rule_id = "unordered-iteration"

    MESSAGE = ("iteration over unordered container '%s': order is a hash "
               "artifact — use ie::ForEachSorted/SortedKeys/SortedItems "
               "(src/common/ordered.h) or waive with `// DETERMINISM: "
               "order-insensitive (<reason>)`")

    def check(self, ctx):
        if not ctx.in_src or ctx.rel in UNORDERED_ITERATION_ALLOWED:
            return
        names = ctx.unordered_names
        if not names:
            return
        findings = []
        # Range-for loops: `for (decl : range-expr)` with any unordered
        # name in the range expression.
        for m in re.finditer(r"\bfor\s*\(", ctx.code):
            open_pos = m.end() - 1
            close = _match_paren(ctx.code, open_pos)
            if close < 0:
                continue
            inner = ctx.code[open_pos + 1:close - 1]
            colon = self._top_level_colon(inner)
            if colon < 0:
                continue
            range_expr = inner[colon + 1:]
            hit = next((i for i in _IDENT_RE.findall(range_expr)
                        if i in names), None)
            if hit is not None:
                findings.append((ctx.line_of_offset(m.start()), hit))
        # Explicit iteration entry points: name.begin() / name.cbegin()
        # (iterator loops, algorithm calls, iterator-pair construction)
        # and name.ForEach( — FlatHashMap's slot-order visitor.
        begin_re = re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(names)) +
            r")\s*\.\s*(?:c?begin|ForEach)\s*\(")
        for m in begin_re.finditer(ctx.code):
            findings.append((ctx.line_of_offset(m.start()), m.group(1)))
        for line, name in sorted(set(findings)):
            if not ctx.waived(line):
                yield line, self.MESSAGE % name

    @staticmethod
    def _top_level_colon(text):
        """Position of a depth-0 `:` that is not part of `::`, or -1."""
        depth = 0
        i = 0
        while i < len(text):
            c = text[i]
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth = max(0, depth - 1)
            elif c == ":" and depth == 0:
                if i + 1 < len(text) and text[i + 1] == ":":
                    i += 2
                    continue
                if i > 0 and text[i - 1] == ":":
                    i += 1
                    continue
                return i
            i += 1
        return -1


class PointerKeyRule(Rule):
    rule_id = "pointer-key"

    CONTAINER_RE = re.compile(
        r"\b(?:unordered_map|unordered_set|unordered_multimap|"
        r"unordered_multiset|map|set|multimap|multiset)\s*<")
    HASH_RE = re.compile(r"\bstd\s*::\s*hash\s*<[^<>]*\*\s*>")

    def check(self, ctx):
        if not ctx.in_src:
            return
        for m in self.CONTAINER_RE.finditer(ctx.code):
            key = self._first_template_arg(ctx.code, m.end() - 1)
            if key is not None and "*" in key:
                yield (ctx.line_of_offset(m.start()),
                       "pointer-keyed container: addresses differ run to "
                       "run, making order and hashing nondeterministic — "
                       "key by a stable id instead")
        for m in self.HASH_RE.finditer(ctx.code):
            yield (ctx.line_of_offset(m.start()),
                   "std::hash over a pointer type hashes addresses, which "
                   "differ run to run — hash a stable id instead")

    @staticmethod
    def _first_template_arg(text, open_pos):
        """Text of the first top-level template argument after the `<` at
        open_pos (up to the first depth-0 comma or the closing `>`)."""
        depth = 0
        start = open_pos + 1
        for i in range(open_pos, min(len(text), open_pos + 400)):
            c = text[i]
            if c == "<" or c == "(":
                depth += 1
            elif c == ">" or c == ")":
                depth -= 1
                if depth == 0:
                    return text[start:i]
            elif c == "," and depth == 1:
                return text[start:i]
        return None


class LocaleFormatRule(Rule):
    rule_id = "locale-format"

    PRINTF_CALL_RE = re.compile(r"\b(\w*printf|\w*Format\w*)\s*\(")
    FLOAT_CONV_RE = re.compile(r"%[-+ #0-9.*]*(?:l|L|h)?[aAeEfFgG]\b")
    STREAM_RE = re.compile(
        r"\b(?:ostringstream|stringstream|ofstream|setprecision)\b|"
        r"\bstd\s*::\s*(?:cout|cerr)\b")

    def check(self, ctx):
        if not (ctx.in_src and ctx.is_export_path):
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            if re.search(r"\bstd\s*::\s*to_string\s*\(", line):
                yield idx, ("std::to_string in an export path is "
                            "locale-dependent and precision-lossy for "
                            "floats; use FormatDouble/FormatJsonNumber "
                            "(common/string_util.h)")
            if self.PRINTF_CALL_RE.search(line) and \
               self.FLOAT_CONV_RE.search(ctx.raw_line(idx)):
                yield idx, ("printf-family float conversion (%f/%e/%g) in "
                            "an export path honors LC_NUMERIC and rounds; "
                            "use FormatDouble/FormatJsonNumber "
                            "(common/string_util.h)")
            if self.STREAM_RE.search(line):
                yield idx, ("iostream formatting in an export path picks "
                            "up the global locale; use FormatDouble/"
                            "FormatJsonNumber (common/string_util.h)")


class FloatReduceRule(Rule):
    rule_id = "float-reduce"

    CALL_RE = re.compile(r"\bstd\s*::\s*(accumulate|reduce)\s*\(")
    FLOATY_RE = re.compile(
        r"\b\d+\.\d*(?:[eE][-+]?\d+)?f?|\b\d+[eE][-+]?\d+f?\b|"
        r"\b(?:double|float)\b|\.\d+f?\b")

    def check(self, ctx):
        if not (ctx.in_src and ctx.includes_parallel):
            return
        for m in self.CALL_RE.finditer(ctx.code):
            open_pos = ctx.code.find("(", m.start())
            close = _match_paren(ctx.code, open_pos)
            args = ctx.code[open_pos:close if close > 0 else open_pos + 200]
            if self.FLOATY_RE.search(args):
                yield (ctx.line_of_offset(m.start()),
                       "floating std::%s in a file that uses "
                       "common/parallel.h: reduction order could silently "
                       "change under parallelization — use "
                       "ie::FixedOrderSum (common/ordered.h)" % m.group(1))


def include_module(path):
    """Module an include path points into, or None for non-modular
    includes (system headers are angle-bracketed and never reach here;
    sibling includes like "bench_common.h" carry no module)."""
    head = path.split("/", 1)[0]
    return head if "/" in path and head in SRC_MODULES | TOP_MODULES \
        else None


class LayeringRule(Rule):
    rule_id = "layering-violation"

    MESSAGE = ("module '%s' must not include '%s' (%s points %s the "
               "declared DAG common → text → corpus → index → "
               "{extract,learn,ranking,sampling,update,eval} → pipeline → "
               "{bench,tools,tests,examples}); invert the dependency, "
               "move the shared type down, or waive with "
               "`// ARCH: layering (<reason>)`")

    def check(self, ctx):
        module = ctx.module
        # Top-layer trees may include everything; unattributed files
        # (e.g. a stray root-level TU) carry no layering obligations.
        if module is None or module in TOP_MODULES:
            return
        allowed = ALLOWED_INCLUDES[module]
        for line, path in ctx.includes:
            target = include_module(path)
            if target is None or target == module or target in allowed:
                continue
            if ctx.arch_waived(line, "layering"):
                continue
            direction = "across" if target in ALLOWED_INCLUDES and \
                module not in ALLOWED_INCLUDES[target] else "up"
            yield line, self.MESSAGE % (module, path, target, direction)


class ConstEscapeRule(Rule):
    rule_id = "const-escape"

    # `mutable` on a sync-facade primitive is the sanctioned
    # synchronized-interior handle: the facade's lock operations are
    # non-const by design, so a const reader must hold the primitive
    # mutable. Anything else guarded by it still needs its own waiver.
    SYNC_PRIMITIVE_RE = re.compile(
        r"\bmutable\s+(?:ie\s*::\s*)?(?:Mutex|SharedMutex|CondVar)\b")
    # Skip lambda mutability (`](...) mutable {`): it is capture-local
    # state, not a const-object escape.
    MUTABLE_MEMBER_RE = re.compile(r"(?<!\))\s*\bmutable\b")

    def check(self, ctx):
        if not ctx.in_src:
            return
        for idx, line in enumerate(ctx.code_lines, 1):
            if re.search(r"\bconst_cast\s*<", line) and \
                    not ctx.arch_waived(idx, "const-escape"):
                yield idx, ("const_cast strips the const contract readers "
                            "rely on; refactor, or waive with `// ARCH: "
                            "const-escape (<reason>)` naming why the "
                            "mutation is unobservable")
            if re.search(r"\)\s*mutable\b", line):
                continue
            if self.MUTABLE_MEMBER_RE.search(line) and \
                    not self.SYNC_PRIMITIVE_RE.search(line) and \
                    not ctx.arch_waived(idx, "const-escape"):
                yield idx, ("`mutable` member makes const objects "
                            "writable; use a per-session member, or waive "
                            "with `// ARCH: const-escape (<reason>)` for a "
                            "documented synchronized interior")


class SharedImmutableRule(Rule):
    """Cross-checks IE_SHARED_IMMUTABLE-marked types (common/arch.h):
    every data member const, no mutable members, every member function
    const-qualified. Deep-const members mean no non-const member function
    of a pointee is reachable — the compiler enforces the rest."""

    rule_id = "shared-immutable"

    MARKER_RE = re.compile(
        r"\b(?:struct|class)\s+IE_SHARED_IMMUTABLE\s+(\w+)")

    def check(self, ctx):
        if not ctx.in_src:
            return
        for m in self.MARKER_RE.finditer(ctx.code):
            name = m.group(1)
            open_pos = ctx.code.find("{", m.end())
            if open_pos < 0:
                continue
            close_pos = self._match_brace(ctx.code, open_pos)
            body = ctx.code[open_pos + 1:close_pos]
            for offset, stmt in self._statements(body):
                line = ctx.line_of_offset(open_pos + 1 + offset)
                for msg in self._check_statement(name, stmt):
                    if not ctx.arch_waived(line, "shared-immutable"):
                        yield line, msg

    @staticmethod
    def _match_brace(text, open_pos):
        depth = 0
        for i in range(open_pos, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    return i
        return len(text)

    @staticmethod
    def _statements(body):
        """Top-level statements of a class body as (offset, text) pairs.
        Braced blocks (member-function bodies, nested types) end the
        statement that introduced them and are skipped whole; default
        member initializers of brace-init form stay part of their
        statement via the `=` check."""
        statements = []
        start = 0
        depth = 0
        i = 0
        while i < len(body):
            c = body[i]
            if c in "([":
                depth += 1
            elif c in ")]":
                depth = max(0, depth - 1)
            elif c == "{" and depth == 0:
                stmt = body[start:i]
                if "=" in stmt.rsplit(")", 1)[-1]:
                    # `= {...}` initializer: stays in this statement.
                    i = SharedImmutableRule._match_brace(body, i) + 1
                    continue
                statements.append((start, stmt))
                i = SharedImmutableRule._match_brace(body, i) + 1
                start = i
                continue
            elif c == ";" and depth == 0:
                statements.append((start, body[start:i]))
                start = i + 1
            i += 1
        tail = body[start:].strip()
        if tail:
            statements.append((start, tail))
        return [(off + len(txt) - len(txt.lstrip()), txt.strip())
                for off, txt in statements if txt.strip()]

    @staticmethod
    def _check_statement(type_name, stmt):
        if not stmt or stmt.rstrip(":") in ("public", "private",
                                            "protected"):
            return
        first = _IDENT_RE.match(stmt)
        first = first.group(0) if first else ""
        if first in ("using", "typedef", "friend", "static_assert",
                     "enum"):
            return
        if re.search(r"(?<!\))\s*\bmutable\b", stmt):
            yield ("mutable member in IE_SHARED_IMMUTABLE type '%s': "
                   "sessions share it const — move the state to "
                   "SessionState or waive with `// ARCH: shared-immutable "
                   "(<reason>)`" % type_name)
            return
        if "(" in stmt:
            # Member function: constructors/destructors create the object
            # before sharing; everything else must be const-qualified.
            if stmt.lstrip("~ ").startswith(type_name) or \
                    first in ("static", "explicit", "constexpr"):
                return
            if not re.search(r"\bconst\b", stmt.rsplit(")", 1)[-1]):
                yield ("non-const member function in IE_SHARED_IMMUTABLE "
                       "type '%s': shared state must be read-only — "
                       "const-qualify it or move it to SessionState"
                       % type_name)
            return
        if re.match(r"(?:static\s+)?(?:constexpr|const)\b", stmt):
            return
        idents = [i for i in _IDENT_RE.findall(stmt.split("=")[0])
                  if i not in CPP_KEYWORDS]
        member = idents[-1] if idents else "?"
        yield ("member '%s' of IE_SHARED_IMMUTABLE type '%s' is not "
               "const: shared context must be deeply const (hold a "
               "`const T*`/`const T&` view, or move it to SessionState)"
               % (member, type_name))


RULES = (
    PragmaOnceRule(),
    UsingNamespaceRule(),
    RawRandomRule(),
    NakedNewRule(),
    RawMutexRule(),
    UnorderedIterationRule(),
    PointerKeyRule(),
    LocaleFormatRule(),
    FloatReduceRule(),
    LayeringRule(),
    ConstEscapeRule(),
    SharedImmutableRule(),
)

RULE_IDS = tuple(r.rule_id for r in RULES) + ("cycle",)


# ---------------------------------------------------------------------------
# Include-graph analyses (archlint, DESIGN.md §16). Unlike the per-file
# rules these need the graph: quoted includes are resolved and chased
# transitively from the linted files, so a cycle hiding behind headers
# that were not passed explicitly is still found.

def resolve_include(from_path, inc):
    """Absolute path of the repo file a quoted include resolves to, or
    None for system/external headers. Mirrors the build's include dirs:
    src/ first (every target compiles with -I src), then the including
    file's directory, then the repo root (tests include "tests/...")."""
    for base in (os.path.join(REPO_ROOT, "src"),
                 os.path.dirname(from_path), REPO_ROOT):
        candidate = os.path.normpath(os.path.join(base, inc))
        if candidate.endswith(SOURCE_EXTS) and os.path.isfile(candidate):
            return candidate
    return None


def build_include_graph(roots):
    """Include graph over the transitive closure of `roots`: maps absolute
    path -> list of (line, absolute included path)."""
    graph = {}
    stack = [os.path.abspath(p) for p in roots]
    while stack:
        path = stack.pop()
        if path in graph:
            continue
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError:
            graph[path] = []
            continue
        edges = []
        for m in INCLUDE_RE.finditer(raw):
            target = resolve_include(path, m.group(1))
            if target is not None:
                edges.append((raw.count("\n", 0, m.start()) + 1, target))
                stack.append(target)
        graph[path] = edges
    return graph


def check_cycles(files, findings):
    """Appends one `cycle` finding per include cycle reachable from
    `files`, anchored at the lexicographically first member's include of
    the next member (deterministic across runs)."""
    graph = build_include_graph(files)
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []

    def strongconnect(root):  # iterative Tarjan
        work = [(root, 0)]
        while work:
            node, edge_idx = work.pop()
            if edge_idx == 0:
                index[node] = lowlink[node] = len(index)
                stack.append(node)
                on_stack.add(node)
            recurse = False
            edges = graph.get(node, [])
            for i in range(edge_idx, len(edges)):
                _, target = edges[i]
                if target not in index:
                    work.append((node, i + 1))
                    work.append((target, 0))
                    recurse = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1 or \
                        any(t == node for _, t in graph.get(node, [])):
                    sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    for scc in sccs:
        members = sorted(relpath(p) for p in scc)
        anchor = min(scc, key=relpath)
        scc_set = set(scc)
        line, target = next(
            ((ln, t) for ln, t in graph.get(anchor, []) if t in scc_set),
            (1, anchor))
        rel = relpath(anchor)
        raw_line = ""
        try:
            with open(anchor, encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
            raw_line = lines[line - 1] if 0 < line <= len(lines) else ""
        except OSError:
            pass
        if suppressed(raw_line, "cycle"):
            continue
        if _ARCH_WAIVER_RES["cycle"].search(raw_line):
            continue
        findings.append(
            (rel, line, "cycle",
             "include cycle: %s — headers in a cycle cannot be layered "
             "or compiled standalone; break it with a forward "
             "declaration or by moving the shared type down"
             % " -> ".join(members + [members[0]])))


# Names a header "provides", for the advisory unused-include analysis:
# types, enums, aliases, macros, and anything that syntactically looks
# like a function or initialized constant. Over-approximating keeps the
# advisory conservative (an include is flagged only when NONE of these
# names appear in the including file).
_PROVIDES_RES = (
    re.compile(r"\b(?:class|struct|union)\s+(?:IE_\w+\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    re.compile(r"([A-Za-z_]\w*)\s*\("),
    re.compile(r"\b(?:constexpr|const|inline)\s+[\w:<>]+\s+"
               r"([A-Za-z_]\w*)\s*[={]"),
)
_DEFINE_RE = re.compile(r"#\s*define\s+([A-Za-z_]\w*)")


def _provided_names(path, cache):
    if path in cache:
        return cache[path]
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError:
        cache[path] = frozenset()
        return cache[path]
    code = strip_comments_and_strings(raw)
    names = set(_DEFINE_RE.findall(raw))
    for pattern in _PROVIDES_RES:
        names.update(pattern.findall(code))
    cache[path] = frozenset(names - CPP_KEYWORDS)
    return cache[path]


def check_unused_includes(files, findings):
    """Advisory: flags quoted includes of repo files whose provided names
    never appear in the including file. Heuristic (macros expanded by
    other macros, re-exported headers, and operator-only headers can fool
    it) — verify each removal still builds."""
    cache = {}
    for path in files:
        path = os.path.abspath(path)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError:
            continue
        code = strip_comments_and_strings(raw)
        used = frozenset(_IDENT_RE.findall(code))
        stem = os.path.splitext(os.path.basename(path))[0]
        for m in INCLUDE_RE.finditer(raw):
            inc = m.group(1)
            target = resolve_include(path, inc)
            if target is None:
                continue
            # The companion header is the TU's interface — always "used".
            if os.path.splitext(os.path.basename(target))[0] == stem:
                continue
            if _provided_names(target, cache) & used:
                continue
            line = raw.count("\n", 0, m.start()) + 1
            findings.append(
                (relpath(path), line, "unused-include",
                 'no name provided by "%s" appears in this file '
                 "(advisory — verify the removal builds)" % inc))


def suppressed(raw_line, rule):
    m = NOLINT_RE.search(raw_line)
    return bool(m and m.group(1) == rule)


def check_file(path, findings, treat_as_src=False):
    """Lints one file, appending (rel, line, rule_id, message) tuples."""
    rel = relpath(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as err:
        findings.append((rel, 0, "io", str(err)))
        return
    ctx = FileContext(path, rel, raw, treat_as_src=treat_as_src)
    for rule in RULES:
        for line, msg in rule.check(ctx):
            if not suppressed(ctx.raw_line(line), rule.rule_id):
                findings.append((rel, line, rule.rule_id, msg))


def collect_files(paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(ap):
            if ap.endswith(SOURCE_EXTS):
                files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                # `detlint` and `archlint` hold the violation corpora:
                # their cases trip rules on purpose and are linted one by
                # one by their ctest drivers, never by directory walks.
                dirnames[:] = [d for d in dirnames
                               if not d.startswith(("build", ".git"))
                               and d not in ("detlint", "archlint")]
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, fn))
        else:
            print(f"lint.py: no such path: {p}", file=sys.stderr)
            return None
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        prog="lint.py", description="adaptive_ie project lint (detlint)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: %s)" %
                        " ".join(DEFAULT_PATHS))
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (json is machine-readable)")
    parser.add_argument("--treat-as-src", action="store_true",
                        help="apply src/-scoped rules to every input "
                        "(used by the violation-corpus driver and tests)")
    parser.add_argument("--unused-include", action="store_true",
                        help="also run the advisory unused-include "
                        "analysis over the inputs (heuristic; verify "
                        "removals build)")
    args = parser.parse_args(argv[1:])

    paths = args.paths or [p for p in DEFAULT_PATHS
                           if os.path.isdir(os.path.join(REPO_ROOT, p))]
    files = collect_files(paths)
    if files is None:
        return 2
    findings = []
    for path in files:
        check_file(path, findings, treat_as_src=args.treat_as_src)
    check_cycles(files, findings)
    if args.unused_include:
        check_unused_includes(files, findings)

    if args.fmt == "json":
        print(json.dumps({
            "files_checked": len(files),
            "findings": [
                {"file": rel, "line": line, "rule": rule, "message": msg}
                for rel, line, rule, msg in findings
            ],
        }, indent=2))
        return 1 if findings else 0

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in "
              f"{len({f[0] for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
