#!/usr/bin/env bash
# Local CI: the gate every PR must pass. Mirrors .github/workflows/ci.yml
# for machines without hosted CI.
#
#   tools/ci.sh          # full matrix: lint, format, default, strict,
#                        # asan-ubsan, tsan
#   tools/ci.sh quick    # lint + default build/test only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${1:-full}"

step() { echo; echo "━━━ $* ━━━"; }

step "lint self-test (tools/lint_test.py)"
python3 tools/lint_test.py

step "lint (tools/lint.py)"
python3 tools/lint.py

step "clang-format check (changed files)"
if command -v clang-format >/dev/null 2>&1; then
  base="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse 'HEAD~1' 2>/dev/null || echo '')"
  changed=$(git diff --name-only --diff-filter=ACMR ${base:+$base} -- \
      '*.cc' '*.h' '*.cpp' | grep -E '^(src|tests|bench|examples)/' || true)
  if [ -n "$changed" ]; then
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror $changed
  else
    echo "no changed C++ files"
  fi
else
  echo "clang-format not installed; skipping (advisory)"
fi

step "default build + ctest (tier-1 verify)"
cmake --preset default >/dev/null
cmake --build build-default -j "$JOBS"
ctest --preset default -j "$JOBS"

step "detlint violation corpus (tests/detlint)"
# Each corpus case must trip exactly its intended rule id (wrong-reason
# failures rejected) and the controls must lint clean — proves the
# determinism rules actually bite and the escapes stay scoped.
ctest --test-dir build-default -R '^detlint\.' --output-on-failure -j "$JOBS"

step "archlint violation corpus (tests/archlint)"
# The architecture rules (layering DAG, include cycles, const escapes,
# shared-state immutability) must each bite on their encoded violation
# and stay quiet on the waived/NOLINT controls — same wrong-reason
# rejection as the detlint corpus above.
ctest --test-dir build-default -R '^archlint\.' --output-on-failure \
    -j "$JOBS"

step "layering scan (module DAG + cycles over the whole tree)"
# The default lint walk covers src/, bench/, tools/, tests/, examples/;
# zero layering-violation/cycle/const-escape findings means the declared
# module DAG and the deep-const shared-context contract hold with
# per-site justified waivers only.
python3 tools/lint.py src bench tests examples

step "header self-sufficiency gate (tests/headercheck)"
# Every public src/ header compiles as the sole content of a TU with
# only -I src — no include-order coupling between modules.
ctest --test-dir build-default -R '^headercheck\.' -j "$JOBS"

step "golden-hash determinism matrix (rankers x seeds x threads)"
# Byte-stable digests across extract_threads {1,2,8} plus pinned golden
# constants; see DESIGN.md §12 for the re-pin procedure.
ctest --test-dir build-default -R 'DeterminismGoldenTest' \
    --output-on-failure -j "$JOBS"

step "bench_rerank smoke (incremental re-rank engine)"
# One iteration per configuration on a small corpus: verifies the delta
# passes engage (counters) and the bench harness itself stays healthy.
IE_BENCH_DOCS=4000 ./build-default/bench/bench_rerank \
    --benchmark_min_time=1x --benchmark_filter='/(1|8)$'

step "bench_rerank perf trajectory (SoA kernels + arena featurizer)"
# Hand-timed production-vs-reference comparisons (DESIGN.md §14): re-proves
# bitwise-identical outputs and enforces the >=1.5x gates on the
# rerank-update and featurize paths, at smoke scale.
IE_BENCH_DOCS=4000 ./build-default/bench/bench_rerank \
    --out=build-default/BENCH_rerank.json --reps=3

step "bench_extract smoke (speculative extraction executor + tracing)"
# Serial + 2-thread live-extraction runs on a small corpus: proves the
# executor engages (hit counters) and output stays byte-identical. The
# ≥2.5x @ 8-thread gate self-skips below 8 hardware threads. --trace adds
# the observability smoke: traced 2-thread runs export a Chrome trace and
# measure overhead against untraced runs (best-of-3 each); --ledger does
# the same for the flight recorder (serial runs, JSONL run ledger);
# --metrics-out renders the serial run's Prometheus exposition.
IE_BENCH_DOCS=4000 ./build-default/bench/bench_extract \
    --threads=1,2 --out=build-default/BENCH_extract.json \
    --trace=build-default/trace_extract.json \
    --ledger=build-default/ledger_extract.jsonl \
    --metrics-out=build-default/metrics_extract.prom

step "bench_index smoke (streaming corpus + compact index scale path)"
# One small tier end-to-end: stream-generate to the on-disk corpus format,
# build both SearchIndex backends from the mapped file, prove byte-identical
# hits and record the postings-compression ratio. The ≥4x @ 1M-doc gate
# self-skips below the million-doc tier (run the full tiers with
# `./build-default/bench/bench_index` to refresh BENCH_index.json).
IE_BENCH_DOCS=4000 ./build-default/bench/bench_index \
    --out=build-default/BENCH_index.json
python3 - build-default/BENCH_index.json <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
if not data["byte_identical"]:
    sys.exit("FAIL: CompactIndex hits differ from InvertedIndex")
ratio = data["tiers"][0]["compression_ratio"]
print("compression_ratio = %.2fx" % ratio)
EOF

step "bench trend vs committed trajectory (tools/bench_trend.py)"
# The smoke runs above left fresh BENCH_*.json under build-default/.
# Hard invariants (byte_identical, no gate FAIL) always apply; the >15%
# regression rule on gated ratio metrics engages when a fresh run matches
# the committed baseline's scale (see DESIGN.md §14 for the refresh
# protocol).
python3 tools/bench_trend.py --fresh build-default

step "detlint over the index/scale layer (src rules, bench included)"
# The new scale-path files must satisfy the src/-scoped determinism rules
# even where they live outside src/ (the bench harness drives the same
# backends CI certifies byte-identical).
python3 tools/lint.py --treat-as-src src/index src/corpus/corpus_io.cc \
    bench/bench_index.cc

step "detlint over the observability exporters (export-path discipline)"
# The ledger writer and Prometheus renderer are machine-parsed export
# paths: every float they emit must go through the Format*/AppendJson*
# helpers (locale-independent, shortest round-trip).
python3 tools/lint.py --treat-as-src src/common/metrics_export.cc \
    src/pipeline/recorder.cc bench/bench_extract.cc bench/bench_rerank.cc

step "trace validation (tools/check_trace.py)"
# The exported trace must be well-formed, balanced, and monotonic, and
# must actually cover the hot phases: pipeline rank/consume/update spans,
# executor task spans, and the queue-depth counter track.
python3 tools/check_trace.py build-default/trace_extract.json \
    --require-span pipeline.run --require-span pipeline.sample \
    --require-span pipeline.warmup --require-span pipeline.rank \
    --require-span pipeline.update --require-span executor.task \
    --require-counter executor.queue_depth \
    --ledger build-default/ledger_extract.jsonl

step "flight-recorder ledger validation (tools/report.py)"
# The run ledger must satisfy the schema invariants (strict numbering,
# monotone cumulative counters, executor identity, phase ordering, footer
# consistency) — and so must a byte-truncated copy, proving the crash-safe
# append-per-line property actually yields parseable partial files. The
# Prometheus exposition round-trips its own validator, and the report/diff
# renderers must run clean on real data.
python3 tools/report.py --validate build-default/ledger_extract.jsonl
head -c 2048 build-default/ledger_extract.jsonl \
    > build-default/ledger_truncated.jsonl
python3 tools/report.py --validate build-default/ledger_truncated.jsonl
python3 tools/report.py --validate-prom build-default/metrics_extract.prom
python3 tools/report.py --report build-default/ledger_extract.jsonl \
    > /dev/null
python3 tools/report.py --diff build-default/ledger_extract.jsonl \
    build-default/ledger_truncated.jsonl > /dev/null

step "tracing overhead smoke (<= 10%)"
python3 - build-default/BENCH_extract.json <<'EOF'
import json, sys
ratio = json.load(open(sys.argv[1]))["trace_overhead_ratio"]
print("trace_overhead_ratio = %.3f" % ratio)
if ratio > 1.10:
    sys.exit("FAIL: traced run >10%% slower than untraced (%.3f)" % ratio)
EOF

step "flight-recorder overhead smoke (<= 3%)"
python3 - build-default/BENCH_extract.json <<'EOF'
import json, sys
ratio = json.load(open(sys.argv[1]))["recorder_overhead_ratio"]
print("recorder_overhead_ratio = %.3f" % ratio)
if ratio > 1.03:
    sys.exit("FAIL: recorded run >3%% slower than unrecorded (%.3f)" % ratio)
EOF

if [ "$MODE" = "quick" ]; then
  echo; echo "CI quick: OK"; exit 0
fi

step "strict warnings build (-Werror)"
cmake --preset strict >/dev/null
cmake --build build-strict -j "$JOBS"

step "thread-safety analysis + negcompile harness (clang)"
# Compiles all of src/ with -Wthread-safety[-beta] promoted to errors and
# runs the negative-compile cases (tests/negcompile/) that prove the
# analysis rejects each encoded lock-discipline violation. Needs clang;
# skipped (advisory) where only GCC is installed — hosted CI always runs it.
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset thread-safety >/dev/null
  cmake --build build-thread-safety -j "$JOBS"
  ctest --test-dir build-thread-safety -R '^negcompile\.' \
      --output-on-failure -j "$JOBS"
else
  echo "clang++ not installed; skipping (advisory — runs in hosted CI)"
fi

step "clang-tidy (concurrency-* as errors)"
if command -v run-clang-tidy >/dev/null 2>&1 && \
   command -v clang-tidy >/dev/null 2>&1; then
  # The default preset exports compile_commands.json; .clang-tidy already
  # promotes concurrency-* to errors.
  run-clang-tidy -quiet -p build-default "^$(pwd)/src/.*" >/dev/null
  echo "clang-tidy: OK"
else
  echo "run-clang-tidy not installed; skipping (advisory — runs in hosted CI)"
fi

step "observability compiled out (IE_ENABLE_OBSERVABILITY=OFF)"
# IE_TRACE_SCOPE / IE_METRIC_* must expand to no-ops: the whole tree
# builds under -Werror with the instrumentation stripped and the full
# suite stays green (per-run counter stamping keeps PipelineResult
# accessors meaningful even without macro instrumentation).
cmake --preset obs-off >/dev/null
cmake --build build-obs-off -j "$JOBS"
ctest --preset obs-off -j "$JOBS"

step "sanitizer matrix (asan-ubsan, tsan)"
tools/run_sanitized_tests.sh

echo; echo "CI full: OK"
