#!/usr/bin/env bash
# Build and run the full test suite under sanitizers.
#
#   tools/run_sanitized_tests.sh            # asan-ubsan then tsan
#   tools/run_sanitized_tests.sh asan-ubsan # one preset
#   tools/run_sanitized_tests.sh tsan
#
# Each preset configures into build-<preset>/ (see CMakePresets.json) with
# IE_STRICT_WARNINGS=ON, builds everything, and runs ctest with
# halt-on-error sanitizer options. Exit nonzero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(asan-ubsan tsan)
fi

JOBS="${JOBS:-$(nproc)}"

for preset in "${PRESETS[@]}"; do
  case "$preset" in
    asan-ubsan|tsan) ;;
    *) echo "run_sanitized_tests.sh: unknown preset '$preset'" >&2; exit 2 ;;
  esac
  echo "=== [$preset] configure ==="
  cmake --preset "$preset" >/dev/null
  echo "=== [$preset] build (-j$JOBS) ==="
  cmake --build "build-$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$JOBS"
  if [ "$preset" = tsan ]; then
    # Extra spins of the executor stress surface: races here are
    # scheduling-dependent, so one ctest pass under-samples them.
    echo "=== [$preset] extract executor stress (x5) ==="
    "build-$preset/tests/extract_parallel_test" \
        --gtest_filter='ExtractExecutorStress.*:WorkQueueTest.Concurrent*:LatchTest.Concurrent*' \
        --gtest_repeat=5 --gtest_brief=1
    # Metrics registry + tracer hammered from WorkQueue workers while a
    # snapshotter reads concurrently (see tests/observability_test.cc).
    echo "=== [$preset] observability stress (x5) ==="
    "build-$preset/tests/observability_test" \
        --gtest_filter='ObservabilityStress.*' \
        --gtest_repeat=5 --gtest_brief=1
  fi
  echo "=== [$preset] OK ==="
done
