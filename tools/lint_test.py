#!/usr/bin/env python3
"""Self-test for tools/lint.py.

Exercises the comment/string stripper (including the C++ raw-string
handling that once confused it) and every lint rule, positive and
negative, against synthetic files in a temp tree. Run directly or via
tools/ci.sh; exit status 0 means the linter behaves as documented.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


def rules_for(path, text, treat_as_src=False):
    """Writes text at path (relative to the fake repo root), lints it, and
    returns the sorted set of rule names found."""
    ap = os.path.join(lint.REPO_ROOT, path)
    os.makedirs(os.path.dirname(ap), exist_ok=True)
    with open(ap, "w", encoding="utf-8") as f:
        f.write(text)
    findings = []
    lint.check_file(ap, findings, treat_as_src=treat_as_src)
    return sorted({rule for _, _, rule, _ in findings})


class LintTestBase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_test_")
        self._saved_root = lint.REPO_ROOT
        lint.REPO_ROOT = self._tmp.name

    def tearDown(self):
        lint.REPO_ROOT = self._saved_root
        self._tmp.cleanup()


class StripTest(LintTestBase):
    def strip(self, text):
        return lint.strip_comments_and_strings(text)

    def test_line_and_block_comments_blanked(self):
        s = self.strip("int x; // new Foo\n/* delete p; */ int y;\n")
        self.assertNotIn("new", s)
        self.assertNotIn("delete", s)
        self.assertIn("int x;", s)
        self.assertIn("int y;", s)

    def test_ordinary_string_contents_blanked(self):
        s = self.strip('auto s = "std::mutex mu; new Foo";\n')
        self.assertNotIn("mutex", s)
        self.assertNotIn("new", s)

    def test_raw_string_contents_blanked(self):
        s = self.strip('auto s = R"(std::mutex mu; new Foo)";\nint z;\n')
        self.assertNotIn("mutex", s)
        self.assertNotIn("new", s)
        self.assertIn("int z;", s)

    def test_raw_string_with_delimiter(self):
        # The inner )" must NOT close a delimited raw string.
        s = self.strip('auto s = R"x(a )" b new C)x"; int after;\n')
        self.assertNotIn("new", s)
        self.assertIn("int after;", s)

    def test_raw_string_quote_inside_does_not_flip_state(self):
        # A `"` inside the raw string must not open a phantom string state
        # that swallows the following code.
        s = self.strip('auto s = R"(say "hi")";\nint visible = 1;\n')
        self.assertIn("int visible = 1;", s)

    def test_raw_string_preserves_line_count(self):
        text = 'auto s = R"(line1\nline2\nline3)";\nint q;\n'
        s = self.strip(text)
        self.assertEqual(s.count("\n"), text.count("\n"))
        self.assertIn("int q;", s)

    def test_encoding_prefixes(self):
        for prefix in ("u8R", "uR", "UR", "LR"):
            s = self.strip(f'auto s = {prefix}"(new Foo)";\n')
            self.assertNotIn("new", s, msg=prefix)

    def test_identifier_ending_in_r_is_not_a_raw_prefix(self):
        # FOOR"..." is the identifier FOOR then an ordinary string: the
        # quote inside would end it early if misparsed as raw.
        s = self.strip('auto s = FOOR"abc";\nint keep;\n')
        self.assertIn("FOOR", s)
        self.assertIn("int keep;", s)

    def test_unterminated_raw_string_blanks_to_eof(self):
        s = self.strip('auto s = R"(never closed\nnew Foo\n')
        self.assertNotIn("new", s)

    def test_escaped_quote_in_ordinary_string(self):
        s = self.strip('auto s = "a\\"b new c"; int tail;\n')
        self.assertNotIn("new", s)
        self.assertIn("int tail;", s)


class RulesTest(LintTestBase):
    def test_pragma_once_missing(self):
        self.assertIn("pragma-once", rules_for("src/a.h", "int f();\n"))

    def test_pragma_once_present(self):
        self.assertEqual(rules_for("src/a.h", "#pragma once\nint f();\n"), [])

    def test_using_namespace_in_header(self):
        text = "#pragma once\nusing namespace std;\n"
        self.assertIn("using-namespace", rules_for("src/b.h", text))

    def test_raw_random_flagged_and_allowlisted(self):
        text = "int f() { return rand(); }\n"
        self.assertIn("raw-random", rules_for("src/c.cc", text))
        self.assertEqual(rules_for("src/common/rng.cc", text), [])

    def test_naked_new_only_in_src(self):
        text = "auto* p = new int(3);\n"
        self.assertIn("naked-new", rules_for("src/d.cc", text))
        self.assertEqual(rules_for("tests/d_test.cc", text), [])

    def test_raw_mutex_flagged_everywhere(self):
        for path in ("src/e.cc", "tests/e_test.cc", "bench/e_bench.cc"):
            self.assertIn(
                "raw-mutex",
                rules_for(path, "std::mutex mu;\n"), msg=path)

    def test_raw_mutex_variants(self):
        for decl in ("std::shared_mutex m;",
                     "std::lock_guard<std::mutex> l(m);",
                     "std::unique_lock<std::mutex> l(m);",
                     "std::shared_lock<std::shared_mutex> l(m);",
                     "std::scoped_lock l(m);",
                     "std::condition_variable cv;",
                     "std::condition_variable_any cv;",
                     "std::recursive_mutex rm;"):
            self.assertIn("raw-mutex", rules_for("src/f.cc", decl + "\n"),
                          msg=decl)

    def test_raw_mutex_allowlisted_in_sync_facade(self):
        text = "#pragma once\nstd::mutex mu_;\n"
        self.assertEqual(rules_for("src/common/sync.h", text), [])

    def test_raw_mutex_not_fooled_by_lookalikes(self):
        for line in ("ie::Mutex mu;", "MutexLock lock(mu);",
                     "// std::mutex in a comment",
                     'auto s = "std::mutex in a string";'):
            self.assertEqual(rules_for("src/g.cc", line + "\n"), [], msg=line)

    def test_raw_mutex_in_raw_string_not_flagged(self):
        # Regression: before the raw-string fix the stripper lost sync
        # after R"(...)" and leaked literal contents into "code".
        text = 'auto doc = R"(use std::mutex here)";\n'
        self.assertEqual(rules_for("src/h.cc", text), [])

    def test_code_after_raw_string_still_linted(self):
        # Regression: the misparse could also blank REAL code after a raw
        # string (the phantom string state), hiding genuine findings.
        text = 'auto doc = R"(say "hi")";\nstd::mutex mu;\n'
        self.assertEqual(rules_for("src/i.cc", text), ["raw-mutex"])

    def test_nolint_suppression(self):
        for rule, line in (
                ("raw-mutex", "std::mutex mu;  // NOLINT(ie-raw-mutex)"),
                ("naked-new", "auto* p = new int;  // NOLINT(ie-naked-new)"),
                ("raw-random", "int x = rand();  // NOLINT(ie-raw-random)")):
            self.assertEqual(rules_for("src/j.cc", line + "\n"), [], msg=rule)

    def test_nolint_wrong_rule_does_not_suppress(self):
        text = "std::mutex mu;  // NOLINT(ie-naked-new)\n"
        self.assertEqual(rules_for("src/k.cc", text), ["raw-mutex"])


UNORDERED_LOOP = (
    "std::unordered_map<int, double> counts;\n"
    "void f() {\n"
    "  for (const auto& [k, v] : counts) {}\n"
    "}\n")


class UnorderedIterationTest(LintTestBase):
    def test_range_for_flagged(self):
        self.assertIn("unordered-iteration",
                      rules_for("src/a.cc", UNORDERED_LOOP))

    def test_begin_iteration_flagged(self):
        text = ("std::unordered_set<int> seen;\n"
                "void f() {\n"
                "  for (auto it = seen.begin(); it != seen.end(); ++it) {}\n"
                "}\n")
        self.assertIn("unordered-iteration", rules_for("src/b.cc", text))

    def test_cbegin_flagged(self):
        text = ("std::unordered_map<int, int> m;\n"
                "auto it = m.cbegin();\n")
        self.assertIn("unordered-iteration", rules_for("src/b2.cc", text))

    def test_waiver_with_reason_suppresses(self):
        text = ("std::unordered_map<int, double> counts;\n"
                "void f() {\n"
                "  // DETERMINISM: order-insensitive (order-free tally)\n"
                "  for (const auto& [k, v] : counts) {}\n"
                "}\n")
        self.assertEqual(rules_for("src/c.cc", text), [])

    def test_waiver_without_reason_does_not_suppress(self):
        for stale in ("// DETERMINISM: order-insensitive",
                      "// DETERMINISM: order-insensitive ()",
                      "// DETERMINISM: order-insensitive (   )"):
            text = ("std::unordered_map<int, double> counts;\n"
                    "void f() {\n"
                    f"  {stale}\n"
                    "  for (const auto& [k, v] : counts) {}\n"
                    "}\n")
            self.assertIn("unordered-iteration",
                          rules_for("src/d.cc", text), msg=stale)

    def test_multiline_waiver_reason_suppresses(self):
        text = ("std::unordered_map<int, double> counts;\n"
                "void f() {\n"
                "  // DETERMINISM: order-insensitive (a long reason that\n"
                "  // wraps to a second comment line)\n"
                "  for (const auto& [k, v] : counts) {}\n"
                "}\n")
        self.assertEqual(rules_for("src/e.cc", text), [])

    def test_nolint_suppresses(self):
        text = ("std::unordered_map<int, double> counts;\n"
                "void f() {\n"
                "  for (const auto& [k, v] : counts) {}"
                "  // NOLINT(ie-unordered-iteration)\n"
                "}\n")
        self.assertEqual(rules_for("src/f.cc", text), [])

    def test_ordered_map_not_flagged(self):
        text = ("std::map<int, double> counts;\n"
                "void f() {\n"
                "  for (const auto& [k, v] : counts) {}\n"
                "}\n")
        self.assertEqual(rules_for("src/g.cc", text), [])

    def test_facade_header_allowlisted(self):
        text = "#pragma once\n" + UNORDERED_LOOP
        self.assertEqual(rules_for("src/common/ordered.h", text), [])

    def test_scoped_to_src_unless_treat_as_src(self):
        self.assertEqual(rules_for("tests/h_test.cc", UNORDERED_LOOP), [])
        self.assertIn("unordered-iteration",
                      rules_for("tests/h_test.cc", UNORDERED_LOOP,
                                treat_as_src=True))

    def test_companion_header_members_recognized(self):
        header = ("#pragma once\n"
                  "#include <unordered_map>\n"
                  "class Thing {\n"
                  "  std::unordered_map<int, double> scores_;\n"
                  "  void Dump();\n"
                  "};\n")
        source = ("#include \"src/i.h\"\n"
                  "void Thing::Dump() {\n"
                  "  for (const auto& [k, v] : scores_) {}\n"
                  "}\n")
        self.assertEqual(rules_for("src/i.h", header), [])
        self.assertIn("unordered-iteration", rules_for("src/i.cc", source))

    def test_loop_in_raw_string_not_flagged(self):
        text = ("std::unordered_map<int, double> counts;\n"
                'auto doc = R"(for (const auto& [k, v] : counts) {})";\n')
        self.assertEqual(rules_for("src/j.cc", text), [])

    def test_lookup_only_use_not_flagged(self):
        text = ("std::unordered_map<int, double> counts;\n"
                "double get(int k) { return counts.at(k); }\n"
                "bool has(int k) { return counts.find(k) != counts.end(); }\n")
        self.assertEqual(rules_for("src/k.cc", text), [])

    def test_flat_hash_foreach_flagged(self):
        text = ("ie::FlatHashMap<uint32_t, float> counts;\n"
                "void f() {\n"
                "  counts.ForEach([](uint32_t k, float v) { Use(k, v); });\n"
                "}\n")
        self.assertIn("unordered-iteration", rules_for("src/l.cc", text))

    def test_flat_hash_foreach_waiver_suppresses(self):
        text = ("ie::FlatHashMap<uint32_t, float> counts;\n"
                "void f() {\n"
                "  // DETERMINISM: order-insensitive (sums commutative tf)\n"
                "  counts.ForEach([](uint32_t k, float v) { Use(k, v); });\n"
                "}\n")
        self.assertEqual(rules_for("src/m.cc", text), [])

    def test_flat_hash_lookup_only_not_flagged(self):
        text = ("ie::FlatHashMap<uint64_t, uint32_t> ids;\n"
                "uint32_t get(uint64_t k) { return *ids.Find(k); }\n"
                "void put(uint64_t k, uint32_t v) { ids.Emplace(k, v); }\n")
        self.assertEqual(rules_for("src/n.cc", text), [])

    def test_flat_hash_facade_header_allowed(self):
        text = ("#pragma once\n"
                "template <typename K, typename V, typename Fn>\n"
                "void ForEachSorted(const FlatHashMap<K, V>& map, Fn&& fn) {\n"
                "  map.ForEach([](const K& k, const V& v) { Stage(k, v); });\n"
                "}\n")
        self.assertEqual(rules_for("src/common/flat_hash.h", text), [])

    def test_foreach_on_untracked_name_not_flagged(self):
        text = ("OrderedVisitor visitor;\n"
                "void f() { visitor.ForEach([](int k) { Use(k); }); }\n")
        self.assertEqual(rules_for("src/o.cc", text), [])


class PointerKeyTest(LintTestBase):
    def test_pointer_keyed_unordered_map_flagged(self):
        text = "std::unordered_map<Foo*, int> by_ptr;\n"
        self.assertIn("pointer-key", rules_for("src/a.cc", text))

    def test_pointer_keyed_set_flagged(self):
        for decl in ("std::unordered_set<const Node*> seen;",
                     "std::set<Node*> seen;",
                     "std::map<const Doc*, int> m;"):
            self.assertIn("pointer-key", rules_for("src/b.cc", decl + "\n"),
                          msg=decl)

    def test_pointer_value_not_flagged(self):
        text = "std::unordered_map<int, Foo*> by_id;\n"
        self.assertEqual(rules_for("src/c.cc", text), [])

    def test_std_hash_of_pointer_flagged(self):
        text = "size_t h = std::hash<Foo*>{}(p);\n"
        self.assertIn("pointer-key", rules_for("src/d.cc", text))

    def test_nolint_suppresses(self):
        text = ("std::unordered_map<Foo*, int> m;"
                "  // NOLINT(ie-pointer-key)\n")
        self.assertEqual(rules_for("src/e.cc", text), [])


EXPORT_MARKER = "// detlint: export-path\n"


class LocaleFormatTest(LintTestBase):
    def test_to_string_flagged_in_export_path(self):
        text = EXPORT_MARKER + "auto s = std::to_string(3.14);\n"
        self.assertIn("locale-format", rules_for("src/a.cc", text))

    def test_no_marker_no_finding(self):
        text = "auto s = std::to_string(3.14);\n"
        self.assertEqual(rules_for("src/b.cc", text), [])

    def test_printf_float_conversion_flagged(self):
        text = EXPORT_MARKER + \
            'std::snprintf(buf, sizeof(buf), "%.9g", v);\n'
        self.assertIn("locale-format", rules_for("src/c.cc", text))

    def test_printf_integer_conversion_not_flagged(self):
        text = EXPORT_MARKER + \
            'std::snprintf(buf, sizeof(buf), "%d-%u", a, b);\n'
        self.assertEqual(rules_for("src/d.cc", text), [])

    def test_stream_machinery_flagged(self):
        for line in ("std::ostringstream os;",
                     "os << std::setprecision(9);",
                     "std::cout << value;"):
            text = EXPORT_MARKER + line + "\n"
            self.assertIn("locale-format", rules_for("src/e.cc", text),
                          msg=line)

    def test_nolint_suppresses(self):
        text = EXPORT_MARKER + \
            "auto s = std::to_string(x);  // NOLINT(ie-locale-format)\n"
        self.assertEqual(rules_for("src/f.cc", text), [])


PARALLEL_INCLUDE = '#include "common/parallel.h"\n'


class FloatReduceTest(LintTestBase):
    def test_float_accumulate_flagged_with_parallel(self):
        text = PARALLEL_INCLUDE + \
            "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"
        self.assertIn("float-reduce", rules_for("src/a.cc", text))

    def test_float_reduce_flagged(self):
        text = PARALLEL_INCLUDE + \
            "auto s = std::reduce(v.begin(), v.end(), double{0});\n"
        self.assertIn("float-reduce", rules_for("src/b.cc", text))

    def test_integer_accumulate_not_flagged(self):
        text = PARALLEL_INCLUDE + \
            "int s = std::accumulate(v.begin(), v.end(), 0);\n"
        self.assertEqual(rules_for("src/c.cc", text), [])

    def test_no_parallel_include_not_flagged(self):
        text = "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"
        self.assertEqual(rules_for("src/d.cc", text), [])

    def test_nolint_suppresses(self):
        text = PARALLEL_INCLUDE + \
            "double s = std::accumulate(v.begin(), v.end(), 0.0);" \
            "  // NOLINT(ie-float-reduce)\n"
        self.assertEqual(rules_for("src/e.cc", text), [])


class JsonOutputTest(LintTestBase):
    def test_json_format_lists_findings(self):
        import contextlib
        import io
        import json as json_mod
        path = os.path.join(lint.REPO_ROOT, "src", "bad.cc")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write("std::mutex mu;\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = lint.main(["lint.py", "--format=json", "src/bad.cc"])
        self.assertEqual(status, 1)
        doc = json_mod.loads(out.getvalue())
        self.assertEqual(doc["files_checked"], 1)
        self.assertEqual([f["rule"] for f in doc["findings"]], ["raw-mutex"])
        self.assertEqual(doc["findings"][0]["line"], 1)

    def test_json_format_clean_file(self):
        import contextlib
        import io
        import json as json_mod
        path = os.path.join(lint.REPO_ROOT, "src", "ok.cc")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write("int f() { return 1; }\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = lint.main(["lint.py", "--format=json", "src/ok.cc"])
        self.assertEqual(status, 0)
        self.assertEqual(json_mod.loads(out.getvalue())["findings"], [])

    def test_detlint_corpus_dir_pruned_from_walk(self):
        case_dir = os.path.join(lint.REPO_ROOT, "tests", "detlint", "cases")
        os.makedirs(case_dir, exist_ok=True)
        with open(os.path.join(case_dir, "violation.cc"), "w",
                  encoding="utf-8") as f:
            f.write("std::mutex mu;\n")
        files = lint.collect_files(["tests"])
        self.assertEqual(files, [])


class LayeringTest(LintTestBase):
    def test_up_include_flagged(self):
        self.assertEqual(
            rules_for("src/ranking/foo.cc",
                      '#include "pipeline/result.h"\nint x;\n'),
            ["layering-violation"])

    def test_down_include_clean(self):
        self.assertEqual(
            rules_for("src/pipeline/foo.cc",
                      '#include "ranking/document_ranker.h"\n'
                      '#include "common/status.h"\nint x;\n'),
            [])

    def test_declared_intra_layer_edge_allowed(self):
        # extract → learn is a declared edge of the middle layer.
        self.assertEqual(
            rules_for("src/extract/foo.cc",
                      '#include "learn/linear_model.h"\nint x;\n'),
            [])

    def test_undeclared_intra_layer_edge_flagged(self):
        # ...but the reverse direction is not declared.
        self.assertEqual(
            rules_for("src/learn/foo.cc",
                      '#include "extract/ner.h"\nint x;\n'),
            ["layering-violation"])

    def test_skip_layer_up_include_flagged(self):
        self.assertEqual(
            rules_for("src/text/foo.cc",
                      '#include "corpus/corpus.h"\nint x;\n'),
            ["layering-violation"])

    def test_module_marker_overrides_path(self):
        # A file outside src/ pinned to a module by marker carries that
        # module's layering obligations (corpus cases rely on this).
        self.assertEqual(
            rules_for("scratch/foo.cc",
                      "// archlint: module=ranking\n"
                      '#include "pipeline/result.h"\nint x;\n'),
            ["layering-violation"])

    def test_top_trees_unconstrained(self):
        self.assertEqual(
            rules_for("bench/foo.cc",
                      '#include "pipeline/pipeline.h"\nint x;\n'),
            [])

    def test_sibling_include_carries_no_module(self):
        self.assertEqual(
            rules_for("src/ranking/foo.cc",
                      '#include "helper_local.h"\nint x;\n'),
            [])

    def test_waiver_with_reason_accepted(self):
        self.assertEqual(
            rules_for("src/ranking/foo.cc",
                      "// ARCH: layering (consumes the passive result "
                      "record only)\n"
                      '#include "pipeline/result.h"\nint x;\n'),
            [])

    def test_waiver_without_reason_rejected(self):
        self.assertEqual(
            rules_for("src/ranking/foo.cc",
                      "// ARCH: layering ()\n"
                      '#include "pipeline/result.h"\nint x;\n'),
            ["layering-violation"])

    def test_nolint_suppresses(self):
        self.assertEqual(
            rules_for("src/ranking/foo.cc",
                      '#include "pipeline/result.h"'
                      "  // NOLINT(ie-layering-violation)\nint x;\n"),
            [])

    def test_dag_closure_is_sane(self):
        # common is at the bottom of everything; pipeline sees the whole
        # middle layer; nothing below pipeline may see pipeline.
        for module in lint.SRC_MODULES - {"common"}:
            self.assertIn("common", lint.ALLOWED_INCLUDES[module],
                          msg=module)
        for module in ("extract", "learn", "ranking", "sampling",
                       "update", "eval"):
            self.assertIn(module, lint.ALLOWED_INCLUDES["pipeline"])
            self.assertNotIn("pipeline", lint.ALLOWED_INCLUDES[module])


class CycleTest(LintTestBase):
    def write(self, rel, text):
        ap = os.path.join(lint.REPO_ROOT, rel)
        os.makedirs(os.path.dirname(ap), exist_ok=True)
        with open(ap, "w", encoding="utf-8") as f:
            f.write(text)
        return ap

    def cycles(self, roots):
        findings = []
        lint.check_cycles(roots, findings)
        return findings

    def test_two_header_cycle_detected(self):
        a = self.write("src/m/a.h", '#include "m/b.h"\nint xa;\n')
        self.write("src/m/b.h", '#include "m/a.h"\nint xb;\n')
        findings = self.cycles([a])
        self.assertEqual(len(findings), 1)
        rel, line, rule, msg = findings[0]
        self.assertEqual(rule, "cycle")
        self.assertEqual(rel, "src/m/a.h")  # lexicographic anchor
        self.assertIn("src/m/b.h", msg)

    def test_cycle_found_transitively_from_tu(self):
        # The TU is not in the cycle; the graph chase must still find it.
        tu = self.write("src/m/use.cc", '#include "m/a.h"\nint y;\n')
        self.write("src/m/a.h", '#include "m/b.h"\n')
        self.write("src/m/b.h", '#include "m/a.h"\n')
        findings = self.cycles([tu])
        self.assertEqual([f[2] for f in findings], ["cycle"])

    def test_self_include_detected(self):
        a = self.write("src/m/self.h", '#include "m/self.h"\n')
        self.assertEqual([f[2] for f in self.cycles([a])], ["cycle"])

    def test_acyclic_graph_clean(self):
        a = self.write("src/m/a.h", '#include "m/b.h"\n')
        self.write("src/m/b.h", '#include "m/c.h"\n')
        self.write("src/m/c.h", "int z;\n")
        self.assertEqual(self.cycles([a]), [])

    def test_diamond_is_not_a_cycle(self):
        a = self.write("src/m/top.h",
                       '#include "m/l.h"\n#include "m/r.h"\n')
        self.write("src/m/l.h", '#include "m/base.h"\n')
        self.write("src/m/r.h", '#include "m/base.h"\n')
        self.write("src/m/base.h", "int z;\n")
        self.assertEqual(self.cycles([a]), [])

    def test_waiver_on_anchor_line_accepted(self):
        a = self.write(
            "src/m/a.h",
            '#include "m/b.h"  // ARCH: cycle (forward-decl split '
            "scheduled; tracked pair)\n")
        self.write("src/m/b.h", '#include "m/a.h"\n')
        self.assertEqual(self.cycles([a]), [])


class ConstEscapeTest(LintTestBase):
    def test_const_cast_flagged(self):
        self.assertEqual(
            rules_for("src/m/x.cc",
                      "int f(const int* p) "
                      "{ return *const_cast<int*>(p); }\n"),
            ["const-escape"])

    def test_mutable_member_flagged(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\nstruct C { mutable long hits = 0; "
                      "};\n"),
            ["const-escape"])

    def test_sync_facade_primitive_exempt(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\nstruct C {\n"
                      "  mutable ie::SharedMutex mu;\n"
                      "  mutable Mutex plain_mu;\n"
                      "};\n"),
            [])

    def test_lambda_mutable_exempt(self):
        self.assertEqual(
            rules_for("src/m/x.cc",
                      "auto f = [n = 0]() mutable { return ++n; };\n"),
            [])

    def test_waiver_with_reason_accepted(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\nstruct C {\n"
                      "  // ARCH: const-escape (DCL cache guarded by mu;\n"
                      "  // readers see a published value)\n"
                      "  mutable long cache = 0;\n"
                      "};\n"),
            [])

    def test_waiver_without_reason_rejected(self):
        self.assertEqual(
            rules_for("src/m/x.cc",
                      "// ARCH: const-escape ()\n"
                      "int f(const int* p) "
                      "{ return *const_cast<int*>(p); }\n"),
            ["const-escape"])

    def test_outside_src_not_scoped(self):
        self.assertEqual(
            rules_for("scratch/x.cc",
                      "int f(const int* p) "
                      "{ return *const_cast<int*>(p); }\n"),
            [])


class SharedImmutableTest(LintTestBase):
    def test_nonconst_data_member_flagged(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\n"
                      "struct IE_SHARED_IMMUTABLE S {\n"
                      "  const int* ok = nullptr;\n"
                      "  int* bad = nullptr;\n"
                      "};\n"),
            ["shared-immutable"])

    def test_mutable_member_flagged(self):
        rules = rules_for("src/m/x.h",
                          "#pragma once\n"
                          "struct IE_SHARED_IMMUTABLE S {\n"
                          "  mutable int dirty = 0;\n"
                          "};\n")
        self.assertIn("shared-immutable", rules)

    def test_nonconst_member_function_flagged(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\n"
                      "struct IE_SHARED_IMMUTABLE S {\n"
                      "  const int* table = nullptr;\n"
                      "  void Rebind(const int* next) { table = next; }\n"
                      "};\n"),
            ["shared-immutable"])

    def test_conforming_type_clean(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\n"
                      "struct IE_SHARED_IMMUTABLE S {\n"
                      "  const int* table = nullptr;\n"
                      "  const double* bias = nullptr;\n"
                      "  double BiasOrZero() const "
                      "{ return bias ? *bias : 0.0; }\n"
                      "  static const char* Name() { return \"S\"; }\n"
                      "};\n"),
            [])

    def test_constructor_exempt(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\n"
                      "struct IE_SHARED_IMMUTABLE S {\n"
                      "  const int* table;\n"
                      "  explicit S(const int* t) : table(t) {}\n"
                      "};\n"),
            [])

    def test_unmarked_type_unconstrained(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\nstruct Plain {\n"
                      "  int* scratch = nullptr;\n"
                      "  void Reset() { scratch = nullptr; }\n"
                      "};\n"),
            [])

    def test_waiver_with_reason_accepted(self):
        self.assertEqual(
            rules_for("src/m/x.h",
                      "#pragma once\n"
                      "struct IE_SHARED_IMMUTABLE S {\n"
                      "  // ARCH: shared-immutable (interned-id table "
                      "behind a lock; ids are append-only)\n"
                      "  int* table = nullptr;\n"
                      "};\n"),
            [])


class UnusedIncludeTest(LintTestBase):
    def analyze(self, rel, text):
        ap = os.path.join(lint.REPO_ROOT, rel)
        os.makedirs(os.path.dirname(ap), exist_ok=True)
        with open(ap, "w", encoding="utf-8") as f:
            f.write(text)
        findings = []
        lint.check_unused_includes([ap], findings)
        return findings

    def setUp(self):
        super().setUp()
        hdr = os.path.join(lint.REPO_ROOT, "src", "common", "thing.h")
        os.makedirs(os.path.dirname(hdr), exist_ok=True)
        with open(hdr, "w", encoding="utf-8") as f:
            f.write("#pragma once\nstruct Thing { int v = 0; };\n")

    def test_unused_quoted_include_flagged(self):
        findings = self.analyze(
            "src/m/x.cc", '#include "common/thing.h"\nint unrelated;\n')
        self.assertEqual([f[2] for f in findings], ["unused-include"])
        self.assertIn("advisory", findings[0][3])

    def test_used_include_clean(self):
        self.assertEqual(
            self.analyze("src/m/x.cc",
                         '#include "common/thing.h"\nThing t;\n'),
            [])

    def test_companion_header_always_used(self):
        hdr = os.path.join(lint.REPO_ROOT, "src", "m", "x.h")
        os.makedirs(os.path.dirname(hdr), exist_ok=True)
        with open(hdr, "w", encoding="utf-8") as f:
            f.write("#pragma once\nstruct Unrelated {};\n")
        self.assertEqual(
            self.analyze("src/m/x.cc", '#include "m/x.h"\nint y;\n'),
            [])

    def test_system_includes_ignored(self):
        self.assertEqual(
            self.analyze("src/m/x.cc", "#include <vector>\nint y;\n"),
            [])


class ArchJsonAndWalkTest(LintTestBase):
    def test_json_output_carries_arch_rules(self):
        import contextlib
        import io
        import json as json_mod
        path = os.path.join(lint.REPO_ROOT, "src", "ranking", "bad.cc")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write('#include "pipeline/result.h"\n'
                    "int f(const int* p) "
                    "{ return *const_cast<int*>(p); }\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = lint.main(
                ["lint.py", "--format=json", "src/ranking/bad.cc"])
        self.assertEqual(status, 1)
        doc = json_mod.loads(out.getvalue())
        self.assertEqual(sorted(f["rule"] for f in doc["findings"]),
                         ["const-escape", "layering-violation"])

    def test_archlint_corpus_dir_pruned_from_walk(self):
        case_dir = os.path.join(lint.REPO_ROOT, "tests", "archlint",
                                "cases")
        os.makedirs(case_dir, exist_ok=True)
        with open(os.path.join(case_dir, "violation.cc"), "w",
                  encoding="utf-8") as f:
            f.write('#include "pipeline/result.h"\n')
        self.assertEqual(lint.collect_files(["tests"]), [])

    def test_cycle_reported_through_main(self):
        import contextlib
        import io
        import json as json_mod
        for name, inc in (("a", "b"), ("b", "a")):
            path = os.path.join(lint.REPO_ROOT, "src", "m", f"{name}.h")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(f'#pragma once\n#include "m/{inc}.h"\n')
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = lint.main(["lint.py", "--format=json", "src"])
        self.assertEqual(status, 1)
        doc = json_mod.loads(out.getvalue())
        self.assertEqual([f["rule"] for f in doc["findings"]], ["cycle"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
