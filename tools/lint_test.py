#!/usr/bin/env python3
"""Self-test for tools/lint.py.

Exercises the comment/string stripper (including the C++ raw-string
handling that once confused it) and every lint rule, positive and
negative, against synthetic files in a temp tree. Run directly or via
tools/ci.sh; exit status 0 means the linter behaves as documented.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


def rules_for(path, text):
    """Writes text at path (relative to the fake repo root), lints it, and
    returns the sorted set of rule names found."""
    ap = os.path.join(lint.REPO_ROOT, path)
    os.makedirs(os.path.dirname(ap), exist_ok=True)
    with open(ap, "w", encoding="utf-8") as f:
        f.write(text)
    findings = []
    lint.check_file(ap, findings)
    return sorted({rule for _, _, rule, _ in findings})


class LintTestBase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_test_")
        self._saved_root = lint.REPO_ROOT
        lint.REPO_ROOT = self._tmp.name

    def tearDown(self):
        lint.REPO_ROOT = self._saved_root
        self._tmp.cleanup()


class StripTest(LintTestBase):
    def strip(self, text):
        return lint.strip_comments_and_strings(text)

    def test_line_and_block_comments_blanked(self):
        s = self.strip("int x; // new Foo\n/* delete p; */ int y;\n")
        self.assertNotIn("new", s)
        self.assertNotIn("delete", s)
        self.assertIn("int x;", s)
        self.assertIn("int y;", s)

    def test_ordinary_string_contents_blanked(self):
        s = self.strip('auto s = "std::mutex mu; new Foo";\n')
        self.assertNotIn("mutex", s)
        self.assertNotIn("new", s)

    def test_raw_string_contents_blanked(self):
        s = self.strip('auto s = R"(std::mutex mu; new Foo)";\nint z;\n')
        self.assertNotIn("mutex", s)
        self.assertNotIn("new", s)
        self.assertIn("int z;", s)

    def test_raw_string_with_delimiter(self):
        # The inner )" must NOT close a delimited raw string.
        s = self.strip('auto s = R"x(a )" b new C)x"; int after;\n')
        self.assertNotIn("new", s)
        self.assertIn("int after;", s)

    def test_raw_string_quote_inside_does_not_flip_state(self):
        # A `"` inside the raw string must not open a phantom string state
        # that swallows the following code.
        s = self.strip('auto s = R"(say "hi")";\nint visible = 1;\n')
        self.assertIn("int visible = 1;", s)

    def test_raw_string_preserves_line_count(self):
        text = 'auto s = R"(line1\nline2\nline3)";\nint q;\n'
        s = self.strip(text)
        self.assertEqual(s.count("\n"), text.count("\n"))
        self.assertIn("int q;", s)

    def test_encoding_prefixes(self):
        for prefix in ("u8R", "uR", "UR", "LR"):
            s = self.strip(f'auto s = {prefix}"(new Foo)";\n')
            self.assertNotIn("new", s, msg=prefix)

    def test_identifier_ending_in_r_is_not_a_raw_prefix(self):
        # FOOR"..." is the identifier FOOR then an ordinary string: the
        # quote inside would end it early if misparsed as raw.
        s = self.strip('auto s = FOOR"abc";\nint keep;\n')
        self.assertIn("FOOR", s)
        self.assertIn("int keep;", s)

    def test_unterminated_raw_string_blanks_to_eof(self):
        s = self.strip('auto s = R"(never closed\nnew Foo\n')
        self.assertNotIn("new", s)

    def test_escaped_quote_in_ordinary_string(self):
        s = self.strip('auto s = "a\\"b new c"; int tail;\n')
        self.assertNotIn("new", s)
        self.assertIn("int tail;", s)


class RulesTest(LintTestBase):
    def test_pragma_once_missing(self):
        self.assertIn("pragma-once", rules_for("src/a.h", "int f();\n"))

    def test_pragma_once_present(self):
        self.assertEqual(rules_for("src/a.h", "#pragma once\nint f();\n"), [])

    def test_using_namespace_in_header(self):
        text = "#pragma once\nusing namespace std;\n"
        self.assertIn("using-namespace", rules_for("src/b.h", text))

    def test_raw_random_flagged_and_allowlisted(self):
        text = "int f() { return rand(); }\n"
        self.assertIn("raw-random", rules_for("src/c.cc", text))
        self.assertEqual(rules_for("src/common/rng.cc", text), [])

    def test_naked_new_only_in_src(self):
        text = "auto* p = new int(3);\n"
        self.assertIn("naked-new", rules_for("src/d.cc", text))
        self.assertEqual(rules_for("tests/d_test.cc", text), [])

    def test_raw_mutex_flagged_everywhere(self):
        for path in ("src/e.cc", "tests/e_test.cc", "bench/e_bench.cc"):
            self.assertIn(
                "raw-mutex",
                rules_for(path, "std::mutex mu;\n"), msg=path)

    def test_raw_mutex_variants(self):
        for decl in ("std::shared_mutex m;",
                     "std::lock_guard<std::mutex> l(m);",
                     "std::unique_lock<std::mutex> l(m);",
                     "std::shared_lock<std::shared_mutex> l(m);",
                     "std::scoped_lock l(m);",
                     "std::condition_variable cv;",
                     "std::condition_variable_any cv;",
                     "std::recursive_mutex rm;"):
            self.assertIn("raw-mutex", rules_for("src/f.cc", decl + "\n"),
                          msg=decl)

    def test_raw_mutex_allowlisted_in_sync_facade(self):
        text = "#pragma once\nstd::mutex mu_;\n"
        self.assertEqual(rules_for("src/common/sync.h", text), [])

    def test_raw_mutex_not_fooled_by_lookalikes(self):
        for line in ("ie::Mutex mu;", "MutexLock lock(mu);",
                     "// std::mutex in a comment",
                     'auto s = "std::mutex in a string";'):
            self.assertEqual(rules_for("src/g.cc", line + "\n"), [], msg=line)

    def test_raw_mutex_in_raw_string_not_flagged(self):
        # Regression: before the raw-string fix the stripper lost sync
        # after R"(...)" and leaked literal contents into "code".
        text = 'auto doc = R"(use std::mutex here)";\n'
        self.assertEqual(rules_for("src/h.cc", text), [])

    def test_code_after_raw_string_still_linted(self):
        # Regression: the misparse could also blank REAL code after a raw
        # string (the phantom string state), hiding genuine findings.
        text = 'auto doc = R"(say "hi")";\nstd::mutex mu;\n'
        self.assertEqual(rules_for("src/i.cc", text), ["raw-mutex"])

    def test_nolint_suppression(self):
        for rule, line in (
                ("raw-mutex", "std::mutex mu;  // NOLINT(ie-raw-mutex)"),
                ("naked-new", "auto* p = new int;  // NOLINT(ie-naked-new)"),
                ("raw-random", "int x = rand();  // NOLINT(ie-raw-random)")):
            self.assertEqual(rules_for("src/j.cc", line + "\n"), [], msg=rule)

    def test_nolint_wrong_rule_does_not_suppress(self):
        text = "std::mutex mu;  // NOLINT(ie-naked-new)\n"
        self.assertEqual(rules_for("src/k.cc", text), ["raw-mutex"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
