#!/usr/bin/env python3
"""Flight-recorder ledger tool: validate, report, and diff pipeline runs.

The pipeline's flight recorder (src/pipeline/recorder.cc, DESIGN.md §15)
writes one JSON object per line:

  {"type":"header","schema":1, ...run metadata...}
  {"type":"iter","i":1, ...one iteration...}          x N, flushed per line
  {"type":"end", ...run totals...}                    absent if crashed

Because every line is flushed before the next iteration runs, a crashed
run's ledger is parseable up to the crash point: a missing footer (or a
trailing partial line when the file does not end in a newline) marks the
run truncated but the prefix stays fully checkable.

Modes (exactly one):
  --validate LEDGER       structural + invariant checks (see validate())
  --report LEDGER         learning curve, phase breakdown, update log,
                          latency totals (ASCII, stdout)
  --diff A B              side-by-side comparison of two runs
  --validate-prom FILE    check a Prometheus text exposition written by
                          MetricsRegistry::RenderPrometheus /
                          bench --metrics-out

Exit status: 0 OK, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import math
import sys

PHASES = ("warmup", "main", "tail")
# Cumulative iteration counters: monotone non-decreasing across the run.
CUMULATIVE = ("useful_total", "full_rescores", "delta_rescores", "hits",
              "waits", "misses", "cancelled")


class Ledger:
    """A parsed ledger: header dict, iteration dicts, optional footer."""

    def __init__(self):
        self.header = None
        self.iters = []
        self.end = None
        self.truncated_line = False  # file ended mid-line (no final \n)


def parse_ledger(path, findings):
    """Parses a ledger file, appending findings; returns a Ledger.

    Tolerates exactly one trailing partial line and only when the file
    does not end with a newline — the crash-in-mid-write case. A garbled
    line anywhere else is a finding.
    """
    ledger = Ledger()
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = f.read()
    except OSError as e:
        findings.append("%s: unreadable: %s" % (path, e))
        return ledger
    if not data:
        findings.append("%s: empty ledger" % path)
        return ledger
    lines = data.split("\n")
    ends_with_newline = lines and lines[-1] == ""
    if ends_with_newline:
        lines.pop()
    for n, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if n == len(lines) and not ends_with_newline:
                ledger.truncated_line = True  # crash mid-write: tolerated
            else:
                findings.append("%s:%d: malformed JSON line" % (path, n))
            continue
        if not isinstance(obj, dict):
            findings.append("%s:%d: line is not a JSON object" % (path, n))
            continue
        kind = obj.get("type")
        if kind == "header":
            if ledger.header is not None:
                findings.append("%s:%d: duplicate header" % (path, n))
            elif ledger.iters or ledger.end:
                findings.append("%s:%d: header not first" % (path, n))
            else:
                ledger.header = obj
        elif kind == "iter":
            if ledger.end is not None:
                findings.append("%s:%d: iter after end" % (path, n))
            ledger.iters.append(obj)
        elif kind == "end":
            if ledger.end is not None:
                findings.append("%s:%d: duplicate end" % (path, n))
            else:
                ledger.end = obj
        else:
            findings.append("%s:%d: unknown type %r" % (path, n, kind))
    return ledger


def validate(path):
    """Returns a list of findings for one ledger file.

    Invariants (beyond parseability):
      header      schema == 1, present before any iteration
      numbering   iter "i" strictly 1,2,3,... (the recorder assigns them)
      executor    hits + waits + misses == i (exactly one Take per doc)
      cumulative  monotone non-decreasing counters (CUMULATIVE)
      usefulness  useful in {0,1}; useful_total increments by useful;
                  useful_rate == useful_total / i (within 1e-9)
      phases      only warmup|main|tail, transitions only forward
      retrain     retrain in {0,1}; dw/dw_c present iff retrain
      footer      when present: iterations == last i, updates == number of
                  retrain=1 iterations, useful_total matches; missing
                  footer = truncated run (warning, not a finding)
    """
    findings = []
    ledger = parse_ledger(path, findings)
    if ledger.header is None:
        findings.append("%s: missing header line" % path)
    elif ledger.header.get("schema") != 1:
        findings.append("%s: unsupported schema %r" %
                        (path, ledger.header.get("schema")))

    prev = None
    phase_rank = {name: rank for rank, name in enumerate(PHASES)}
    retrain_count = 0
    for obj in ledger.iters:
        i = obj.get("i")
        where = "%s: iter i=%r" % (path, i)
        expect = 1 if prev is None else prev["i"] + 1
        if i != expect:
            findings.append("%s: expected i=%d" % (where, expect))
            # Renumber locally so one gap doesn't cascade into N findings.
            obj = dict(obj, i=expect)
            i = expect

        for key in ("doc", "phase", "useful", "useful_total", "useful_rate",
                    "stat", "retrain", "full_rescores", "delta_rescores",
                    "hits", "waits", "misses", "cancelled", "queue",
                    "arena"):
            if key not in obj:
                findings.append("%s: missing field %r" % (where, key))
        phase = obj.get("phase")
        if phase not in phase_rank:
            findings.append("%s: bad phase %r" % (where, phase))
        elif prev is not None and prev.get("phase") in phase_rank and \
                phase_rank[phase] < phase_rank[prev["phase"]]:
            findings.append("%s: phase %r after %r (backwards)" %
                            (where, phase, prev["phase"]))

        useful = obj.get("useful")
        if useful not in (0, 1):
            findings.append("%s: useful %r not 0/1" % (where, useful))
        total = obj.get("useful_total")
        prev_total = prev["useful_total"] if prev else 0
        if isinstance(total, int) and useful in (0, 1) and \
                isinstance(prev_total, int) and total != prev_total + useful:
            findings.append("%s: useful_total %d != %d + useful %d" %
                            (where, total, prev_total, useful))
        rate = obj.get("useful_rate")
        if isinstance(total, int) and isinstance(rate, (int, float)) and \
                abs(rate - total / i) > 1e-9:
            findings.append("%s: useful_rate %r != %d/%d" %
                            (where, rate, total, i))

        consumed = sum(obj.get(k, 0) for k in ("hits", "waits", "misses"))
        if consumed != i:
            findings.append("%s: hits+waits+misses %d != i" %
                            (where, consumed))
        for key in CUMULATIVE:
            now, before = obj.get(key), (prev or {}).get(key, 0)
            if isinstance(now, int) and isinstance(before, int) and \
                    now < before:
                findings.append("%s: cumulative %r decreased %d -> %d" %
                                (where, key, before, now))

        retrain = obj.get("retrain")
        if retrain not in (0, 1):
            findings.append("%s: retrain %r not 0/1" % (where, retrain))
        elif retrain == 1:
            retrain_count += 1
            if "dw" not in obj or "dw_c" not in obj:
                findings.append("%s: retrain without dw/dw_c" % where)
        elif "dw" in obj or "dw_c" in obj:
            findings.append("%s: dw/dw_c without retrain" % where)
        prev = obj

    if ledger.end is None:
        print("%s: no footer — truncated run (%d iteration(s) recovered)" %
              (path, len(ledger.iters)), file=sys.stderr)
    else:
        last_i = prev["i"] if prev else 0
        for key, expect in (("iterations", last_i),
                            ("updates", retrain_count)):
            got = ledger.end.get(key)
            if got != expect:
                findings.append("%s: footer %s=%r but ledger shows %d" %
                                (path, key, got, expect))
        if prev is not None and \
                ledger.end.get("useful_total") != prev.get("useful_total"):
            findings.append("%s: footer useful_total %r != last iter %r" %
                            (path, ledger.end.get("useful_total"),
                             prev.get("useful_total")))
    return findings


def load_or_die(path):
    findings = []
    ledger = parse_ledger(path, findings)
    for f in findings:
        print(f, file=sys.stderr)
    if ledger.header is None and not ledger.iters:
        print("%s: nothing to report" % path, file=sys.stderr)
        sys.exit(1)
    return ledger


def sparkline(values, width):
    """Downsamples values to `width` buckets rendered as 8-level bars."""
    if not values:
        return ""
    bars = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    out = []
    for b in range(width):
        chunk = values[b * len(values) // width:
                       (b + 1) * len(values) // width] or [lo]
        mean = sum(chunk) / len(chunk)
        out.append(bars[1 + int((mean - lo) / span * 7.499)])
    return "".join(out)


def summarize(ledger):
    """Returns a flat dict of headline numbers for report/diff."""
    info = dict(ledger.header or {})
    info.pop("type", None)
    iters = ledger.iters
    out = {"iterations": len(iters)}
    out.update(("cfg.%s" % k, v) for k, v in sorted(info.items()))
    if iters:
        last = iters[-1]
        out["useful_total"] = last.get("useful_total", 0)
        out["useful_rate"] = last.get("useful_rate", 0.0)
        out["updates"] = sum(o.get("retrain", 0) for o in iters)
        out["full_rescores"] = last.get("full_rescores", 0)
        out["delta_rescores"] = last.get("delta_rescores", 0)
        out["executor_hits"] = last.get("hits", 0)
        out["executor_waits"] = last.get("waits", 0)
        out["executor_misses"] = last.get("misses", 0)
        out["executor_cancelled"] = last.get("cancelled", 0)
        out["peak_queue_depth"] = max(o.get("queue", 0) for o in iters)
        out["peak_arena_bytes"] = max(o.get("arena", 0) for o in iters)
        for phase in PHASES:
            n = sum(1 for o in iters if o.get("phase") == phase)
            if n:
                out["phase.%s" % phase] = n
    if ledger.end:
        for key, value in sorted(ledger.end.items()):
            if key not in ("type", "iterations", "updates", "useful_total"):
                out["end.%s" % key] = value
    out["truncated"] = int(ledger.end is None)
    return out


def fmt(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def report(path):
    ledger = load_or_die(path)
    summary = summarize(ledger)
    print("run: %s" % path)
    for key, value in summary.items():
        print("  %-24s %s" % (key, fmt(value)))
    iters = ledger.iters
    if iters:
        width = min(64, max(8, len(iters)))
        rates = [o.get("useful_rate", 0.0) for o in iters]
        stats = [o.get("stat", 0.0) for o in iters]
        print("  useful_rate curve        |%s| %s -> %s" %
              (sparkline(rates, width), fmt(rates[0]), fmt(rates[-1])))
        print("  detector statistic       |%s| max %s" %
              (sparkline(stats, width), fmt(max(stats))))
        updates = [(o["i"], o.get("dw", 0.0))
                   for o in iters if o.get("retrain")]
        for i, dw in updates[:20]:
            print("  update @ i=%-8d       dw=%s" % (i, fmt(dw)))
        if len(updates) > 20:
            print("  ... %d more update(s)" % (len(updates) - 20))
    return 0


def diff(path_a, path_b):
    a = summarize(load_or_die(path_a))
    b = summarize(load_or_die(path_b))
    keys = sorted(set(a) | set(b))
    width = max(len(k) for k in keys)
    differing = 0
    print("%-*s  %-20s  %-20s" % (width, "key", path_a[-20:], path_b[-20:]))
    for key in keys:
        va, vb = a.get(key, "—"), b.get(key, "—")
        same = va == vb
        if isinstance(va, float) and isinstance(vb, float):
            same = math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-12)
        marker = " " if same else "*"
        if not same:
            differing += 1
        print("%s %-*s %-20s  %-20s" %
              (marker, width, key, fmt(va), fmt(vb)))
    print("%d differing key(s)" % differing)
    return 0


def validate_prom(path):
    """Checks a Prometheus text exposition (RenderPrometheus output).

    Rules: every sample's metric family has a preceding # TYPE line (no
    duplicates); values parse as floats; histogram bucket counts are
    cumulative non-decreasing with an le="+Inf" bucket equal to _count.
    """
    findings = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().split("\n")
    except OSError as e:
        return ["%s: unreadable: %s" % (path, e)]
    types = {}
    buckets = {}  # family -> list of (le, count)
    counts = {}  # family -> _count value
    for n, line in enumerate(lines, start=1):
        if not line:
            continue
        where = "%s:%d" % (path, n)
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                family, kind = parts[2], parts[3]
                if family in types:
                    findings.append("%s: duplicate TYPE for %s" %
                                    (where, family))
                types[family] = kind
            continue
        name, _, value = line.rpartition(" ")
        label = ""
        if "{" in name:
            name, _, label = name.partition("{")
            label = label.rstrip("}")
        try:
            value = float(value)
        except ValueError:
            findings.append("%s: non-numeric value %r" % (where, value))
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
        if family not in types:
            findings.append("%s: sample %r without TYPE line" %
                            (where, name))
            continue
        if name.endswith("_bucket") and types.get(family) == "histogram":
            le = None
            for part in label.split(","):
                k, _, v = part.partition("=")
                if k == "le":
                    le = v.strip('"')
            if le is None:
                findings.append("%s: bucket without le label" % where)
            else:
                buckets.setdefault(family, []).append((le, value))
        elif name.endswith("_count") and types.get(family) == "histogram":
            counts[family] = value
    for family, series in sorted(buckets.items()):
        prev = -1.0
        saw_inf = False
        for le, value in series:
            if value < prev:
                findings.append("%s: %s bucket counts decrease at le=%s" %
                                (path, family, le))
            prev = value
            if le == "+Inf":
                saw_inf = True
                if family in counts and value != counts[family]:
                    findings.append(
                        "%s: %s +Inf bucket %s != _count %s" %
                        (path, family, fmt(value), fmt(counts[family])))
        if not saw_inf:
            findings.append("%s: %s has no +Inf bucket" % (path, family))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate, render, or diff flight-recorder run ledgers.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--validate", metavar="LEDGER")
    mode.add_argument("--report", metavar="LEDGER")
    mode.add_argument("--diff", nargs=2, metavar=("A", "B"))
    mode.add_argument("--validate-prom", metavar="FILE")
    args = parser.parse_args(argv)

    if args.report:
        return report(args.report)
    if args.diff:
        return diff(args.diff[0], args.diff[1])
    findings = (validate(args.validate) if args.validate
                else validate_prom(args.validate_prom))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print("report: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("report: %s OK" % (args.validate or args.validate_prom))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
