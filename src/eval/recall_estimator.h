// Extension (paper Section 6, future work): "estimate the recall of the
// alternative document ranking approaches ... estimate the extraction
// cost, as a function of the number of processed documents, to achieve a
// target recall value."
//
// The estimator Platt-calibrates the ranking model's scores against the
// useful/useless verdicts observed so far (1-D logistic regression), then
// integrates the calibrated probabilities over the still-unprocessed
// documents to estimate how many useful documents remain — which yields a
// current-recall estimate and a projected cost to reach a recall target.
#pragma once

#include <cstddef>
#include <vector>

namespace ie {

/// 1-D logistic model P(useful | score) = sigmoid(a * score + b).
class PlattCalibrator {
 public:
  /// Fits (a, b) by gradient descent on the logistic loss. `labels[i]` is
  /// true when the document with `scores[i]` was useful. Requires at least
  /// one example of each class; returns false otherwise.
  bool Fit(const std::vector<double>& scores,
           const std::vector<bool>& labels, int iterations = 500,
           double learning_rate = 0.5);

  double Probability(double score) const;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
};

struct RecallEstimate {
  /// Useful documents found so far.
  size_t found = 0;
  /// Estimated useful documents among the unprocessed remainder.
  double estimated_remaining = 0.0;
  /// found / (found + estimated_remaining); 0 when nothing was found.
  double estimated_recall = 0.0;
};

/// Estimates current recall from processed (score, verdict) pairs and the
/// scores of the remaining (unprocessed) documents.
RecallEstimate EstimateRecall(const std::vector<double>& processed_scores,
                              const std::vector<bool>& processed_labels,
                              const std::vector<double>& remaining_scores);

/// Projects how many more documents must be processed — following the
/// descending-score order of `remaining_scores` — to raise the estimated
/// recall to `target_recall`. Returns remaining_scores.size() + 1 when the
/// target is unreachable even after exhausting the pool.
size_t EstimateDocsToTargetRecall(
    const std::vector<double>& processed_scores,
    const std::vector<bool>& processed_labels,
    std::vector<double> remaining_scores, double target_recall);

}  // namespace ie
