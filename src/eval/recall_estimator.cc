#include "eval/recall_estimator.h"

#include <algorithm>
#include <cmath>

namespace ie {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

bool PlattCalibrator::Fit(const std::vector<double>& scores,
                          const std::vector<bool>& labels, int iterations,
                          double learning_rate) {
  if (scores.size() != labels.size() || scores.empty()) return false;
  size_t positives = 0;
  for (bool y : labels) positives += y;
  if (positives == 0 || positives == labels.size()) return false;

  // Standardize scores for stable optimization.
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  double var = 0.0;
  for (double s : scores) var += (s - mean) * (s - mean);
  const double stddev =
      std::sqrt(var / static_cast<double>(scores.size())) + 1e-12;

  double a = 1.0, b = 0.0;
  const double n = static_cast<double>(scores.size());
  for (int it = 0; it < iterations; ++it) {
    double grad_a = 0.0, grad_b = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      const double z = (scores[i] - mean) / stddev;
      const double p = Sigmoid(a * z + b);
      const double err = p - (labels[i] ? 1.0 : 0.0);
      grad_a += err * z;
      grad_b += err;
    }
    a -= learning_rate * grad_a / n;
    b -= learning_rate * grad_b / n;
  }
  // Fold the standardization back into (a, b) on raw scores.
  a_ = a / stddev;
  b_ = b - a * mean / stddev;
  return true;
}

double PlattCalibrator::Probability(double score) const {
  return Sigmoid(a_ * score + b_);
}

RecallEstimate EstimateRecall(const std::vector<double>& processed_scores,
                              const std::vector<bool>& processed_labels,
                              const std::vector<double>& remaining_scores) {
  RecallEstimate estimate;
  for (bool y : processed_labels) estimate.found += y;

  PlattCalibrator calibrator;
  if (!calibrator.Fit(processed_scores, processed_labels)) {
    // Degenerate labels: fall back to the observed prevalence.
    const double prevalence =
        processed_labels.empty()
            ? 0.0
            : static_cast<double>(estimate.found) /
                  static_cast<double>(processed_labels.size());
    estimate.estimated_remaining =
        prevalence * static_cast<double>(remaining_scores.size());
  } else {
    for (double score : remaining_scores) {
      estimate.estimated_remaining += calibrator.Probability(score);
    }
  }
  const double total =
      static_cast<double>(estimate.found) + estimate.estimated_remaining;
  estimate.estimated_recall =
      total > 0.0 ? static_cast<double>(estimate.found) / total : 0.0;
  return estimate;
}

size_t EstimateDocsToTargetRecall(
    const std::vector<double>& processed_scores,
    const std::vector<bool>& processed_labels,
    std::vector<double> remaining_scores, double target_recall) {
  const RecallEstimate now = EstimateRecall(
      processed_scores, processed_labels, remaining_scores);
  const double total_useful =
      static_cast<double>(now.found) + now.estimated_remaining;
  if (total_useful <= 0.0) return 0;
  const double needed = target_recall * total_useful;
  if (static_cast<double>(now.found) >= needed) return 0;

  PlattCalibrator calibrator;
  const bool calibrated =
      calibrator.Fit(processed_scores, processed_labels);
  std::sort(remaining_scores.begin(), remaining_scores.end(),
            std::greater<double>());
  double found = static_cast<double>(now.found);
  const double fallback_rate =
      remaining_scores.empty()
          ? 0.0
          : now.estimated_remaining /
                static_cast<double>(remaining_scores.size());
  for (size_t i = 0; i < remaining_scores.size(); ++i) {
    found += calibrated ? calibrator.Probability(remaining_scores[i])
                        : fallback_rate;
    if (found + 1e-9 >= needed) return i + 1;
  }
  return remaining_scores.size() + 1;
}

}  // namespace ie
