// Extension (paper Section 6, future work): "characterize ranking models
// according to the diversity of the tuples that they tend to produce."
// Measures how quickly a processing order accumulates *distinct* tuples
// and distinct attribute values, relative to the documents processed.
#pragma once

#include <cstddef>
#include <vector>

#include "extract/extraction_system.h"
#include "text/document.h"

namespace ie {

struct DiversityCurvePoint {
  size_t documents_processed = 0;
  size_t distinct_tuples = 0;
  size_t distinct_attr1_values = 0;
  size_t distinct_attr2_values = 0;
};

/// Cumulative distinct-tuple counts along a processing order, sampled at
/// `points` evenly spaced checkpoints (plus the final state). Tuples are
/// keyed by (attr1, attr2); the sentence index is ignored so the same fact
/// found in two documents counts once.
std::vector<DiversityCurvePoint> TupleDiversityCurve(
    const std::vector<DocId>& processing_order,
    const ExtractionOutcomes& outcomes, size_t points = 10);

/// Area-under-curve style scalar: mean fraction of the final distinct-tuple
/// count that is already discovered at each checkpoint. Higher = the order
/// surfaces diverse tuples earlier. 0 when no tuples are produced.
double EarlyDiversityIndex(const std::vector<DocId>& processing_order,
                           const ExtractionOutcomes& outcomes,
                           size_t points = 20);

}  // namespace ie
