// Evaluation metrics (paper Section 4): average recall at points of the
// extraction, average precision over all ranking positions, and the area
// under the ROC curve — all computed over a processing order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ie {

/// Recall after processing each fraction of the pool, evaluated on a fixed
/// percent grid [0, 100] with `points+1` entries. `useful_in_order[i]` is
/// the verdict of the i-th processed document; `total_useful` is the
/// recall denominator (useful documents in the whole pool).
std::vector<double> RecallCurve(const std::vector<uint8_t>& useful_in_order,
                                size_t total_useful, size_t points = 100);

/// Mean of precision@k over the positions of useful documents (standard
/// average precision of the processing order as a ranking). Positions
/// beyond the processed prefix count as misses.
double AveragePrecision(const std::vector<uint8_t>& useful_in_order,
                        size_t total_useful);

/// Area under the ROC curve of the processing order: the probability that
/// a uniformly random useful document is processed before a uniformly
/// random useless one. 0.5 for random order, 1.0 for perfect.
double RocAuc(const std::vector<uint8_t>& useful_in_order);

/// Recall (fraction of total_useful found) after processing `k` documents.
double RecallAt(const std::vector<uint8_t>& useful_in_order,
                size_t total_useful, size_t k);

/// Smallest number of processed documents reaching `target_recall`;
/// returns useful_in_order.size() + 1 when never reached.
size_t DocsToReachRecall(const std::vector<uint8_t>& useful_in_order,
                         size_t total_useful, double target_recall);

}  // namespace ie
