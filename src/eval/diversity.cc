#include "eval/diversity.h"

#include <string>
#include <unordered_set>

namespace ie {

std::vector<DiversityCurvePoint> TupleDiversityCurve(
    const std::vector<DocId>& processing_order,
    const ExtractionOutcomes& outcomes, size_t points) {
  std::vector<DiversityCurvePoint> curve;
  if (processing_order.empty() || points == 0) return curve;

  std::unordered_set<std::string> tuples, attr1, attr2;
  const size_t n = processing_order.size();
  size_t next_checkpoint = 1;
  for (size_t i = 0; i < n; ++i) {
    for (const ExtractedTuple& t : outcomes.tuples(processing_order[i])) {
      tuples.insert(t.attr1 + "\x1f" + t.attr2);
      attr1.insert(t.attr1);
      attr2.insert(t.attr2);
    }
    // Emit checkpoints at ceil(k*n/points) boundaries.
    while (next_checkpoint <= points &&
           i + 1 >= (next_checkpoint * n + points - 1) / points) {
      curve.push_back({i + 1, tuples.size(), attr1.size(), attr2.size()});
      ++next_checkpoint;
    }
  }
  return curve;
}

double EarlyDiversityIndex(const std::vector<DocId>& processing_order,
                           const ExtractionOutcomes& outcomes,
                           size_t points) {
  const auto curve = TupleDiversityCurve(processing_order, outcomes, points);
  if (curve.empty() || curve.back().distinct_tuples == 0) return 0.0;
  const double final_count =
      static_cast<double>(curve.back().distinct_tuples);
  double sum = 0.0;
  for (const DiversityCurvePoint& p : curve) {
    sum += static_cast<double>(p.distinct_tuples) / final_count;
  }
  return sum / static_cast<double>(curve.size());
}

}  // namespace ie
