// Multi-seed experiment aggregation: runs a pipeline configuration across
// independent seeds (the paper executes each experiment five times with
// different samples) and reports mean ± sample stddev per metric plus the
// pointwise-averaged recall curve.
#pragma once

#include <functional>
#include <string>
#include <vector>

// ARCH: layering (PipelineResult is the pipeline's passive output record;
// eval only consumes finished results — no behavioral dependency on the
// pipeline layer. The record stays next to the loop that fills it because
// it embeds recorder types; revisit when the serving layer splits result
// schemas.)
#include "pipeline/result.h"

namespace ie {

struct RunMetrics {
  std::vector<double> recall_curve;  // percent grid 0..100
  double average_precision = 0.0;
  double auc = 0.0;
  PipelineResult raw;
};

/// Computes ranking metrics over the RANKED portion of the run, i.e. after
/// the warmup prefix (initial sample / query evaluation). The paper's
/// warmup is ~0.2% of its 1.09M-document pool and hence invisible in its
/// figures; at bench scale the warmup is a noticeable fraction, so scoring
/// it would blur every strategy toward random. Set include_warmup = true
/// for cost accounting views.
RunMetrics EvaluateRun(PipelineResult result, bool include_warmup = false);

struct AggregateMetrics {
  std::string label;
  size_t runs = 0;
  std::vector<double> mean_recall_curve;
  double ap_mean = 0.0;
  double ap_std = 0.0;
  double auc_mean = 0.0;
  double auc_std = 0.0;
  double updates_mean = 0.0;
  double extraction_seconds_mean = 0.0;
  double ranking_cpu_seconds_mean = 0.0;
  double detector_cpu_seconds_mean = 0.0;
  double total_seconds_mean = 0.0;
};

/// Runs `run(seed_index)` for `num_seeds` seeds and aggregates.
AggregateMetrics RunExperiment(
    const std::string& label, size_t num_seeds,
    const std::function<PipelineResult(size_t)>& run);

/// Prints "<label>: r@10 r@20 ... AP AUC" summary lines and full curves in
/// a gnuplot-friendly "percent<TAB>recall" block.
void PrintCurve(const AggregateMetrics& metrics, size_t step_percent = 10);

/// Like PrintCurve but appends the mean number of model updates per run.
void PrintCurveWithUpdates(const AggregateMetrics& metrics,
                           size_t step_percent = 10);
void PrintApAucRow(const AggregateMetrics& metrics);

}  // namespace ie
