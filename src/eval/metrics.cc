#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace ie {

std::vector<double> RecallCurve(const std::vector<uint8_t>& useful_in_order,
                                size_t total_useful, size_t points) {
  std::vector<double> curve(points + 1, 0.0);
  if (useful_in_order.empty() || total_useful == 0) return curve;
  const size_t n = useful_in_order.size();

  // Prefix counts of useful documents.
  size_t found = 0;
  std::vector<size_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    found += useful_in_order[i];
    prefix[i + 1] = found;
  }
  for (size_t p = 0; p <= points; ++p) {
    const size_t k = static_cast<size_t>(
        std::llround(static_cast<double>(n) * static_cast<double>(p) /
                     static_cast<double>(points)));
    curve[p] = static_cast<double>(prefix[std::min(k, n)]) /
               static_cast<double>(total_useful);
  }
  return curve;
}

double AveragePrecision(const std::vector<uint8_t>& useful_in_order,
                        size_t total_useful) {
  if (total_useful == 0) return 0.0;
  double sum = 0.0;
  size_t found = 0;
  for (size_t i = 0; i < useful_in_order.size(); ++i) {
    if (useful_in_order[i] != 0) {
      ++found;
      sum += static_cast<double>(found) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total_useful);
}

double RocAuc(const std::vector<uint8_t>& useful_in_order) {
  // AUC = (normalized) Mann-Whitney U of positives ranked before negatives.
  size_t positives = 0, negatives = 0;
  double wins = 0.0;  // negative docs processed after each positive
  size_t negatives_seen = 0;
  for (uint8_t u : useful_in_order) {
    if (u != 0) {
      ++positives;
      wins += static_cast<double>(negatives_seen);  // negatives before it
    } else {
      ++negatives_seen;
    }
  }
  negatives = negatives_seen;
  if (positives == 0 || negatives == 0) return 0.5;
  // "wins" counted negatives *before* each positive: those are losses.
  const double total =
      static_cast<double>(positives) * static_cast<double>(negatives);
  return 1.0 - wins / total;
}

double RecallAt(const std::vector<uint8_t>& useful_in_order,
                size_t total_useful, size_t k) {
  if (total_useful == 0) return 0.0;
  size_t found = 0;
  const size_t n = std::min(k, useful_in_order.size());
  for (size_t i = 0; i < n; ++i) found += useful_in_order[i];
  return static_cast<double>(found) / static_cast<double>(total_useful);
}

size_t DocsToReachRecall(const std::vector<uint8_t>& useful_in_order,
                         size_t total_useful, double target_recall) {
  if (total_useful == 0) return 0;
  const double target =
      target_recall * static_cast<double>(total_useful);
  size_t found = 0;
  for (size_t i = 0; i < useful_in_order.size(); ++i) {
    found += useful_in_order[i];
    if (static_cast<double>(found) + 1e-9 >= target) return i + 1;
  }
  return useful_in_order.size() + 1;
}

}  // namespace ie
