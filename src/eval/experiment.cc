#include "eval/experiment.h"

#include <cstddef>
#include <cstdio>

#include "common/stats.h"
#include "eval/metrics.h"

namespace ie {

RunMetrics EvaluateRun(PipelineResult result, bool include_warmup) {
  const size_t skip =
      include_warmup ? 0
                     : std::min(result.warmup_documents,
                                result.processed_useful.size());
  std::vector<uint8_t> suffix(
      result.processed_useful.begin() + static_cast<std::ptrdiff_t>(skip),
      result.processed_useful.end());
  size_t warmup_useful = 0;
  for (size_t i = 0; i < skip; ++i) {
    warmup_useful += result.processed_useful[i];
  }
  const size_t denom = result.pool_useful - warmup_useful;

  RunMetrics metrics;
  metrics.recall_curve = RecallCurve(suffix, denom);
  metrics.average_precision = AveragePrecision(suffix, denom);
  metrics.auc = RocAuc(suffix);
  metrics.raw = std::move(result);
  return metrics;
}

AggregateMetrics RunExperiment(
    const std::string& label, size_t num_seeds,
    const std::function<PipelineResult(size_t)>& run) {
  AggregateMetrics agg;
  agg.label = label;
  agg.runs = num_seeds;

  std::vector<double> aps, aucs;
  RunningStats updates, extraction, ranking, detector, total;
  for (size_t s = 0; s < num_seeds; ++s) {
    const RunMetrics metrics = EvaluateRun(run(s));
    if (agg.mean_recall_curve.empty()) {
      agg.mean_recall_curve.assign(metrics.recall_curve.size(), 0.0);
    }
    for (size_t i = 0; i < metrics.recall_curve.size(); ++i) {
      agg.mean_recall_curve[i] +=
          metrics.recall_curve[i] / static_cast<double>(num_seeds);
    }
    aps.push_back(metrics.average_precision);
    aucs.push_back(metrics.auc);
    updates.Add(static_cast<double>(metrics.raw.NumUpdates()));
    extraction.Add(metrics.raw.extraction_seconds);
    ranking.Add(metrics.raw.ranking_cpu_seconds);
    detector.Add(metrics.raw.detector_cpu_seconds);
    total.Add(metrics.raw.TotalSeconds());
  }
  agg.ap_mean = Mean(aps);
  agg.ap_std = StdDev(aps);
  agg.auc_mean = Mean(aucs);
  agg.auc_std = StdDev(aucs);
  agg.updates_mean = updates.mean();
  agg.extraction_seconds_mean = extraction.mean();
  agg.ranking_cpu_seconds_mean = ranking.mean();
  agg.detector_cpu_seconds_mean = detector.mean();
  agg.total_seconds_mean = total.mean();
  return agg;
}

void PrintCurve(const AggregateMetrics& metrics, size_t step_percent) {
  std::printf("%-28s", metrics.label.c_str());
  const size_t points = metrics.mean_recall_curve.size() - 1;
  for (size_t p = step_percent; p <= 100; p += step_percent) {
    const size_t idx = p * points / 100;
    std::printf(" %6.1f", 100.0 * metrics.mean_recall_curve[idx]);
  }
  std::printf("\n");
}

void PrintCurveWithUpdates(const AggregateMetrics& metrics,
                           size_t step_percent) {
  std::printf("%-28s", metrics.label.c_str());
  const size_t points = metrics.mean_recall_curve.size() - 1;
  for (size_t p = step_percent; p <= 100; p += step_percent) {
    const size_t idx = p * points / 100;
    std::printf(" %6.1f", 100.0 * metrics.mean_recall_curve[idx]);
  }
  std::printf("   (%.1f updates)\n", metrics.updates_mean);
}

void PrintApAucRow(const AggregateMetrics& metrics) {
  std::printf("%-28s  AP %5.1f±%4.1f%%   AUC %5.1f±%4.1f%%\n",
              metrics.label.c_str(), 100.0 * metrics.ap_mean,
              100.0 * metrics.ap_std, 100.0 * metrics.auc_mean,
              100.0 * metrics.auc_std);
}

}  // namespace ie
