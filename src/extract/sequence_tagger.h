// Shared machinery for learned BIO sequence taggers (HMM, MEMM, CRF-lite):
// label scheme, gold-label extraction from corpus annotations, and
// BIO-to-mention decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "extract/ner.h"

namespace ie {

/// BIO labels for a single target entity type.
enum BioLabel : uint8_t { kO = 0, kB = 1, kI = 2 };
inline constexpr size_t kNumBioLabels = 3;

struct TaggedSentence {
  const Sentence* sentence = nullptr;
  std::vector<uint8_t> labels;  // BioLabel per token
};

/// Gold BIO sequences for `type` over the given documents. Sentences with
/// no mention of the type are included with probability `negative_keep`
/// (subsampling keeps training balanced and fast).
std::vector<TaggedSentence> CollectTaggedSentences(
    const Corpus& corpus, const std::vector<DocId>& docs, EntityType type,
    double negative_keep, uint64_t seed);

/// Converts a BIO label sequence into entity mentions.
std::vector<EntityMention> DecodeBio(const Sentence& sentence,
                                     const std::vector<uint8_t>& labels,
                                     uint32_t sentence_index, EntityType type,
                                     const Vocabulary& vocab);

/// Base for taggers that label one sentence at a time.
class SequenceTaggerNer : public EntityRecognizer {
 public:
  SequenceTaggerNer(EntityType type, const Vocabulary* vocab)
      : type_(type), vocab_(vocab) {}

  std::vector<EntityMention> Recognize(const Document& doc) const override;

  /// Public single-sentence decoding entry point (diagnostics and tests —
  /// e.g. the scratch-reuse stability asserts in tests/ner_test.cc);
  /// forwards to the tagger's Label implementation.
  std::vector<uint8_t> LabelSentence(const Sentence& sentence) const {
    return Label(sentence);
  }

  EntityType type() const { return type_; }

 protected:
  /// Predicts BIO labels for one sentence.
  virtual std::vector<uint8_t> Label(const Sentence& sentence) const = 0;

  EntityType type_;
  const Vocabulary* vocab_;
};

}  // namespace ie
