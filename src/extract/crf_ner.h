// Linear-chain sequence tagger with Viterbi decoding, trained with the
// structured perceptron (Collins'02) — our "CRF-lite". Substitute for the
// CRF-based recognizers the paper uses (Stanford NER for Person/Location,
// CONLL-style CRFs for the remaining entity types). Unary scores come from
// hashed local features; a dense 3×3 transition matrix captures label
// dependencies.
#pragma once

#include <array>
#include <vector>

#include "extract/sequence_tagger.h"

namespace ie {

struct CrfOptions {
  uint32_t hash_bits = 18;
  int epochs = 5;
};

class CrfLiteNer : public SequenceTaggerNer {
 public:
  CrfLiteNer(EntityType type, const Vocabulary* vocab, CrfOptions options = {})
      : SequenceTaggerNer(type, vocab),
        options_(options),
        mask_((1u << options.hash_bits) - 1),
        unary_(kNumBioLabels,
               std::vector<float>(1u << options.hash_bits, 0.0f)) {
    for (auto& row : transition_) row.fill(0.0f);
  }

  void Train(const std::vector<TaggedSentence>& data, uint64_t seed = 29);

  std::string name() const override { return "crf_lite"; }

 protected:
  std::vector<uint8_t> Label(const Sentence& sentence) const override;

 private:
  void CollectFeatures(const Sentence& sentence, size_t pos,
                       std::vector<uint32_t>& features) const;
  std::vector<uint8_t> Viterbi(const Sentence& sentence) const;

  CrfOptions options_;
  uint32_t mask_;
  std::vector<std::vector<float>> unary_;  // [label][hashed feature]
  std::array<std::array<float, kNumBioLabels>, kNumBioLabels> transition_;
};

}  // namespace ie
