// TupleStore: queryable storage for extraction output with provenance —
// the reason IE is worth running at all ("having information in structured
// form enables more sophisticated querying ... than what is possible over
// the natural language text", paper Section 1). Tuples are deduplicated by
// (attr1, attr2) with per-fact provenance (the documents and sentences
// each fact was extracted from) and support lookup by either attribute.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "extract/tuple.h"
#include "text/document.h"

namespace ie {

class TupleStore {
 public:
  struct Fact {
    std::string attr1;
    std::string attr2;
    /// Distinct documents this fact was extracted from.
    std::vector<DocId> supporting_documents;
    size_t mention_count = 0;
  };

  explicit TupleStore(RelationId relation) : relation_(relation) {}

  /// Adds the tuples extracted from one document. Tuples of a different
  /// relation are rejected with an error.
  Status Add(DocId doc, const std::vector<ExtractedTuple>& tuples);

  size_t NumFacts() const { return facts_.size(); }
  size_t NumMentions() const { return mentions_; }
  RelationId relation() const { return relation_; }

  /// All stored facts (insertion order).
  const std::vector<Fact>& facts() const { return facts_; }

  /// Facts whose attr1 equals `value` (indices into facts()).
  std::vector<const Fact*> FindByAttr1(const std::string& value) const;
  /// Facts whose attr2 equals `value`.
  std::vector<const Fact*> FindByAttr2(const std::string& value) const;

  /// Facts ordered by descending support (documents), ties by insertion.
  std::vector<const Fact*> TopFactsBySupport(size_t k) const;

 private:
  RelationId relation_;
  std::vector<Fact> facts_;
  std::unordered_map<std::string, size_t> key_to_fact_;  // attr1\x1f attr2
  std::unordered_map<std::string, std::vector<size_t>> by_attr1_;
  std::unordered_map<std::string, std::vector<size_t>> by_attr2_;
  size_t mentions_ = 0;
};

}  // namespace ie
