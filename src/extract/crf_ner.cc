#include "extract/crf_ner.h"

#include <numeric>

namespace ie {

namespace {

inline uint32_t HashFeature(uint32_t kind, uint64_t value, uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(kind) * 0xc2b2ae3d27d4eb4fULL ^
               (value + 0x165667b19e3779f9ULL);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<uint32_t>(h) & mask;
}

constexpr uint64_t kBoundary = 0xfffffffffffffffULL;

}  // namespace

void CrfLiteNer::CollectFeatures(const Sentence& sentence, size_t pos,
                                 std::vector<uint32_t>& features) const {
  features.clear();
  const auto& tokens = sentence.tokens;
  features.push_back(HashFeature(0, tokens[pos], mask_));
  features.push_back(
      HashFeature(1, pos > 0 ? tokens[pos - 1] : kBoundary, mask_));
  features.push_back(HashFeature(
      2, pos + 1 < tokens.size() ? tokens[pos + 1] : kBoundary, mask_));
  // Token bigrams around the position.
  features.push_back(HashFeature(
      3,
      (static_cast<uint64_t>(pos > 0 ? tokens[pos - 1] : kBoundary) << 32) |
          tokens[pos],
      mask_));
  features.push_back(HashFeature(4, 1, mask_));  // bias
}

std::vector<uint8_t> CrfLiteNer::Viterbi(const Sentence& sentence) const {
  const size_t n = sentence.tokens.size();
  std::vector<uint8_t> labels(n, kO);
  if (n == 0) return labels;

  std::vector<uint32_t> features;
  std::vector<std::array<double, kNumBioLabels>> delta(n);
  std::vector<std::array<uint8_t, kNumBioLabels>> back(n);

  for (size_t pos = 0; pos < n; ++pos) {
    CollectFeatures(sentence, pos, features);
    std::array<double, kNumBioLabels> unary{};
    for (size_t y = 0; y < kNumBioLabels; ++y) {
      double s = 0.0;
      for (uint32_t f : features) s += static_cast<double>(unary_[y][f]);
      unary[y] = s;
    }
    if (pos == 0) {
      for (size_t y = 0; y < kNumBioLabels; ++y) {
        delta[0][y] = unary[y];
        back[0][y] = 0;
      }
      continue;
    }
    for (size_t y = 0; y < kNumBioLabels; ++y) {
      double best = -1e300;
      uint8_t arg = 0;
      for (size_t y0 = 0; y0 < kNumBioLabels; ++y0) {
        const double v =
            delta[pos - 1][y0] + static_cast<double>(transition_[y0][y]);
        if (v > best) {
          best = v;
          arg = static_cast<uint8_t>(y0);
        }
      }
      delta[pos][y] = best + unary[y];
      back[pos][y] = arg;
    }
  }
  double best = -1e300;
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    if (delta[n - 1][y] > best) {
      best = delta[n - 1][y];
      labels[n - 1] = static_cast<uint8_t>(y);
    }
  }
  for (size_t i = n - 1; i > 0; --i) {
    labels[i - 1] = back[i][labels[i]];
  }
  return labels;
}

void CrfLiteNer::Train(const std::vector<TaggedSentence>& data,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> features;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const TaggedSentence& ts = data[idx];
      const std::vector<uint8_t> predicted = Viterbi(*ts.sentence);
      if (predicted == ts.labels) continue;
      // Structured perceptron update: +gold features, -predicted features.
      uint8_t prev_gold = kNumBioLabels;  // sentinel: no previous
      uint8_t prev_pred = kNumBioLabels;
      for (size_t pos = 0; pos < ts.labels.size(); ++pos) {
        const uint8_t gold = ts.labels[pos];
        const uint8_t pred = predicted[pos];
        if (gold != pred) {
          CollectFeatures(*ts.sentence, pos, features);
          for (uint32_t f : features) {
            unary_[gold][f] += 1.0f;
            unary_[pred][f] -= 1.0f;
          }
        }
        if (pos > 0) {
          transition_[prev_gold][gold] += 1.0f;
          transition_[prev_pred][pred] -= 1.0f;
        }
        prev_gold = gold;
        prev_pred = pred;
      }
    }
  }
}

std::vector<uint8_t> CrfLiteNer::Label(const Sentence& sentence) const {
  return Viterbi(sentence);
}

}  // namespace ie
