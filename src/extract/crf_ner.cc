#include "extract/crf_ner.h"

#include <numeric>

#include "common/rng.h"

namespace ie {

namespace {

inline uint32_t HashFeature(uint32_t kind, uint64_t value, uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(kind) * 0xc2b2ae3d27d4eb4fULL ^
               (value + 0x165667b19e3779f9ULL);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<uint32_t>(h) & mask;
}

constexpr uint64_t kBoundary = 0xfffffffffffffffULL;

// Reusable per-thread Viterbi scratch: flat DP tables grown to the longest
// sentence a thread has decoded, instead of a fresh vector<array> pair per
// sentence. thread_local because the speculative extraction executor runs
// Viterbi concurrently on worker threads; every cell read is written
// earlier in the same call, so reuse never leaks state between sentences
// (tests/ner_test.cc pins this).
struct ViterbiScratch {
  std::vector<uint32_t> features;
  std::vector<double> delta;  // n × kNumBioLabels, row-major
  std::vector<uint8_t> back;  // same layout
};

ViterbiScratch& GetViterbiScratch() {
  thread_local ViterbiScratch scratch;
  return scratch;
}

}  // namespace

void CrfLiteNer::CollectFeatures(const Sentence& sentence, size_t pos,
                                 std::vector<uint32_t>& features) const {
  features.clear();
  const auto& tokens = sentence.tokens;
  features.push_back(HashFeature(0, tokens[pos], mask_));
  features.push_back(
      HashFeature(1, pos > 0 ? tokens[pos - 1] : kBoundary, mask_));
  features.push_back(HashFeature(
      2, pos + 1 < tokens.size() ? tokens[pos + 1] : kBoundary, mask_));
  // Token bigrams around the position.
  features.push_back(HashFeature(
      3,
      (static_cast<uint64_t>(pos > 0 ? tokens[pos - 1] : kBoundary) << 32) |
          tokens[pos],
      mask_));
  features.push_back(HashFeature(4, 1, mask_));  // bias
}

std::vector<uint8_t> CrfLiteNer::Viterbi(const Sentence& sentence) const {
  const size_t n = sentence.tokens.size();
  std::vector<uint8_t> labels(n, kO);
  if (n == 0) return labels;

  ViterbiScratch& scratch = GetViterbiScratch();
  std::vector<uint32_t>& features = scratch.features;
  if (scratch.delta.size() < n * kNumBioLabels) {
    scratch.delta.resize(n * kNumBioLabels);
    scratch.back.resize(n * kNumBioLabels);
  }
  double* delta = scratch.delta.data();
  uint8_t* back = scratch.back.data();

  for (size_t pos = 0; pos < n; ++pos) {
    CollectFeatures(sentence, pos, features);
    std::array<double, kNumBioLabels> unary{};
    for (size_t y = 0; y < kNumBioLabels; ++y) {
      double s = 0.0;
      for (uint32_t f : features) s += static_cast<double>(unary_[y][f]);
      unary[y] = s;
    }
    double* delta_row = delta + pos * kNumBioLabels;
    uint8_t* back_row = back + pos * kNumBioLabels;
    if (pos == 0) {
      for (size_t y = 0; y < kNumBioLabels; ++y) {
        delta_row[y] = unary[y];
        back_row[y] = 0;
      }
      continue;
    }
    const double* prev_row = delta_row - kNumBioLabels;
    for (size_t y = 0; y < kNumBioLabels; ++y) {
      double best = -1e300;
      uint8_t arg = 0;
      for (size_t y0 = 0; y0 < kNumBioLabels; ++y0) {
        const double v = prev_row[y0] + static_cast<double>(transition_[y0][y]);
        if (v > best) {
          best = v;
          arg = static_cast<uint8_t>(y0);
        }
      }
      delta_row[y] = best + unary[y];
      back_row[y] = arg;
    }
  }
  double best = -1e300;
  const double* last_row = delta + (n - 1) * kNumBioLabels;
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    if (last_row[y] > best) {
      best = last_row[y];
      labels[n - 1] = static_cast<uint8_t>(y);
    }
  }
  for (size_t i = n - 1; i > 0; --i) {
    labels[i - 1] = back[i * kNumBioLabels + labels[i]];
  }
  return labels;
}

void CrfLiteNer::Train(const std::vector<TaggedSentence>& data,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> features;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const TaggedSentence& ts = data[idx];
      const std::vector<uint8_t> predicted = Viterbi(*ts.sentence);
      if (predicted == ts.labels) continue;
      // Structured perceptron update: +gold features, -predicted features.
      uint8_t prev_gold = kNumBioLabels;  // sentinel: no previous
      uint8_t prev_pred = kNumBioLabels;
      for (size_t pos = 0; pos < ts.labels.size(); ++pos) {
        const uint8_t gold = ts.labels[pos];
        const uint8_t pred = predicted[pos];
        if (gold != pred) {
          CollectFeatures(*ts.sentence, pos, features);
          for (uint32_t f : features) {
            unary_[gold][f] += 1.0f;
            unary_[pred][f] -= 1.0f;
          }
        }
        if (pos > 0) {
          transition_[prev_gold][gold] += 1.0f;
          transition_[prev_pred][pred] -= 1.0f;
        }
        prev_gold = gold;
        prev_pred = pred;
      }
    }
  }
}

std::vector<uint8_t> CrfLiteNer::Label(const Sentence& sentence) const {
  return Viterbi(sentence);
}

}  // namespace ie
