#include "extract/ner.h"

#include <algorithm>
#include <cctype>

#include "common/rng.h"
#include "common/string_util.h"

namespace ie {

namespace {

std::string SpanValue(const Sentence& sentence, uint32_t begin, uint32_t end,
                      const Vocabulary& vocab) {
  std::string value;
  for (uint32_t i = begin; i < end; ++i) {
    if (i > begin) value.push_back(' ');
    value += vocab.Term(sentence.tokens[i]);
  }
  return value;
}

bool IsYearToken(const std::string& term) {
  if (term.size() != 4) return false;
  for (char c : term) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return term[0] == '1' || term[0] == '2';
}

}  // namespace

GazetteerNer::GazetteerNer(EntityType type,
                           const std::vector<std::string>& phrases,
                           Vocabulary* vocab, double coverage, uint64_t seed)
    : type_(type), vocab_(vocab) {
  Rng rng(seed);
  for (const std::string& phrase : phrases) {
    if (coverage < 1.0 && !rng.NextBool(coverage)) continue;
    std::vector<TokenId> ids;
    for (const auto& piece : SplitString(phrase, " ")) {
      ids.push_back(vocab->Intern(piece));
    }
    if (ids.empty()) continue;
    index_[ids[0]].push_back(std::move(ids));
    ++num_entries_;
  }
  // DETERMINISM: order-insensitive (each bucket is sorted independently;
  // no state crosses buckets)
  for (auto& [first, candidates] : index_) {
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
  }
}

std::vector<EntityMention> GazetteerNer::Recognize(const Document& doc)
    const {
  std::vector<EntityMention> mentions;
  for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
    const Sentence& sentence = doc.sentences[s];
    for (uint32_t i = 0; i < sentence.tokens.size();) {
      auto it = index_.find(sentence.tokens[i]);
      bool matched = false;
      if (it != index_.end()) {
        for (const std::vector<TokenId>& phrase : it->second) {
          if (i + phrase.size() > sentence.tokens.size()) continue;
          if (std::equal(phrase.begin(), phrase.end(),
                         sentence.tokens.begin() + i)) {
            const uint32_t end = i + static_cast<uint32_t>(phrase.size());
            mentions.push_back({s, i, end, type_,
                                SpanValue(sentence, i, end, *vocab_)});
            i = end;
            matched = true;
            break;
          }
        }
      }
      if (!matched) ++i;
    }
  }
  return mentions;
}

PatternNer::PatternNer(const std::vector<std::string>& suffixes,
                       Vocabulary* vocab)
    : vocab_(vocab) {
  for (const std::string& suffix : suffixes) {
    suffix_ids_.insert(vocab->Intern(suffix));
  }
  // Function words that cannot start an organization name.
  for (const char* stop :
       {"the", "a", "an", "of", "and", "in", "to", "for", "by", "was",
        "is", "with", "that", "this", "its", "their", "at", "on", "from"}) {
    stop_ids_.insert(vocab->Intern(stop));
  }
  university_id_ = vocab->Intern("university");
  of_id_ = vocab->Intern("of");
}

std::vector<EntityMention> PatternNer::Recognize(const Document& doc) const {
  std::vector<EntityMention> mentions;
  for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
    const Sentence& sentence = doc.sentences[s];
    for (uint32_t i = 0; i + 1 < sentence.tokens.size(); ++i) {
      // "university of <word>"
      if (sentence.tokens[i] == university_id_ &&
          sentence.tokens[i + 1] == of_id_ &&
          i + 2 < sentence.tokens.size() &&
          stop_ids_.count(sentence.tokens[i + 2]) == 0) {
        mentions.push_back({s, i, i + 3, EntityType::kOrganization,
                            SpanValue(sentence, i, i + 3, *vocab_)});
        continue;
      }
      // "<word> <org-suffix>"
      if (suffix_ids_.count(sentence.tokens[i + 1]) > 0 &&
          stop_ids_.count(sentence.tokens[i]) == 0 &&
          suffix_ids_.count(sentence.tokens[i]) == 0) {
        mentions.push_back({s, i, i + 2, EntityType::kOrganization,
                            SpanValue(sentence, i, i + 2, *vocab_)});
      }
    }
  }
  return mentions;
}

TemporalNer::TemporalNer(Vocabulary* vocab) : vocab_(vocab) {
  for (const char* month :
       {"january", "february", "march", "april", "may", "june", "july",
        "august", "september", "october", "november", "december"}) {
    month_ids_.insert(vocab->Intern(month));
  }
}

std::vector<EntityMention> TemporalNer::Recognize(const Document& doc)
    const {
  std::vector<EntityMention> mentions;
  for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
    const Sentence& sentence = doc.sentences[s];
    for (uint32_t i = 0; i + 1 < sentence.tokens.size(); ++i) {
      if (month_ids_.count(sentence.tokens[i]) == 0) continue;
      if (!IsYearToken(vocab_->Term(sentence.tokens[i + 1]))) continue;
      mentions.push_back({s, i, i + 2, EntityType::kTemporal,
                          SpanValue(sentence, i, i + 2, *vocab_)});
    }
  }
  return mentions;
}

std::vector<EntityMention> MergeMentions(
    std::vector<std::vector<EntityMention>> per_recognizer) {
  std::vector<EntityMention> all;
  for (auto& batch : per_recognizer) {
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  // Longer spans win; keep a span unless it is strictly inside a kept one.
  std::sort(all.begin(), all.end(),
            [](const EntityMention& a, const EntityMention& b) {
              if (a.sentence != b.sentence) return a.sentence < b.sentence;
              const uint32_t la = a.end - a.begin;
              const uint32_t lb = b.end - b.begin;
              if (la != lb) return la > lb;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.type < b.type;
            });
  std::vector<EntityMention> kept;
  for (EntityMention& m : all) {
    bool covered = false;
    for (const EntityMention& k : kept) {
      if (k.sentence == m.sentence && k.begin <= m.begin && m.end <= k.end) {
        covered = true;
        break;
      }
    }
    if (!covered) kept.push_back(std::move(m));
  }
  std::sort(kept.begin(), kept.end(),
            [](const EntityMention& a, const EntityMention& b) {
              if (a.sentence != b.sentence) return a.sentence < b.sentence;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  return kept;
}

}  // namespace ie
