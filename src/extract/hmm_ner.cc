#include "extract/hmm_ner.h"

#include <cmath>

namespace ie {

void HmmNer::Train(const std::vector<TaggedSentence>& data) {
  std::array<double, kNumBioLabels> initial{};
  std::array<std::array<double, kNumBioLabels>, kNumBioLabels> transition{};
  std::array<std::unordered_map<TokenId, double>, kNumBioLabels> emission;
  std::array<double, kNumBioLabels> state_totals{};

  for (const TaggedSentence& ts : data) {
    const auto& tokens = ts.sentence->tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint8_t y = ts.labels[i];
      if (i == 0) {
        initial[y] += 1.0;
      } else {
        transition[ts.labels[i - 1]][y] += 1.0;
      }
      emission[y][tokens[i]] += 1.0;
      state_totals[y] += 1.0;
    }
  }

  // Add-one smoothed log probabilities.
  double initial_total = 0.0;
  for (double c : initial) initial_total += c;
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    log_initial_[y] = std::log((initial[y] + 1.0) /
                               (initial_total + kNumBioLabels));
    double row_total = 0.0;
    for (double c : transition[y]) row_total += c;
    for (size_t y2 = 0; y2 < kNumBioLabels; ++y2) {
      log_transition_[y][y2] = std::log((transition[y][y2] + 1.0) /
                                        (row_total + kNumBioLabels));
    }
    const double vocab_size =
        static_cast<double>(emission[y].size()) + 1.0;  // +1 OOV bucket
    log_emission_[y].clear();
    double singletons = 0.0;
    // DETERMINISM: order-insensitive (each token's log-prob depends only
    // on its own count; the singleton tally adds exact integral 1.0s)
    for (const auto& [token, count] : emission[y]) {
      log_emission_[y][token] =
          std::log((count + 1.0) / (state_totals[y] + vocab_size));
      if (count == 1.0) singletons += 1.0;
    }
    // Good-Turing-style OOV handling: the total unseen-word mass of a state
    // is estimated by its singleton mass, then spread over the expected
    // number of unseen types (approximated by the state's seen vocabulary).
    // States that keep meeting brand-new words (the background O state over
    // an open vocabulary) thus keep a much higher per-word OOV probability
    // than the closed entity states — naive add-one would instead hand
    // every unknown token to the small entity states.
    log_oov_[y] = std::log((singletons + 0.5) /
                           ((state_totals[y] + vocab_size) * vocab_size));
  }
  trained_ = true;
}

double HmmNer::EmissionLogProb(size_t state, TokenId token) const {
  const auto it = log_emission_[state].find(token);
  return it == log_emission_[state].end() ? log_oov_[state] : it->second;
}

std::vector<uint8_t> HmmNer::Label(const Sentence& sentence) const {
  const size_t n = sentence.tokens.size();
  if (n == 0 || !trained_) return std::vector<uint8_t>(n, kO);

  // Viterbi in log space.
  std::vector<std::array<double, kNumBioLabels>> delta(n);
  std::vector<std::array<uint8_t, kNumBioLabels>> back(n);
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    delta[0][y] = log_initial_[y] + EmissionLogProb(y, sentence.tokens[0]);
    back[0][y] = 0;
  }
  for (size_t i = 1; i < n; ++i) {
    for (size_t y = 0; y < kNumBioLabels; ++y) {
      double best = -1e300;
      uint8_t arg = 0;
      for (size_t y0 = 0; y0 < kNumBioLabels; ++y0) {
        const double v = delta[i - 1][y0] + log_transition_[y0][y];
        if (v > best) {
          best = v;
          arg = static_cast<uint8_t>(y0);
        }
      }
      delta[i][y] = best + EmissionLogProb(y, sentence.tokens[i]);
      back[i][y] = arg;
    }
  }
  std::vector<uint8_t> labels(n, kO);
  double best = -1e300;
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    if (delta[n - 1][y] > best) {
      best = delta[n - 1][y];
      labels[n - 1] = static_cast<uint8_t>(y);
    }
  }
  for (size_t i = n - 1; i > 0; --i) {
    labels[i - 1] = back[i][labels[i]];
  }
  return labels;
}

}  // namespace ie
