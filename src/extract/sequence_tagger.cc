#include "extract/sequence_tagger.h"

#include "common/rng.h"

namespace ie {

std::vector<TaggedSentence> CollectTaggedSentences(
    const Corpus& corpus, const std::vector<DocId>& docs, EntityType type,
    double negative_keep, uint64_t seed) {
  Rng rng(seed);
  std::vector<TaggedSentence> out;
  for (DocId id : docs) {
    const Document& doc = corpus.doc(id);
    const DocAnnotations& ann = corpus.annotations(id);
    for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
      const Sentence& sentence = doc.sentences[s];
      std::vector<uint8_t> labels(sentence.tokens.size(), kO);
      bool has_mention = false;
      for (const EntityMention& m : ann.mentions) {
        if (m.sentence != s || m.type != type) continue;
        has_mention = true;
        for (uint32_t i = m.begin; i < m.end && i < labels.size(); ++i) {
          labels[i] = (i == m.begin) ? kB : kI;
        }
      }
      if (!has_mention && !rng.NextBool(negative_keep)) continue;
      out.push_back({&sentence, std::move(labels)});
    }
  }
  return out;
}

std::vector<EntityMention> DecodeBio(const Sentence& sentence,
                                     const std::vector<uint8_t>& labels,
                                     uint32_t sentence_index, EntityType type,
                                     const Vocabulary& vocab) {
  std::vector<EntityMention> mentions;
  uint32_t begin = 0;
  bool open = false;
  auto close = [&](uint32_t end) {
    if (!open) return;
    std::string value;
    for (uint32_t i = begin; i < end; ++i) {
      if (i > begin) value.push_back(' ');
      value += vocab.Term(sentence.tokens[i]);
    }
    mentions.push_back({sentence_index, begin, end, type, std::move(value)});
    open = false;
  };
  for (uint32_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kB) {
      close(i);
      begin = i;
      open = true;
    } else if (labels[i] == kI) {
      if (!open) {  // I without B: treat as a new mention start
        begin = i;
        open = true;
      }
    } else {
      close(i);
    }
  }
  close(static_cast<uint32_t>(labels.size()));
  return mentions;
}

std::vector<EntityMention> SequenceTaggerNer::Recognize(
    const Document& doc) const {
  std::vector<EntityMention> mentions;
  for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
    const std::vector<uint8_t> labels = Label(doc.sentences[s]);
    std::vector<EntityMention> found =
        DecodeBio(doc.sentences[s], labels, s, type_, *vocab_);
    mentions.insert(mentions.end(), std::make_move_iterator(found.begin()),
                    std::make_move_iterator(found.end()));
  }
  return mentions;
}

}  // namespace ie
