#include "extract/tuple_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace ie {

Status TupleStore::Add(DocId doc, const std::vector<ExtractedTuple>& tuples) {
  for (const ExtractedTuple& tuple : tuples) {
    if (tuple.relation != relation_) {
      return Status::InvalidArgument(StrFormat(
          "tuple relation %d does not match store relation %d",
          static_cast<int>(tuple.relation), static_cast<int>(relation_)));
    }
    const std::string key = tuple.attr1 + "\x1f" + tuple.attr2;
    auto it = key_to_fact_.find(key);
    if (it == key_to_fact_.end()) {
      const size_t index = facts_.size();
      facts_.push_back({tuple.attr1, tuple.attr2, {doc}, 1});
      key_to_fact_.emplace(key, index);
      by_attr1_[tuple.attr1].push_back(index);
      by_attr2_[tuple.attr2].push_back(index);
    } else {
      Fact& fact = facts_[it->second];
      ++fact.mention_count;
      if (fact.supporting_documents.empty() ||
          fact.supporting_documents.back() != doc) {
        // Documents arrive grouped, so a tail check suffices for dedup
        // unless callers interleave; fall back to a full scan then.
        if (std::find(fact.supporting_documents.begin(),
                      fact.supporting_documents.end(),
                      doc) == fact.supporting_documents.end()) {
          fact.supporting_documents.push_back(doc);
        }
      }
    }
    ++mentions_;
  }
  return Status::OK();
}

std::vector<const TupleStore::Fact*> TupleStore::FindByAttr1(
    const std::string& value) const {
  std::vector<const Fact*> out;
  const auto it = by_attr1_.find(value);
  if (it == by_attr1_.end()) return out;
  for (size_t index : it->second) out.push_back(&facts_[index]);
  return out;
}

std::vector<const TupleStore::Fact*> TupleStore::FindByAttr2(
    const std::string& value) const {
  std::vector<const Fact*> out;
  const auto it = by_attr2_.find(value);
  if (it == by_attr2_.end()) return out;
  for (size_t index : it->second) out.push_back(&facts_[index]);
  return out;
}

std::vector<const TupleStore::Fact*> TupleStore::TopFactsBySupport(
    size_t k) const {
  std::vector<const Fact*> out;
  out.reserve(facts_.size());
  for (const Fact& fact : facts_) out.push_back(&fact);
  std::stable_sort(out.begin(), out.end(),
                   [](const Fact* a, const Fact* b) {
                     return a->supporting_documents.size() >
                            b->supporting_documents.size();
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ie
