// Relation extractors: decide which co-occurring entity pairs express the
// target relation. Candidates are (attr1, attr2) mention pairs within one
// sentence. Three families, mirroring the paper's Section 4 choices:
// entity distance (Disease–Outbreak), a linear SVM over shallow context
// features (Giuliano et al., EACL'06 style; Person–Organization), and a
// subsequence-kernel classifier (Bunescu & Mooney, NIPS'05; the rest).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/corpus.h"
#include "learn/binary_svm.h"
#include "text/document.h"

namespace ie {

/// One candidate entity pair within a sentence.
struct RelationCandidate {
  const Sentence* sentence = nullptr;
  uint32_t sentence_index = 0;
  EntityMention attr1;
  EntityMention attr2;
};

/// Enumerates candidates: all (attr1-type, attr2-type) mention pairs that
/// share a sentence.
std::vector<RelationCandidate> EnumerateCandidates(
    const Document& doc, const std::vector<EntityMention>& mentions,
    EntityType attr1_type, EntityType attr2_type);

class RelationExtractor {
 public:
  virtual ~RelationExtractor() = default;

  /// True when the candidate pair expresses the relation.
  virtual bool Accept(const RelationCandidate& candidate) const = 0;

  virtual std::string name() const = 0;
};

/// Accepts pairs whose token gap is at most `max_distance` (the paper uses
/// entity distance to relate diseases to temporal expressions).
class DistanceRelationExtractor : public RelationExtractor {
 public:
  explicit DistanceRelationExtractor(uint32_t max_distance)
      : max_distance_(max_distance) {}

  bool Accept(const RelationCandidate& candidate) const override;
  std::string name() const override { return "distance"; }

 private:
  uint32_t max_distance_;
};

/// Linear SVM over hashed shallow context features: tokens between the
/// entities, a window fore and aft, and the bucketed distance.
class LinearSvmRelationExtractor : public RelationExtractor {
 public:
  explicit LinearSvmRelationExtractor(ElasticNetOptions options = {
                                          .lambda_all = 0.01,
                                          .lambda_l2_share = 1.0});

  /// Trains on candidates labeled against gold tuples.
  void Train(const std::vector<RelationCandidate>& candidates,
             const std::vector<int>& labels, int epochs, uint64_t seed = 31);

  bool Accept(const RelationCandidate& candidate) const override;
  std::string name() const override { return "linear_svm"; }

 private:
  SparseVector Features(const RelationCandidate& candidate) const;

  OnlineBinarySvm svm_;
};

/// Gap-weighted subsequence-kernel classifier (kernel perceptron with a
/// support-vector budget). The kernel operates on the token sequence
/// between the entities plus a small window on each side.
class SubsequenceKernelRelationExtractor : public RelationExtractor {
 public:
  struct Options {
    double decay = 0.75;       // gap penalty λ
    size_t max_subseq_len = 2; // subsequence length cap
    size_t budget = 96;        // max support vectors
    size_t window = 2;         // context tokens kept on each side
    size_t max_between = 8;    // between-token cap
    int epochs = 3;
  };

  SubsequenceKernelRelationExtractor() = default;
  explicit SubsequenceKernelRelationExtractor(Options options)
      : options_(options) {}

  void Train(const std::vector<RelationCandidate>& candidates,
             const std::vector<int>& labels, uint64_t seed = 37);

  bool Accept(const RelationCandidate& candidate) const override;
  std::string name() const override { return "subseq_kernel"; }

  size_t NumSupportVectors() const { return support_.size(); }

  /// Exposed for testing: normalized kernel between two token sequences.
  double NormalizedKernel(const std::vector<TokenId>& a,
                          const std::vector<TokenId>& b) const;

 private:
  std::vector<TokenId> CandidateSequence(
      const RelationCandidate& candidate) const;
  double RawKernel(const std::vector<TokenId>& a,
                   const std::vector<TokenId>& b) const;
  double Decision(const std::vector<TokenId>& seq) const;

  Options options_{};
  std::vector<std::vector<TokenId>> support_;
  std::vector<double> alphas_;
  std::vector<double> self_kernel_;  // cached K(sv, sv)
  double bias_ = 0.0;
};

/// Labels candidates against gold tuples: a candidate is positive when a
/// gold tuple with matching attribute values exists in the same sentence.
std::vector<int> LabelCandidates(
    const std::vector<RelationCandidate>& candidates,
    const DocAnnotations& annotations, RelationId relation);

}  // namespace ie
