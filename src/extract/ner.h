// Named-entity recognizer interface plus the rule-based recognizers
// (gazetteer, suffix patterns, temporal regex). Learned recognizers (HMM /
// MEMM / CRF-lite) live in their own headers. These are from-scratch
// substitutes for the paper's off-the-shelf NER toolkits (LingPipe,
// Stanford NER, E-txt2db; see DESIGN.md §2) — the ranking approach treats
// them as black boxes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/annotations.h"
#include "corpus/relation.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

class EntityRecognizer {
 public:
  virtual ~EntityRecognizer() = default;

  /// All entity mentions found in the document.
  virtual std::vector<EntityMention> Recognize(const Document& doc) const = 0;

  virtual std::string name() const = 0;
};

/// Dictionary-based recognizer with greedy longest-match over token-id
/// phrases. An optional coverage fraction < 1 drops dictionary entries at
/// construction, modeling the imperfect recall of real dictionaries.
class GazetteerNer : public EntityRecognizer {
 public:
  /// `phrases` are space-separated surface forms; tokens are interned into
  /// `vocab`. Entries are kept with probability `coverage`.
  GazetteerNer(EntityType type, const std::vector<std::string>& phrases,
               Vocabulary* vocab, double coverage = 1.0, uint64_t seed = 17);

  std::vector<EntityMention> Recognize(const Document& doc) const override;
  std::string name() const override { return "gazetteer"; }

  size_t DictionarySize() const { return num_entries_; }

 private:
  EntityType type_;
  const Vocabulary* vocab_;
  // First token id -> candidate phrases (longest first).
  std::unordered_map<TokenId, std::vector<std::vector<TokenId>>> index_;
  size_t num_entries_ = 0;
};

/// Suffix-pattern recognizer for organization names: matches
/// "<word> <org-suffix>" (e.g. "acme corporation") and
/// "university of <word>". A small stop list prevents degenerate matches
/// like "the corporation". Substitute for automatically generated
/// organization patterns (Whitelaw et al., CIKM'08).
class PatternNer : public EntityRecognizer {
 public:
  PatternNer(const std::vector<std::string>& suffixes, Vocabulary* vocab);

  std::vector<EntityMention> Recognize(const Document& doc) const override;
  std::string name() const override { return "pattern"; }

 private:
  const Vocabulary* vocab_;
  std::unordered_set<TokenId> suffix_ids_;
  std::unordered_set<TokenId> stop_ids_;
  TokenId university_id_;
  TokenId of_id_;
};

/// Rule-based temporal recognizer: "<month-name> <4-digit year>".
/// Substitute for manually crafted temporal regular expressions.
class TemporalNer : public EntityRecognizer {
 public:
  explicit TemporalNer(Vocabulary* vocab);

  std::vector<EntityMention> Recognize(const Document& doc) const override;
  std::string name() const override { return "temporal"; }

 private:
  const Vocabulary* vocab_;
  std::unordered_set<TokenId> month_ids_;
};

/// Merges mentions from several recognizers, dropping spans fully covered
/// by a longer span in the same sentence (longer wins; ties keep first).
std::vector<EntityMention> MergeMentions(
    std::vector<std::vector<EntityMention>> per_recognizer);

}  // namespace ie
