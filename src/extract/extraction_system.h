// ExtractionSystem: the trained, black-box IE system for one relation
// (entity recognizers + relation classifier), plus a factory that trains
// all seven paper relations' systems on dedicated generated training
// corpora (substituting for the paper's pre-trained off-the-shelf
// toolkits), and an outcome cache that materializes per-document verdicts
// once per corpus — extraction is deterministic, so the pipeline replays
// cached verdicts and charges the relation's simulated per-document cost.
#pragma once

#include <memory>
#include <vector>

#include "corpus/corpus.h"
#include "extract/ner.h"
#include "extract/relation_extractor.h"
#include "extract/tuple.h"

namespace ie {

class ExtractionSystem {
 public:
  ExtractionSystem(const RelationSpec& spec,
                   std::vector<std::unique_ptr<EntityRecognizer>> recognizers,
                   std::unique_ptr<RelationExtractor> relation_extractor)
      : spec_(spec),
        recognizers_(std::move(recognizers)),
        relation_extractor_(std::move(relation_extractor)) {}

  /// Runs the full pipeline on one document: NER, candidate enumeration,
  /// relation classification. Duplicate tuples are collapsed. Pure and
  /// safe to call concurrently for distinct documents (recognizers and the
  /// relation extractor are immutable after training), which is what lets
  /// the speculative extraction executor run it on worker threads.
  std::vector<ExtractedTuple> Process(const Document& doc) const;

  const RelationSpec& spec() const { return spec_; }
  const RelationExtractor& relation_extractor() const {
    return *relation_extractor_;
  }
  size_t num_recognizers() const { return recognizers_.size(); }

 private:
  RelationSpec spec_;
  std::vector<std::unique_ptr<EntityRecognizer>> recognizers_;
  std::unique_ptr<RelationExtractor> relation_extractor_;
};

struct ExtractorTrainingOptions {
  size_t training_documents = 1200;
  uint64_t seed = 97;
  /// Candidate cap for kernel-based relation classifiers.
  size_t max_relation_candidates = 4000;
};

/// Trains the extraction system for one relation. Training documents are
/// generated into `vocab` so that token ids match the evaluation corpus.
std::unique_ptr<ExtractionSystem> TrainExtractionSystem(
    RelationId relation, const std::shared_ptr<Vocabulary>& vocab,
    const ExtractorTrainingOptions& options = {});

/// Distinct attribute values of a tuple set, in first-appearance order —
/// the ranking models' tuple features. Shared by the outcome cache and the
/// live-extraction path so both derive byte-identical feature vectors.
std::vector<std::string> TupleAttributeValues(
    const std::vector<ExtractedTuple>& tuples);

/// Precomputed per-document extraction outcomes over one corpus.
class ExtractionOutcomes {
 public:
  ExtractionOutcomes() = default;

  /// Runs `system` over every document of `corpus` once. Per-document
  /// extraction is pure, so with `threads` > 1 documents are processed in
  /// parallel (each writing only its own slot) with identical results.
  static ExtractionOutcomes Compute(const ExtractionSystem& system,
                                    const Corpus& corpus,
                                    size_t threads = 1);

  bool useful(DocId id) const { return useful_[id] != 0; }
  const std::vector<ExtractedTuple>& tuples(DocId id) const {
    return tuples_[id];
  }

  /// Distinct attribute values of the tuples extracted from a document
  /// (features for the ranking models).
  std::vector<std::string> AttributeValues(DocId id) const;

  size_t CountUseful(const std::vector<DocId>& ids) const;
  size_t size() const { return useful_.size(); }

 private:
  std::vector<uint8_t> useful_;
  std::vector<std::vector<ExtractedTuple>> tuples_;
};

}  // namespace ie
