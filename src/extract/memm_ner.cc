#include "extract/memm_ner.h"

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace ie {

namespace {

inline uint32_t HashFeature(uint32_t kind, uint64_t value, uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL ^
               (value + 0x632be59bd9b4e019ULL);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<uint32_t>(h) & mask;
}

constexpr uint64_t kBoundary = 0xfffffffffffffffULL;

}  // namespace

void MemmNer::CollectFeatures(const Sentence& sentence, size_t pos,
                              uint8_t prev_label,
                              std::vector<uint32_t>& features) const {
  features.clear();
  const auto& tokens = sentence.tokens;
  features.push_back(HashFeature(0, tokens[pos], mask_));  // current word
  features.push_back(HashFeature(
      1, pos > 0 ? tokens[pos - 1] : kBoundary, mask_));   // previous word
  features.push_back(HashFeature(
      2, pos + 1 < tokens.size() ? tokens[pos + 1] : kBoundary, mask_));
  features.push_back(HashFeature(3, prev_label, mask_));   // previous label
  features.push_back(HashFeature(4, 1, mask_));            // bias
  // Conjunction: previous label × current word (Markov dependency).
  features.push_back(HashFeature(
      5, (static_cast<uint64_t>(prev_label) << 32) | tokens[pos], mask_));
}

void MemmNer::Scores(const std::vector<uint32_t>& features,
                     double scores[kNumBioLabels]) const {
  for (size_t y = 0; y < kNumBioLabels; ++y) {
    double s = 0.0;
    for (uint32_t f : features) s += static_cast<double>(weights_[y][f]);
    scores[y] = s;
  }
}

void MemmNer::Train(const std::vector<TaggedSentence>& data, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> features;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double eta = options_.learning_rate / (1.0 + epoch);
    for (size_t idx : order) {
      const TaggedSentence& ts = data[idx];
      uint8_t prev = kO;
      for (size_t pos = 0; pos < ts.sentence->tokens.size(); ++pos) {
        CollectFeatures(*ts.sentence, pos, prev, features);
        double scores[kNumBioLabels];
        Scores(features, scores);
        // Softmax.
        const double max_score =
            std::max({scores[0], scores[1], scores[2]});
        double z = 0.0;
        double p[kNumBioLabels];
        for (size_t y = 0; y < kNumBioLabels; ++y) {
          p[y] = std::exp(scores[y] - max_score);
          z += p[y];
        }
        const uint8_t gold = ts.labels[pos];
        for (size_t y = 0; y < kNumBioLabels; ++y) {
          const double grad = (y == gold ? 1.0 : 0.0) - p[y] / z;
          if (grad == 0.0) continue;
          const float delta = static_cast<float>(eta * grad);
          for (uint32_t f : features) weights_[y][f] += delta;
        }
        prev = gold;  // teacher forcing
      }
    }
  }
}

std::vector<uint8_t> MemmNer::Label(const Sentence& sentence) const {
  const size_t n = sentence.tokens.size();
  std::vector<uint8_t> labels(n, kO);
  // Per-thread feature scratch (the extraction executor decodes on worker
  // threads); fully rewritten by CollectFeatures at every position.
  thread_local std::vector<uint32_t> features;
  uint8_t prev = kO;
  for (size_t pos = 0; pos < n; ++pos) {
    CollectFeatures(sentence, pos, prev, features);
    double scores[kNumBioLabels];
    Scores(features, scores);
    uint8_t best = kO;
    for (size_t y = 1; y < kNumBioLabels; ++y) {
      if (scores[y] > scores[best]) best = static_cast<uint8_t>(y);
    }
    labels[pos] = best;
    prev = best;
  }
  return labels;
}

}  // namespace ie
