#include "extract/extraction_system.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "corpus/generator.h"
#include "corpus/lexicon.h"
#include "extract/crf_ner.h"
#include "extract/hmm_ner.h"
#include "extract/memm_ner.h"
#include "extract/sequence_tagger.h"

namespace ie {

std::vector<ExtractedTuple> ExtractionSystem::Process(
    const Document& doc) const {
  std::vector<std::vector<EntityMention>> found;
  found.reserve(recognizers_.size());
  for (const auto& recognizer : recognizers_) {
    found.push_back(recognizer->Recognize(doc));
  }
  const std::vector<EntityMention> mentions =
      MergeMentions(std::move(found));

  std::vector<ExtractedTuple> tuples;
  for (const RelationCandidate& candidate :
       EnumerateCandidates(doc, mentions, spec_.attr1, spec_.attr2)) {
    if (!relation_extractor_->Accept(candidate)) continue;
    ExtractedTuple tuple{spec_.id, candidate.attr1.value,
                         candidate.attr2.value, candidate.sentence_index};
    if (std::find(tuples.begin(), tuples.end(), tuple) == tuples.end()) {
      tuples.push_back(std::move(tuple));
    }
  }
  return tuples;
}

namespace {

// Collects RE training candidates from gold mentions, keeping all positives
// and subsampling negatives to roughly 2× the positive count.
void CollectRelationTrainingData(const Corpus& corpus,
                                 const RelationSpec& spec,
                                 size_t max_candidates, uint64_t seed,
                                 std::vector<RelationCandidate>* candidates,
                                 std::vector<int>* labels) {
  Rng rng(seed);
  std::vector<RelationCandidate> positives, negatives;
  for (DocId id : corpus.splits().train) {
    const Document& doc = corpus.doc(id);
    const DocAnnotations& ann = corpus.annotations(id);
    std::vector<RelationCandidate> cands =
        EnumerateCandidates(doc, ann.mentions, spec.attr1, spec.attr2);
    const std::vector<int> cand_labels =
        LabelCandidates(cands, ann, spec.id);
    for (size_t i = 0; i < cands.size(); ++i) {
      (cand_labels[i] > 0 ? positives : negatives)
          .push_back(std::move(cands[i]));
    }
  }
  rng.Shuffle(negatives);
  const size_t keep_neg =
      std::min(negatives.size(), 2 * std::max<size_t>(positives.size(), 8));
  negatives.resize(keep_neg);

  candidates->clear();
  labels->clear();
  for (auto& c : positives) {
    candidates->push_back(std::move(c));
    labels->push_back(1);
  }
  for (auto& c : negatives) {
    candidates->push_back(std::move(c));
    labels->push_back(-1);
  }
  if (candidates->size() > max_candidates) {
    // Shuffle jointly, then truncate.
    std::vector<size_t> order(candidates->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    std::vector<RelationCandidate> cc;
    std::vector<int> ll;
    for (size_t i = 0; i < max_candidates; ++i) {
      cc.push_back(std::move((*candidates)[order[i]]));
      ll.push_back((*labels)[order[i]]);
    }
    *candidates = std::move(cc);
    *labels = std::move(ll);
  }
}

std::unique_ptr<SubsequenceKernelRelationExtractor> TrainKernelExtractor(
    const Corpus& corpus, const RelationSpec& spec,
    const ExtractorTrainingOptions& options) {
  std::vector<RelationCandidate> candidates;
  std::vector<int> labels;
  CollectRelationTrainingData(corpus, spec, options.max_relation_candidates,
                              options.seed + 5, &candidates, &labels);
  auto extractor = std::make_unique<SubsequenceKernelRelationExtractor>();
  extractor->Train(candidates, labels, options.seed + 6);
  return extractor;
}

}  // namespace

std::unique_ptr<ExtractionSystem> TrainExtractionSystem(
    RelationId relation, const std::shared_ptr<Vocabulary>& vocab,
    const ExtractorTrainingOptions& options) {
  const RelationSpec& spec = GetRelation(relation);
  const Lexicon& lex = GetLexicon();

  GeneratorOptions gen = GeneratorOptions::ForExtractorTraining(
      relation, options.training_documents, options.seed);
  gen.shared_vocab = vocab;
  const Corpus training = GenerateCorpus(gen);
  const std::vector<DocId>& train_docs = training.splits().train;

  auto tag_data = [&](EntityType type, double negative_keep,
                      uint64_t seed_offset) {
    return CollectTaggedSentences(training, train_docs, type, negative_keep,
                                  options.seed + seed_offset);
  };

  std::vector<std::unique_ptr<EntityRecognizer>> ners;
  std::unique_ptr<RelationExtractor> re;

  switch (relation) {
    case RelationId::kPersonOrganization: {
      auto person = std::make_unique<HmmNer>(EntityType::kPerson,
                                             vocab.get());
      person->Train(tag_data(EntityType::kPerson, 0.3, 1));
      ners.push_back(std::move(person));
      ners.push_back(
          std::make_unique<PatternNer>(lex.org_suffixes, vocab.get()));
      std::vector<RelationCandidate> candidates;
      std::vector<int> labels;
      CollectRelationTrainingData(training, spec,
                                  options.max_relation_candidates,
                                  options.seed + 2, &candidates, &labels);
      auto svm = std::make_unique<LinearSvmRelationExtractor>();
      svm->Train(candidates, labels, /*epochs=*/6, options.seed + 3);
      re = std::move(svm);
      break;
    }
    case RelationId::kDiseaseOutbreak: {
      ners.push_back(std::make_unique<GazetteerNer>(
          EntityType::kDisease, lex.diseases, vocab.get(),
          /*coverage=*/0.93, options.seed + 1));
      ners.push_back(std::make_unique<TemporalNer>(vocab.get()));
      re = std::make_unique<DistanceRelationExtractor>(/*max_distance=*/4);
      break;
    }
    case RelationId::kNaturalDisaster: {
      auto disaster = std::make_unique<MemmNer>(
          EntityType::kNaturalDisaster, vocab.get());
      disaster->Train(tag_data(EntityType::kNaturalDisaster, 0.25, 1),
                      options.seed + 2);
      ners.push_back(std::move(disaster));
      auto location =
          std::make_unique<CrfLiteNer>(EntityType::kLocation, vocab.get());
      location->Train(tag_data(EntityType::kLocation, 0.25, 3),
                      options.seed + 4);
      ners.push_back(std::move(location));
      re = TrainKernelExtractor(training, spec, options);
      break;
    }
    default: {
      // MD, PC, PH, EW: CRF-lite recognizers for both attributes, plus the
      // subsequence-kernel relation classifier.
      auto ner1 =
          std::make_unique<CrfLiteNer>(spec.attr1, vocab.get());
      ner1->Train(tag_data(spec.attr1, 0.25, 1), options.seed + 2);
      ners.push_back(std::move(ner1));
      auto ner2 =
          std::make_unique<CrfLiteNer>(spec.attr2, vocab.get());
      ner2->Train(tag_data(spec.attr2, 0.25, 3), options.seed + 4);
      ners.push_back(std::move(ner2));
      re = TrainKernelExtractor(training, spec, options);
      break;
    }
  }

  return std::make_unique<ExtractionSystem>(spec, std::move(ners),
                                            std::move(re));
}

std::vector<std::string> TupleAttributeValues(
    const std::vector<ExtractedTuple>& tuples) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> values;
  for (const ExtractedTuple& t : tuples) {
    if (seen.insert(t.attr1).second) values.push_back(t.attr1);
    if (seen.insert(t.attr2).second) values.push_back(t.attr2);
  }
  return values;
}

ExtractionOutcomes ExtractionOutcomes::Compute(const ExtractionSystem& system,
                                               const Corpus& corpus,
                                               size_t threads) {
  ExtractionOutcomes outcomes;
  outcomes.useful_.resize(corpus.size(), 0);
  outcomes.tuples_.resize(corpus.size());
  ParallelFor(corpus.size(), threads, [&](size_t id) {
    outcomes.tuples_[id] = system.Process(corpus.doc(static_cast<DocId>(id)));
    outcomes.useful_[id] = outcomes.tuples_[id].empty() ? 0 : 1;
  });
  return outcomes;
}

std::vector<std::string> ExtractionOutcomes::AttributeValues(DocId id) const {
  return TupleAttributeValues(tuples_[id]);
}

size_t ExtractionOutcomes::CountUseful(const std::vector<DocId>& ids) const {
  size_t n = 0;
  for (DocId id : ids) n += useful_[id];
  return n;
}

}  // namespace ie
