// Maximum Entropy Markov Model BIO tagger (McCallum et al., ICML'00) —
// substitute for the MEMM the paper uses for Natural Disaster entities.
// Per-token multinomial logistic regression over hashed local features
// (current/previous/next token, previous label), trained with SGD on gold
// sequences and decoded greedily left-to-right.
#pragma once

#include <vector>

#include "extract/sequence_tagger.h"

namespace ie {

struct MemmOptions {
  uint32_t hash_bits = 18;  // feature space = 2^hash_bits per label
  int epochs = 4;
  double learning_rate = 0.2;
  double l2 = 1e-6;
};

class MemmNer : public SequenceTaggerNer {
 public:
  MemmNer(EntityType type, const Vocabulary* vocab, MemmOptions options = {})
      : SequenceTaggerNer(type, vocab),
        options_(options),
        mask_((1u << options.hash_bits) - 1),
        weights_(kNumBioLabels,
                 std::vector<float>(1u << options.hash_bits, 0.0f)) {}

  void Train(const std::vector<TaggedSentence>& data, uint64_t seed = 23);

  std::string name() const override { return "memm"; }

 protected:
  std::vector<uint8_t> Label(const Sentence& sentence) const override;

 private:
  void CollectFeatures(const Sentence& sentence, size_t pos,
                       uint8_t prev_label,
                       std::vector<uint32_t>& features) const;
  void Scores(const std::vector<uint32_t>& features,
              double scores[kNumBioLabels]) const;

  MemmOptions options_;
  uint32_t mask_;
  std::vector<std::vector<float>> weights_;  // [label][hashed feature]
};

}  // namespace ie
