// Extraction outputs. EntityMention (from corpus/annotations.h) doubles as
// the recognizer output span type; ExtractedTuple is what an extraction
// system emits and what defines document usefulness (a document is useful
// for a relation iff the system extracts at least one tuple from it).
#pragma once

#include <string>

#include "corpus/relation.h"

namespace ie {

struct ExtractedTuple {
  RelationId relation;
  std::string attr1;
  std::string attr2;
  uint32_t sentence = 0;

  bool operator==(const ExtractedTuple& other) const {
    return relation == other.relation && attr1 == other.attr1 &&
           attr2 == other.attr2 && sentence == other.sentence;
  }
};

}  // namespace ie
