#include "extract/relation_extractor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ie {

namespace {

inline uint32_t HashFeature(uint32_t kind, uint64_t value) {
  uint64_t h = static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ULL ^
               (value + 0xd6e8feb86659fd93ULL);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<uint32_t>(h) & ((1u << 20) - 1);
}

// Token gap between the two mentions (0 when adjacent/overlapping).
uint32_t TokenGap(const RelationCandidate& c) {
  const uint32_t lo_end = std::min(c.attr1.end, c.attr2.end);
  const uint32_t hi_begin = std::max(c.attr1.begin, c.attr2.begin);
  return hi_begin > lo_end ? hi_begin - lo_end : 0;
}

}  // namespace

std::vector<RelationCandidate> EnumerateCandidates(
    const Document& doc, const std::vector<EntityMention>& mentions,
    EntityType attr1_type, EntityType attr2_type) {
  std::vector<RelationCandidate> candidates;
  for (uint32_t s = 0; s < doc.sentences.size(); ++s) {
    for (const EntityMention& m1 : mentions) {
      if (m1.sentence != s || m1.type != attr1_type) continue;
      for (const EntityMention& m2 : mentions) {
        if (m2.sentence != s || m2.type != attr2_type) continue;
        if (attr1_type == attr2_type && m1.begin == m2.begin &&
            m1.end == m2.end) {
          continue;  // same span cannot relate to itself
        }
        candidates.push_back({&doc.sentences[s], s, m1, m2});
      }
    }
  }
  return candidates;
}

bool DistanceRelationExtractor::Accept(
    const RelationCandidate& candidate) const {
  return TokenGap(candidate) <= max_distance_;
}

LinearSvmRelationExtractor::LinearSvmRelationExtractor(
    ElasticNetOptions options)
    : svm_(options) {}

SparseVector LinearSvmRelationExtractor::Features(
    const RelationCandidate& candidate) const {
  const auto& tokens = candidate.sentence->tokens;
  std::vector<SparseVector::Entry> entries;

  const uint32_t between_begin =
      std::min(candidate.attr1.end, candidate.attr2.end);
  const uint32_t between_end =
      std::max(candidate.attr1.begin, candidate.attr2.begin);
  for (uint32_t i = between_begin; i < between_end && i < tokens.size();
       ++i) {
    entries.emplace_back(HashFeature(0, tokens[i]), 1.0f);
  }
  const uint32_t first_begin =
      std::min(candidate.attr1.begin, candidate.attr2.begin);
  const uint32_t last_end =
      std::max(candidate.attr1.end, candidate.attr2.end);
  for (uint32_t i = first_begin > 2 ? first_begin - 2 : 0; i < first_begin;
       ++i) {
    entries.emplace_back(HashFeature(1, tokens[i]), 1.0f);
  }
  for (uint32_t i = last_end;
       i < std::min<uint32_t>(last_end + 2,
                              static_cast<uint32_t>(tokens.size()));
       ++i) {
    entries.emplace_back(HashFeature(2, tokens[i]), 1.0f);
  }
  // Bucketed distance and direction.
  const uint32_t gap = TokenGap(candidate);
  entries.emplace_back(HashFeature(3, std::min<uint32_t>(gap, 8)), 1.0f);
  entries.emplace_back(
      HashFeature(4, candidate.attr1.begin < candidate.attr2.begin ? 1 : 0),
      1.0f);
  entries.emplace_back(HashFeature(5, 1), 1.0f);  // bias-ish constant

  SparseVector v = SparseVector::FromUnsorted(std::move(entries));
  v.Normalize();
  return v;
}

void LinearSvmRelationExtractor::Train(
    const std::vector<RelationCandidate>& candidates,
    const std::vector<int>& labels, int epochs, uint64_t seed) {
  std::vector<LabeledExample> examples;
  examples.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    examples.push_back({Features(candidates[i]), labels[i]});
  }
  Rng rng(seed);
  svm_.TrainBatch(examples, epochs, &rng);
}

bool LinearSvmRelationExtractor::Accept(
    const RelationCandidate& candidate) const {
  return svm_.Predict(Features(candidate));
}

std::vector<TokenId> SubsequenceKernelRelationExtractor::CandidateSequence(
    const RelationCandidate& candidate) const {
  const auto& tokens = candidate.sentence->tokens;
  const uint32_t between_begin =
      std::min(candidate.attr1.end, candidate.attr2.end);
  const uint32_t between_end =
      std::max(candidate.attr1.begin, candidate.attr2.begin);
  const uint32_t first_begin =
      std::min(candidate.attr1.begin, candidate.attr2.begin);
  const uint32_t last_end =
      std::max(candidate.attr1.end, candidate.attr2.end);

  std::vector<TokenId> seq;
  const uint32_t fore_begin =
      first_begin > options_.window
          ? first_begin - static_cast<uint32_t>(options_.window)
          : 0;
  for (uint32_t i = fore_begin; i < first_begin; ++i) {
    seq.push_back(tokens[i]);
  }
  uint32_t between_count = 0;
  for (uint32_t i = between_begin;
       i < between_end && between_count < options_.max_between;
       ++i, ++between_count) {
    seq.push_back(tokens[i]);
  }
  for (uint32_t i = last_end;
       i < std::min<uint32_t>(
               last_end + static_cast<uint32_t>(options_.window),
               static_cast<uint32_t>(tokens.size()));
       ++i) {
    seq.push_back(tokens[i]);
  }
  return seq;
}

double SubsequenceKernelRelationExtractor::RawKernel(
    const std::vector<TokenId>& a, const std::vector<TokenId>& b) const {
  // Gap-weighted subsequence kernel (Lodhi et al. / Bunescu & Mooney):
  // K_p(s,t) counts common subsequences of length <= p, each weighted by
  // decay^(total spanned length). Dynamic program over prefix tables.
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  const double lam = options_.decay;
  const size_t p = options_.max_subseq_len;

  // kpp[i][j]: K'_{q}(a_1..i, b_1..j) auxiliary table for current q.
  std::vector<std::vector<double>> kpp_prev(n + 1,
                                            std::vector<double>(m + 1, 1.0));
  std::vector<std::vector<double>> kpp(n + 1, std::vector<double>(m + 1));
  double total = 0.0;

  for (size_t q = 1; q <= p; ++q) {
    double kq = 0.0;  // K_q(s, t)
    for (size_t i = 0; i <= n; ++i) kpp[i][0] = 0.0;
    for (size_t j = 0; j <= m; ++j) kpp[0][j] = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      double kpps = 0.0;  // running K''
      for (size_t j = 1; j <= m; ++j) {
        kpps = lam * kpps;
        if (a[i - 1] == b[j - 1]) {
          kpps += lam * lam * kpp_prev[i - 1][j - 1];
          kq += lam * lam * kpp_prev[i - 1][j - 1];
        }
        kpp[i][j] = lam * kpp[i - 1][j] + kpps;
      }
    }
    total += kq;
    std::swap(kpp, kpp_prev);
  }
  return total;
}

double SubsequenceKernelRelationExtractor::NormalizedKernel(
    const std::vector<TokenId>& a, const std::vector<TokenId>& b) const {
  const double kaa = RawKernel(a, a);
  const double kbb = RawKernel(b, b);
  if (kaa <= 0.0 || kbb <= 0.0) return 0.0;
  return RawKernel(a, b) / std::sqrt(kaa * kbb);
}

double SubsequenceKernelRelationExtractor::Decision(
    const std::vector<TokenId>& seq) const {
  const double kss = RawKernel(seq, seq);
  if (kss <= 0.0) return bias_;
  double f = bias_;
  for (size_t i = 0; i < support_.size(); ++i) {
    const double k = RawKernel(support_[i], seq) /
                     std::sqrt(self_kernel_[i] * kss);
    f += alphas_[i] * k;
  }
  return f;
}

void SubsequenceKernelRelationExtractor::Train(
    const std::vector<RelationCandidate>& candidates,
    const std::vector<int>& labels, uint64_t seed) {
  std::vector<std::vector<TokenId>> sequences;
  sequences.reserve(candidates.size());
  for (const RelationCandidate& c : candidates) {
    sequences.push_back(CandidateSequence(c));
  }

  Rng rng(seed);
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const int y = labels[idx];
      const double f = Decision(sequences[idx]);
      if (static_cast<double>(y) * f > 0.0) continue;  // correct side
      // Kernel perceptron update.
      const double self = RawKernel(sequences[idx], sequences[idx]);
      if (self <= 0.0) continue;
      support_.push_back(sequences[idx]);
      alphas_.push_back(static_cast<double>(y));
      self_kernel_.push_back(self);
      bias_ += 0.1 * static_cast<double>(y);
      // Budget: evict the support vector with the smallest |α|.
      if (support_.size() > options_.budget) {
        size_t victim = 0;
        for (size_t i = 1; i < alphas_.size(); ++i) {
          if (std::fabs(alphas_[i]) < std::fabs(alphas_[victim])) victim = i;
        }
        support_.erase(support_.begin() + static_cast<long>(victim));
        alphas_.erase(alphas_.begin() + static_cast<long>(victim));
        self_kernel_.erase(self_kernel_.begin() +
                           static_cast<long>(victim));
      }
    }
  }
}

bool SubsequenceKernelRelationExtractor::Accept(
    const RelationCandidate& candidate) const {
  return Decision(CandidateSequence(candidate)) > 0.0;
}

std::vector<int> LabelCandidates(
    const std::vector<RelationCandidate>& candidates,
    const DocAnnotations& annotations, RelationId relation) {
  std::vector<int> labels;
  labels.reserve(candidates.size());
  for (const RelationCandidate& c : candidates) {
    int label = -1;
    for (const GoldTuple& t : annotations.tuples) {
      if (t.relation == relation && t.sentence == c.sentence_index &&
          t.attr1 == c.attr1.value && t.attr2 == c.attr2.value) {
        label = 1;
        break;
      }
    }
    labels.push_back(label);
  }
  return labels;
}

}  // namespace ie
