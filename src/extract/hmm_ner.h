// First-order Hidden Markov Model BIO tagger with Viterbi decoding —
// substitute for the HMM-based NER the paper uses for Person entities
// (Ekbal & Bandyopadhyay style). Emissions use add-one smoothing with an
// out-of-vocabulary bucket.
#pragma once

#include <array>
#include <unordered_map>

#include "extract/sequence_tagger.h"

namespace ie {

class HmmNer : public SequenceTaggerNer {
 public:
  HmmNer(EntityType type, const Vocabulary* vocab)
      : SequenceTaggerNer(type, vocab) {}

  /// Estimates transition/emission probabilities from gold sequences.
  void Train(const std::vector<TaggedSentence>& data);

  bool trained() const { return trained_; }

  std::string name() const override { return "hmm"; }

 protected:
  std::vector<uint8_t> Label(const Sentence& sentence) const override;

 private:
  double EmissionLogProb(size_t state, TokenId token) const;

  bool trained_ = false;
  std::array<double, kNumBioLabels> log_initial_{};
  std::array<std::array<double, kNumBioLabels>, kNumBioLabels>
      log_transition_{};
  std::array<std::unordered_map<TokenId, double>, kNumBioLabels>
      log_emission_;
  std::array<double, kNumBioLabels> log_oov_{};
};

}  // namespace ie
