// Online one-class SVM with a Gaussian kernel, trained with Pegasos-style
// steps over a budgeted support-vector set. This powers the Feat-S
// feature-shift baseline (Glazer et al., ICPR'12, as adapted by the paper:
// "an efficient version of feature shifting using an online one-class SVM
// based on Pegasos", Gaussian kernel, γ = 0.01).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "text/sparse_vector.h"

namespace ie {

struct OneClassSvmOptions {
  double gamma = 0.01;   // Gaussian kernel width
  double lambda = 0.01;  // regularization
  size_t budget = 128;   // max support vectors (smallest-|α| eviction)
};

class OneClassSvm {
 public:
  explicit OneClassSvm(OneClassSvmOptions options, uint64_t seed = 13)
      : options_(options), rng_(seed) {}

  /// Decision value f(x) = Σ α_i K(sv_i, x). Inliers score high.
  double Decision(const SparseVector& x) const;

  /// True when x falls inside the learned support region (f(x) ≥ margin).
  bool IsInlier(const SparseVector& x, double margin = 0.5) const {
    return Decision(x) >= margin;
  }

  /// One Pegasos step on example x (target f(x) ≥ 1).
  void Observe(const SparseVector& x);

  size_t NumSupportVectors() const { return alphas_.size(); }

 private:
  double Kernel(const SparseVector& a, const SparseVector& b) const;
  void Evict();

  OneClassSvmOptions options_;
  Rng rng_;
  std::vector<SparseVector> support_;
  std::vector<double> alphas_;
  size_t steps_ = 0;
};

}  // namespace ie
