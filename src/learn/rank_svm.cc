#include "learn/rank_svm.h"

namespace ie {

void OnlineRankSvm::ReservoirAdd(std::vector<SparseVector>& pool,
                                 size_t& seen, const SparseVector& x) {
  ++seen;
  if (pool.size() < options_.pool_capacity) {
    pool.push_back(x);
    return;
  }
  const size_t j = static_cast<size_t>(rng_.NextBounded(seen));
  if (j < pool.size()) pool[j] = x;
}

void OnlineRankSvm::Observe(const SparseVector& x, bool useful) {
  if (useful) {
    ReservoirAdd(useful_, useful_seen_, x);
  } else {
    ReservoirAdd(useless_, useless_seen_, x);
  }
  TrainPairs(static_cast<size_t>(options_.steps_per_observation));
}

void OnlineRankSvm::TrainPairs(size_t n) {
  if (useful_.empty() || useless_.empty()) return;
  for (size_t i = 0; i < n; ++i) {
    const SparseVector& pos = useful_[rng_.NextBounded(useful_.size())];
    const SparseVector& neg = useless_[rng_.NextBounded(useless_.size())];
    sgd_.PairStep(pos, neg);
  }
}

}  // namespace ie
