#include "learn/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/ordered.h"

namespace ie {

std::vector<WeightedFeature> TopKFeatures(const WeightVector& w, size_t k) {
  std::vector<WeightedFeature> all;
  all.reserve(w.dimension() / 8 + 8);
  for (uint32_t id = 0; id < w.dimension(); ++id) {
    const double v = std::fabs(w.Get(id));
    if (v > 0.0) all.push_back({id, v});
  }
  auto better = [](const WeightedFeature& a, const WeightedFeature& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.id < b.id;
  };
  if (all.size() > k) {
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                      all.end(), better);
    all.resize(k);
  } else {
    std::sort(all.begin(), all.end(), better);
  }
  return all;
}

double GeneralizedFootrule(const std::vector<WeightedFeature>& a,
                           const std::vector<WeightedFeature>& b) {
  if (a.empty() && b.empty()) return 0.0;

  // Per-list normalized weights over the union of features. Duplicate ids
  // within a list (possible for ad-hoc callers) keep their first, i.e.
  // highest-ranked, occurrence so the distance stays symmetric.
  std::unordered_map<uint32_t, double> wa, wb;
  double sum_a = 0.0, sum_b = 0.0;
  std::unordered_map<uint32_t, size_t> rank_a, rank_b;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!rank_a.emplace(a[i].id, rank_a.size()).second) continue;
    wa[a[i].id] = a[i].weight;
    sum_a += a[i].weight;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    if (!rank_b.emplace(b[i].id, rank_b.size()).second) continue;
    wb[b[i].id] = b[i].weight;
    sum_b += b[i].weight;
  }
  if (sum_a > 0.0) {
    // DETERMINISM: order-insensitive (element-wise in-place scaling)
    for (auto& [id, w] : wa) w /= sum_a;
  }
  if (sum_b > 0.0) {
    // DETERMINISM: order-insensitive (element-wise in-place scaling)
    for (auto& [id, w] : wb) w /= sum_b;
  }

  // Union of features with combined weight; absent => tail rank.
  struct Item {
    uint32_t id;
    double weight;
    size_t pos_a;
    size_t pos_b;
  };
  const size_t tail_a = rank_a.size();
  const size_t tail_b = rank_b.size();
  std::vector<Item> items;
  auto combined = [&](uint32_t id) {
    const auto ita = wa.find(id);
    const auto itb = wb.find(id);
    const double va = ita == wa.end() ? 0.0 : ita->second;
    const double vb = itb == wb.end() ? 0.0 : itb->second;
    return 0.5 * (va + vb);
  };
  // Sorted visit order: `items` ordering flows into the final floating
  // accumulation below, so it must not depend on hash-iteration order.
  ForEachSorted(rank_a, [&](uint32_t id, size_t pos) {
    const auto itb = rank_b.find(id);
    items.push_back(
        {id, combined(id), pos, itb == rank_b.end() ? tail_b : itb->second});
  });
  ForEachSorted(rank_b, [&](uint32_t id, size_t pos) {
    if (rank_a.count(id) > 0) return;  // already added via list a
    items.push_back({id, combined(id), tail_a, pos});
  });

  // Prefix weight sums in each ranking order.
  auto prefix_for = [&](bool use_a) {
    std::vector<size_t> order(items.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      const size_t px = use_a ? items[x].pos_a : items[x].pos_b;
      const size_t py = use_a ? items[y].pos_a : items[y].pos_b;
      if (px != py) return px < py;
      return items[x].id < items[y].id;
    });
    std::vector<double> prefix(items.size());
    double run = 0.0;
    for (size_t idx : order) {
      run += items[idx].weight;
      prefix[idx] = run;
    }
    return prefix;
  };
  const std::vector<double> pa = prefix_for(true);
  const std::vector<double> pb = prefix_for(false);

  double f = 0.0;
  for (size_t i = 0; i < items.size(); ++i) {
    f += items[i].weight * std::fabs(pa[i] - pb[i]);
  }
  return f;
}

}  // namespace ie
