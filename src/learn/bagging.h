// Bootstrap-aggregated committee of online binary SVMs — the learning core
// of BAgg-IE (paper Section 3.1). The committee holds three classifiers
// (the paper: "additional classifiers would slightly improve performance at
// the expense of substantial overhead"), trained over disjoint splits of
// the labeled documents with balanced labels; the document score is the sum
// of the members' sigmoid-normalized confidences.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "learn/binary_svm.h"
#include "text/sparse_vector.h"

namespace ie {

struct BaggingOptions {
  ElasticNetOptions sgd;
  size_t committee_size = 3;
  /// Per-member cap on retained minority examples used for re-balancing.
  size_t balance_pool_capacity = 1000;
  int initial_epochs = 5;
};

class BaggingCommittee {
 public:
  explicit BaggingCommittee(BaggingOptions options, uint64_t seed = 11);

  /// Committee score: Σ_i sigmoid(w_i·d + b_i). Higher = more useful.
  double Score(const SparseVector& x) const;

  /// Initial training: splits `examples` into disjoint per-member shards,
  /// balances labels within each shard by oversampling the minority class,
  /// then trains each member for `initial_epochs`.
  void TrainInitial(const std::vector<LabeledExample>& examples);

  /// Online update: routes the example to one member (round-robin) and
  /// keeps that member balanced by replaying one stored example of the
  /// opposite label when the running label counts diverge.
  void Observe(const SparseVector& x, bool useful);

  size_t committee_size() const { return members_.size(); }
  const OnlineBinarySvm& member(size_t i) const { return members_[i]; }
  /// Mutable access for scoring snapshots (CommitWeights).
  OnlineBinarySvm& mutable_member(size_t i) { return members_[i]; }

  /// Monotone version of the committee scoring function: the sum of the
  /// members' SGD step counts (each step mutates that member's weights via
  /// Pegasos decay; bias moves only alongside a step).
  uint64_t version() const {
    uint64_t v = 0;
    for (const OnlineBinarySvm& member : members_) v += member.steps();
    return v;
  }

  /// Element-wise mean of the members' dense weights (used by Mod-C for
  /// model-level comparison).
  WeightVector MeanDenseWeights() const;

  size_t NonZeroCount(double eps = 1e-9) const;

  BaggingCommittee(const BaggingCommittee&) = default;
  BaggingCommittee& operator=(const BaggingCommittee&) = default;

 private:
  struct MemberState {
    size_t positives_seen = 0;
    size_t negatives_seen = 0;
    std::vector<SparseVector> positive_pool;
    std::vector<SparseVector> negative_pool;
  };

  void PoolAdd(std::vector<SparseVector>& pool, const SparseVector& x);

  BaggingOptions options_;
  Rng rng_;
  std::vector<OnlineBinarySvm> members_;
  std::vector<MemberState> states_;
  size_t next_member_ = 0;
};

}  // namespace ie
