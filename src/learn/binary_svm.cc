#include "learn/binary_svm.h"

#include <cmath>
#include <numeric>

namespace ie {

double OnlineBinarySvm::Confidence(const SparseVector& x) const {
  return 1.0 / (1.0 + std::exp(-Margin(x)));
}

bool OnlineBinarySvm::Update(const SparseVector& x, int y) {
  // Margin check must include the bias, so we test before the SGD step and
  // force the gradient through Step()'s internal violation check (the score
  // it sees lacks the bias; recheck here and skip when satisfied).
  const double margin = static_cast<double>(y) * Margin(x);
  if (margin >= 1.0) {
    // Still advance the regularization clock: Pegasos decays w every step.
    sgd_.ForcedStep(SparseVector(), 0.0);
    return false;
  }
  sgd_.ForcedStep(x, static_cast<double>(y));
  // Unregularized bias update with the same learning-rate schedule shape.
  const double eta_b =
      0.5 / (1.0 + 0.1 * static_cast<double>(sgd_.steps()));
  bias_ += eta_b * static_cast<double>(y);
  return true;
}

void OnlineBinarySvm::TrainBatch(const std::vector<LabeledExample>& examples,
                                 int epochs, Rng* rng) {
  std::vector<size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (rng != nullptr) rng->Shuffle(order);
    for (size_t idx : order) {
      Update(examples[idx].features, examples[idx].label);
    }
  }
}

}  // namespace ie
