#include "learn/bagging.h"

#include <algorithm>

namespace ie {

BaggingCommittee::BaggingCommittee(BaggingOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  members_.assign(options_.committee_size, OnlineBinarySvm(options_.sgd));
  states_.resize(options_.committee_size);
}

double BaggingCommittee::Score(const SparseVector& x) const {
  double s = 0.0;
  for (const OnlineBinarySvm& member : members_) {
    s += member.Confidence(x);
  }
  return s;
}

void BaggingCommittee::PoolAdd(std::vector<SparseVector>& pool,
                               const SparseVector& x) {
  if (pool.size() < options_.balance_pool_capacity) {
    pool.push_back(x);
  } else {
    pool[rng_.NextBounded(pool.size())] = x;
  }
}

void BaggingCommittee::TrainInitial(
    const std::vector<LabeledExample>& examples) {
  // Disjoint shards: shuffle, then deal round-robin so each member sees a
  // different slice of the sample (and hence a different feature subspace).
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.Shuffle(order);

  std::vector<std::vector<LabeledExample>> shards(members_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    shards[i % members_.size()].push_back(examples[order[i]]);
  }

  for (size_t m = 0; m < members_.size(); ++m) {
    std::vector<LabeledExample>& shard = shards[m];
    // Balance labels by oversampling the minority class.
    std::vector<const LabeledExample*> pos, neg;
    for (const LabeledExample& ex : shard) {
      (ex.label > 0 ? pos : neg).push_back(&ex);
    }
    std::vector<LabeledExample> balanced = shard;
    if (!pos.empty() && !neg.empty()) {
      auto& minority = pos.size() < neg.size() ? pos : neg;
      const size_t deficit =
          std::max(pos.size(), neg.size()) - minority.size();
      for (size_t i = 0; i < deficit; ++i) {
        balanced.push_back(*minority[rng_.NextBounded(minority.size())]);
      }
    }
    members_[m].TrainBatch(balanced, options_.initial_epochs, &rng_);
    // Seed the balance pools for the online phase.
    for (const LabeledExample& ex : shard) {
      auto& state = states_[m];
      if (ex.label > 0) {
        ++state.positives_seen;
        PoolAdd(state.positive_pool, ex.features);
      } else {
        ++state.negatives_seen;
        PoolAdd(state.negative_pool, ex.features);
      }
    }
  }
}

void BaggingCommittee::Observe(const SparseVector& x, bool useful) {
  const size_t m = next_member_;
  next_member_ = (next_member_ + 1) % members_.size();
  OnlineBinarySvm& member = members_[m];
  MemberState& state = states_[m];

  member.Update(x, useful ? 1 : -1);
  if (useful) {
    ++state.positives_seen;
    PoolAdd(state.positive_pool, x);
  } else {
    ++state.negatives_seen;
    PoolAdd(state.negative_pool, x);
  }

  // Keep the member's label exposure balanced: replay one stored example of
  // the under-represented class when the counts diverge.
  if (state.positives_seen + state.negatives_seen < 10) return;
  const bool pos_minority = state.positives_seen < state.negatives_seen;
  auto& pool = pos_minority ? state.positive_pool : state.negative_pool;
  if (pool.empty()) return;
  const double ratio =
      static_cast<double>(
          std::min(state.positives_seen, state.negatives_seen)) /
      static_cast<double>(
          std::max(state.positives_seen, state.negatives_seen));
  if (ratio < 0.8) {
    const SparseVector& replay = pool[rng_.NextBounded(pool.size())];
    member.Update(replay, pos_minority ? 1 : -1);
    if (pos_minority) {
      ++state.positives_seen;
    } else {
      ++state.negatives_seen;
    }
  }
}

WeightVector BaggingCommittee::MeanDenseWeights() const {
  WeightVector mean;
  for (const OnlineBinarySvm& member : members_) {
    const WeightVector w = member.DenseWeights();
    for (uint32_t id = 0; id < w.dimension(); ++id) {
      const double v = w.Get(id);
      if (v != 0.0) mean.Add(id, v / static_cast<double>(members_.size()));
    }
  }
  return mean;
}

size_t BaggingCommittee::NonZeroCount(double eps) const {
  size_t n = 0;
  for (const OnlineBinarySvm& member : members_) {
    n += member.NonZeroCount(eps);
  }
  return n;
}

}  // namespace ie
