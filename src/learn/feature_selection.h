// Helpers for inspecting learned models: top-K influential features (used
// by the Top-K update detector and by search-interface query refresh) and
// the generalized Spearman's Footrule distance between weighted feature
// rankings (Kumar & Vassilvitskii, WWW'10), which Top-K thresholds on.
#pragma once

#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"

namespace ie {

struct WeightedFeature {
  uint32_t id = 0;
  /// Importance = |model weight| (sign-insensitive influence).
  double weight = 0.0;
};

/// K features with the largest |weight| in `w`, sorted by descending
/// weight (ties by id). Fewer than K are returned when w is sparser.
std::vector<WeightedFeature> TopKFeatures(const WeightVector& w, size_t k);

/// Generalized (element-weighted) Spearman's Footrule between two weighted
/// feature rankings:
///   F = Σ_i w_i · | Σ_{j: rank_a(j) ≤ rank_a(i)} w_j
///                 - Σ_{j: rank_b(j) ≤ rank_b(i)} w_j |
/// computed over the union of the two lists; an element absent from one
/// list is placed after its tail with weight taken from the list that has
/// it. Weights are normalized to sum to 1 per list before comparison, so
/// the distance is scale-free.
double GeneralizedFootrule(const std::vector<WeightedFeature>& a,
                           const std::vector<WeightedFeature>& b);

}  // namespace ie
