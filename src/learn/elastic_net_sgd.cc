#include "learn/elastic_net_sgd.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"

namespace ie {

namespace {
constexpr double kMinL2 = 1e-6;
}

ElasticNetSgd::ElasticNetSgd(ElasticNetOptions options)
    : options_(options) {
  cum_log_decay_.push_back(0.0);
  cum_l1_.push_back(0.0);
}

double ElasticNetSgd::L2Eff() const {
  return std::max(options_.lambda_all * options_.lambda_l2_share, kMinL2);
}

double ElasticNetSgd::L1Eff() const {
  return options_.lambda_all * (1.0 - options_.lambda_l2_share);
}

double ElasticNetSgd::Eta(size_t t) const {
  const double effective =
      static_cast<double>(std::min(t, options_.step_clamp));
  return 1.0 / (L2Eff() * (effective + options_.step_offset));
}

void ElasticNetSgd::EnsureFeature(uint32_t id) {
  if (id >= values_.size()) {
    values_.resize(id + 1, 0.0);
    last_step_.resize(id + 1, static_cast<uint32_t>(steps_));
    touched_slot_.resize(id + 1, 0);
  }
}

double ElasticNetSgd::CurrentWeight(uint32_t id) const {
  if (id >= values_.size()) return 0.0;
  double v = values_[id];
  if (v == 0.0) return 0.0;
  const uint32_t u = last_step_[id];
  v *= std::exp(cum_log_decay_[steps_] - cum_log_decay_[u]);
  const double pending_l1 = cum_l1_[steps_] - cum_l1_[u];
  if (v > pending_l1) return v - pending_l1;
  if (v < -pending_l1) return v + pending_l1;
  return 0.0;
}

void ElasticNetSgd::Refresh(uint32_t id) {
  EnsureFeature(id);
  values_[id] = CurrentWeight(id);
  last_step_[id] = static_cast<uint32_t>(steps_);
}

double ElasticNetSgd::Score(const SparseVector& x) const {
  const uint32_t* ids = x.ids();
  const float* vals = x.values();
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    s += CurrentWeight(ids[i]) * static_cast<double>(vals[i]);
  }
  return s;
}

void ElasticNetSgd::BeginStep() {
  IE_METRIC_COUNT("learn.pegasos_steps");
  ++steps_;
  const double eta = Eta(steps_);
  const double decay = 1.0 - eta * L2Eff();
  cum_log_decay_.push_back(cum_log_decay_.back() + std::log(decay));
  cum_l1_.push_back(cum_l1_.back() + eta * L1Eff());
}

void ElasticNetSgd::ApplyGradient(const SparseVector& x, double factor) {
  const uint32_t* ids = x.ids();
  const float* vals = x.values();
  for (size_t i = 0; i < x.size(); ++i) {
    const uint32_t id = ids[i];
    EnsureFeature(id);
    if (touched_slot_[id] == 0) {
      // First touch since the last commit: values_[id] still holds the
      // weight exactly as CommitAll materialized it.
      touched_ids_.push_back(id);
      touched_old_.push_back(values_[id]);
      touched_slot_[id] = static_cast<uint32_t>(touched_ids_.size());
    }
    Refresh(id);
    values_[id] += factor * static_cast<double>(vals[i]);
  }
}

bool ElasticNetSgd::Step(const SparseVector& x, int y) {
  const double margin = static_cast<double>(y) * Score(x);
  BeginStep();
  if (margin >= 1.0) return false;
  IE_METRIC_COUNT("learn.margin_violations");
  ApplyGradient(x, Eta(steps_) * static_cast<double>(y));
  return true;
}

void ElasticNetSgd::ForcedStep(const SparseVector& x,
                               double gradient_factor) {
  BeginStep();
  if (!x.empty() && gradient_factor != 0.0) {
    ApplyGradient(x, Eta(steps_) * gradient_factor);
  }
}

bool ElasticNetSgd::PairStep(const SparseVector& pos,
                             const SparseVector& neg) {
  const double margin = Score(pos) - Score(neg);
  BeginStep();
  if (margin >= 1.0) return false;
  IE_METRIC_COUNT("learn.margin_violations");
  const double eta = Eta(steps_);
  ApplyGradient(pos, eta);
  ApplyGradient(neg, -eta);
  return true;
}

double ElasticNetSgd::DecayScaleSince(size_t step) const {
  return std::exp(cum_log_decay_[steps_] - cum_log_decay_[step]);
}

double ElasticNetSgd::L1PenaltySince(size_t step) const {
  return cum_l1_[steps_] - cum_l1_[step];
}

FactoredWeightDelta ElasticNetSgd::CommitAll() {
  IE_TRACE_SCOPE("learn.commit");
  FactoredWeightDelta delta;
  delta.scale = DecayScaleSince(last_commit_step_);
  delta.penalty = L1PenaltySince(last_commit_step_);
  const double k = delta.scale;
  const double p = delta.penalty;
  size_t zero_clamps = 0;
  auto sign = [](double v) { return v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0); };
  for (uint32_t id = 0; id < values_.size(); ++id) {
    const bool touched = touched_slot_[id] != 0;
    const double w1 =
        touched ? touched_old_[touched_slot_[id] - 1] : values_[id];
    const double w2 = CurrentWeight(id);
    values_[id] = w2;
    last_step_[id] = static_cast<uint32_t>(steps_);
    if (!touched) {
      if (w1 == 0.0) continue;  // zero weights stay exactly zero
      // Untouched and not clamped through zero: the uniform affine map is
      // exact (same scaled value CurrentWeight just computed), so no
      // correction entry is needed. The comparison mirrors CurrentWeight's
      // clamp test bit-for-bit.
      const double scaled = w1 * k;
      if (scaled > p || scaled < -p) continue;
    }
    const double s1 = sign(w1);
    const double s2 = sign(w2);
    const double affine = w1 == 0.0 ? 0.0 : k * w1 - p * s1;
    const double correction = w2 - affine;
    if (correction != 0.0) delta.margin_correction.Add(id, correction);
    if (s1 != s2) {
      delta.sign_correction.Add(id, s2 - s1);
      if (s2 == 0.0) ++zero_clamps;  // lazy L1 drove the weight to exact 0
    }
  }
  IE_METRIC_COUNT_N("learn.l1_zero_clamps", zero_clamps);
  std::fill(touched_slot_.begin(), touched_slot_.end(), 0);
  touched_ids_.clear();
  touched_old_.clear();
  last_commit_step_ = steps_;
  return delta;
}

WeightVector ElasticNetSgd::DenseWeights() const {
  WeightVector w(values_.size());
  for (uint32_t id = 0; id < values_.size(); ++id) {
    const double v = CurrentWeight(id);
    if (v != 0.0) w.Set(id, v);
  }
  return w;
}

size_t ElasticNetSgd::NonZeroCount(double eps) const {
  size_t n = 0;
  for (uint32_t id = 0; id < values_.size(); ++id) {
    if (std::fabs(CurrentWeight(id)) > eps) ++n;
  }
  return n;
}

}  // namespace ie
