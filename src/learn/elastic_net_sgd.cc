#include "learn/elastic_net_sgd.h"

#include <algorithm>
#include <cmath>

namespace ie {

namespace {
constexpr double kMinL2 = 1e-6;
}

ElasticNetSgd::ElasticNetSgd(ElasticNetOptions options)
    : options_(options) {
  cum_log_decay_.push_back(0.0);
  cum_l1_.push_back(0.0);
}

double ElasticNetSgd::L2Eff() const {
  return std::max(options_.lambda_all * options_.lambda_l2_share, kMinL2);
}

double ElasticNetSgd::L1Eff() const {
  return options_.lambda_all * (1.0 - options_.lambda_l2_share);
}

double ElasticNetSgd::Eta(size_t t) const {
  const double effective =
      static_cast<double>(std::min(t, options_.step_clamp));
  return 1.0 / (L2Eff() * (effective + options_.step_offset));
}

void ElasticNetSgd::EnsureFeature(uint32_t id) {
  if (id >= values_.size()) {
    values_.resize(id + 1, 0.0);
    last_step_.resize(id + 1, static_cast<uint32_t>(steps_));
  }
}

double ElasticNetSgd::CurrentWeight(uint32_t id) const {
  if (id >= values_.size()) return 0.0;
  double v = values_[id];
  if (v == 0.0) return 0.0;
  const uint32_t u = last_step_[id];
  v *= std::exp(cum_log_decay_[steps_] - cum_log_decay_[u]);
  const double pending_l1 = cum_l1_[steps_] - cum_l1_[u];
  if (v > pending_l1) return v - pending_l1;
  if (v < -pending_l1) return v + pending_l1;
  return 0.0;
}

void ElasticNetSgd::Refresh(uint32_t id) {
  EnsureFeature(id);
  values_[id] = CurrentWeight(id);
  last_step_[id] = static_cast<uint32_t>(steps_);
}

double ElasticNetSgd::Score(const SparseVector& x) const {
  double s = 0.0;
  for (const auto& [id, value] : x) {
    s += CurrentWeight(id) * static_cast<double>(value);
  }
  return s;
}

void ElasticNetSgd::BeginStep() {
  ++steps_;
  const double eta = Eta(steps_);
  const double decay = 1.0 - eta * L2Eff();
  cum_log_decay_.push_back(cum_log_decay_.back() + std::log(decay));
  cum_l1_.push_back(cum_l1_.back() + eta * L1Eff());
}

void ElasticNetSgd::ApplyGradient(const SparseVector& x, double factor) {
  for (const auto& [id, value] : x) {
    Refresh(id);
    values_[id] += factor * static_cast<double>(value);
  }
}

bool ElasticNetSgd::Step(const SparseVector& x, int y) {
  const double margin = static_cast<double>(y) * Score(x);
  BeginStep();
  if (margin >= 1.0) return false;
  ApplyGradient(x, Eta(steps_) * static_cast<double>(y));
  return true;
}

void ElasticNetSgd::ForcedStep(const SparseVector& x,
                               double gradient_factor) {
  BeginStep();
  if (!x.empty() && gradient_factor != 0.0) {
    ApplyGradient(x, Eta(steps_) * gradient_factor);
  }
}

bool ElasticNetSgd::PairStep(const SparseVector& pos,
                             const SparseVector& neg) {
  const double margin = Score(pos) - Score(neg);
  BeginStep();
  if (margin >= 1.0) return false;
  const double eta = Eta(steps_);
  ApplyGradient(pos, eta);
  ApplyGradient(neg, -eta);
  return true;
}

WeightVector ElasticNetSgd::DenseWeights() const {
  WeightVector w(values_.size());
  for (uint32_t id = 0; id < values_.size(); ++id) {
    const double v = CurrentWeight(id);
    if (v != 0.0) w.Set(id, v);
  }
  return w;
}

size_t ElasticNetSgd::NonZeroCount(double eps) const {
  size_t n = 0;
  for (uint32_t id = 0; id < values_.size(); ++id) {
    if (std::fabs(CurrentWeight(id)) > eps) ++n;
  }
  return n;
}

}  // namespace ie
