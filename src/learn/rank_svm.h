// Online RankSVM trained with Stochastic Pairwise Descent (Sculley, NIPS'09
// workshop) and elastic-net in-training feature selection — the learning
// core of RSVM-IE. Each training step samples one useful and one useless
// document from reservoir pools of observed documents and takes a pairwise
// hinge step enforcing score(useful) > score(useless).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "learn/elastic_net_sgd.h"
#include "text/sparse_vector.h"

namespace ie {

struct RankSvmOptions {
  ElasticNetOptions sgd;
  /// Reservoir capacity per class; pairs are sampled from these pools.
  size_t pool_capacity = 2000;
  /// Pairwise steps taken per observed document.
  int steps_per_observation = 4;
};

class OnlineRankSvm {
 public:
  explicit OnlineRankSvm(RankSvmOptions options, uint64_t seed = 7)
      : options_(options), sgd_(options.sgd), rng_(seed) {}

  /// Ranking score s(d) = w·d.
  double Score(const SparseVector& x) const { return sgd_.Score(x); }

  /// Observes a labeled document: stores it in the matching reservoir pool
  /// and takes `steps_per_observation` sampled pairwise steps.
  void Observe(const SparseVector& x, bool useful);

  /// Takes `n` extra pairwise steps from the pools (used for the initial
  /// sample-training phase). No-op until both pools are non-empty.
  void TrainPairs(size_t n);

  size_t steps() const { return sgd_.steps(); }

  /// Monotone version of the scoring function. Every SGD step mutates the
  /// weights (Pegasos decay applies even on non-violating steps), and
  /// nothing else does, so the step count versions w exactly; the
  /// incremental re-rank engine uses it to skip no-op re-snapshots.
  uint64_t version() const { return sgd_.steps(); }

  size_t useful_pool_size() const { return useful_.size(); }
  size_t useless_pool_size() const { return useless_.size(); }
  WeightVector DenseWeights() const { return sgd_.DenseWeights(); }

  /// Commits pending regularization and returns the factored weight change
  /// since the previous commit (see ElasticNetSgd::CommitAll).
  FactoredWeightDelta CommitWeights() { return sgd_.CommitAll(); }
  size_t NonZeroCount(double eps = 1e-9) const {
    return sgd_.NonZeroCount(eps);
  }

  /// Mod-C clones the learner to train a shadow copy on recent documents.
  OnlineRankSvm(const OnlineRankSvm&) = default;
  OnlineRankSvm& operator=(const OnlineRankSvm&) = default;

 private:
  void ReservoirAdd(std::vector<SparseVector>& pool, size_t& seen,
                    const SparseVector& x);

  RankSvmOptions options_;
  ElasticNetSgd sgd_;
  Rng rng_;
  std::vector<SparseVector> useful_;
  std::vector<SparseVector> useless_;
  size_t useful_seen_ = 0;
  size_t useless_seen_ = 0;
};

}  // namespace ie
