// Online SVM-based binary classifier (Joachims-style text SVM, trained
// with Pegasos steps and elastic-net in-training feature selection). One
// instance of this class is one member of the BAgg-IE committee; it is also
// the side classifier that the Top-K update detector maintains.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "learn/elastic_net_sgd.h"
#include "text/sparse_vector.h"

namespace ie {

struct LabeledExample {
  SparseVector features;
  /// +1 = useful document, -1 = useless.
  int label = 1;
};

class OnlineBinarySvm {
 public:
  explicit OnlineBinarySvm(ElasticNetOptions options = {})
      : sgd_(options) {}

  /// Raw margin score w·x + b.
  double Margin(const SparseVector& x) const { return sgd_.Score(x) + bias_; }

  /// Normalized confidence s(d) = 1 / (1 + e^-(w·d + b)) — the committee
  /// aggregation score in BAgg-IE.
  double Confidence(const SparseVector& x) const;

  bool Predict(const SparseVector& x) const { return Margin(x) >= 0.0; }

  /// One online update; returns true when the example violated the margin.
  bool Update(const SparseVector& x, int y);

  /// Multi-epoch training over a batch (shuffled each epoch).
  void TrainBatch(const std::vector<LabeledExample>& examples, int epochs,
                  Rng* rng);

  size_t steps() const { return sgd_.steps(); }
  double bias() const { return bias_; }
  WeightVector DenseWeights() const { return sgd_.DenseWeights(); }

  /// Commits pending regularization and returns the factored weight change
  /// since the previous commit (see ElasticNetSgd::CommitAll).
  FactoredWeightDelta CommitWeights() { return sgd_.CommitAll(); }
  size_t NonZeroCount(double eps = 1e-9) const {
    return sgd_.NonZeroCount(eps);
  }

 private:
  ElasticNetSgd sgd_;
  double bias_ = 0.0;
};

}  // namespace ie
