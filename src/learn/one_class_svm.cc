#include "learn/one_class_svm.h"

#include <algorithm>
#include <cmath>

namespace ie {

double OneClassSvm::Kernel(const SparseVector& a, const SparseVector& b)
    const {
  const double d2 =
      a.L2NormSquared() + b.L2NormSquared() - 2.0 * Dot(a, b);
  return std::exp(-options_.gamma * std::max(0.0, d2));
}

double OneClassSvm::Decision(const SparseVector& x) const {
  double f = 0.0;
  for (size_t i = 0; i < support_.size(); ++i) {
    f += alphas_[i] * Kernel(support_[i], x);
  }
  return f;
}

void OneClassSvm::Evict() {
  if (support_.size() <= options_.budget) return;
  size_t victim = 0;
  for (size_t i = 1; i < alphas_.size(); ++i) {
    if (std::fabs(alphas_[i]) < std::fabs(alphas_[victim])) victim = i;
  }
  support_.erase(support_.begin() + static_cast<long>(victim));
  alphas_.erase(alphas_.begin() + static_cast<long>(victim));
}

void OneClassSvm::Observe(const SparseVector& x) {
  ++steps_;
  const double eta =
      1.0 / (options_.lambda * (static_cast<double>(steps_) + 2.0));
  const double f = Decision(x);
  // Pegasos decay of existing coefficients.
  const double decay = 1.0 - eta * options_.lambda;
  for (double& alpha : alphas_) alpha *= decay;
  // Hinge on f(x) >= 1: inside the region already => no new SV.
  if (f < 1.0) {
    support_.push_back(x);
    alphas_.push_back(eta);
    Evict();
  }
}

}  // namespace ie
