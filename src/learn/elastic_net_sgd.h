// Online elastic-net-regularized SGD with Pegasos-style steps — the shared
// optimization core of BAgg-IE and RSVM-IE (paper Section 3.1):
//
//   argmin_w  λAll(λL2/2 ||w||² + (1-λL2) ||w||₁) + Σ hinge-loss
//
// The ℓ2 part uses Pegasos decay steps (Shalev-Shwartz et al., ICML'07);
// the ℓ1 part uses lazily applied cumulative soft-thresholding in the style
// of Tsuruoka et al. (ACL'09), which the paper cites for ℓ1 SGD. Both are
// applied lazily per feature, so a gradient step costs O(nnz(x)) even with
// hundreds of thousands of features — this is what makes continuous online
// model adaptation affordable (the paper's efficiency requirement).
#pragma once

#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"

namespace ie {

struct ElasticNetOptions {
  /// λAll: weight of the whole regularizer vs the loss.
  double lambda_all = 0.1;
  /// λL2 ∈ [0,1]: share of ℓ2 within the regularizer; 1-λL2 goes to ℓ1.
  double lambda_l2_share = 0.99;
  /// Learning-rate offset: η_t = 1 / (λ2eff · (t + offset)); keeps the
  /// first decay factors away from zero.
  double step_offset = 2.0;
  /// Clamp on the effective step count in the learning-rate schedule:
  /// η_t = 1 / (λ2eff · (min(t, clamp) + offset)). Pegasos's 1/(λt) rate is
  /// right for converging on a fixed sample, but it starves *online
  /// adaptation*: after thousands of initial steps, new documents cannot
  /// move the model (and Mod-C's shadow model cannot drift, so updates
  /// never fire). The clamp floors the rate, giving bounded exponential
  /// forgetting — the standard choice for tracking drift.
  size_t step_clamp = SIZE_MAX;
};

/// Factored change of the weight vector between two CommitAll() calls.
/// Every step applies the same decay factor and the same cumulative ℓ1
/// penalty to every weight, so between commits an *untouched* feature moves
/// by the uniform affine map
///
///   w' = scale·w − penalty·sign(w)        (unless shrunk through zero).
///
/// Only gradient-touched features and features clamped to zero deviate from
/// that map; they are listed as sparse corrections:
///   margin_correction[f] = w'_f − (scale·w_f − penalty·sign(w_f))
///   sign_correction[f]   = sign(w'_f) − sign(w_f)
/// A score cache holding m = w·x and z = Σ_f sign(w_f)·x_f can therefore be
/// advanced with two scalar multiplies per document plus sparse correction
/// dot products — the basis of the incremental re-rank engine.
struct FactoredWeightDelta {
  double scale = 1.0;
  double penalty = 0.0;
  WeightDelta margin_correction;
  WeightDelta sign_correction;

  /// True when the delta provably leaves every weight bit-unchanged.
  bool identity() const {
    return scale == 1.0 && penalty == 0.0 && margin_correction.empty() &&
           sign_correction.empty();
  }
};

class ElasticNetSgd {
 public:
  explicit ElasticNetSgd(ElasticNetOptions options = {});

  /// Current margin score w·x (no bias; callers track bias separately).
  double Score(const SparseVector& x) const;

  /// One hinge-loss step on labeled example (x, y ∈ {-1,+1}).
  /// Returns true when the margin was violated (gradient applied).
  bool Step(const SparseVector& x, int y);

  /// One pairwise hinge step on w·(pos - neg) ≥ 1 (RankSVM /
  /// stochastic pairwise descent). Returns true on margin violation.
  bool PairStep(const SparseVector& pos, const SparseVector& neg);

  /// Advances the regularization clock and applies the hinge gradient
  /// unconditionally (callers that evaluate the margin themselves, e.g.
  /// with a bias term, use this). Pass an empty x for a decay-only step.
  void ForcedStep(const SparseVector& x, double gradient_factor);

  /// Number of SGD steps taken so far.
  size_t steps() const { return steps_; }

  /// Materializes all pending lazy regularization and returns a dense
  /// snapshot of the weights. O(dimension).
  WeightVector DenseWeights() const;

  /// Commits every feature's pending regularization in place (weight values
  /// are bit-identical to what CurrentWeight would report) and returns the
  /// factored change since the previous CommitAll(). O(dimension), but the
  /// returned corrections cover only gradient-touched and zero-clamped
  /// features — typically a small fraction of the model support.
  FactoredWeightDelta CommitAll();

  /// Uniform decay factor accumulated over steps (step, steps_].
  double DecayScaleSince(size_t step) const;
  /// Cumulative ℓ1 penalty accumulated over steps (step, steps_].
  double L1PenaltySince(size_t step) const;

  /// Count of features with |w| above eps, after materialization.
  size_t NonZeroCount(double eps = 1e-9) const;

  const ElasticNetOptions& options() const { return options_; }

  /// Copyable: Mod-C clones the model to train a shadow copy.
  ElasticNetSgd(const ElasticNetSgd&) = default;
  ElasticNetSgd& operator=(const ElasticNetSgd&) = default;

 private:
  /// Effective ℓ2 strength (floored to keep η finite for λL2 = 0).
  double L2Eff() const;
  double L1Eff() const;
  double Eta(size_t t) const;

  /// Commits pending decay + ℓ1 for feature id up to the current step.
  void Refresh(uint32_t id);
  /// Current (virtual) value of feature id without mutating state.
  double CurrentWeight(uint32_t id) const;
  void EnsureFeature(uint32_t id);
  /// Starts step t = steps_+1: extends the cumulative decay/penalty tables.
  void BeginStep();
  void ApplyGradient(const SparseVector& x, double factor);

  ElasticNetOptions options_;
  size_t steps_ = 0;

  std::vector<double> values_;      // committed weights (as of last touch)
  std::vector<uint32_t> last_step_; // step each feature was last committed at
  // cum_log_decay_[t] = Σ_{τ=1..t} ln(1 - η_τ λ2eff);  [0] = 0.
  std::vector<double> cum_log_decay_;
  // cum_l1_[t] = Σ_{τ=1..t} η_τ λ1eff;  [0] = 0.
  std::vector<double> cum_l1_;

  // Gradient touches since the last CommitAll: touched_slot_[id] is 1 +
  // index into touched_ids_/touched_old_, or 0 when untouched.
  // touched_old_ records the weight as of the last commit, so CommitAll can
  // emit the exact correction without keeping a full pre-commit copy.
  size_t last_commit_step_ = 0;
  std::vector<uint32_t> touched_slot_;
  std::vector<uint32_t> touched_ids_;
  std::vector<double> touched_old_;
};

}  // namespace ie
