// Learns CQS query lists from an auxiliary labeled collection — the
// substitute for the paper's TREC collections 1-5 ("we learned 5 lists of
// queries using sets of 10,000 random documents (5,000 useful and 5,000
// useless) ... by applying the SVM-based method in QXtract").
#pragma once

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "extract/extraction_system.h"
#include "text/featurizer.h"

namespace ie {

struct CqsLearningOptions {
  size_t num_lists = 5;
  /// Per-class document budget per list (paper: 5000; sparse relations
  /// yield fewer useful documents — all available are used).
  size_t docs_per_class = 5000;
  size_t terms_per_list = 20;
  uint64_t seed = 61;
};

/// Learns query lists for one relation from `aux` (labeled by `outcomes`).
std::vector<std::vector<std::string>> LearnCqsQueryLists(
    const Corpus& aux, const ExtractionOutcomes& outcomes,
    const Featurizer& featurizer, const CqsLearningOptions& options);

}  // namespace ie
