#include "sampling/sampler.h"

#include <unordered_set>

namespace ie {

std::vector<DocId> SrsSampler::Sample(const std::vector<DocId>& pool,
                                      size_t n, Rng* rng) {
  const size_t k = std::min(n, pool.size());
  std::vector<DocId> out;
  out.reserve(k);
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), k)) {
    out.push_back(pool[idx]);
  }
  return out;
}

CqsSampler::CqsSampler(std::vector<std::string> queries,
                       const SearchIndex* index, const Vocabulary* vocab,
                       size_t batch_per_query, size_t max_retrieval_depth)
    : queries_(std::move(queries)),
      index_(index),
      vocab_(vocab),
      batch_per_query_(batch_per_query),
      max_retrieval_depth_(max_retrieval_depth) {}

std::vector<DocId> CqsSampler::Sample(const std::vector<DocId>& pool,
                                      size_t n, Rng* rng) {
  const std::unordered_set<DocId> pool_set(pool.begin(), pool.end());
  std::unordered_set<DocId> seen;
  std::vector<DocId> out;

  // Pre-fetch each query's ranked hits once; cursors page through them.
  std::vector<std::vector<SearchHit>> hits(queries_.size());
  std::vector<size_t> cursor(queries_.size(), 0);
  for (size_t q = 0; q < queries_.size(); ++q) {
    hits[q] = index_->SearchText(queries_[q], *vocab_,
                                 max_retrieval_depth_);
  }

  bool progress = true;
  while (out.size() < n && progress && !queries_.empty()) {
    progress = false;
    for (size_t q = 0; q < queries_.size() && out.size() < n; ++q) {
      size_t taken = 0;
      while (taken < batch_per_query_ && cursor[q] < hits[q].size() &&
             out.size() < n) {
        const DocId doc = hits[q][cursor[q]++].doc;
        ++taken;
        progress = true;
        if (pool_set.count(doc) == 0) continue;
        if (!seen.insert(doc).second) continue;
        out.push_back(doc);
      }
    }
  }

  // Random fill when the queries cannot satisfy the budget.
  if (out.size() < n) {
    std::vector<DocId> rest;
    for (DocId doc : pool) {
      if (seen.count(doc) == 0) rest.push_back(doc);
    }
    rng->Shuffle(rest);
    for (DocId doc : rest) {
      if (out.size() >= n) break;
      out.push_back(doc);
    }
  }
  return out;
}

}  // namespace ie
