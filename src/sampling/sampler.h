// Initial-sample collection strategies (paper Section 4):
//   SRS — simple random sampling from the pool (full-access only);
//   CQS — cyclic query sampling: iterate over a learned query list,
//         collecting the unseen documents from the next K hits of each
//         query until the sample budget is reached.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/search_index.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Picks up to `n` distinct documents from `pool`.
  virtual std::vector<DocId> Sample(const std::vector<DocId>& pool, size_t n,
                                    Rng* rng) = 0;

  virtual std::string name() const = 0;
};

class SrsSampler : public Sampler {
 public:
  std::vector<DocId> Sample(const std::vector<DocId>& pool, size_t n,
                            Rng* rng) override;
  std::string name() const override { return "SRS"; }
};

class CqsSampler : public Sampler {
 public:
  /// `queries` is one learned query list (paper: learned with the QXtract
  /// SVM method on a separate collection); `batch_per_query` is the K of
  /// "the next K documents that each query retrieves".
  CqsSampler(std::vector<std::string> queries, const SearchIndex* index,
             const Vocabulary* vocab, size_t batch_per_query = 10,
             size_t max_retrieval_depth = 2000);

  /// Cycles over the query list; when the queries are exhausted before the
  /// budget is met, falls back to random fill from the pool.
  std::vector<DocId> Sample(const std::vector<DocId>& pool, size_t n,
                            Rng* rng) override;
  std::string name() const override { return "CQS"; }

 private:
  std::vector<std::string> queries_;
  const SearchIndex* index_;
  const Vocabulary* vocab_;
  size_t batch_per_query_;
  size_t max_retrieval_depth_;
};

}  // namespace ie
