#include "sampling/cqs_learning.h"

#include <algorithm>

#include "common/rng.h"
#include "ranking/query_learning.h"

namespace ie {

std::vector<std::vector<std::string>> LearnCqsQueryLists(
    const Corpus& aux, const ExtractionOutcomes& outcomes,
    const Featurizer& featurizer, const CqsLearningOptions& options) {
  std::vector<DocId> useful, useless;
  for (DocId id = 0; id < aux.size(); ++id) {
    (outcomes.useful(id) ? useful : useless).push_back(id);
  }

  Rng rng(options.seed);
  std::vector<std::vector<std::string>> lists;
  for (size_t list = 0; list < options.num_lists; ++list) {
    rng.Shuffle(useful);
    rng.Shuffle(useless);
    const size_t n_pos = std::min(options.docs_per_class, useful.size());
    // Keep classes of comparable size even when useful docs are scarce
    // (sparse relations yield far fewer than docs_per_class positives).
    const size_t n_neg = std::min(
        useless.size(),
        std::min(options.docs_per_class,
                 std::max<size_t>(4 * n_pos, 64)));

    std::vector<LabeledExample> sample;
    sample.reserve(n_pos + n_neg);
    for (size_t i = 0; i < n_pos; ++i) {
      sample.push_back({featurizer.Featurize(aux.doc(useful[i])), 1});
    }
    for (size_t i = 0; i < n_neg; ++i) {
      sample.push_back({featurizer.Featurize(aux.doc(useless[i])), -1});
    }
    lists.push_back(LearnQueries(sample, *featurizer.vocab(),
                                 QueryMethod::kSvmWeights,
                                 options.terms_per_list,
                                 options.seed + 100 + list));
  }
  return lists;
}

}  // namespace ie
