// Unified metrics registry (DESIGN.md §10). One process-wide namespace of
// named instruments that every layer of the adaptive pipeline reports into:
//
//   Counter    monotonic event count (atomic add; relaxed)
//   Gauge      last-value measurement (atomic store; relaxed)
//   Histogram  fixed-bucket latency/value distribution; recording goes to a
//              lock-free per-thread shard (single-writer, atomic
//              publication) and shards are merged on Snapshot() into bucket
//              counts plus a RunningStats summary (common/stats.h)
//
// Instruments are created on first use and live for the registry's
// lifetime, so hot paths cache the reference in a function-local static —
// that is exactly what the IE_METRIC_* macros below do. The macros compile
// to nothing when IE_OBSERVABILITY is 0 (CMake -DIE_ENABLE_OBSERVABILITY=OFF),
// making the instrumentation free in stripped builds.
//
// Snapshots are plain data: name-sorted counter/gauge values and merged
// histograms, with JSON export and a counter/bucket-exact DeltaSince() so a
// pipeline run can report "what this run added" against the process-wide
// registry (PipelineResult::metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/sync.h"

#ifndef IE_OBSERVABILITY
#define IE_OBSERVABILITY 1
#endif

namespace ie {

/// Monotonic event counter. All operations are relaxed atomics: counts are
/// exact once the writing threads quiesce (e.g. at snapshot points after a
/// join), and never torn.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (detector distances/angles, queue depths, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram: bucket counts (counts[i] covers values
/// <= bounds[i]; the final slot is the overflow bucket) plus a RunningStats
/// summary reconstituted from the shard moments.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;    // ascending upper bounds
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  RunningStats summary;

  uint64_t TotalCount() const { return summary.count(); }

  /// Quantile estimate from the (shard-merged) bucket counts. The target
  /// rank is the nearest-rank ceil(q·N); the estimate interpolates inside
  /// the bucket holding that rank — log-linearly when the bucket's bounds
  /// are both positive (these histograms are log-bucketed, so constant
  /// relative error), linearly otherwise — and is clamped to the exact
  /// [min, max] from the summary. The result always lands in the same
  /// bucket as the exact sorted sample of that rank (tests compare the two
  /// against full sorts). Returns 0 when empty; q is clamped to [0, 1].
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }
};

/// Fixed-bucket histogram with lock-free per-thread shards. Each recording
/// thread owns one shard (registered once under a mutex, then cached
/// thread-locally), so Observe() is a handful of relaxed atomic
/// read-modify-writes with no contention; Snapshot() merges all shards.
/// A snapshot taken while recorders are mid-update may see a shard's
/// moments slightly out of sync with each other (never torn, never UB);
/// once writers quiesce the merged result is exact.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; empty = DefaultLatencyBounds().
  explicit Histogram(std::vector<double> bounds);
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged shard view (without a name; the registry fills that in).
  HistogramSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  struct Shard;
  Shard* ThisThreadShard() EXCLUDES(mu_);

  const uint64_t id_;  // process-unique; keys the thread-local shard cache
  std::vector<double> bounds_;
  mutable Mutex mu_;  // guards shards_ registration only
  std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mu_);
};

/// Exponential 1-2-5 upper bounds from 1µs to 10s — the default scale for
/// the latency histograms the pipeline records (seconds).
const std::vector<double>& DefaultLatencyBounds();

/// Point-in-time view of a registry (or a per-run delta of one). Plain
/// copyable data; lookups are O(log n) binary searches over the
/// name-sorted vectors.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;      // name-sorted
  std::vector<HistogramSnapshot> histograms;               // name-sorted

  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const;
  double GaugeOr(std::string_view name, double fallback = 0.0) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// Inserts or overwrites a counter, keeping the name ordering (the
  /// pipeline stamps exact per-run values from its own stats structs).
  void SetCounter(std::string_view name, uint64_t value);
  void SetGauge(std::string_view name, double value);

  /// What happened between `start` and this snapshot, both taken from the
  /// same registry: counters and histogram bucket counts subtract exactly;
  /// histogram summaries invert RunningStats::Merge (count/mean/m2 exact up
  /// to float reassociation, min/max taken from the end snapshot since
  /// extrema are not subtractable); gauges keep their end value.
  /// Instruments absent from `start` are passed through whole.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& start) const;

  /// Appends pretty-printed JSON:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  ///    mean, stddev, min, max, p50, p90, p99,
  ///    buckets: [{le, count}, ...]}}}
  /// `indent` is the number of leading spaces on the opening brace's line.
  void AppendJson(std::string* out, int indent = 0) const;
  std::string ToJson(int indent = 0) const;

  /// Appends Prometheus text exposition format (one `# TYPE` comment per
  /// metric, then its samples): counters and gauges as single samples,
  /// histograms as cumulative `_bucket{le=...}` series plus `_sum` /
  /// `_count`, and `_p50`/`_p90`/`_p99` gauges from Quantile(). Metric
  /// names are prefixed `ie_` with non-[a-zA-Z0-9_] characters mapped to
  /// '_'. Validate with `tools/report.py --validate-prom`. Implemented in
  /// metrics_export.cc (export-path float formatting discipline).
  void AppendPrometheus(std::string* out) const;
  std::string ToPrometheus() const;
};

/// Thread-safe named-instrument registry. Get* returns a stable reference
/// (instruments are never destroyed before the registry), creating the
/// instrument on first use. Names should be static literals of the form
/// "layer.event" — they become JSON keys.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the IE_METRIC_* macros record into.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name) EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) EXCLUDES(mu_);
  /// `bounds` applies only on first creation; empty = latency defaults.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = {}) EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Snapshot() rendered as Prometheus text exposition (the scrape/export
  /// surface of the registry; see MetricsSnapshot::AppendPrometheus).
  std::string RenderPrometheus() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace ie

// Recording macros. `name` must be a string literal (or other
// static-lifetime string): the instrument lookup happens once per call site
// via a function-local static, after which recording is a few relaxed
// atomic operations. All of them expand to nothing when IE_OBSERVABILITY
// is 0, and arguments are not evaluated in that case.
#if IE_OBSERVABILITY

#define IE_METRIC_COUNT_N(name, n)                             \
  do {                                                         \
    static ::ie::Counter& ie_metric_counter_ =                 \
        ::ie::MetricsRegistry::Global().GetCounter(name);      \
    ie_metric_counter_.Add(static_cast<uint64_t>(n));          \
  } while (0)

#define IE_METRIC_COUNT(name) IE_METRIC_COUNT_N(name, 1)

#define IE_METRIC_GAUGE_SET(name, v)                           \
  do {                                                         \
    static ::ie::Gauge& ie_metric_gauge_ =                     \
        ::ie::MetricsRegistry::Global().GetGauge(name);        \
    ie_metric_gauge_.Set(static_cast<double>(v));              \
  } while (0)

#define IE_METRIC_HIST_OBSERVE(name, v)                        \
  do {                                                         \
    static ::ie::Histogram& ie_metric_hist_ =                  \
        ::ie::MetricsRegistry::Global().GetHistogram(name);    \
    ie_metric_hist_.Observe(static_cast<double>(v));           \
  } while (0)

#else  // !IE_OBSERVABILITY

#define IE_METRIC_COUNT_N(name, n) do {} while (0)
#define IE_METRIC_COUNT(name) do {} while (0)
#define IE_METRIC_GAUGE_SET(name, v) do {} while (0)
#define IE_METRIC_HIST_OBSERVE(name, v) do {} while (0)

#endif  // IE_OBSERVABILITY
