// Capability-annotated synchronization primitives (DESIGN.md §11). The
// only sanctioned mutex/condvar types in this codebase: wrapping the std
// primitives in annotated classes is what lets Clang Thread Safety
// Analysis prove at compile time that every GUARDED_BY field is touched
// with the right lock held — the `thread-safety` preset and the
// tools/lint.py `raw-mutex` rule together make the wrappers unbypassable.
//
// Usage mirrors the std types:
//
//   ie::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   { MutexLock lock(mu_); ++value_; }            // exclusive
//
//   ie::SharedMutex smu_;
//   Map map_ GUARDED_BY(smu_);
//   { ReaderLock lock(smu_); map_.find(k); }      // shared read
//   { WriterLock lock(smu_); map_.emplace(...); } // exclusive write
//
//   ie::CondVar cv_;
//   { MutexLock lock(mu_); while (!ready_) cv_.Wait(mu_); }
//
// Waiting is deliberately loop-shaped (no predicate-lambda overload): the
// predicate reads guarded fields, and only an explicit `while` in the
// locked scope lets the analysis see those reads happen under the lock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace ie {

/// Exclusive mutex. Prefer the scoped MutexLock; the raw Lock/Unlock pair
/// exists for the rare split acquire/release and keeps the analysis exact
/// either way.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (the Featurizer bigram cache's read-mostly path).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on an ie::Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped shared (read) lock on an ie::SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (write) lock on an ie::SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to ie::Mutex. Wait atomically releases and
/// reacquires the mutex through its *underlying* std::mutex, which is
/// invisible to the analysis — REQUIRES(mu) on the declaration is the
/// whole contract, so no analysis escape is needed anywhere.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; holds it again on return. Spurious wakeups
  /// happen — always wait in a `while (!predicate)` loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the capability stays conceptually held throughout
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ie
