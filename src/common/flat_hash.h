// Open-addressing hash tables for the interning hot paths (DESIGN.md §14).
//
// Both tables use linear probing over a power-of-two capacity with a
// splitmix64-mixed hash, and neither supports erase — the interning
// workloads (Vocabulary term ids, Featurizer bigram ids, per-document
// count accumulation) only ever insert — so there are no tombstones and
// growth is a straight re-insert of the live slots.
//
// Determinism: slot order depends on the hash function and insertion
// history, exactly like std::unordered_map bucket order. Iteration is
// therefore gated by the detlint `unordered-iteration` rule: go through
// ie::ForEachSorted (overloaded below for FlatHashMap) or carry a
//   // DETERMINISM: order-insensitive (<reason>)
// waiver at the ForEach call site.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace ie {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer. Integer keys
/// (token ids, packed bigram pairs) go through this before masking —
/// std::hash<uint64_t> is the identity on libstdc++, which clusters
/// open-addressed probes catastrophically.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic 64-bit string hash (FNV-1a with a splitmix64 finalizer).
/// Stable across platforms and runs — interned ids never depend on it
/// (they are assigned in insertion order), but probe sequences do.
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

/// Flat open-addressing map from a trivially-copyable integer key to a
/// small trivially-copyable value. No erase; Clear() keeps capacity.
template <typename K, typename V>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Pointer to the value for `key`, or nullptr when absent.
  const V* Find(K key) const {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t i = Mix64(static_cast<uint64_t>(key)) & mask;
    while (used_[i]) {
      if (slots_[i].first == key) return &slots_[i].second;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  V* Find(K key) {
    // ARCH: const-escape (Meyers const/non-const overload dedup: *this is
    // non-const here, so the cast only restores the caller's own access)
    return const_cast<V*>(static_cast<const FlatHashMap*>(this)->Find(key));
  }

  /// Inserts {key, value} if absent; returns {pointer to stored value,
  /// inserted}. Mirrors unordered_map::emplace: an existing mapping wins.
  std::pair<V*, bool> Emplace(K key, V value) {
    ReserveForOneMore();
    const size_t mask = slots_.size() - 1;
    size_t i = Mix64(static_cast<uint64_t>(key)) & mask;
    while (used_[i]) {
      if (slots_[i].first == key) return {&slots_[i].second, false};
      i = (i + 1) & mask;
    }
    used_[i] = 1;
    slots_[i] = {key, value};
    ++size_;
    return {&slots_[i].second, true};
  }

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](K key) { return *Emplace(key, V{}).first; }

  /// Grows capacity so `n` mappings fit without rehashing.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap *= 2;  // max load factor 3/4
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Drops all mappings but keeps capacity (no deallocation).
  void Clear() {
    std::fill(used_.begin(), used_.end(), uint8_t{0});
    size_ = 0;
  }

  /// Calls fn(key, value) for every mapping in *slot* order — which is as
  /// nondeterministic as unordered_map bucket order. The detlint
  /// unordered-iteration rule gates call sites: use ie::ForEachSorted or
  /// carry an order-insensitivity waiver.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  void ReserveForOneMore() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<std::pair<K, V>> slots(new_capacity);
    std::vector<uint8_t> used(new_capacity, 0);
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!used_[i]) continue;
      size_t j = Mix64(static_cast<uint64_t>(slots_[i].first)) & mask;
      while (used[j]) j = (j + 1) & mask;
      used[j] = 1;
      slots[j] = slots_[i];
    }
    slots_ = std::move(slots);
    used_ = std::move(used);
  }

  std::vector<std::pair<K, V>> slots_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

/// Calls fn(key, value) in ascending key order — the deterministic-iteration
/// facade (common/ordered.h) overload for FlatHashMap.
template <typename K, typename V, typename Fn>
void ForEachSorted(const FlatHashMap<K, V>& map, Fn&& fn) {
  std::vector<std::pair<K, V>> items;
  items.reserve(map.size());
  map.ForEach([&items](const K& key, const V& value) {
    items.emplace_back(key, value);
  });
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, value] : items) fn(key, value);
}

/// Interning index over externally stored keys: maps a precomputed 64-bit
/// key hash to a dense id, with key equality resolved by the caller (the
/// id indexes the caller's own term table, so keys are never stored or
/// re-hashed here — growth re-inserts live slots by their stored hash).
/// Vocabulary uses this for string -> id; there is no iteration API, so
/// iteration order cannot leak.
class FlatIdIndex {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  size_t size() const { return size_; }

  /// Id stored under `hash` for which eq(id) holds, or kNotFound. Distinct
  /// keys may share a hash; `eq` disambiguates against the caller's table.
  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i].id_plus_one != 0) {
      if (slots_[i].hash == hash) {
        const uint32_t id = slots_[i].id_plus_one - 1;
        if (eq(id)) return id;
      }
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  /// Records hash -> id. The key must be absent (Find first) and id must
  /// not be kNotFound.
  void Insert(uint64_t hash, uint32_t id) {
    ReserveForOneMore();
    const size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i].id_plus_one != 0) i = (i + 1) & mask;
    slots_[i] = {hash, id + 1};
    ++size_;
  }

  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  struct Slot {
    uint64_t hash = 0;
    uint32_t id_plus_one = 0;  // 0 = empty
  };

  void ReserveForOneMore() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> slots(new_capacity);
    const size_t mask = new_capacity - 1;
    for (const Slot& slot : slots_) {
      if (slot.id_plus_one == 0) continue;
      size_t j = slot.hash & mask;
      while (slots[j].id_plus_one != 0) j = (j + 1) & mask;
      slots[j] = slot;
    }
    slots_ = std::move(slots);
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace ie
