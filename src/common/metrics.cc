// detlint: export-path — MetricsSnapshot::AppendJson emits machine-parsed
// JSON; floating values go through AppendJsonNumber (DESIGN.md §12).
#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace ie {

namespace {

/// Process-unique histogram ids key the thread-local shard cache, so a
/// histogram allocated at a recycled address (test-local registries) can
/// never inherit a stale shard pointer.
std::atomic<uint64_t> g_next_histogram_id{1};

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(std::string* out, double v) { AppendJsonNumber(out, v); }

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

}  // namespace

// ---- Histogram ----------------------------------------------------------

/// One thread's recording slot. Written by exactly one thread (relaxed
/// load+store read-modify-writes are therefore race-free) and read by
/// snapshotting threads with relaxed loads.
struct Histogram::Shard {
  explicit Shard(size_t slots) : bucket_counts(slots) {}

  std::vector<std::atomic<uint64_t>> bucket_counts;
  std::atomic<uint64_t> count{0};
  std::atomic<double> mean{0.0};
  std::atomic<double> m2{0.0};
  std::atomic<double> min{0.0};  // valid only when count > 0
  std::atomic<double> max{0.0};
};

Histogram::Histogram(std::vector<double> bounds)
    : id_(g_next_histogram_id.fetch_add(1, std::memory_order_relaxed)),
      bounds_(bounds.empty() ? DefaultLatencyBounds() : std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    IE_CHECK(bounds_[i - 1] < bounds_[i]) << "histogram bounds not ascending";
  }
}

Histogram::~Histogram() = default;

Histogram::Shard* Histogram::ThisThreadShard() {
  // Shard cache: histogram id -> this thread's shard. Stale entries from
  // destroyed histograms are keyed by retired ids and never looked up
  // again, so the dangling pointers are harmless.
  thread_local std::unordered_map<uint64_t, Shard*> cache;
  auto it = cache.find(id_);
  if (it != cache.end()) return it->second;
  MutexLock lock(mu_);
  shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return shard;
}

void Histogram::Observe(double value) {
  Shard* shard = ThisThreadShard();
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // Single-writer shard: plain load+store read-modify-writes, published
  // with relaxed atomics so concurrent snapshots read untorn values.
  auto bump = [](std::atomic<uint64_t>& a) {
    a.store(a.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  };
  const uint64_t n = shard->count.load(std::memory_order_relaxed) + 1;
  const double old_mean = shard->mean.load(std::memory_order_relaxed);
  const double delta = value - old_mean;
  const double new_mean = old_mean + delta / static_cast<double>(n);
  shard->mean.store(new_mean, std::memory_order_relaxed);
  shard->m2.store(shard->m2.load(std::memory_order_relaxed) +
                      delta * (value - new_mean),
                  std::memory_order_relaxed);
  if (n == 1) {
    shard->min.store(value, std::memory_order_relaxed);
    shard->max.store(value, std::memory_order_relaxed);
  } else {
    if (value < shard->min.load(std::memory_order_relaxed)) {
      shard->min.store(value, std::memory_order_relaxed);
    }
    if (value > shard->max.load(std::memory_order_relaxed)) {
      shard->max.store(value, std::memory_order_relaxed);
    }
  }
  bump(shard->bucket_counts[bucket]);
  shard->count.store(n, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  MutexLock lock(mu_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const uint64_t n = shard->count.load(std::memory_order_relaxed);
    for (size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] +=
          shard->bucket_counts[i].load(std::memory_order_relaxed);
    }
    snapshot.summary.Merge(RunningStats::FromMoments(
        static_cast<size_t>(n), shard->mean.load(std::memory_order_relaxed),
        shard->m2.load(std::memory_order_relaxed),
        shard->min.load(std::memory_order_relaxed),
        shard->max.load(std::memory_order_relaxed)));
  }
  return snapshot;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    return b;
  }();
  return bounds;
}

double HistogramSnapshot::Quantile(double q) const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the k-th smallest sample, k = ceil(q·N), clamped to
  // [1, N] (q = 0 still needs a sample to land on).
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t cum = 0;
  size_t bucket = counts.size() - 1;
  for (size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum >= rank) {
      bucket = b;
      break;
    }
  }
  // The bucket's value range. Its interior edges are bucket bounds; the
  // outer edges (below the first bucket, above the last bound) are the
  // exact extrema from the summary, which also clamp the estimate so it
  // can never leave the rank's bucket.
  const double exact_min = summary.min();
  const double exact_max = summary.max();
  const double lo = bucket == 0 ? exact_min : bounds[bucket - 1];
  const double hi = bucket < bounds.size() ? bounds[bucket] : exact_max;
  const uint64_t in_bucket = counts[bucket];
  const uint64_t below = cum - in_bucket;
  const double frac =
      in_bucket == 0
          ? 1.0
          : static_cast<double>(rank - below) / static_cast<double>(in_bucket);
  double value;
  if (hi <= lo) {
    value = hi;
  } else if (lo > 0.0) {
    // Log-linear within the bucket: the default bounds are a geometric
    // (1-2-5) ladder, so this keeps relative (not absolute) resolution.
    value = lo * std::exp(std::log(hi / lo) * frac);
  } else {
    value = lo + (hi - lo) * frac;
  }
  return std::clamp(value, exact_min, exact_max);
}

// ---- MetricsSnapshot ----------------------------------------------------

namespace {

template <typename T>
const T* FindSorted(const std::vector<std::pair<std::string, T>>& entries,
                    std::string_view name) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const std::pair<std::string, T>& e, std::string_view n) {
        return e.first < n;
      });
  if (it == entries.end() || it->first != name) return nullptr;
  return &it->second;
}

template <typename T>
void SetSorted(std::vector<std::pair<std::string, T>>* entries,
               std::string_view name, T value) {
  auto it = std::lower_bound(
      entries->begin(), entries->end(), name,
      [](const std::pair<std::string, T>& e, std::string_view n) {
        return e.first < n;
      });
  if (it != entries->end() && it->first == name) {
    it->second = value;
  } else {
    entries->insert(it, {std::string(name), value});
  }
}

}  // namespace

uint64_t MetricsSnapshot::CounterOr(std::string_view name,
                                    uint64_t fallback) const {
  const uint64_t* v = FindSorted(counters, name);
  return v != nullptr ? *v : fallback;
}

double MetricsSnapshot::GaugeOr(std::string_view name,
                                double fallback) const {
  const double* v = FindSorted(gauges, name);
  return v != nullptr ? *v : fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const HistogramSnapshot& h, std::string_view n) {
        return h.name < n;
      });
  if (it == histograms.end() || it->name != name) return nullptr;
  return &*it;
}

void MetricsSnapshot::SetCounter(std::string_view name, uint64_t value) {
  SetSorted(&counters, name, value);
}

void MetricsSnapshot::SetGauge(std::string_view name, double value) {
  SetSorted(&gauges, name, value);
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& start) const {
  MetricsSnapshot delta;
  delta.counters.reserve(counters.size());
  for (const auto& [name, end_value] : counters) {
    const uint64_t start_value = start.CounterOr(name, 0);
    delta.counters.emplace_back(
        name, end_value >= start_value ? end_value - start_value : 0);
  }
  delta.gauges = gauges;  // gauges are last-value: keep the end reading
  delta.histograms.reserve(histograms.size());
  for (const HistogramSnapshot& end_h : histograms) {
    const HistogramSnapshot* start_h = start.FindHistogram(end_h.name);
    if (start_h == nullptr || start_h->bounds != end_h.bounds ||
        start_h->summary.count() == 0) {
      delta.histograms.push_back(end_h);
      continue;
    }
    HistogramSnapshot h;
    h.name = end_h.name;
    h.bounds = end_h.bounds;
    h.counts.resize(end_h.counts.size());
    for (size_t i = 0; i < h.counts.size(); ++i) {
      const uint64_t s =
          i < start_h->counts.size() ? start_h->counts[i] : 0;
      h.counts[i] = end_h.counts[i] >= s ? end_h.counts[i] - s : 0;
    }
    // Invert RunningStats::Merge(start, delta) == end. min/max are not
    // subtractable; report the end extrema (a superset of the window's).
    const size_t n_end = end_h.summary.count();
    const size_t n_start = start_h->summary.count();
    if (n_end > n_start) {
      const double na = static_cast<double>(n_start);
      const double nd = static_cast<double>(n_end - n_start);
      const double sum_delta =
          end_h.summary.mean() * static_cast<double>(n_end) -
          start_h->summary.mean() * na;
      const double mean_delta = sum_delta / nd;
      const double shift = mean_delta - start_h->summary.mean();
      const double m2_delta =
          end_h.summary.m2() - start_h->summary.m2() -
          shift * shift * na * nd / static_cast<double>(n_end);
      h.summary = RunningStats::FromMoments(
          n_end - n_start, mean_delta, m2_delta, end_h.summary.min(),
          end_h.summary.max());
    }
    delta.histograms.push_back(std::move(h));
  }
  return delta;
}

void MetricsSnapshot::AppendJson(std::string* out, int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  const std::string pad3 = pad2 + "  ";
  *out += "{\n";

  *out += pad1 + "\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += pad2 + "\"";
    AppendEscaped(out, counters[i].first);
    *out += "\": ";
    AppendUint(out, counters[i].second);
  }
  *out += counters.empty() ? "},\n" : "\n" + pad1 + "},\n";

  *out += pad1 + "\"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += pad2 + "\"";
    AppendEscaped(out, gauges[i].first);
    *out += "\": ";
    AppendDouble(out, gauges[i].second);
  }
  *out += gauges.empty() ? "},\n" : "\n" + pad1 + "},\n";

  *out += pad1 + "\"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += pad2 + "\"";
    AppendEscaped(out, h.name);
    *out += "\": {\"count\": ";
    AppendUint(out, h.summary.count());
    *out += ", \"mean\": ";
    AppendDouble(out, h.summary.mean());
    *out += ", \"stddev\": ";
    AppendDouble(out, h.summary.stddev());
    *out += ", \"min\": ";
    AppendDouble(out, h.summary.min());
    *out += ", \"max\": ";
    AppendDouble(out, h.summary.max());
    *out += ",\n" + pad3 + "\"p50\": ";
    AppendDouble(out, h.P50());
    *out += ", \"p90\": ";
    AppendDouble(out, h.P90());
    *out += ", \"p99\": ";
    AppendDouble(out, h.P99());
    *out += ",\n" + pad3 + "\"buckets\": [";
    bool first_nonzero = true;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      // Zero buckets are elided: the default latency scale has 22 buckets
      // and most are empty; "le" bounds make the kept ones unambiguous.
      if (h.counts[b] == 0) continue;
      if (!first_nonzero) *out += ", ";
      first_nonzero = false;
      *out += "{\"le\": ";
      if (b < h.bounds.size()) {
        AppendDouble(out, h.bounds[b]);
      } else {
        *out += "\"+Inf\"";
      }
      *out += ", \"count\": ";
      AppendUint(out, h.counts[b]);
      *out += "}";
    }
    *out += "]}";
  }
  *out += histograms.empty() ? "}\n" : "\n" + pad1 + "}\n";

  *out += pad + "}";
}

std::string MetricsSnapshot::ToJson(int indent) const {
  std::string out;
  AppendJson(&out, indent);
  return out;
}

// ---- MetricsRegistry ----------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Meyers static: instruments must outlive every recording thread; all
  // worker pools in this codebase are joined before main returns.
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

}  // namespace ie
