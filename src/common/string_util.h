#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ie {

/// Split on any of the delimiter characters; empty pieces are dropped.
std::vector<std::string_view> SplitString(std::string_view text,
                                          std::string_view delims);

/// Join pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ie
