#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ie {

/// Split on any of the delimiter characters; empty pieces are dropped.
std::vector<std::string_view> SplitString(std::string_view text,
                                          std::string_view delims);

/// Join pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Locale-independent, shortest round-trip decimal rendering of a double:
/// parsing the result back yields the exact same bit pattern, the decimal
/// separator is always '.' regardless of LC_NUMERIC, and the same value
/// always produces the same bytes. This is the only sanctioned way to
/// turn floating values into text on export paths (DESIGN.md §12); the
/// detlint `locale-format` rule rejects std::to_string / printf %f/%g /
/// iostream formatting there. Non-finite values render as "inf"/"-inf"/
/// "nan".
std::string FormatDouble(double value);
/// Appends FormatDouble(value) without the intermediate string.
void AppendFormattedDouble(std::string* out, double value);

/// FormatDouble specialized for JSON emission: JSON has no literal for
/// non-finite numbers, so inf/-inf/nan render as `null` (Chrome-trace and
/// metrics consumers treat missing samples and null alike). Finite values
/// are byte-identical to FormatDouble and round-trip exactly.
std::string FormatJsonNumber(double value);
void AppendJsonNumber(std::string* out, double value);

}  // namespace ie
