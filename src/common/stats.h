// Small statistics helpers shared by the evaluation harness and benches.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace ie {

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two elements.
double StdDev(const std::vector<double>& xs);

}  // namespace ie
