// Small statistics helpers shared by the evaluation harness, benches, and
// the metrics layer (common/metrics.h uses RunningStats as the histogram
// summary backbone: per-thread shards merge into one summary on snapshot).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace ie {

/// Online mean/variance accumulator (Welford) with min/max tracking and
/// parallel merge (Chan et al.'s pairwise update), so per-thread
/// accumulators can be combined without keeping raw samples.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Combines another accumulator into this one; the result is as if every
  /// sample of `other` had been Add()ed here (up to floating-point
  /// reassociation in mean/m2; min/max and count are exact).
  ///
  /// Empty-side contract (exercised by tests/flight_recorder_test.cc):
  /// merging an empty `other` is an exact no-op — this side's extrema are
  /// never widened by the empty side's sentinels — and merging into an
  /// empty *this adopts `other`'s moments and extrema exactly, bit for
  /// bit, rather than funnelling them through the pairwise update.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      // Adopt every field explicitly: the pairwise algebra below would
      // reproduce the moments, but min_/max_ must come from `other`
      // directly (not from min/max against this side's ±inf sentinels,
      // which a FromMoments round-trip is not guaranteed to preserve).
      n_ = other.n_;
      mean_ = other.mean_;
      m2_ = other.m2_;
      min_ = other.min_;
      max_ = other.max_;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Rebuilds an accumulator from raw moments (the metrics layer stores
  /// shard moments in atomics and reconstitutes them on snapshot). With
  /// n == 0 the min/max arguments are ignored entirely — the accumulator
  /// keeps its empty-side sentinels so a later Merge stays exact. With
  /// n > 0 the extrema are order-normalized: a histogram shard read
  /// mid-update can transiently present min > max (its fields are
  /// independent relaxed atomics), and propagating that inversion would
  /// poison every downstream Merge's extrema.
  static RunningStats FromMoments(size_t n, double mean, double m2,
                                  double min, double max) {
    RunningStats stats;
    stats.n_ = n;
    if (n > 0) {
      stats.mean_ = mean;
      stats.m2_ = std::max(m2, 0.0);
      stats.min_ = std::min(min, max);
      stats.max_ = std::max(min, max);
    }
    return stats;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sum of squared deviations from the mean (Welford's M2; variance
  /// numerator). Exposed so snapshot deltas can invert Merge().
  double m2() const { return m2_; }
  /// Smallest/largest sample seen; 0 when empty (stable JSON output).
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two elements.
double StdDev(const std::vector<double>& xs);

}  // namespace ie
