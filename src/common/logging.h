// Minimal leveled logging to stderr. Benchmarks and the pipeline use INFO
// for progress; tests typically run at WARN.
//
// Thread safety: the global level is an atomic (relaxed loads/stores), so
// Get/SetLogLevel may race freely — executor workers log concurrently with
// the main loop, and a worker may observe a level change slightly late,
// never a torn value. Each message is buffered whole in its LogMessage and
// written to std::cerr in one call; interleaving between concurrent
// messages happens only at whole-message granularity on glibc
// (POSIX-locked FILE streams). Pinned by ObservabilityTest
// ConcurrentLogLevelAndLogging under the tsan preset.
//
// In the static thread-safety model (DESIGN.md §11) logging is therefore
// the one concurrent component with no capability at all: it owns no
// mutex, guards no fields, and needs no annotations — there is nothing
// for -Wthread-safety to check, by construction.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ie {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Atomic: safe to
/// call from any thread at any time (see the thread-safety note above).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

/// Prints on destruction, then aborts. Used by IE_CHECK so the message is
/// flushed before the process dies.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage();
};

}  // namespace internal
}  // namespace ie

#define IE_LOG_ENABLED(level) (::ie::LogLevel::level >= ::ie::GetLogLevel())

#define IE_LOG(level)                             \
  !IE_LOG_ENABLED(level)                          \
      ? (void)0                                   \
      : ::ie::internal::LogVoidify() &            \
            ::ie::internal::LogMessage(           \
                ::ie::LogLevel::level, __FILE__, __LINE__) \
                .stream()

#define IE_CHECK(cond)                                               \
  (cond) ? (void)0                                                   \
         : ::ie::internal::LogVoidify() &                            \
               ::ie::internal::FatalLogMessage(__FILE__, __LINE__)   \
                       .stream()                                     \
                   << "Check failed: " #cond " "
