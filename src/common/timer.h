// Wall-clock and thread-CPU timers, plus a SimulatedClock used by the
// extraction pipeline to charge per-document extraction cost without
// actually burning the CPU for months (see DESIGN.md, substitutions).
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace ie {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Used to measure
/// real ranking/update-detection overhead, matching the paper's "CPU time"
/// metric for overhead accounting.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

/// Accumulates a mix of simulated charges (e.g. "this document costs 6 s of
/// extraction") and real measured overhead. The pipeline reports totals from
/// this clock so that efficiency experiments reproduce the paper's
/// cost decomposition: total = simulated extraction + measured ranking.
class SimulatedClock {
 public:
  void ChargeSeconds(double seconds) { simulated_seconds_ += seconds; }
  void AddMeasuredSeconds(double seconds) { measured_seconds_ += seconds; }

  double simulated_seconds() const { return simulated_seconds_; }
  double measured_seconds() const { return measured_seconds_; }
  double TotalSeconds() const { return simulated_seconds_ + measured_seconds_; }
  double TotalMinutes() const { return TotalSeconds() / 60.0; }

  void Reset() {
    simulated_seconds_ = 0.0;
    measured_seconds_ = 0.0;
  }

 private:
  double simulated_seconds_ = 0.0;
  double measured_seconds_ = 0.0;
};

}  // namespace ie
