// Deterministic random number generation. All stochastic components of the
// library (corpus generation, sampling, online learners) draw from ie::Rng
// so that every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <cassert>
#include <algorithm>
#include <vector>

namespace ie {

/// splitmix64: used to expand a single 64-bit seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
    has_gauss_ = false;
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double NextGaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * mul;
    has_gauss_ = true;
    return u * mul;
  }

  /// Zipf-distributed integer in [0, n) with exponent `s` (s > 0). Uses
  /// rejection-inversion (Hörmann); suitable for large n.
  uint64_t NextZipf(uint64_t n, double s);

  /// Sample an index from an (unnormalized) non-negative weight vector.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextBounded(i)]);
    }
  }

  /// Reservoir-sample k items from [0, n). Returned indices are unsorted.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derive an independent child generator (for parallel/replicated runs).
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace ie
