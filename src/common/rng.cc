#include "common/rng.h"

#include <numeric>

namespace ie {

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  assert(s > 0.0);
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) over the
  // rank domain [1, n]; returns a 0-based rank.
  const double e = 1.0 - s;
  auto h = [&](double x) {
    // Integral of x^-s (the "hat" CDF piece), with the s == 1 special case.
    if (std::abs(e) < 1e-12) return std::log(x);
    return std::pow(x, e) / e;
  };
  auto h_inv = [&](double x) {
    if (std::abs(e) < 1e-12) return std::exp(x);
    return std::pow(x * e, 1.0 / e);
  };
  const double hx0 = h(0.5) - 1.0;
  const double hxn = h(static_cast<double>(n) + 0.5);
  const double d = hxn - hx0;
  while (true) {
    const double u = hx0 + NextDouble() * d;
    const double x = h_inv(u);
    const uint64_t k = static_cast<uint64_t>(
        std::clamp(std::floor(x + 0.5), 1.0, static_cast<double>(n)));
    const double kd = static_cast<double>(k);
    // Accept when u falls under the true pmf envelope at k.
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;
    }
  }
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> reservoir(k);
  std::iota(reservoir.begin(), reservoir.end(), 0);
  for (size_t i = k; i < n; ++i) {
    const size_t j = static_cast<size_t>(NextBounded(i + 1));
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace ie
