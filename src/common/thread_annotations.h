// Clang Thread Safety Analysis attribute macros (DESIGN.md §11).
//
// These wrap the `-Wthread-safety` capability attributes so lock discipline
// is stated in the code and *proved at compile time* under Clang (the
// `thread-safety` preset promotes every analysis diagnostic to an error).
// On compilers without the analysis (GCC) every macro expands to nothing,
// so the annotations are free documentation there and the binary is
// identical either way.
//
// The vocabulary, applied through the ie::Mutex / ie::SharedMutex wrappers
// in common/sync.h:
//
//   GUARDED_BY(mu)       field may only be touched while `mu` is held
//                        (shared suffices for reads, exclusive for writes)
//   REQUIRES(mu)         caller must already hold `mu` exclusively
//   REQUIRES_SHARED(mu)  caller must hold `mu` at least shared
//   ACQUIRE / RELEASE    function acquires/releases the capability
//   EXCLUDES(mu)         caller must NOT hold `mu` (non-reentrancy)
//   ACQUIRED_BEFORE/AFTER  static lock-ordering hints (checked under
//                        -Wthread-safety-beta)
//
// tests/negcompile/ proves the analysis bites: each violation case there
// must FAIL to compile under the `thread-safety` preset.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define IE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) IE_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY IE_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) IE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) IE_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) IE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) IE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) IE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  IE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) IE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  IE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) IE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  IE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Matches whichever mode (shared or exclusive) a scoped wrapper acquired.
#define RELEASE_GENERIC(...) \
  IE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  IE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  IE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) IE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) IE_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  IE_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) IE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Policy (enforced by review + DESIGN.md §11): zero uses in
// src/ outside documented double-checked-locking sites — and as of this
// writing there are none at all.
#define NO_THREAD_SAFETY_ANALYSIS \
  IE_THREAD_ANNOTATION(no_thread_safety_analysis)
