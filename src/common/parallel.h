// Minimal data-parallel helper (paper Section 6 future work: "exploring
// parallelization approaches that, combined with the ranking-based
// approach ... can further speed up the execution"). Used by the pipeline
// to parallelize bulk re-rank scoring; results are deterministic because
// each index writes only its own slot.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ie {

/// Runs fn(i) for i in [0, n) across up to `threads` std::threads, in
/// contiguous blocks. threads <= 1 (or tiny n) degenerates to a serial
/// loop. fn must be safe to call concurrently for distinct i.
///
/// Exception safety: if fn throws, the first exception (by worker start
/// order) is captured, all workers are still joined, and the exception is
/// rethrown on the calling thread. A worker that throws abandons the rest
/// of its block; other workers' blocks still run to completion.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& fn) {
  if (threads <= 1 || n < 2 * threads) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t block = (n + threads - 1) / threads;
  // One exception slot per worker; each worker writes only its own slot,
  // so the vector needs no locking (same determinism argument as callers
  // writing distinct result slots).
  std::vector<std::exception_ptr> errors(threads);
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = t * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    workers.emplace_back([&fn, &errors, t, begin, end] {
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace ie
