// detlint: export-path — Prometheus text exposition for MetricsSnapshot /
// MetricsRegistry. Machine-scraped output: every floating value goes
// through AppendFormattedDouble (locale-independent, round-trip exact;
// DESIGN.md §12), validated end-to-end by `tools/report.py
// --validate-prom` in CI.
//
// Exposition shape (https://prometheus.io/docs/instrumenting/exposition_formats/):
//   # TYPE ie_rerank_full_rescores counter
//   ie_rerank_full_rescores 12
//   # TYPE ie_pipeline_rank_seconds histogram
//   ie_pipeline_rank_seconds_bucket{le="0.001"} 3     (cumulative)
//   ie_pipeline_rank_seconds_bucket{le="+Inf"} 9
//   ie_pipeline_rank_seconds_sum 0.42                 (mean · count)
//   ie_pipeline_rank_seconds_count 9
//   # TYPE ie_pipeline_rank_seconds_p50 gauge         (from Quantile())
#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"

namespace ie {

namespace {

/// Registry names are "layer.event"; Prometheus metric names must match
/// [a-zA-Z_:][a-zA-Z0-9_:]*. Map every other character to '_' and prefix
/// "ie_" (which also rescues names starting with a digit).
std::string PrometheusName(const std::string& name) {
  std::string out = "ie_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendTypeLine(std::string* out, const std::string& name,
                    const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void AppendUintSample(std::string* out, const std::string& name,
                      uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  *out += name;
  *out += buf;
}

void AppendDoubleSample(std::string* out, const std::string& name,
                        double value) {
  *out += name;
  *out += ' ';
  AppendFormattedDouble(out, value);
  *out += '\n';
}

void AppendQuantileGauge(std::string* out, const std::string& base,
                         const char* suffix, double value) {
  const std::string name = base + suffix;
  AppendTypeLine(out, name, "gauge");
  AppendDoubleSample(out, name, value);
}

}  // namespace

void MetricsSnapshot::AppendPrometheus(std::string* out) const {
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    AppendTypeLine(out, pname, "counter");
    AppendUintSample(out, pname, value);
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    AppendTypeLine(out, pname, "gauge");
    AppendDoubleSample(out, pname, value);
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string pname = PrometheusName(h.name);
    AppendTypeLine(out, pname, "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      // Zero-delta buckets below the top are elided (the default latency
      // ladder is 22 buckets, mostly empty); cumulative counts keep the
      // kept ones exact, and the mandatory +Inf bucket closes the series.
      if (b + 1 < h.counts.size() && h.counts[b] == 0) continue;
      *out += pname;
      *out += "_bucket{le=\"";
      if (b < h.bounds.size()) {
        AppendFormattedDouble(out, h.bounds[b]);
      } else {
        *out += "+Inf";
      }
      *out += "\"}";
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
      *out += buf;
    }
    AppendDoubleSample(
        out, pname + "_sum",
        h.summary.mean() * static_cast<double>(h.summary.count()));
    AppendUintSample(out, pname + "_count", h.summary.count());
    AppendQuantileGauge(out, pname, "_p50", h.P50());
    AppendQuantileGauge(out, pname, "_p90", h.P90());
    AppendQuantileGauge(out, pname, "_p99", h.P99());
  }
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  AppendPrometheus(&out);
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  return Snapshot().ToPrometheus();
}

}  // namespace ie
