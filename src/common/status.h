// Status / StatusOr error handling, following the RocksDB / Arrow idiom:
// library code never throws across module boundaries; fallible operations
// return ie::Status or ie::StatusOr<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ie {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Lightweight error-carrying result type. An OK status carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Human-readable rendering, e.g. "InvalidArgument: empty corpus".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Result-or-error. Accessing value() on an error status aborts in debug
/// builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ie

/// Propagate a non-OK status to the caller.
#define IE_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::ie::Status _ie_status = (expr);           \
    if (!_ie_status.ok()) return _ie_status;    \
  } while (0)

/// Evaluate a StatusOr expression, propagating errors; on success bind the
/// value to `lhs`. Usage: IE_ASSIGN_OR_RETURN(auto x, Compute());
#define IE_ASSIGN_OR_RETURN(lhs, expr)                      \
  IE_ASSIGN_OR_RETURN_IMPL_(                                \
      IE_STATUS_CONCAT_(_ie_statusor_, __LINE__), lhs, expr)

#define IE_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()

#define IE_STATUS_CONCAT_(a, b) IE_STATUS_CONCAT_IMPL_(a, b)
#define IE_STATUS_CONCAT_IMPL_(a, b) a##b
