// Deterministic-iteration facade over the unordered associative containers
// (DESIGN.md §12). Hash-map iteration order is an implementation detail —
// it varies across standard libraries, hash seeds, and even insertion
// histories — so any value that *flows out* of an unordered container in
// iteration order (processing orders, float accumulations, serialized
// output) is a silent nondeterminism hazard. The detlint `unordered-
// iteration` rule (tools/lint.py) forbids iterating unordered containers
// anywhere in src/ except through this facade or under an explicit
//   // DETERMINISM: order-insensitive (<reason>)
// waiver that argues why the result cannot depend on the order.
//
// The adapters are allocation-light: one vector of pointers into the
// container (no key/value copies), sorted by key.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace ie {

namespace internal {

// Maps have a pair value_type whose `first` is the key; sets are their own
// keys. `KeyOf` picks the sort key for either shape.
template <typename ValueType>
struct IsKeyValuePair : std::false_type {};
template <typename K, typename V>
struct IsKeyValuePair<std::pair<const K, V>> : std::true_type {};

template <typename ValueType>
const auto& KeyOf(const ValueType& v) {
  if constexpr (IsKeyValuePair<ValueType>::value) {
    return v.first;
  } else {
    return v;
  }
}

template <typename Container>
std::vector<const typename Container::value_type*> SortedPointers(
    const Container& container) {
  std::vector<const typename Container::value_type*> items;
  items.reserve(container.size());
  for (auto it = container.begin(); it != container.end(); ++it) {
    items.push_back(&*it);
  }
  std::sort(items.begin(), items.end(), [](const auto* a, const auto* b) {
    return KeyOf(*a) < KeyOf(*b);
  });
  return items;
}

}  // namespace internal

/// Calls `fn` for every element of an unordered map/set in ascending key
/// order. For maps fn(key, mapped_value); for sets fn(key). Keys must be
/// `<`-comparable (all keys in this codebase: integer ids and strings).
template <typename Container, typename Fn>
void ForEachSorted(const Container& container, Fn&& fn) {
  for (const auto* item : internal::SortedPointers(container)) {
    if constexpr (internal::IsKeyValuePair<
                      typename Container::value_type>::value) {
      fn(item->first, item->second);
    } else {
      fn(*item);
    }
  }
}

/// The container's keys in ascending order (one copy per key). For maps
/// this is the key set; for sets, the sorted elements.
template <typename Container>
auto SortedKeys(const Container& container) {
  using Key = std::remove_cv_t<std::remove_reference_t<decltype(
      internal::KeyOf(*container.begin()))>>;
  std::vector<Key> keys;
  keys.reserve(container.size());
  for (const auto* item : internal::SortedPointers(container)) {
    keys.push_back(internal::KeyOf(*item));
  }
  return keys;
}

/// Pointers to the container's elements in ascending key order — for
/// callers that need values too but should not copy them. The pointers are
/// invalidated by any mutation of the container.
template <typename Container>
std::vector<const typename Container::value_type*> SortedItems(
    const Container& container) {
  return internal::SortedPointers(container);
}

/// Left-to-right sequential sum over a range of floating values. The
/// result is bit-identical for a given element order no matter how many
/// threads the surrounding code uses — which is the point: the detlint
/// `float-reduce` rule steers floating reductions in parallel-aware files
/// here, so the fixed association order is explicit and cannot be silently
/// parallelized or reassociated later.
template <typename Iterator,
          typename T = typename std::iterator_traits<Iterator>::value_type>
T FixedOrderSum(Iterator begin, Iterator end, T init = T{}) {
  T sum = init;
  for (Iterator it = begin; it != end; ++it) sum += *it;
  return sum;
}

template <typename Range>
auto FixedOrderSum(const Range& range) {
  using T = std::remove_cv_t<
      std::remove_reference_t<decltype(*std::begin(range))>>;
  return FixedOrderSum(std::begin(range), std::end(range), T{});
}

}  // namespace ie
