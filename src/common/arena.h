// Bump allocator for per-document transient state (DESIGN.md §14). The
// featurizer's per-doc hot loop (count table, entry staging) allocates
// from a thread_local Arena and calls Reset() between documents, so the
// global allocator is only touched while the arena grows toward its
// steady-state capacity.
//
// Lifetime rules:
//  - Allocate() returns raw storage valid until the next Reset(); no
//    destructors run, so only trivially-destructible payloads belong here.
//  - Reset() recycles every chunk without returning memory to the global
//    allocator; pointers from before the Reset are dangling.
//  - Not thread-safe: intended for thread_local scratch, one arena per
//    thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace ie {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    process_reserved_bytes_().fetch_sub(TotalCapacity(),
                                        std::memory_order_relaxed);
  }

  /// Raw storage for `bytes` bytes at alignment `align` (a power of two).
  void* Allocate(size_t bytes, size_t align) {
    uintptr_t p = (ptr_ + align - 1) & ~(align - 1);
    if (p + bytes > end_) {
      NextChunk(bytes + align);
      p = (ptr_ + align - 1) & ~(align - 1);
    }
    ptr_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Uninitialized storage for `n` elements of T. The caller fills it;
  /// nothing is ever destroyed, so T must be trivially destructible.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Recycles all chunks: subsequent allocations reuse the existing memory
  /// from the start. O(1); nothing is freed.
  void Reset() {
    chunk_index_ = 0;
    if (chunks_.empty()) {
      ptr_ = end_ = 0;
    } else {
      ptr_ = reinterpret_cast<uintptr_t>(chunks_[0].data.get());
      end_ = ptr_ + chunks_[0].size;
    }
  }

  /// Total bytes owned across all chunks (the steady-state footprint).
  size_t TotalCapacity() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

  size_t chunk_count() const { return chunks_.size(); }

  /// Bytes currently reserved by every live Arena in the process (the
  /// thread_local featurizer arenas included). Grows on chunk allocation,
  /// shrinks on arena destruction; Reset() does not release. The flight
  /// recorder samples this once per iteration — chunk growth is rare
  /// (doubling), so the relaxed counter costs nothing on the hot path.
  static size_t ProcessReservedBytes() {
    return process_reserved_bytes_().load(std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  // Advances to the next chunk able to hold `need` bytes, allocating a new
  // one (double the last, at least `need`) when the existing chunks are
  // exhausted or too small.
  void NextChunk(size_t need) {
    while (chunk_index_ + 1 < chunks_.size()) {
      ++chunk_index_;
      if (chunks_[chunk_index_].size >= need) {
        SetCurrent(chunk_index_);
        return;
      }
    }
    size_t size = chunks_.empty() ? first_chunk_bytes_
                                  : chunks_.back().size * 2;
    if (size < need) size = need;
    chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(size), size});
    process_reserved_bytes_().fetch_add(size, std::memory_order_relaxed);
    chunk_index_ = chunks_.size() - 1;
    SetCurrent(chunk_index_);
  }

  void SetCurrent(size_t index) {
    ptr_ = reinterpret_cast<uintptr_t>(chunks_[index].data.get());
    end_ = ptr_ + chunks_[index].size;
  }

  static std::atomic<size_t>& process_reserved_bytes_() {
    static std::atomic<size_t> bytes{0};
    return bytes;
  }

  size_t first_chunk_bytes_;
  uintptr_t ptr_ = 0;
  uintptr_t end_ = 0;
  std::vector<Chunk> chunks_;
  size_t chunk_index_ = 0;
};

}  // namespace ie
