#include "common/trace.h"

#include <time.h>

#include <unordered_map>

namespace ie {

namespace {

uint64_t MonotonicNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

TraceBuffer::TraceBuffer(uint32_t tid, size_t capacity, uint64_t epoch_ns)
    : tid_(tid), epoch_ns_(epoch_ns), events_(capacity) {}

uint64_t TraceBuffer::NowNs() const { return MonotonicNowNs() - epoch_ns_; }

void TraceBuffer::Append(const char* name, char phase, double value) {
  const size_t i = size_.load(std::memory_order_relaxed);
  TraceEvent& ev = events_[i];
  ev.name = name;
  ev.phase = phase;
  ev.ts_ns = NowNs();
  ev.value = value;
  // Release-publish: the exporter's acquire load of size_ makes the event
  // fields above visible before the slot is considered readable.
  size_.store(i + 1, std::memory_order_release);
}

bool TraceBuffer::BeginSpan(const char* name) {
  // Reservation invariant: after recording this 'B' there must still be
  // room for its own 'E' plus one 'E' per span already open, so every
  // recorded begin always gets its matching end (check_trace.py balance).
  const size_t size = size_.load(std::memory_order_relaxed);
  if (size + open_spans_ + 2 > events_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++open_spans_;
  Append(name, 'B', 0.0);
  return true;
}

void TraceBuffer::EndSpan(const char* name) {
  // Space was reserved by the matching BeginSpan.
  --open_spans_;
  Append(name, 'E', 0.0);
}

void TraceBuffer::Instant(const char* name) {
  const size_t size = size_.load(std::memory_order_relaxed);
  if (size + open_spans_ + 1 > events_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Append(name, 'I', 0.0);
}

void TraceBuffer::CounterSample(const char* name, double value) {
  const size_t size = size_.load(std::memory_order_relaxed);
  if (size + open_spans_ + 1 > events_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Append(name, 'C', value);
}

Tracer& Tracer::Global() {
  // Meyers static: the tracer must outlive every recording thread; all
  // worker pools in this codebase are joined before main returns.
  static Tracer tracer;
  return tracer;
}

bool Tracer::Start(size_t capacity_per_thread) {
  MutexLock lock(mu_);
  if (active_.load(std::memory_order_relaxed)) return false;
  // Safe to drop the previous session's buffers now: a new session only
  // starts once prior recording threads have quiesced (class contract).
  buffers_.clear();
  capacity_ = capacity_per_thread == 0 ? kDefaultCapacity : capacity_per_thread;
  epoch_ns_ = MonotonicNowNs();
  generation_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
  return true;
}

Status Tracer::StopAndExport(const std::string& path) {
  active_.store(false, std::memory_order_release);
  MutexLock lock(mu_);
  if (epoch_ns_ == 0 && buffers_.empty()) {
    return Status::FailedPrecondition("no trace session was started");
  }
  size_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped();
  return ExportChromeTrace(buffers_, dropped, path);
}

TraceBuffer* Tracer::ThreadBuffer() {
  // Generation-keyed cache: a pointer cached during session N is never
  // reused in session N+1 (Start() clears buffers_, so stale pointers
  // would dangle without the generation check).
  struct Cached {
    uint64_t generation = 0;
    TraceBuffer* buffer = nullptr;
  };
  thread_local Cached cached;
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cached.buffer != nullptr && cached.generation == generation) {
    return cached.buffer;
  }
  MutexLock lock(mu_);
  if (!active_.load(std::memory_order_relaxed)) return nullptr;
  auto buffer = std::make_unique<TraceBuffer>(
      static_cast<uint32_t>(buffers_.size() + 1), capacity_, epoch_ns_);
  cached.buffer = buffer.get();
  // Re-read under the lock: if Start() bumped the generation between the
  // acquire load above and here, cache against the session we actually
  // registered into rather than registering a duplicate on the next call.
  cached.generation = generation_.load(std::memory_order_relaxed);
  buffers_.push_back(std::move(buffer));
  return cached.buffer;
}

size_t Tracer::dropped_events() const {
  MutexLock lock(mu_);
  size_t dropped = 0;
  for (const auto& buffer : buffers_) dropped += buffer->dropped();
  return dropped;
}

}  // namespace ie
