// Architecture markers (DESIGN.md §16) — annotations the archlint rules in
// tools/lint.py recognize and cross-check. They expand to nothing; their
// value is that the lint can find them and enforce the contract they name.
#pragma once

// IE_SHARED_IMMUTABLE — placed between `struct`/`class` and the type name:
//
//   struct IE_SHARED_IMMUTABLE SharedContext { ... };
//
// declares a shared-immutable type: an object that many concurrent
// sessions read with no synchronization, so it must be deeply const. The
// `shared-immutable` lint rule enforces, inside the marked body:
//
//   * every data member is const (a `const T*` / `const T&` view or a
//     const value), so only const member functions of the pointees are
//     reachable through it — the compiler enforces the rest;
//   * no `mutable` members;
//   * every member function declared on the type is const-qualified.
//
// Mutable interiors of pointee types (e.g. Featurizer's synchronized
// bigram cache) are governed separately by the `const-escape` rule and
// its per-site `// ARCH: const-escape (<reason>)` waivers.
#define IE_SHARED_IMMUTABLE
