#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <system_error>

namespace ie {

std::vector<std::string_view> SplitString(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendFormattedDouble(std::string* out, double value) {
  if (std::isnan(value)) {
    out->append("nan");
    return;
  }
  if (std::isinf(value)) {
    out->append(value < 0.0 ? "-inf" : "inf");
    return;
  }
  // std::to_chars is locale-independent by specification and emits the
  // shortest decimal string that parses back to exactly `value` — the two
  // properties %g/%f/to_string cannot give (they honor LC_NUMERIC and
  // truncate to a fixed precision). 32 chars covers the worst case
  // (-2.2250738585072014e-308 is 24).
  char buf[32];
  const auto rc = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, rc.ptr);
}

std::string FormatDouble(double value) {
  std::string out;
  AppendFormattedDouble(&out, value);
  return out;
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  AppendFormattedDouble(out, value);
}

std::string FormatJsonNumber(double value) {
  std::string out;
  AppendJsonNumber(&out, value);
  return out;
}

}  // namespace ie
