// Low-overhead event tracing (DESIGN.md §10). Each thread records named
// begin/end spans, instant events, and counter samples into its own
// preallocated ring buffer (single-writer, release-published, so recording
// is a clock read plus a couple of relaxed stores — no locks, no
// allocation). Tracer::StopAndExport() merges all buffers into a Chrome
// `chrome://tracing` / Perfetto-compatible JSON file.
//
// Span balance is guaranteed by construction: BeginSpan() reserves space
// for its matching EndSpan() (plus one slot per already-open span), so a
// buffer that fills up drops whole spans — never a B without its E — and
// counts the drops. The exporter additionally closes any spans still open
// at export time, so emitted traces always pass tools/check_trace.py.
//
// The IE_TRACE_* macros below are the only intended call sites; they check
// a single atomic flag when tracing is inactive and compile to nothing
// when IE_OBSERVABILITY is 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"  // IE_OBSERVABILITY
#include "common/status.h"
#include "common/sync.h"

namespace ie {

struct TraceEvent {
  const char* name = nullptr;  // static-lifetime string (macro literal)
  char phase = 'I';            // 'B' begin, 'E' end, 'I' instant, 'C' counter
  uint64_t ts_ns = 0;          // nanoseconds since Tracer::Start
  double value = 0.0;          // payload for 'C' events
};

/// One thread's preallocated event ring. Written only by its owning thread;
/// the exporter reads events below the release-published size.
class TraceBuffer {
 public:
  TraceBuffer(uint32_t tid, size_t capacity, uint64_t epoch_ns);

  /// Records a 'B' event; false (and counted as dropped) when the buffer
  /// cannot also guarantee room for the matching 'E'. Callers must skip
  /// EndSpan for unrecorded spans (TraceSpan handles this).
  bool BeginSpan(const char* name);
  void EndSpan(const char* name);
  void Instant(const char* name);
  void CounterSample(const char* name, double value);

  uint32_t tid() const { return tid_; }
  size_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Export-side accessors: events below size() are fully written
  /// (release/acquire on size_).
  size_t size() const { return size_.load(std::memory_order_acquire); }
  const TraceEvent& event(size_t i) const { return events_[i]; }

 private:
  uint64_t NowNs() const;
  void Append(const char* name, char phase, double value);

  const uint32_t tid_;
  const uint64_t epoch_ns_;
  std::vector<TraceEvent> events_;  // preallocated to capacity; never grows
  std::atomic<size_t> size_{0};
  size_t open_spans_ = 0;  // recorded-but-unclosed spans (owner thread only)
  std::atomic<size_t> dropped_{0};
};

/// Process-wide trace session. Start() arms recording; every thread that
/// records gets a buffer on first use (kept until the next Start so
/// late-exiting threads never dangle). StopAndExport() disarms, writes the
/// Chrome JSON, and leaves the buffers readable until the next Start().
///
/// Sessions are expected to be driven from one coordinating thread (the
/// pipeline loop): Start/StopAndExport must not race each other, and a new
/// Start() must not race threads still recording into the previous
/// session's buffers (the pipeline joins its workers before exporting).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;  // events per thread

  static Tracer& Global();

  /// Arms recording; false when a session is already active (the caller
  /// should then leave tracing to the session owner).
  bool Start(size_t capacity_per_thread = kDefaultCapacity) EXCLUDES(mu_);

  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Disarms recording and writes all buffered events as Chrome-trace JSON
  /// (implemented in trace_export.cc). No-op error if no session started.
  Status StopAndExport(const std::string& path) EXCLUDES(mu_);

  /// Disarms recording without exporting (test support).
  void Stop() { active_.store(false, std::memory_order_release); }

  /// This thread's buffer for the active session; null when inactive.
  /// The returned pointer is valid until the *next* Start().
  TraceBuffer* ThreadBuffer() EXCLUDES(mu_);

  /// Events dropped across all buffers of the current/last session.
  size_t dropped_events() const EXCLUDES(mu_);

 private:
  Tracer() = default;

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> generation_{0};  // bumped by Start to spill caches
  mutable Mutex mu_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t epoch_ns_ GUARDED_BY(mu_) = 0;
};

/// Writes `buffers` as a Chrome trace ({"traceEvents": [...]}) to `path`,
/// synthesizing 'E' events for spans still open in a buffer so the output
/// is always balanced. Shared by Tracer::StopAndExport and tests.
Status ExportChromeTrace(
    const std::vector<std::unique_ptr<TraceBuffer>>& buffers,
    size_t dropped_events, const std::string& path);

#if IE_OBSERVABILITY

/// RAII begin/end span; records nothing when tracing is inactive or the
/// buffer is full (never leaves an unbalanced 'B').
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    Tracer& tracer = Tracer::Global();
    if (!tracer.active()) return;
    TraceBuffer* buffer = tracer.ThreadBuffer();
    if (buffer != nullptr && buffer->BeginSpan(name)) {
      buffer_ = buffer;
      name_ = name;
    }
  }
  ~TraceSpan() {
    if (buffer_ != nullptr) buffer_->EndSpan(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
};

namespace trace_internal {

inline void RecordInstant(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.active()) return;
  TraceBuffer* buffer = tracer.ThreadBuffer();
  if (buffer != nullptr) buffer->Instant(name);
}

inline void RecordCounter(const char* name, double value) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.active()) return;
  TraceBuffer* buffer = tracer.ThreadBuffer();
  if (buffer != nullptr) buffer->CounterSample(name, value);
}

}  // namespace trace_internal

#define IE_TRACE_CONCAT_INNER(a, b) a##b
#define IE_TRACE_CONCAT(a, b) IE_TRACE_CONCAT_INNER(a, b)

/// Begin/end span covering the enclosing scope. `name` must be a string
/// literal (it is stored by pointer until export).
#define IE_TRACE_SCOPE(name) \
  ::ie::TraceSpan IE_TRACE_CONCAT(ie_trace_span_, __LINE__)(name)

#define IE_TRACE_INSTANT(name) ::ie::trace_internal::RecordInstant(name)

/// Time series sample ('C' phase): renders as a counter track in
/// Perfetto, making queue depths and detector staleness plottable.
#define IE_TRACE_COUNTER(name, value) \
  ::ie::trace_internal::RecordCounter(name, static_cast<double>(value))

#else  // !IE_OBSERVABILITY

/// No-op stand-in so direct RAII span uses compile in stripped builds.
class TraceSpan {
 public:
  explicit TraceSpan(const char* /*name*/) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#define IE_TRACE_SCOPE(name)
#define IE_TRACE_INSTANT(name) do {} while (0)
#define IE_TRACE_COUNTER(name, value) do {} while (0)

#endif  // IE_OBSERVABILITY

}  // namespace ie
