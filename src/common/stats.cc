#include "common/stats.h"

namespace ie {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

}  // namespace ie
