// Chrome trace-event JSON writer for TraceBuffer contents. Emits the
// "JSON Object Format" ({"traceEvents": [...]}) understood by
// chrome://tracing and Perfetto's legacy importer:
//   B/E  duration begin/end        {"name","ph","ts","pid","tid"}
//   I    instant (thread-scoped)   + "s":"t"
//   C    counter sample            + "args":{"value": v}
// Timestamps are microseconds with sub-µs precision kept as decimals.
// detlint: export-path — all floating values go through AppendJsonNumber
// (locale-independent, round-trip exact; see DESIGN.md §12).
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/trace.h"

namespace ie {

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendEvent(std::string* out, const TraceEvent& ev, uint32_t tid,
                 bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("  {\"name\": \"");
  AppendEscaped(out, ev.name);
  out->append("\", \"ph\": \"");
  out->push_back(ev.phase);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\", \"ts\": %" PRIu64 ".%03u",
                ev.ts_ns / 1000, static_cast<unsigned>(ev.ts_ns % 1000));
  out->append(buf);
  std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %u", tid);
  out->append(buf);
  if (ev.phase == 'I') {
    out->append(", \"s\": \"t\"");
  } else if (ev.phase == 'C') {
    out->append(", \"args\": {\"value\": ");
    AppendJsonNumber(out, ev.value);
    out->append("}");
  }
  out->push_back('}');
}

}  // namespace

Status ExportChromeTrace(
    const std::vector<std::unique_ptr<TraceBuffer>>& buffers,
    size_t dropped_events, const std::string& path) {
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"traceEvents\": [\n");
  bool first = true;
  for (const auto& buffer : buffers) {
    const size_t size = buffer->size();
    uint64_t last_ts_ns = 0;
    // Names of spans begun but not ended within [0, size): a stack, since
    // spans on one thread nest.
    std::vector<const char*> open;
    for (size_t i = 0; i < size; ++i) {
      const TraceEvent& ev = buffer->event(i);
      AppendEvent(&out, ev, buffer->tid(), &first);
      last_ts_ns = ev.ts_ns;
      if (ev.phase == 'B') {
        open.push_back(ev.name);
      } else if (ev.phase == 'E' && !open.empty()) {
        open.pop_back();
      }
    }
    // Close spans that were still open when the session stopped (e.g. a
    // span around the export call itself) so the trace stays balanced.
    while (!open.empty()) {
      TraceEvent synthetic;
      synthetic.name = open.back();
      synthetic.phase = 'E';
      synthetic.ts_ns = last_ts_ns;
      AppendEvent(&out, synthetic, buffer->tid(), &first);
      open.pop_back();
    }
  }
  out.append("\n],\n");
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"otherData\": {\"dropped_events\": %zu},\n", dropped_events);
  out.append(buf);
  out.append("\"displayTimeUnit\": \"ms\"}\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const int close_rc = std::fclose(f);
  if (written != out.size() || close_rc != 0) {
    return Status::Internal("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace ie
