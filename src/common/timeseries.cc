#include "common/timeseries.h"

namespace ie {

TimeSeries::TimeSeries(size_t capacity) : ring_(capacity) {}

uint64_t TimeSeries::Append(double value) {
  MutexLock lock(mu_);
  return ring_.Append(
      [value](uint64_t index) { return TimeSeriesSample{index, value}; });
}

std::vector<TimeSeriesSample> TimeSeries::Snapshot() const {
  MutexLock lock(mu_);
  return ring_.samples();
}

uint64_t TimeSeries::total_appended() const {
  MutexLock lock(mu_);
  return ring_.total_appended();
}

uint64_t TimeSeries::stride() const {
  MutexLock lock(mu_);
  return ring_.stride();
}

}  // namespace ie
