// TimeSeries — a bounded, thread-safe recorder for "value over iteration"
// telemetry (the flight recorder's in-memory learning curves, DESIGN.md
// §15). Appends are O(1) amortized; memory is a hard bound chosen at
// construction. When the ring fills, resolution is halved instead of
// evicting the oldest samples: the series keeps every sample whose index
// is a multiple of the current stride, and on overflow the stride doubles
// and every now-off-stride sample is compacted away. The retained set is
// therefore a pure function of (capacity, total appends) — deterministic
// regardless of timing — and always spans the full run, oldest to newest,
// which is what a learning curve needs (an evicting ring would only show
// the tail).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sync.h"

namespace ie {

/// One retained sample: the 0-based append index and the recorded value.
struct TimeSeriesSample {
  uint64_t index = 0;
  double value = 0.0;
};

/// Deterministic stride-doubling ring over arbitrary record types — the
/// policy core shared by TimeSeries and the pipeline flight recorder
/// (pipeline/recorder.h), which rings whole iteration records. Not
/// thread-safe; single-writer callers embed it directly, concurrent
/// callers go through TimeSeries.
template <typename T>
class SampledRing {
 public:
  /// `capacity` is the hard sample bound; values < 2 are clamped to 2 so
  /// stride doubling always frees space.
  explicit SampledRing(size_t capacity)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  /// Offers the record at the next append index; retains it only when the
  /// index is on the current stride. Returns the index assigned.
  template <typename MakeRecord>
  uint64_t Append(MakeRecord&& make) {
    const uint64_t index = next_index_++;
    if (index % stride_ != 0) return index;
    if (samples_.size() == capacity_) Compact();
    if (index % stride_ == 0) samples_.push_back(make(index));
    return index;
  }

  const std::vector<T>& samples() const { return samples_; }
  std::vector<T>&& TakeSamples() { return std::move(samples_); }
  uint64_t total_appended() const { return next_index_; }
  uint64_t stride() const { return stride_; }
  size_t capacity() const { return capacity_; }

 private:
  /// Doubles the stride and drops every retained sample that is no longer
  /// on it. Retained indices are always multiples of the stride at the
  /// time they were appended; doubling keeps exactly the even multiples,
  /// so after compaction at most ceil(capacity / 2) samples remain.
  void Compact() {
    stride_ *= 2;
    size_t kept = 0;
    for (size_t i = 0; i < samples_.size(); ++i) {
      if (IndexOf(samples_[i]) % stride_ == 0) {
        if (kept != i) samples_[kept] = std::move(samples_[i]);
        ++kept;
      }
    }
    samples_.resize(kept);
  }

  static uint64_t IndexOf(const T& sample) { return sample.index; }

  const size_t capacity_;
  std::vector<T> samples_;
  uint64_t next_index_ = 0;
  uint64_t stride_ = 1;
};

/// Thread-safe named-value series: a SampledRing<TimeSeriesSample> behind
/// a capability-annotated mutex. Appends assign indices under the lock, so
/// the retained *structure* (which indices survive, the stride schedule)
/// is deterministic for a given append count even with concurrent writers;
/// with a single writer the whole series is deterministic.
class TimeSeries {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit TimeSeries(size_t capacity = kDefaultCapacity);

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Records `value` at the next index; returns that index.
  uint64_t Append(double value) EXCLUDES(mu_);

  /// Copy of the retained samples, ascending by index.
  std::vector<TimeSeriesSample> Snapshot() const EXCLUDES(mu_);

  uint64_t total_appended() const EXCLUDES(mu_);

  /// Current downsampling stride (1 until the first compaction).
  uint64_t stride() const EXCLUDES(mu_);

  size_t capacity() const { return ring_.capacity(); }

 private:
  mutable Mutex mu_;
  SampledRing<TimeSeriesSample> ring_ GUARDED_BY(mu_);
};

}  // namespace ie
