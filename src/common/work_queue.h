// Small threading primitives for the speculative extraction executor
// (pipeline/extract_executor.*), alongside ParallelFor in parallel.h:
// a closable MPMC work queue and a countdown latch. Both are mutex +
// condition-variable based — the executor's unit of work (one document's
// extraction) is orders of magnitude heavier than a lock handoff, so
// lock-free machinery would buy nothing here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ie {

/// Unbounded multi-producer / multi-consumer FIFO queue of T with close
/// semantics: Pop blocks until an item arrives or the queue is closed and
/// drained. Push after Close is a silent no-op (shutdown races are benign).
template <typename T>
class WorkQueue {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks for the next item. Returns false when the queue is closed and
  /// empty (the consumer should exit).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Removes every queued (not yet popped) item matching `pred`; returns
  /// how many were removed.
  template <typename Pred>
  size_t RemoveIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(*it)) {
        it = items_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Single-use countdown latch (C++17 stand-in for std::latch): Wait blocks
/// until CountDown has been called `count` times.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace ie
