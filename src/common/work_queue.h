// Small threading primitives for the speculative extraction executor
// (pipeline/extract_executor.*), alongside ParallelFor in parallel.h:
// a closable MPMC work queue and a countdown latch. Both are mutex +
// condition-variable based — the executor's unit of work (one document's
// extraction) is orders of magnitude heavier than a lock handoff, so
// lock-free machinery would buy nothing here.
//
// Lock discipline is stated with the capability annotations from
// common/sync.h and proved at compile time under the `thread-safety`
// preset (DESIGN.md §11): every queue field is GUARDED_BY(mu_), waits are
// explicit `while` loops so the analysis sees predicate reads under the
// lock, and the public surface EXCLUDES(mu_) — these methods must never
// be called from a context already holding the queue's own lock.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/metrics.h"
#include "common/sync.h"

namespace ie {

/// Unbounded multi-producer / multi-consumer FIFO queue of T with close
/// semantics: Pop blocks until an item arrives or the queue is closed and
/// drained. Push after Close rejects the item (returns false) — shutdown
/// races are benign, but the producer can observe the rejection.
///
/// With set_latency_histogram() the queue records each item's
/// enqueue-to-dequeue latency (seconds); without it no clocks are read.
template <typename T>
class WorkQueue {
 public:
  /// Enqueues `item`; false when the queue is already closed (the item is
  /// dropped).
  bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(
          Slot{std::move(item), latency_hist_ != nullptr ? NowNs() : 0});
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks for the next item. Returns false when the queue is closed and
  /// empty (the consumer should exit).
  bool Pop(T* out) EXCLUDES(mu_) {
    uint64_t enqueue_ns = 0;
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.empty()) cv_.Wait(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front().item);
      enqueue_ns = items_.front().enqueue_ns;
      items_.pop_front();
    }
    if (latency_hist_ != nullptr && enqueue_ns != 0) {
      latency_hist_->Observe(static_cast<double>(NowNs() - enqueue_ns) * 1e-9);
    }
    return true;
  }

  /// Removes every queued (not yet popped) item matching `pred`; returns
  /// how many were removed.
  template <typename Pred>
  size_t RemoveIf(Pred pred) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t removed = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(it->item)) {
        it = items_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// Arms enqueue-to-dequeue latency recording into `hist` (seconds).
  /// `hist` must outlive the queue; call before producers/consumers start
  /// (the pointer itself is not synchronized, only the instrument is).
  void set_latency_histogram(Histogram* hist) { latency_hist_ = hist; }

 private:
  struct Slot {
    T item;
    uint64_t enqueue_ns;
  };

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Slot> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  Histogram* latency_hist_ = nullptr;  // set before threads start; unguarded
};

/// Single-use countdown latch (C++17 stand-in for std::latch): Wait blocks
/// until CountDown has been called `count` times. Further CountDowns are
/// benign no-ops and never re-arm the latch; once released, every Wait —
/// including repeated Waits from the same thread — returns immediately.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() EXCLUDES(mu_) {
    bool released = false;
    {
      MutexLock lock(mu_);
      if (count_ > 0 && --count_ == 0) released = true;
    }
    if (released) cv_.NotifyAll();
  }

  void Wait() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ > 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  size_t count_ GUARDED_BY(mu_);
};

}  // namespace ie
