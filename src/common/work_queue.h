// Small threading primitives for the speculative extraction executor
// (pipeline/extract_executor.*), alongside ParallelFor in parallel.h:
// a closable MPMC work queue and a countdown latch. Both are mutex +
// condition-variable based — the executor's unit of work (one document's
// extraction) is orders of magnitude heavier than a lock handoff, so
// lock-free machinery would buy nothing here.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "common/metrics.h"

namespace ie {

/// Unbounded multi-producer / multi-consumer FIFO queue of T with close
/// semantics: Pop blocks until an item arrives or the queue is closed and
/// drained. Push after Close is a silent no-op (shutdown races are benign).
///
/// With set_latency_histogram() the queue records each item's
/// enqueue-to-dequeue latency (seconds); without it no clocks are read.
template <typename T>
class WorkQueue {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(
          Slot{std::move(item), latency_hist_ != nullptr ? NowNs() : 0});
    }
    cv_.notify_one();
  }

  /// Blocks for the next item. Returns false when the queue is closed and
  /// empty (the consumer should exit).
  bool Pop(T* out) {
    uint64_t enqueue_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;
      *out = std::move(items_.front().item);
      enqueue_ns = items_.front().enqueue_ns;
      items_.pop_front();
    }
    if (latency_hist_ != nullptr && enqueue_ns != 0) {
      latency_hist_->Observe(static_cast<double>(NowNs() - enqueue_ns) * 1e-9);
    }
    return true;
  }

  /// Removes every queued (not yet popped) item matching `pred`; returns
  /// how many were removed.
  template <typename Pred>
  size_t RemoveIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(it->item)) {
        it = items_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Arms enqueue-to-dequeue latency recording into `hist` (seconds).
  /// `hist` must outlive the queue; call before producers/consumers start
  /// (the pointer itself is not synchronized, only the instrument is).
  void set_latency_histogram(Histogram* hist) { latency_hist_ = hist; }

 private:
  struct Slot {
    T item;
    uint64_t enqueue_ns;
  };

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Slot> items_;
  bool closed_ = false;
  Histogram* latency_hist_ = nullptr;
};

/// Single-use countdown latch (C++17 stand-in for std::latch): Wait blocks
/// until CountDown has been called `count` times.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace ie
