#include "text/vocabulary.h"

namespace ie {

uint32_t Vocabulary::Intern(std::string_view term) {
  const uint64_t hash = HashBytes(term);
  const uint32_t found = index_.Find(
      hash, [&](uint32_t id) { return terms_[id] == term; });
  if (found != FlatIdIndex::kNotFound) return found;
  const uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.Insert(hash, id);
  return id;
}

uint32_t Vocabulary::Lookup(std::string_view term) const {
  const uint32_t found = index_.Find(
      HashBytes(term), [&](uint32_t id) { return terms_[id] == term; });
  return found == FlatIdIndex::kNotFound ? kInvalidId : found;
}

}  // namespace ie
