#include "text/vocabulary.h"

namespace ie {

uint32_t Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

uint32_t Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidId : it->second;
}

}  // namespace ie
