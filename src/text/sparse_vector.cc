#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace ie {

SparseVector SparseVector::FromUnsorted(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  SparseVector out;
  out.entries_.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().first == e.first) {
      out.entries_.back().second += e.second;
    } else {
      out.entries_.push_back(e);
    }
  }
  // Drop exact zeros (possible after duplicate summation).
  out.entries_.erase(
      std::remove_if(out.entries_.begin(), out.entries_.end(),
                     [](const Entry& e) { return e.second == 0.0f; }),
      out.entries_.end());
  return out;
}

float SparseVector::Get(uint32_t id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, uint32_t key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0f;
}

double SparseVector::L2NormSquared() const {
  double s = 0.0;
  for (const Entry& e : entries_) {
    const double v = static_cast<double>(e.second);
    s += v * v;
  }
  return s;
}

double SparseVector::L2Norm() const { return std::sqrt(L2NormSquared()); }

double SparseVector::L1Norm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += std::fabs(static_cast<double>(e.second));
  return s;
}

void SparseVector::Scale(float factor) {
  for (Entry& e : entries_) e.second *= factor;
}

void SparseVector::Normalize() {
  const double norm = L2Norm();
  if (norm > 0.0) Scale(static_cast<float>(1.0 / norm));
}

double Dot(const SparseVector& a, const SparseVector& b) {
  double s = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      s += static_cast<double>(ia->second) * static_cast<double>(ib->second);
      ++ia;
      ++ib;
    }
  }
  return s;
}

double DeltaDot(const WeightDelta& delta, const SparseVector& x) {
  double s = 0.0;
  auto id_ = delta.entries.begin();
  auto ix = x.begin();
  while (id_ != delta.entries.end() && ix != x.end()) {
    if (id_->first < ix->first) {
      ++id_;
    } else if (ix->first < id_->first) {
      ++ix;
    } else {
      s += id_->second * static_cast<double>(ix->second);
      ++id_;
      ++ix;
    }
  }
  return s;
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  const double na = a.L2Norm();
  const double nb = b.L2Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void WeightVector::AddScaled(const SparseVector& x, double factor) {
  if (!x.empty()) EnsureSize(x.DimensionBound());
  for (const auto& [id, value] : x) {
    w_[id] += factor * static_cast<double>(value);
  }
}

void WeightVector::Scale(double factor) {
  for (double& w : w_) w *= factor;
}

double WeightVector::Dot(const SparseVector& x) const {
  double s = 0.0;
  for (const auto& [id, value] : x) {
    if (id < w_.size()) s += w_[id] * static_cast<double>(value);
  }
  return s;
}

double WeightVector::SignMass(const SparseVector& x) const {
  double s = 0.0;
  for (const auto& [id, value] : x) {
    if (id >= w_.size() || w_[id] == 0.0) continue;
    const double sign = w_[id] > 0.0 ? 1.0 : -1.0;
    s += sign * static_cast<double>(value);
  }
  return s;
}

void WeightVector::DotAndSignMass(const SparseVector& x, double* dot,
                                  double* sign_mass) const {
  // Single walk over x; each accumulator sees the exact operation sequence
  // of its standalone counterpart, so the results are bitwise identical to
  // Dot(x) / SignMass(x) — the incremental re-rank engine depends on that.
  double m = 0.0;
  double z = 0.0;
  for (const auto& [id, value] : x) {
    if (id >= w_.size()) continue;
    const double w = w_[id];
    m += w * static_cast<double>(value);
    if (w == 0.0) continue;
    z += (w > 0.0 ? 1.0 : -1.0) * static_cast<double>(value);
  }
  *dot = m;
  *sign_mass = z;
}

double WeightVector::L2NormSquared() const {
  double s = 0.0;
  for (double w : w_) s += w * w;
  return s;
}

double WeightVector::L1Norm() const {
  double s = 0.0;
  for (double w : w_) s += std::fabs(w);
  return s;
}

size_t WeightVector::NonZeroCount(double eps) const {
  size_t n = 0;
  for (double w : w_) {
    if (std::fabs(w) > eps) ++n;
  }
  return n;
}

void WeightVector::SoftThreshold(double amount) {
  if (amount <= 0.0) return;
  for (double& w : w_) {
    if (w > amount) {
      w -= amount;
    } else if (w < -amount) {
      w += amount;
    } else {
      w = 0.0;
    }
  }
}

double WeightVector::Cosine(const WeightVector& a, const WeightVector& b) {
  const size_t n = std::min(a.w_.size(), b.w_.size());
  double dot = 0.0;
  for (size_t i = 0; i < n; ++i) dot += a.w_[i] * b.w_[i];
  const double na = std::sqrt(a.L2NormSquared());
  const double nb = std::sqrt(b.L2NormSquared());
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (na * nb);
}

WeightDelta WeightVector::DeltaFrom(const WeightVector& prev) const {
  WeightDelta delta;
  const size_t n = std::max(w_.size(), prev.w_.size());
  for (size_t i = 0; i < n; ++i) {
    const double now_i = i < w_.size() ? w_[i] : 0.0;
    const double prev_i = i < prev.w_.size() ? prev.w_[i] : 0.0;
    if (now_i != prev_i) {
      delta.entries.emplace_back(static_cast<uint32_t>(i), now_i - prev_i);
    }
  }
  return delta;
}

SparseVector WeightVector::ToSparse(double eps) const {
  std::vector<SparseVector::Entry> entries;
  for (size_t i = 0; i < w_.size(); ++i) {
    if (std::fabs(w_[i]) > eps) {
      entries.emplace_back(static_cast<uint32_t>(i),
                           static_cast<float>(w_[i]));
    }
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace ie
