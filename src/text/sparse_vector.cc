#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "text/sparse_kernels.h"

namespace ie {

SparseVector SparseVector::FromEntrySpan(Entry* data, size_t n) {
  std::sort(data, data + n,
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  SparseVector out;
  out.ids_.reserve(n);
  out.vals_.reserve(n);
  // Fold duplicates (summed in sorted-array order) and drop exact zeros —
  // the same semantics as the historical AoS FromUnsorted.
  for (size_t i = 0; i < n;) {
    const uint32_t id = data[i].first;
    float value = data[i].second;
    for (++i; i < n && data[i].first == id; ++i) value += data[i].second;
    if (value != 0.0f) {
      out.ids_.push_back(id);
      out.vals_.push_back(value);
    }
  }
  return out;
}

SparseVector SparseVector::FromUnsorted(std::vector<Entry> entries) {
  return FromEntrySpan(entries.data(), entries.size());
}

float SparseVector::Get(uint32_t id) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) {
    return vals_[static_cast<size_t>(it - ids_.begin())];
  }
  return 0.0f;
}

double SparseVector::L2NormSquared() const {
  double s = 0.0;
  for (const float value : vals_) {
    const double v = static_cast<double>(value);
    s += v * v;
  }
  return s;
}

double SparseVector::L2Norm() const { return std::sqrt(L2NormSquared()); }

double SparseVector::L1Norm() const {
  double s = 0.0;
  for (const float value : vals_) s += std::fabs(static_cast<double>(value));
  return s;
}

void SparseVector::Scale(float factor) {
  for (float& value : vals_) value *= factor;
}

void SparseVector::Normalize() {
  const double norm = L2Norm();
  if (norm > 0.0) Scale(static_cast<float>(1.0 / norm));
}

double Dot(const SparseVector& a, const SparseVector& b) {
  return kernels::SparseSparseDot(a.ids(), a.values(), a.size(), b.ids(),
                                  b.values(), b.size());
}

double DeltaDot(const WeightDelta& delta, const SparseVector& x) {
  return kernels::SparseDeltaDot(delta.ids.data(), delta.values.data(),
                                 delta.size(), x.ids(), x.values(), x.size());
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  const double na = a.L2Norm();
  const double nb = b.L2Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void WeightVector::AddScaled(const SparseVector& x, double factor) {
  if (x.empty()) return;
  EnsureSize(x.DimensionBound());
  kernels::Axpy(w_.data(), factor, x.ids(), x.values(), x.size());
}

void WeightVector::Scale(double factor) {
  for (double& w : w_) w *= factor;
}

double WeightVector::Dot(const SparseVector& x) const {
  return kernels::GatherDot(w_.data(), w_.size(), x.ids(), x.values(),
                            x.size());
}

double WeightVector::SignMass(const SparseVector& x) const {
  return kernels::GatherSignMass(w_.data(), w_.size(), x.ids(), x.values(),
                                 x.size());
}

void WeightVector::DotAndSignMass(const SparseVector& x, double* dot,
                                  double* sign_mass) const {
  kernels::GatherDotAndSignMass(w_.data(), w_.size(), x.ids(), x.values(),
                                x.size(), dot, sign_mass);
}

double WeightVector::L2NormSquared() const {
  double s = 0.0;
  for (double w : w_) s += w * w;
  return s;
}

double WeightVector::L1Norm() const {
  double s = 0.0;
  for (double w : w_) s += std::fabs(w);
  return s;
}

size_t WeightVector::NonZeroCount(double eps) const {
  size_t n = 0;
  for (double w : w_) {
    if (std::fabs(w) > eps) ++n;
  }
  return n;
}

void WeightVector::SoftThreshold(double amount) {
  if (amount <= 0.0) return;
  for (double& w : w_) {
    if (w > amount) {
      w -= amount;
    } else if (w < -amount) {
      w += amount;
    } else {
      w = 0.0;
    }
  }
}

double WeightVector::Cosine(const WeightVector& a, const WeightVector& b) {
  const size_t n = std::min(a.w_.size(), b.w_.size());
  double dot = 0.0;
  for (size_t i = 0; i < n; ++i) dot += a.w_[i] * b.w_[i];
  const double na = std::sqrt(a.L2NormSquared());
  const double nb = std::sqrt(b.L2NormSquared());
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (na * nb);
}

WeightDelta WeightVector::DeltaFrom(const WeightVector& prev) const {
  WeightDelta delta;
  const size_t n = std::max(w_.size(), prev.w_.size());
  for (size_t i = 0; i < n; ++i) {
    const double now_i = i < w_.size() ? w_[i] : 0.0;
    const double prev_i = i < prev.w_.size() ? prev.w_[i] : 0.0;
    if (now_i != prev_i) {
      delta.Add(static_cast<uint32_t>(i), now_i - prev_i);
    }
  }
  return delta;
}

SparseVector WeightVector::ToSparse(double eps) const {
  std::vector<SparseVector::Entry> entries;
  for (size_t i = 0; i < w_.size(); ++i) {
    if (std::fabs(w_[i]) > eps) {
      entries.emplace_back(static_cast<uint32_t>(i),
                           static_cast<float>(w_[i]));
    }
  }
  return SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace ie
