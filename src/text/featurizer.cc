#include "text/featurizer.h"

#include <cmath>
#include <unordered_map>

namespace ie {

namespace {

inline uint64_t BigramKey(TokenId a, TokenId b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

}  // namespace

uint32_t Featurizer::BigramFeatureId(TokenId a, TokenId b) const {
  const uint64_t key = BigramKey(a, b);
  {
    ReaderLock lock(bigram_mu_);
    auto it = bigram_ids_.find(key);
    if (it != bigram_ids_.end()) return it->second;
  }
  WriterLock lock(bigram_mu_);
  auto it = bigram_ids_.find(key);
  if (it != bigram_ids_.end()) return it->second;
  const uint32_t id =
      vocab_->Intern(vocab_->Term(a) + "_" + vocab_->Term(b));
  bigram_ids_.emplace(key, id);
  return id;
}

void Featurizer::WarmBigrams(const Document& doc) const {
  if (!options_.use_bigrams) return;
  for (const Sentence& sentence : doc.sentences) {
    for (size_t i = 0; i + 1 < sentence.tokens.size(); ++i) {
      BigramFeatureId(sentence.tokens[i], sentence.tokens[i + 1]);
    }
  }
}

void Featurizer::CollectEntries(
    const Document& doc, std::vector<SparseVector::Entry>& entries) const {
  size_t total_tokens = 0;
  for (const Sentence& sentence : doc.sentences) {
    total_tokens += sentence.tokens.size();
  }
  std::unordered_map<uint32_t, float> counts;
  counts.reserve(total_tokens * (options_.use_bigrams ? 2 : 1));
  for (const Sentence& sentence : doc.sentences) {
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      counts[sentence.tokens[i]] += 1.0f;
      if (options_.use_bigrams && i + 1 < sentence.tokens.size()) {
        counts[BigramFeatureId(sentence.tokens[i],
                               sentence.tokens[i + 1])] += 1.0f;
      }
    }
  }
  entries.reserve(entries.size() + counts.size());
  // DETERMINISM: order-insensitive (one entry per feature id, value
  // independent of visit order; FromUnsorted re-sorts entries by id)
  for (const auto& [id, tf] : counts) {
    const float value =
        options_.log_tf ? 1.0f + std::log(tf) : tf;
    entries.emplace_back(id, value);
  }
}

SparseVector Featurizer::Finish(
    std::vector<SparseVector::Entry> entries) const {
  if (!idf_.empty()) {
    for (auto& [id, value] : entries) {
      value *= id < idf_.size() ? idf_[id] : default_idf_;
    }
  }
  SparseVector v = SparseVector::FromUnsorted(std::move(entries));
  if (options_.l2_normalize) v.Normalize();
  return v;
}

void Featurizer::SetIdf(std::vector<float> idf, float default_idf) {
  idf_ = std::move(idf);
  default_idf_ = default_idf;
}

SparseVector Featurizer::Featurize(const Document& doc) const {
  std::vector<SparseVector::Entry> entries;
  CollectEntries(doc, entries);
  return Finish(std::move(entries));
}

SparseVector Featurizer::Featurize(
    const Document& doc,
    const std::vector<std::string>& attribute_values) const {
  std::vector<SparseVector::Entry> entries;
  CollectEntries(doc, entries);
  for (const std::string& value : attribute_values) {
    entries.emplace_back(AttributeFeatureId(value), 1.0f);
  }
  return Finish(std::move(entries));
}

uint32_t Featurizer::AttributeFeatureId(std::string_view value) const {
  std::string feature = "attr:";
  feature += value;
  return vocab_->Intern(feature);
}

}  // namespace ie
