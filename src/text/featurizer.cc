#include "text/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"

namespace ie {

namespace {

inline uint64_t BigramKey(TokenId a, TokenId b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

// Per-thread featurization scratch: every transient of the per-document
// hot loop (the open-addressed count table and the entry staging array) is
// bump-allocated from this arena and recycled between documents, so
// steady-state featurization never round-trips the global allocator — the
// returned SparseVector's own arrays are the only per-doc allocations
// left. thread_local because the speculative executor featurizes on
// worker threads.
Arena& ScratchArena() {
  thread_local Arena arena;
  return arena;
}

// Open-addressed feature-count accumulator over arena storage. Keys are
// stored as id+1 so 0 marks an empty slot (feature id 0 is valid;
// Vocabulary::kInvalidId is never interned). Capacity is sized per
// document for a load factor of at most 1/2.
struct CountTable {
  uint32_t* keys;  // feature id + 1; 0 = empty
  float* counts;
  size_t mask;

  CountTable(Arena& arena, size_t max_distinct) {
    size_t cap = 16;
    while (cap < max_distinct * 2) cap *= 2;
    keys = arena.AllocateArray<uint32_t>(cap);
    counts = arena.AllocateArray<float>(cap);
    std::fill(keys, keys + cap, 0u);
    mask = cap - 1;
  }

  void Bump(uint32_t id) {
    size_t i = Mix64(id) & mask;
    while (true) {
      if (keys[i] == id + 1) {
        counts[i] += 1.0f;
        return;
      }
      if (keys[i] == 0) {
        keys[i] = id + 1;
        counts[i] = 1.0f;
        return;
      }
      i = (i + 1) & mask;
    }
  }
};

}  // namespace

uint32_t Featurizer::BigramFeatureId(TokenId a, TokenId b) const {
  const uint64_t key = BigramKey(a, b);
  {
    ReaderLock lock(bigram_mu_);
    if (const uint32_t* id = bigram_ids_.Find(key)) return *id;
  }
  WriterLock lock(bigram_mu_);
  if (const uint32_t* id = bigram_ids_.Find(key)) return *id;
  const uint32_t id =
      vocab_->Intern(vocab_->Term(a) + "_" + vocab_->Term(b));
  bigram_ids_.Emplace(key, id);
  return id;
}

void Featurizer::WarmBigrams(const Document& doc) const {
  if (!options_.use_bigrams) return;
  for (const Sentence& sentence : doc.sentences) {
    for (size_t i = 0; i + 1 < sentence.tokens.size(); ++i) {
      BigramFeatureId(sentence.tokens[i], sentence.tokens[i + 1]);
    }
  }
}

SparseVector Featurizer::FeaturizeImpl(
    const Document& doc,
    const std::vector<std::string>* attribute_values) const {
  Arena& arena = ScratchArena();
  arena.Reset();

  size_t total_tokens = 0;
  for (const Sentence& sentence : doc.sentences) {
    total_tokens += sentence.tokens.size();
  }
  const size_t max_distinct =
      total_tokens * (options_.use_bigrams ? 2u : 1u) + 1;
  CountTable table(arena, max_distinct);
  for (const Sentence& sentence : doc.sentences) {
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      table.Bump(sentence.tokens[i]);
      if (options_.use_bigrams && i + 1 < sentence.tokens.size()) {
        table.Bump(
            BigramFeatureId(sentence.tokens[i], sentence.tokens[i + 1]));
      }
    }
  }

  const size_t max_entries =
      max_distinct + (attribute_values ? attribute_values->size() : 0);
  SparseVector::Entry* entries =
      arena.AllocateArray<SparseVector::Entry>(max_entries);
  size_t n = 0;
  // Slot-order visit of the count table. DETERMINISM: order-insensitive
  // (one entry per feature id, value independent of visit order;
  // FromEntrySpan re-sorts entries by id).
  for (size_t i = 0; i <= table.mask; ++i) {
    if (table.keys[i] == 0) continue;
    const float tf = table.counts[i];
    entries[n++] = {table.keys[i] - 1,
                    options_.log_tf ? 1.0f + std::log(tf) : tf};
  }
  if (attribute_values != nullptr) {
    for (const std::string& value : *attribute_values) {
      entries[n++] = {AttributeFeatureId(value), 1.0f};
    }
  }
  if (!idf_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      entries[i].second *=
          entries[i].first < idf_.size() ? idf_[entries[i].first]
                                         : default_idf_;
    }
  }
  SparseVector v = SparseVector::FromEntrySpan(entries, n);
  if (options_.l2_normalize) v.Normalize();
  return v;
}

void Featurizer::SetIdf(std::vector<float> idf, float default_idf) {
  idf_ = std::move(idf);
  default_idf_ = default_idf;
}

SparseVector Featurizer::Featurize(const Document& doc) const {
  return FeaturizeImpl(doc, nullptr);
}

SparseVector Featurizer::Featurize(
    const Document& doc,
    const std::vector<std::string>& attribute_values) const {
  return FeaturizeImpl(doc, &attribute_values);
}

uint32_t Featurizer::AttributeFeatureId(std::string_view value) const {
  std::string feature = "attr:";
  feature += value;
  return vocab_->Intern(feature);
}

}  // namespace ie
