// Text ingestion: lowercasing word tokenizer and rule-based sentence
// splitter, used by the examples and by tests that build documents from raw
// prose (the synthetic corpus generator emits token ids directly).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

/// Splits text into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters; everything else is a separator, except that
/// internal apostrophes and hyphens are kept ("o'brien", "man-made").
std::vector<std::string> TokenizeWords(std::string_view text);

/// Splits raw text into sentence strings on '.', '!', '?' followed by
/// whitespace/end, keeping abbreviations like "u.s." intact heuristically
/// (a single-letter prefix before the period does not end a sentence).
std::vector<std::string> SplitSentences(std::string_view text);

/// Full ingestion: sentence-split, tokenize, and intern into `vocab`.
Document TextToDocument(DocId id, std::string_view text, Vocabulary& vocab);

}  // namespace ie
