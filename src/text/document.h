// Document representation. Tokens are interned ids against a shared
// Vocabulary; documents store sentences of token ids, which is what both
// the extractors (sentence-scoped relation detection) and the featurizer
// (bag-of-words) consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace ie {

using TokenId = uint32_t;
using DocId = uint32_t;

struct Sentence {
  std::vector<TokenId> tokens;

  size_t size() const { return tokens.size(); }
};

struct Document {
  DocId id = 0;
  std::vector<Sentence> sentences;

  size_t TokenCount() const {
    size_t n = 0;
    for (const Sentence& s : sentences) n += s.size();
    return n;
  }
};

/// Reconstructs a whitespace-joined string for a sentence (debugging,
/// examples). Token ids must be valid in `vocab`.
std::string SentenceToString(const Sentence& sentence,
                             const Vocabulary& vocab);

}  // namespace ie
