// Hot sparse arithmetic kernels over the structure-of-arrays layout
// (DESIGN.md §14): contiguous sorted uint32 id arrays + parallel float
// value arrays gathered against the dense double weight array.
//
// Determinism contract: every kernel accumulates into a single
// left-to-right double chain — no multi-accumulator reassociation — so
// results are bitwise identical to the scalar reference implementations
// (tests/sparse_kernel_test.cc proves this at float-bit granularity, and
// the PR 6 golden-hash matrix pins it end-to-end). The wins come from the
// layout (one cache line holds 16 ids), hoisted bounds checks, branchless
// sign arithmetic, and unrolled gather loops — not from reordering math.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ie {
namespace kernels {

/// Number of leading entries of the ascending-sorted id array that fall
/// below `dim`. Hoists the per-entry `id < dim` bounds check out of the
/// gather loops: entries past the prefix contribute exactly 0 under the
/// grow-on-write weight semantics.
inline size_t BoundedPrefix(const uint32_t* ids, size_t n, size_t dim) {
  if (n == 0 || ids[n - 1] < dim) return n;
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ids[mid] < dim) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Σ w[ids[i]] * vals[i] over entries with ids[i] < dim, in entry order.
inline double GatherDot(const double* w, size_t dim, const uint32_t* ids,
                        const float* vals, size_t n) {
  const size_t m = BoundedPrefix(ids, n, dim);
  double s = 0.0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    s += w[ids[i + 0]] * static_cast<double>(vals[i + 0]);
    s += w[ids[i + 1]] * static_cast<double>(vals[i + 1]);
    s += w[ids[i + 2]] * static_cast<double>(vals[i + 2]);
    s += w[ids[i + 3]] * static_cast<double>(vals[i + 3]);
  }
  for (; i < m; ++i) {
    s += w[ids[i]] * static_cast<double>(vals[i]);
  }
  return s;
}

// Branchless sign(w) as a double: +1, -1, or ±0. Accumulating
// sign(w)*v is bitwise identical to the branchy "skip w == 0" reference:
// the skipped term is (±0.0)*v = ±0.0, and adding ±0.0 to the accumulator
// never changes it — the accumulator can never hold -0.0 (it starts at
// +0.0, and a sum of values can only be -0.0 when both operands are -0.0,
// which is unreachable from +0.0).
inline double SignOf(double w) {
  return (w > 0.0 ? 1.0 : 0.0) - (w < 0.0 ? 1.0 : 0.0);
}

/// Σ sign(w[ids[i]]) * vals[i] over entries with ids[i] < dim.
inline double GatherSignMass(const double* w, size_t dim, const uint32_t* ids,
                             const float* vals, size_t n) {
  const size_t m = BoundedPrefix(ids, n, dim);
  double s = 0.0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    s += SignOf(w[ids[i + 0]]) * static_cast<double>(vals[i + 0]);
    s += SignOf(w[ids[i + 1]]) * static_cast<double>(vals[i + 1]);
    s += SignOf(w[ids[i + 2]]) * static_cast<double>(vals[i + 2]);
    s += SignOf(w[ids[i + 3]]) * static_cast<double>(vals[i + 3]);
  }
  for (; i < m; ++i) {
    s += SignOf(w[ids[i]]) * static_cast<double>(vals[i]);
  }
  return s;
}

/// Fused gather-dot: dot and sign mass in one pass over the id array, each
/// accumulator seeing the exact operation sequence of its standalone
/// kernel (so results stay bitwise identical to GatherDot/GatherSignMass).
inline void GatherDotAndSignMass(const double* w, size_t dim,
                                 const uint32_t* ids, const float* vals,
                                 size_t n, double* dot, double* sign_mass) {
  const size_t m = BoundedPrefix(ids, n, dim);
  double md = 0.0;
  double z = 0.0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double w0 = w[ids[i + 0]];
    const double w1 = w[ids[i + 1]];
    const double w2 = w[ids[i + 2]];
    const double w3 = w[ids[i + 3]];
    const double v0 = static_cast<double>(vals[i + 0]);
    const double v1 = static_cast<double>(vals[i + 1]);
    const double v2 = static_cast<double>(vals[i + 2]);
    const double v3 = static_cast<double>(vals[i + 3]);
    md += w0 * v0;
    md += w1 * v1;
    md += w2 * v2;
    md += w3 * v3;
    z += SignOf(w0) * v0;
    z += SignOf(w1) * v1;
    z += SignOf(w2) * v2;
    z += SignOf(w3) * v3;
  }
  for (; i < m; ++i) {
    const double w_i = w[ids[i]];
    const double v = static_cast<double>(vals[i]);
    md += w_i * v;
    z += SignOf(w_i) * v;
  }
  *dot = md;
  *sign_mass = z;
}

/// w[ids[i]] += factor * vals[i] (ids must all be < dim; SparseVector ids
/// are unique, so the unrolled stores never alias).
inline void Axpy(double* w, double factor, const uint32_t* ids,
                 const float* vals, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    w[ids[i + 0]] += factor * static_cast<double>(vals[i + 0]);
    w[ids[i + 1]] += factor * static_cast<double>(vals[i + 1]);
    w[ids[i + 2]] += factor * static_cast<double>(vals[i + 2]);
    w[ids[i + 3]] += factor * static_cast<double>(vals[i + 3]);
  }
  for (; i < n; ++i) {
    w[ids[i]] += factor * static_cast<double>(vals[i]);
  }
}

/// Sorted-merge dot of two sparse vectors; matched products accumulate in
/// ascending id order.
inline double SparseSparseDot(const uint32_t* a_ids, const float* a_vals,
                              size_t a_n, const uint32_t* b_ids,
                              const float* b_vals, size_t b_n) {
  double s = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a_n && ib < b_n) {
    const uint32_t da = a_ids[ia];
    const uint32_t db = b_ids[ib];
    if (da < db) {
      ++ia;
    } else if (db < da) {
      ++ib;
    } else {
      s += static_cast<double>(a_vals[ia]) * static_cast<double>(b_vals[ib]);
      ++ia;
      ++ib;
    }
  }
  return s;
}

/// Sorted-merge Δw·x where the delta side carries double values.
inline double SparseDeltaDot(const uint32_t* d_ids, const double* d_vals,
                             size_t d_n, const uint32_t* x_ids,
                             const float* x_vals, size_t x_n) {
  double s = 0.0;
  size_t id = 0;
  size_t ix = 0;
  while (id < d_n && ix < x_n) {
    const uint32_t dd = d_ids[id];
    const uint32_t dx = x_ids[ix];
    if (dd < dx) {
      ++id;
    } else if (dx < dd) {
      ++ix;
    } else {
      s += d_vals[id] * static_cast<double>(x_vals[ix]);
      ++id;
      ++ix;
    }
  }
  return s;
}

}  // namespace kernels
}  // namespace ie
