// Featurization: documents -> sparse feature vectors. The feature space is
// the shared Vocabulary, so word features and tuple-attribute features
// ("attr:tsunami") coexist in one id space, as the paper's ranking models
// require ("the documents' words as well as the attribute values of tuples
// extracted from them as features").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/sync.h"
#include "text/document.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace ie {

struct FeaturizerOptions {
  /// Add adjacent-pair phrase features ("w1_w2") in addition to unigrams.
  bool use_bigrams = false;
  /// Use 1 + ln(tf) instead of raw term frequency.
  bool log_tf = true;
  /// ℓ2-normalize the final vector (standard for SVM-based text models).
  bool l2_normalize = true;
};

class Featurizer {
 public:
  /// `vocab` must outlive the featurizer; bigram and attribute features are
  /// interned into it on demand.
  Featurizer(Vocabulary* vocab, FeaturizerOptions options = {})
      : vocab_(vocab), options_(options) {}

  /// Bag-of-words (and optionally bigram) features for a document.
  ///
  /// Thread safety: safe to call concurrently (the speculative extraction
  /// executor featurizes on worker threads) provided nothing else mutates
  /// the vocabulary concurrently. Bigram ids come from a shared
  /// read-mostly cache; interning a *new* bigram or attribute feature
  /// mutates the vocabulary, so parallel phases must be preceded by
  /// WarmBigrams / AttributeFeatureId passes over the documents involved
  /// (FeaturizePool and the pipeline do this).
  SparseVector Featurize(const Document& doc) const;

  /// Featurize and append tuple-attribute features: one feature
  /// "attr:<value>" per distinct attribute value, weight 1 (before
  /// normalization).
  SparseVector Featurize(const Document& doc,
                         const std::vector<std::string>& attribute_values)
      const;

  /// Id of the attribute feature for `value` (interned).
  uint32_t AttributeFeatureId(std::string_view value) const;

  /// Id of the bigram feature for adjacent tokens (a, b), via a cache
  /// keyed by the token-id pair — the hot path never rebuilds the
  /// "<term>_<term>" string (only a first-ever miss interns it).
  uint32_t BigramFeatureId(TokenId a, TokenId b) const EXCLUDES(bigram_mu_);

  /// Interns every adjacent-pair bigram of `doc` into the cache (no-op
  /// without use_bigrams). Called serially in document order before
  /// parallel featurization so bigram ids are assigned deterministically.
  void WarmBigrams(const Document& doc) const;

  /// Installs inverse-document-frequency weights (indexed by feature id;
  /// features beyond the table — e.g. attribute features interned later —
  /// get `default_idf`). Values are multiplied into term weights before
  /// normalization.
  void SetIdf(std::vector<float> idf, float default_idf = 3.0f);
  bool has_idf() const { return !idf_.empty(); }

  const FeaturizerOptions& options() const { return options_; }
  Vocabulary* vocab() const { return vocab_; }

 private:
  SparseVector FeaturizeImpl(
      const Document& doc,
      const std::vector<std::string>* attribute_values) const;

  Vocabulary* vocab_;
  FeaturizerOptions options_;
  std::vector<float> idf_;
  float default_idf_ = 3.0f;

  // Packed (TokenId, TokenId) -> interned bigram feature id, in an
  // open-addressing flat map whose splitmix64 mixer hashes the packed key
  // directly (std::hash<uint64_t> is the identity on libstdc++ — a
  // clustering hazard for open addressing). Read-mostly after the warm
  // pass; the shared mutex only serializes first-ever misses. The
  // double-checked interning in BigramFeatureId needs no analysis escape:
  // the racy check runs under ReaderLock (shared suffices for reads) and
  // the recheck-and-insert under WriterLock.
  mutable SharedMutex bigram_mu_;
  // ARCH: const-escape (synchronized interior: the bigram cache is the
  // one mutable member behind SharedContext's const Featurizer facade —
  // reads take bigram_mu_ shared, first-ever misses intern under the
  // writer lock, and the serial WarmBigrams pass makes id assignment
  // deterministic; see DESIGN.md §16)
  mutable FlatHashMap<uint64_t, uint32_t> bigram_ids_ GUARDED_BY(bigram_mu_);
};

}  // namespace ie
