// Sparse feature vectors. Documents are featurized once into an immutable,
// index-sorted SparseVector; learned models keep a dense, growable
// WeightVector (the feature space expands as extraction progresses).
//
// SparseVector uses a structure-of-arrays layout (DESIGN.md §14): one
// contiguous sorted uint32 id array plus a parallel float value array.
// The scoring kernels (sparse_kernels.h) stream the id array a cache line
// at a time; iteration stays source-compatible through a proxy iterator
// that materializes (id, value) pairs on the fly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

namespace ie {

/// Immutable-ish sparse vector: parallel (feature id, value) arrays sorted
/// by id.
class SparseVector {
 public:
  using Entry = std::pair<uint32_t, float>;

  /// Proxy iterator yielding Entry pairs by value, so range-for loops and
  /// structured bindings over a SparseVector look exactly like iteration
  /// over the old vector<Entry> layout.
  class ConstIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = const Entry*;
    using reference = Entry;

    ConstIterator(const uint32_t* id, const float* value)
        : id_(id), value_(value) {}

    Entry operator*() const { return {*id_, *value_}; }

    // Arrow proxy so `it->first` keeps working on the by-value Entry.
    struct ArrowProxy {
      Entry entry;
      const Entry* operator->() const { return &entry; }
    };
    ArrowProxy operator->() const { return {{*id_, *value_}}; }

    ConstIterator& operator++() {
      ++id_;
      ++value_;
      return *this;
    }
    bool operator==(const ConstIterator& other) const {
      return id_ == other.id_;
    }
    bool operator!=(const ConstIterator& other) const {
      return id_ != other.id_;
    }

   private:
    const uint32_t* id_;
    const float* value_;
  };

  SparseVector() = default;

  /// Builds from possibly unsorted, possibly duplicated entries; duplicates
  /// are summed, zero values dropped.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  /// Same semantics over caller-owned (e.g. arena) storage, which is used
  /// as sort scratch. The per-document featurization hot path builds its
  /// staging array in an Arena and finishes through this overload.
  static SparseVector FromEntrySpan(Entry* data, size_t n);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// SoA accessors for the kernels (sparse_kernels.h).
  const uint32_t* ids() const { return ids_.data(); }
  const float* values() const { return vals_.data(); }
  uint32_t id(size_t i) const { return ids_[i]; }
  float value(size_t i) const { return vals_[i]; }

  ConstIterator begin() const {
    return ConstIterator(ids_.data(), vals_.data());
  }
  ConstIterator end() const {
    return ConstIterator(ids_.data() + ids_.size(),
                         vals_.data() + vals_.size());
  }

  /// Value at feature id (0 if absent). O(log n).
  float Get(uint32_t id) const;

  double L2NormSquared() const;
  double L2Norm() const;
  double L1Norm() const;

  /// Largest feature id + 1; 0 when empty.
  uint32_t DimensionBound() const {
    return ids_.empty() ? 0 : ids_.back() + 1;
  }

  /// Scales all values in place.
  void Scale(float factor);

  /// ℓ2-normalizes in place (no-op on the zero vector).
  void Normalize();

 private:
  std::vector<uint32_t> ids_;
  std::vector<float> vals_;
};

/// Dot product of two sorted sparse vectors. O(n + m).
double Dot(const SparseVector& a, const SparseVector& b);

/// Cosine similarity; 0 when either vector is zero.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Sparse double-precision weight change between two model snapshots:
/// parallel (feature id, w_now - w_prev) arrays sorted by id, changed
/// features only — the same SoA shape as SparseVector so the delta-dot
/// kernel streams both sides.
struct WeightDelta {
  std::vector<uint32_t> ids;
  std::vector<double> values;

  void Add(uint32_t id, double value) {
    ids.push_back(id);
    values.push_back(value);
  }
  bool empty() const { return ids.empty(); }
  size_t size() const { return ids.size(); }
};

/// Δw · x over the delta's support. O(|delta| + |x|) sorted merge,
/// accumulated in delta-entry order.
double DeltaDot(const WeightDelta& delta, const SparseVector& x);

/// Dense, growable weight vector used by the online learners. Indexing past
/// the current size reads as 0; writes grow the vector.
class WeightVector {
 public:
  WeightVector() = default;
  explicit WeightVector(size_t dim) : w_(dim, 0.0) {}

  double Get(uint32_t id) const {
    return id < w_.size() ? w_[id] : 0.0;
  }
  void Set(uint32_t id, double value) {
    EnsureSize(id + 1);
    w_[id] = value;
  }
  void Add(uint32_t id, double delta) {
    EnsureSize(id + 1);
    w_[id] += delta;
  }

  size_t dimension() const { return w_.size(); }
  const std::vector<double>& raw() const { return w_; }
  std::vector<double>& raw() { return w_; }

  /// w += factor * x.
  void AddScaled(const SparseVector& x, double factor);

  /// Multiplies every weight by factor (lazy-scaling callers may prefer
  /// keeping an external scale; this is the eager version).
  void Scale(double factor);

  /// Dot product with a sparse vector (gather kernel over the id array).
  double Dot(const SparseVector& x) const;

  double L2NormSquared() const;
  double L1Norm() const;

  /// Number of non-zero weights (|w_i| > eps). The paper's in-training
  /// feature selection is judged by this count.
  size_t NonZeroCount(double eps = 1e-12) const;

  /// Calls fn(id, value) for every stored non-zero weight, in id order.
  /// O(dimension) scan but without per-id bounds-checked Get calls; the
  /// update-detection and delta-re-rank paths iterate supports this way.
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (uint32_t id = 0; id < w_.size(); ++id) {
      if (w_[id] != 0.0) fn(id, w_[id]);
    }
  }

  /// Sparse difference this - prev: one entry per feature whose weight
  /// changed, with value this_i - prev_i (exact IEEE subtraction; features
  /// with bitwise-equal weights are omitted). This is the per-update weight
  /// delta the incremental re-rank engine consumes — elastic-net keeps it
  /// small relative to the vocabulary. Double precision on purpose:
  /// incremental margins must agree with full rescoring to the last bit
  /// after the score's float cast.
  WeightDelta DeltaFrom(const WeightVector& prev) const;

  /// Sign mass Σ_i sign(w_i)·x_i over x's support — the companion quantity
  /// to Dot() that the incremental re-rank engine caches per document: a
  /// uniform ℓ1 penalty P moves the margin by exactly -P·SignMass(x).
  double SignMass(const SparseVector& x) const;

  /// Dot(x) and SignMass(x) in one walk over x, bitwise identical to the
  /// standalone calls — full rescoring passes of the incremental re-rank
  /// engine cache both without paying two gathers.
  void DotAndSignMass(const SparseVector& x, double* dot,
                      double* sign_mass) const;

  /// Soft-threshold every weight toward zero by `amount` (ℓ1 proximal
  /// step): w_i <- sign(w_i) * max(0, |w_i| - amount).
  void SoftThreshold(double amount);

  /// Cosine similarity between two weight vectors (0 if either is zero).
  static double Cosine(const WeightVector& a, const WeightVector& b);

  /// Sparse snapshot of the non-zero weights.
  SparseVector ToSparse(double eps = 1e-12) const;

 private:
  void EnsureSize(size_t n) {
    if (w_.size() < n) w_.resize(n, 0.0);
  }

  std::vector<double> w_;
};

}  // namespace ie
