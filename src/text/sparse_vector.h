// Sparse feature vectors. Documents are featurized once into an immutable,
// index-sorted SparseVector; learned models keep a dense, growable
// WeightVector (the feature space expands as extraction progresses).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace ie {

/// Immutable-ish sparse vector: (feature id, value) pairs sorted by id.
class SparseVector {
 public:
  using Entry = std::pair<uint32_t, float>;

  SparseVector() = default;
  /// Builds from possibly unsorted, possibly duplicated entries; duplicates
  /// are summed, zero values dropped.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Value at feature id (0 if absent). O(log n).
  float Get(uint32_t id) const;

  double L2NormSquared() const;
  double L2Norm() const;
  double L1Norm() const;

  /// Largest feature id + 1; 0 when empty.
  uint32_t DimensionBound() const {
    return entries_.empty() ? 0 : entries_.back().first + 1;
  }

  /// Scales all values in place.
  void Scale(float factor);

  /// ℓ2-normalizes in place (no-op on the zero vector).
  void Normalize();

 private:
  std::vector<Entry> entries_;
};

/// Dot product of two sorted sparse vectors. O(n + m).
double Dot(const SparseVector& a, const SparseVector& b);

/// Cosine similarity; 0 when either vector is zero.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Dense, growable weight vector used by the online learners. Indexing past
/// the current size reads as 0; writes grow the vector.
class WeightVector {
 public:
  WeightVector() = default;
  explicit WeightVector(size_t dim) : w_(dim, 0.0) {}

  double Get(uint32_t id) const {
    return id < w_.size() ? w_[id] : 0.0;
  }
  void Set(uint32_t id, double value) {
    EnsureSize(id + 1);
    w_[id] = value;
  }
  void Add(uint32_t id, double delta) {
    EnsureSize(id + 1);
    w_[id] += delta;
  }

  size_t dimension() const { return w_.size(); }
  const std::vector<double>& raw() const { return w_; }
  std::vector<double>& raw() { return w_; }

  /// w += factor * x.
  void AddScaled(const SparseVector& x, double factor);

  /// Multiplies every weight by factor (lazy-scaling callers may prefer
  /// keeping an external scale; this is the eager version).
  void Scale(double factor);

  /// Dot product with a sparse vector.
  double Dot(const SparseVector& x) const;

  double L2NormSquared() const;
  double L1Norm() const;

  /// Number of non-zero weights (|w_i| > eps). The paper's in-training
  /// feature selection is judged by this count.
  size_t NonZeroCount(double eps = 1e-12) const;

  /// Soft-threshold every weight toward zero by `amount` (ℓ1 proximal
  /// step): w_i <- sign(w_i) * max(0, |w_i| - amount).
  void SoftThreshold(double amount);

  /// Cosine similarity between two weight vectors (0 if either is zero).
  static double Cosine(const WeightVector& a, const WeightVector& b);

  /// Sparse snapshot of the non-zero weights.
  SparseVector ToSparse(double eps = 1e-12) const;

 private:
  void EnsureSize(size_t n) {
    if (w_.size() < n) w_.resize(n, 0.0);
  }

  std::vector<double> w_;
};

}  // namespace ie
