// Sparse feature vectors. Documents are featurized once into an immutable,
// index-sorted SparseVector; learned models keep a dense, growable
// WeightVector (the feature space expands as extraction progresses).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace ie {

/// Immutable-ish sparse vector: (feature id, value) pairs sorted by id.
class SparseVector {
 public:
  using Entry = std::pair<uint32_t, float>;

  SparseVector() = default;
  /// Builds from possibly unsorted, possibly duplicated entries; duplicates
  /// are summed, zero values dropped.
  static SparseVector FromUnsorted(std::vector<Entry> entries);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Value at feature id (0 if absent). O(log n).
  float Get(uint32_t id) const;

  double L2NormSquared() const;
  double L2Norm() const;
  double L1Norm() const;

  /// Largest feature id + 1; 0 when empty.
  uint32_t DimensionBound() const {
    return entries_.empty() ? 0 : entries_.back().first + 1;
  }

  /// Scales all values in place.
  void Scale(float factor);

  /// ℓ2-normalizes in place (no-op on the zero vector).
  void Normalize();

 private:
  std::vector<Entry> entries_;
};

/// Dot product of two sorted sparse vectors. O(n + m).
double Dot(const SparseVector& a, const SparseVector& b);

/// Cosine similarity; 0 when either vector is zero.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Sparse double-precision weight change between two model snapshots:
/// (feature id, w_now - w_prev) sorted by id, changed features only.
struct WeightDelta {
  std::vector<std::pair<uint32_t, double>> entries;

  bool empty() const { return entries.empty(); }
  size_t size() const { return entries.size(); }
};

/// Δw · x over the delta's support. O(|delta| + |x|) sorted merge,
/// accumulated in delta-entry order.
double DeltaDot(const WeightDelta& delta, const SparseVector& x);

/// Dense, growable weight vector used by the online learners. Indexing past
/// the current size reads as 0; writes grow the vector.
class WeightVector {
 public:
  WeightVector() = default;
  explicit WeightVector(size_t dim) : w_(dim, 0.0) {}

  double Get(uint32_t id) const {
    return id < w_.size() ? w_[id] : 0.0;
  }
  void Set(uint32_t id, double value) {
    EnsureSize(id + 1);
    w_[id] = value;
  }
  void Add(uint32_t id, double delta) {
    EnsureSize(id + 1);
    w_[id] += delta;
  }

  size_t dimension() const { return w_.size(); }
  const std::vector<double>& raw() const { return w_; }
  std::vector<double>& raw() { return w_; }

  /// w += factor * x.
  void AddScaled(const SparseVector& x, double factor);

  /// Multiplies every weight by factor (lazy-scaling callers may prefer
  /// keeping an external scale; this is the eager version).
  void Scale(double factor);

  /// Dot product with a sparse vector.
  double Dot(const SparseVector& x) const;

  double L2NormSquared() const;
  double L1Norm() const;

  /// Number of non-zero weights (|w_i| > eps). The paper's in-training
  /// feature selection is judged by this count.
  size_t NonZeroCount(double eps = 1e-12) const;

  /// Calls fn(id, value) for every stored non-zero weight, in id order.
  /// O(dimension) scan but without per-id bounds-checked Get calls; the
  /// update-detection and delta-re-rank paths iterate supports this way.
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (uint32_t id = 0; id < w_.size(); ++id) {
      if (w_[id] != 0.0) fn(id, w_[id]);
    }
  }

  /// Sparse difference this - prev: one entry per feature whose weight
  /// changed, with value this_i - prev_i (exact IEEE subtraction; features
  /// with bitwise-equal weights are omitted). This is the per-update weight
  /// delta the incremental re-rank engine consumes — elastic-net keeps it
  /// small relative to the vocabulary. Double precision on purpose:
  /// incremental margins must agree with full rescoring to the last bit
  /// after the score's float cast.
  WeightDelta DeltaFrom(const WeightVector& prev) const;

  /// Sign mass Σ_i sign(w_i)·x_i over x's support — the companion quantity
  /// to Dot() that the incremental re-rank engine caches per document: a
  /// uniform ℓ1 penalty P moves the margin by exactly -P·SignMass(x).
  double SignMass(const SparseVector& x) const;

  /// Dot(x) and SignMass(x) in one walk over x, bitwise identical to the
  /// standalone calls — full rescoring passes of the incremental re-rank
  /// engine cache both without paying two gathers.
  void DotAndSignMass(const SparseVector& x, double* dot,
                      double* sign_mass) const;

  /// Soft-threshold every weight toward zero by `amount` (ℓ1 proximal
  /// step): w_i <- sign(w_i) * max(0, |w_i| - amount).
  void SoftThreshold(double amount);

  /// Cosine similarity between two weight vectors (0 if either is zero).
  static double Cosine(const WeightVector& a, const WeightVector& b);

  /// Sparse snapshot of the non-zero weights.
  SparseVector ToSparse(double eps = 1e-12) const;

 private:
  void EnsureSize(size_t n) {
    if (w_.size() < n) w_.resize(n, 0.0);
  }

  std::vector<double> w_;
};

}  // namespace ie
