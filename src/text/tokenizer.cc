#include "text/tokenizer.h"

#include <cctype>

namespace ie {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (IsWordChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if ((c == '\'' || c == '-') && !current.empty() &&
               i + 1 < text.size() && IsWordChar(text[i + 1])) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;
    // End of sentence only if followed by whitespace or end of text.
    const bool at_end = (i + 1 == text.size()) ||
                        std::isspace(static_cast<unsigned char>(text[i + 1]));
    if (!at_end) continue;
    // Heuristic: a period after a single letter ("u.s.", middle initials)
    // does not end a sentence.
    if (c == '.' && i >= 1 && IsWordChar(text[i - 1]) &&
        (i < 2 || !IsWordChar(text[i - 2]))) {
      continue;
    }
    const std::string_view piece = text.substr(start, i + 1 - start);
    // Skip pure-whitespace pieces.
    bool has_word = false;
    for (char pc : piece) {
      if (IsWordChar(pc)) {
        has_word = true;
        break;
      }
    }
    if (has_word) sentences.emplace_back(piece);
    start = i + 1;
  }
  if (start < text.size()) {
    const std::string_view piece = text.substr(start);
    for (char pc : piece) {
      if (IsWordChar(pc)) {
        sentences.emplace_back(piece);
        break;
      }
    }
  }
  return sentences;
}

Document TextToDocument(DocId id, std::string_view text, Vocabulary& vocab) {
  Document doc;
  doc.id = id;
  for (const std::string& sentence_text : SplitSentences(text)) {
    Sentence sentence;
    for (const std::string& token : TokenizeWords(sentence_text)) {
      sentence.tokens.push_back(vocab.Intern(token));
    }
    if (!sentence.tokens.empty()) doc.sentences.push_back(std::move(sentence));
  }
  return doc;
}

std::string SentenceToString(const Sentence& sentence,
                             const Vocabulary& vocab) {
  std::string out;
  for (size_t i = 0; i < sentence.tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += vocab.Term(sentence.tokens[i]);
  }
  return out;
}

}  // namespace ie
