// String interning: maps terms (words, phrases, tuple-attribute features)
// to dense uint32 ids. A single Vocabulary is shared across the corpus, the
// featurizer, and the learners, so the feature space can grow while ids
// remain stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ie {

class Vocabulary {
 public:
  static constexpr uint32_t kInvalidId = 0xffffffffu;

  /// Interns the term, returning its id (existing or freshly assigned).
  uint32_t Intern(std::string_view term);

  /// Id of the term, or kInvalidId when absent. Does not modify the vocab.
  uint32_t Lookup(std::string_view term) const;

  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidId;
  }

  /// Term for an id; id must be < size().
  const std::string& Term(uint32_t id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  // Transparent hashing so lookups take string_view without allocating.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, uint32_t, Hash, Eq> index_;
  std::vector<std::string> terms_;
};

}  // namespace ie
