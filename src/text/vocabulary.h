// String interning: maps terms (words, phrases, tuple-attribute features)
// to dense uint32 ids. A single Vocabulary is shared across the corpus, the
// featurizer, and the learners, so the feature space can grow while ids
// remain stable.
//
// The index is an open-addressing FlatIdIndex (common/flat_hash.h): slots
// hold {term hash, id} and equality resolves against terms_, so each term
// string is stored exactly once. Ids are assigned in insertion order and
// never depend on the hash function.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"

namespace ie {

class Vocabulary {
 public:
  static constexpr uint32_t kInvalidId = 0xffffffffu;

  /// Interns the term, returning its id (existing or freshly assigned).
  uint32_t Intern(std::string_view term);

  /// Id of the term, or kInvalidId when absent. Does not modify the vocab.
  uint32_t Lookup(std::string_view term) const;

  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidId;
  }

  /// Term for an id; id must be < size().
  const std::string& Term(uint32_t id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  FlatIdIndex index_;
  std::vector<std::string> terms_;
};

}  // namespace ie
