// Synthetic news-corpus generator (NYT Annotated Corpus substitute; see
// DESIGN.md §2). Documents are topical bags of sentences; useful documents
// for each relation carry planted, extractable relation sentences whose
// vocabulary clusters into subtopics of very different prevalence — so a
// small document sample misses rare subtopics (the paper's motivating
// "volcano" example), keyword retrieval has both recall and precision
// limits, and dense relations are scattered across unrelated topics.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "corpus/corpus.h"

namespace ie {

struct GeneratorOptions {
  size_t num_documents = 20000;
  uint64_t seed = 42;

  /// Split fractions mirror the paper (97k / 671k / 1087k of 1.8M docs).
  double train_fraction = 0.054;
  double dev_fraction = 0.373;  // remainder is the test split

  size_t num_background_topics = 60;
  size_t words_per_topic = 120;

  /// Document shape.
  int min_sentences = 8;
  int max_sentences = 22;
  int min_tokens_per_sentence = 7;
  int max_tokens_per_sentence = 16;

  /// Global scale on all relation densities (1.0 = Table 1 targets).
  double density_scale = 1.0;

  /// Planted-density compensation for imperfect extractor recall (the
  /// trained extractors achieve near-perfect document-level recall on the
  /// synthetic corpus, so no inflation is needed by default).
  double recall_compensation = 1.0;

  /// Per-relation multiplier on the subtopic anchor probability. Used to
  /// build dedicated high-density extractor-training corpora (the paper
  /// uses pre-trained, off-the-shelf extractors).
  std::array<double, kNumRelations> relation_anchor_multiplier = {
      1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  /// Shared vocabulary for auxiliary corpora (null = create a fresh one).
  std::shared_ptr<Vocabulary> shared_vocab;

  /// Convenience preset: a small corpus heavily anchored to one relation,
  /// for training that relation's extractor.
  static GeneratorOptions ForExtractorTraining(RelationId relation,
                                               size_t num_documents,
                                               uint64_t seed);
};

/// Generates a complete corpus (documents, annotations, splits).
Corpus GenerateCorpus(const GeneratorOptions& options);

/// Document-at-a-time generator: the streaming counterpart of
/// GenerateCorpus for corpora too large to hold in memory. Pull documents
/// with Next() (ids are sequential from 0; each call returns one document
/// and its annotations, which the caller owns and may immediately write to
/// disk or index and drop), then call MakeSplits() once after the last
/// document. For a fixed GeneratorOptions the emitted documents, vocabulary
/// and splits are byte-identical to GenerateCorpus — GenerateCorpus is
/// itself implemented on top of this class.
class StreamingCorpusGenerator {
 public:
  explicit StreamingCorpusGenerator(const GeneratorOptions& options);
  ~StreamingCorpusGenerator();
  StreamingCorpusGenerator(StreamingCorpusGenerator&&) noexcept;
  StreamingCorpusGenerator& operator=(StreamingCorpusGenerator&&) noexcept;

  /// The vocabulary documents are interned against. Grows as documents are
  /// generated; stable once num_generated() == num_documents().
  const std::shared_ptr<Vocabulary>& shared_vocab() const;

  /// Total documents this generator will emit (options.num_documents).
  size_t num_documents() const;
  size_t num_generated() const;

  /// Fills *doc / *ann with the next document. Returns false (leaving the
  /// outputs untouched) once all documents have been generated.
  bool Next(Document* doc, DocAnnotations* ann);

  /// Train/dev/test assignment over the generated ids. Must be called after
  /// the last Next(): it consumes the same rng stream position the batch
  /// path uses, which is what keeps the two paths byte-identical.
  CorpusSplits MakeSplits();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Visitor-style convenience over StreamingCorpusGenerator: calls `visit`
/// once per document in id order, then returns the vocabulary and splits.
struct StreamedCorpusInfo {
  std::shared_ptr<Vocabulary> vocab;
  CorpusSplits splits;
};
using DocumentVisitor = std::function<void(Document&&, DocAnnotations&&)>;
StreamedCorpusInfo GenerateCorpusStreaming(const GeneratorOptions& options,
                                           const DocumentVisitor& visit);

}  // namespace ie
