// Synthetic news-corpus generator (NYT Annotated Corpus substitute; see
// DESIGN.md §2). Documents are topical bags of sentences; useful documents
// for each relation carry planted, extractable relation sentences whose
// vocabulary clusters into subtopics of very different prevalence — so a
// small document sample misses rare subtopics (the paper's motivating
// "volcano" example), keyword retrieval has both recall and precision
// limits, and dense relations are scattered across unrelated topics.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "corpus/corpus.h"
#include "corpus/lexicon.h"
#include "corpus/topic_model.h"

namespace ie {

struct GeneratorOptions {
  size_t num_documents = 20000;
  uint64_t seed = 42;

  /// Split fractions mirror the paper (97k / 671k / 1087k of 1.8M docs).
  double train_fraction = 0.054;
  double dev_fraction = 0.373;  // remainder is the test split

  size_t num_background_topics = 60;
  size_t words_per_topic = 120;

  /// Document shape.
  int min_sentences = 8;
  int max_sentences = 22;
  int min_tokens_per_sentence = 7;
  int max_tokens_per_sentence = 16;

  /// Global scale on all relation densities (1.0 = Table 1 targets).
  double density_scale = 1.0;

  /// Planted-density compensation for imperfect extractor recall (the
  /// trained extractors achieve near-perfect document-level recall on the
  /// synthetic corpus, so no inflation is needed by default).
  double recall_compensation = 1.0;

  /// Per-relation multiplier on the subtopic anchor probability. Used to
  /// build dedicated high-density extractor-training corpora (the paper
  /// uses pre-trained, off-the-shelf extractors).
  std::array<double, kNumRelations> relation_anchor_multiplier = {
      1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  /// Shared vocabulary for auxiliary corpora (null = create a fresh one).
  std::shared_ptr<Vocabulary> shared_vocab;

  /// Convenience preset: a small corpus heavily anchored to one relation,
  /// for training that relation's extractor.
  static GeneratorOptions ForExtractorTraining(RelationId relation,
                                               size_t num_documents,
                                               uint64_t seed);
};

/// Generates a complete corpus (documents, annotations, splits).
Corpus GenerateCorpus(const GeneratorOptions& options);

}  // namespace ie
