#include "corpus/topic_model.h"

#include "common/string_util.h"

namespace ie {

namespace {
constexpr double kZipfExponent = 1.1;

const char* const kOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr", "f",
                               "fl", "g",  "gr", "h",  "j",  "k",  "l",
                               "m",  "n",  "p",  "pl", "r",  "s",  "st",
                               "t",  "tr", "v",  "w",  "z",  "sh", "ch"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
const char* const kCodas[] = {"",  "",  "",  "n", "r", "l",
                              "s", "m", "t", "x", "nd"};
}  // namespace

std::string WordForge::NextWord() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const int syllables = 2 + static_cast<int>(rng_->NextBounded(3));
    std::string word;
    for (int s = 0; s < syllables; ++s) {
      word += kOnsets[rng_->NextBounded(std::size(kOnsets))];
      word += kVowels[rng_->NextBounded(std::size(kVowels))];
      if (s + 1 == syllables) {
        word += kCodas[rng_->NextBounded(std::size(kCodas))];
      }
    }
    if (used_.insert(word).second) return word;
  }
  // Practically unreachable: fall back to a numbered word.
  std::string word = StrFormat("wordx%zu", used_.size());
  used_.insert(word);
  return word;
}

TopicModel::TopicModel(Vocabulary* vocab, size_t num_topics,
                       size_t words_per_topic, Rng* rng)
    : vocab_(vocab), forge_(rng) {
  topics_.reserve(num_topics);
  weights_.reserve(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    Topic topic;
    topic.name = StrFormat("background_%zu", t);
    topic.words.reserve(words_per_topic);
    for (size_t w = 0; w < words_per_topic; ++w) {
      topic.words.push_back(vocab_->Intern(forge_.NextWord()));
    }
    // Zipf-ish prevalence over topics: a handful of big topics, long tail.
    topic.weight = 1.0 / std::pow(static_cast<double>(t + 1), 0.7);
    weights_.push_back(topic.weight);
    topics_.push_back(std::move(topic));
  }
}

TokenId TopicModel::SampleWord(const Topic& topic, Rng* rng) const {
  const uint64_t rank = rng->NextZipf(topic.words.size(), kZipfExponent);
  return topic.words[rank];
}

size_t TopicModel::SampleTopic(Rng* rng) const {
  return rng->NextCategorical(weights_);
}

Topic TopicModel::MakeTopicFromWords(
    const std::string& name, const std::vector<std::string>& surface_words,
    size_t extra_synthetic, double weight, Rng* rng) {
  Topic topic;
  topic.name = name;
  topic.weight = weight;
  for (const std::string& word : surface_words) {
    // Multi-token surface entries contribute each token.
    for (const auto& piece : SplitString(word, " ")) {
      topic.words.push_back(vocab_->Intern(piece));
    }
  }
  for (size_t i = 0; i < extra_synthetic; ++i) {
    topic.words.push_back(vocab_->Intern(forge_.NextWord()));
  }
  // Shuffle so surface words are not always the most-frequent Zipf ranks.
  rng->Shuffle(topic.words);
  return topic;
}

}  // namespace ie
