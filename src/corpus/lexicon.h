// Curated lexicons for the synthetic news corpus: entity name pools,
// relation trigger phrases, and topical flavor vocabulary. Multi-token
// entries are space-separated; the generator interns individual tokens.
#pragma once

#include <string>
#include <vector>

#include "corpus/relation.h"

namespace ie {

struct Lexicon {
  std::vector<std::string> person_first_names;
  std::vector<std::string> person_last_names;
  std::vector<std::string> locations;
  /// Organization name stems; combined with org_suffixes by the generator.
  std::vector<std::string> org_stems;
  std::vector<std::string> org_suffixes;
  std::vector<std::string> diseases;
  std::vector<std::string> charges;
  std::vector<std::string> careers;
  std::vector<std::string> election_kinds;
  std::vector<std::string> months;
  /// High-frequency function words mixed into every document.
  std::vector<std::string> common_words;

  /// Every relation's useful documents cluster into subtopics with their
  /// own characteristic entity subset and flavor vocabulary, at skewed
  /// prevalence — so a small document sample misses the rare subtopics
  /// (e.g. the volcano subtopic carrying "lava", "sulfuric": the paper's
  /// motivating sample-miss example). This heterogeneity is what defeats
  /// fixed sample-derived queries and what adaptive ranking recovers.
  struct Subtopic {
    std::string name;
    /// Subtopic-specific values of the relation's topical attribute
    /// (disaster terms, disease names, charges, careers, election kinds;
    /// organization-name suffixes for PO).
    std::vector<std::string> entity_terms;
    std::vector<std::string> flavor_words;
    /// Relative prevalence among the relation's useful documents.
    double prevalence = 1.0;
  };
  std::vector<Subtopic> subtopics[kNumRelations];

  /// The attribute whose values are subtopic-specific, per relation.
  EntityType topical_attribute[kNumRelations];

  /// Trigger phrases connecting attr1 to attr2 for each relation.
  std::vector<std::string> triggers[kNumRelations];
};

/// Global immutable lexicon instance.
const Lexicon& GetLexicon();

}  // namespace ie
