#include "corpus/corpus.h"

namespace ie {

DocId Corpus::Add(Document doc, DocAnnotations annotations) {
  const DocId id = static_cast<DocId>(docs_.size());
  doc.id = id;
  docs_.push_back(std::move(doc));
  annotations_.push_back(std::move(annotations));
  return id;
}

size_t Corpus::CountGoldUseful(RelationId relation,
                               const std::vector<DocId>& ids) const {
  size_t n = 0;
  for (DocId id : ids) {
    if (annotations_[id].HasTupleFor(relation)) ++n;
  }
  return n;
}

}  // namespace ie
