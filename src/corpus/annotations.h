// Ground-truth annotations recorded by the synthetic corpus generator.
// Entity spans are used to train the learned extractors (HMM / MEMM /
// CRF-lite / relation classifiers) on the training split; gold tuples are
// used only by the generator and by evaluation code that characterizes the
// corpus — the ranking pipeline itself sees extractor verdicts, never gold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/relation.h"

namespace ie {

/// A gold entity mention: token span [begin, end) within one sentence.
struct EntityMention {
  uint32_t sentence = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
  EntityType type = EntityType::kNone;
  /// Canonical surface value, e.g. "san francisco".
  std::string value;
};

/// A gold relation tuple planted in one sentence of a document.
struct GoldTuple {
  RelationId relation;
  std::string attr1;
  std::string attr2;
  uint32_t sentence = 0;
};

struct DocAnnotations {
  std::vector<EntityMention> mentions;
  std::vector<GoldTuple> tuples;

  bool HasTupleFor(RelationId relation) const {
    for (const GoldTuple& t : tuples) {
      if (t.relation == relation) return true;
    }
    return false;
  }
};

}  // namespace ie
