#include "corpus/lexicon.h"

namespace ie {

namespace {

Lexicon BuildLexicon() {
  Lexicon lex;

  lex.person_first_names = {
      "james",   "maria",  "robert",  "elena",   "michael", "sofia",
      "david",   "laura",  "carlos",  "anna",    "peter",   "rachel",
      "thomas",  "nadia",  "steven",  "claire",  "victor",  "diana",
      "hassan",  "mei",    "andrei",  "fatima",  "george",  "ingrid",
      "pablo",   "helena", "luis",    "monica",  "kenji",   "amara",
      "walter",  "judith", "oscar",   "beatriz", "samuel",  "olga",
      "henry",   "priya",  "daniel",  "greta"};

  lex.person_last_names = {
      "anderson",  "barrio",    "chen",      "dawson",    "ellis",
      "fernandez", "gravano",   "hoffman",   "ivanov",    "jensen",
      "kumar",     "lopez",     "morales",   "nakamura",  "ortega",
      "petrov",    "quintana",  "ramirez",   "schneider", "takahashi",
      "ueda",      "vasquez",   "walsh",     "ximenes",   "yamada",
      "zhang",     "abbott",    "bennett",   "castillo",  "duarte",
      "eriksen",   "fontaine",  "galhardas", "herrera",   "iglesias",
      "johansson", "kowalski",  "lindberg",  "mendoza",   "novak",
      "okafor",    "pereira",   "rossi",     "simoes",    "thorne",
      "ulrich",    "vargas",    "weber",     "yoshida",   "zamora"};

  lex.locations = {
      "hawaii",       "california", "tokyo",      "manila",     "lisbon",
      "jakarta",      "santiago",   "istanbul",   "oslo",       "nairobi",
      "bogota",       "mumbai",     "osaka",      "athens",     "cairo",
      "lima",         "dhaka",      "naples",     "seattle",    "miami",
      "brussels",     "kathmandu",  "wellington", "reykjavik",  "anchorage",
      "guatemala",    "sumatra",    "java",       "luzon",      "okinawa",
      "kamchatka",    "sicily",     "crete",      "azores",     "galveston",
      "charleston",   "kingston",   "dakar",      "managua",    "quito",
      "ankara",       "tashkent",   "chengdu",    "kobe",       "valdivia",
      "mindanao",     "honshu",     "oaxaca",     "antigua",    "martinique",
      "fukushima",    "aceh",       "gujarat",    "sichuan",    "tohoku",
      "puebla",       "arequipa",   "batangas",   "zagreb",     "porto"};

  lex.org_stems = {
      "acme",      "stellar",   "pinnacle", "meridian",  "vanguard",
      "summit",    "horizon",   "atlas",    "beacon",    "cascade",
      "dynamo",    "equinox",   "frontier", "granite",   "harbor",
      "ironwood",  "juniper",   "keystone", "lighthouse", "monarch",
      "northstar", "obsidian",  "paragon",  "quasar",    "redwood",
      "sentinel",  "tidewater", "umbra",    "vertex",    "westbrook",
      "yellowtail", "zenith",   "bluepeak", "copperline", "driftwood",
      "everglade", "foxglove",  "greystone", "hollybrook", "ivyline"};

  lex.org_suffixes = {"corporation", "industries", "laboratories",
                       "university",  "institute",  "commission",
                       "foundation",  "holdings",   "partners",
                       "associates",  "systems",    "group"};

  lex.diseases = {
      "cholera",       "malaria",    "influenza",     "dengue",
      "ebola",         "measles",    "tuberculosis",  "typhoid",
      "meningitis",    "hepatitis",  "polio",         "diphtheria",
      "salmonella",    "legionella", "encephalitis",  "anthrax",
      "plague",        "hantavirus", "leptospirosis", "botulism",
      "pertussis",     "rabies",     "smallpox",      "listeria",
      "norovirus",     "rotavirus",  "shigella",      "trichinosis",
      "cryptosporidium", "giardia"};

  lex.charges = {
      "fraud",          "embezzlement", "bribery",       "perjury",
      "racketeering",   "extortion",    "larceny",       "arson",
      "burglary",       "smuggling",    "counterfeiting", "forgery",
      "manslaughter",   "kidnapping",   "assault",       "conspiracy",
      "tax evasion",    "money laundering",              "insider trading",
      "obstruction of justice",         "identity theft", "vandalism",
      "trespassing",    "blackmail",    "theft"};

  lex.careers = {
      "engineer",   "senator",    "professor",  "surgeon",    "architect",
      "journalist", "economist",  "diplomat",   "chemist",    "violinist",
      "novelist",   "astronaut",  "biologist",  "cartographer", "editor",
      "geologist",  "historian",  "judge",      "librarian",  "mathematician",
      "negotiator", "oceanographer",            "physicist",  "prosecutor",
      "sculptor",   "teacher",    "urbanist",   "veterinarian", "curator",
      "ambassador", "chancellor", "director",   "pianist",    "linguist",
      "pilot"};

  lex.election_kinds = {
      "presidential election", "mayoral election",   "senate race",
      "gubernatorial election", "parliamentary election",
      "congressional race",    "primary election",   "runoff election",
      "municipal election",    "referendum"};

  lex.months = {"january", "february", "march",     "april",   "may",
                 "june",    "july",     "august",    "september",
                 "october", "november", "december"};

  lex.common_words = {
      "the",    "of",     "and",    "a",      "to",      "in",     "is",
      "was",    "for",    "on",     "that",   "by",      "with",   "as",
      "at",     "from",   "his",    "her",    "it",      "an",     "were",
      "which",  "be",     "this",   "has",    "had",     "their",  "are",
      "not",    "but",    "have",   "been",   "who",     "its",    "more",
      "after",  "also",   "they",   "he",     "she",     "two",    "other",
      "new",    "first",  "year",   "years",  "time",    "people", "city",
      "state",  "during", "about",  "into",   "than",    "over",   "when",
      "last",   "made",   "said",   "against", "before", "between", "many",
      "three",  "through", "under", "while",  "where",   "officials",
      "report", "week",   "month",  "day",    "since",   "early",  "late",
      "among",  "local",  "several", "including", "according", "area",
      "region", "country", "national", "government", "public", "major",
      "news",   "today",  "yesterday", "residents", "authorities", "near"};

  auto& subtopics = lex.subtopics;
  auto& topical = lex.topical_attribute;
  topical[static_cast<size_t>(RelationId::kNaturalDisaster)] =
      EntityType::kNaturalDisaster;
  topical[static_cast<size_t>(RelationId::kManMadeDisaster)] =
      EntityType::kManMadeDisaster;
  topical[static_cast<size_t>(RelationId::kDiseaseOutbreak)] =
      EntityType::kDisease;
  topical[static_cast<size_t>(RelationId::kPersonCharge)] =
      EntityType::kCharge;
  topical[static_cast<size_t>(RelationId::kPersonCareer)] =
      EntityType::kCareer;
  topical[static_cast<size_t>(RelationId::kElectionWinner)] =
      EntityType::kElection;
  topical[static_cast<size_t>(RelationId::kPersonOrganization)] =
      EntityType::kOrganization;

  subtopics[static_cast<size_t>(RelationId::kNaturalDisaster)] = {
      {"earthquake",
       {"earthquake", "quake", "aftershock", "tremor", "seismic shock"},
       {"richter", "hypocenter", "epicenter", "magnitude", "fault",
        "seismograph", "seismologist", "tectonic", "rupture", "aftershocks",
        "liquefaction", "subduction"},
       0.34},
      {"hurricane",
       {"hurricane", "typhoon", "cyclone", "tropical storm", "storm surge"},
       {"landfall", "windspeed", "evacuation", "barometric", "gusts",
        "floodwater", "levee", "category", "meteorologist", "squall"},
       0.27},
      {"flood",
       {"flood", "flash flood", "mudslide", "landslide", "avalanche"},
       {"riverbank", "monsoon", "rainfall", "embankment", "reservoir",
        "runoff", "saturation", "overflow", "deluge", "sediment"},
       0.19},
      {"tsunami",
       {"tsunami", "tidal wave", "seiche"},
       {"coastline", "seawall", "harbor wave", "inundation", "buoy",
        "offshore", "receding", "warning sirens"},
       0.11},
      {"wildfire",
       {"wildfire", "forest fire", "brush fire", "firestorm"},
       {"containment", "firebreak", "acreage", "drought", "embers",
        "firefighters", "smoke plume", "scorched"},
       0.06},
      // Deliberately rare: a small initial sample is unlikely to include a
      // volcano document, reproducing the paper's motivating example.
      {"volcano",
       {"volcano eruption", "volcanic eruption", "lava flow", "ashfall"},
       {"lava", "sulfuric", "magma", "caldera", "pyroclastic", "vent",
        "crater", "volcanologist", "ash cloud", "fumarole"},
       0.03},
  };

  subtopics[static_cast<size_t>(RelationId::kManMadeDisaster)] = {
      {"explosion",
       {"explosion", "blast", "gas explosion", "detonation"},
       {"shrapnel", "pipeline", "refinery", "ignition", "debris",
        "fireball", "casualties", "demolition"},
       0.32},
      {"spill",
       {"oil spill", "chemical spill", "toxic leak", "gas leak"},
       {"tanker", "containment boom", "slick", "benzene", "contamination",
        "cleanup crews", "barrels", "hazmat"},
       0.26},
      {"crash",
       {"train derailment", "plane crash", "ferry sinking", "bus crash"},
       {"wreckage", "fuselage", "black box", "derailed", "collision",
        "investigators", "manifest", "capsized"},
       0.22},
      {"collapse",
       {"building collapse", "bridge collapse", "mine collapse",
        "dam failure"},
       {"scaffolding", "structural", "rubble", "girders", "inspection",
        "excavation", "trapped workers", "engineers"},
       0.14},
      {"fire",
       {"factory fire", "warehouse fire", "apartment fire"},
       {"sprinklers", "smoke inhalation", "alarm", "exits", "arson squad",
        "flammable", "code violations"},
       0.06},
  };

  subtopics[static_cast<size_t>(RelationId::kDiseaseOutbreak)] = {
      {"waterborne",
       {"cholera", "typhoid", "salmonella", "shigella", "giardia",
        "cryptosporidium", "norovirus", "rotavirus", "listeria"},
       {"sanitation", "wells", "sewage", "contaminated water", "boiling",
        "chlorination", "latrines", "drinking water"},
       0.40},
      {"respiratory",
       {"influenza", "tuberculosis", "measles", "pertussis", "diphtheria",
        "meningitis", "smallpox", "legionella"},
       {"vaccination", "wards", "respirators", "immunization", "clinics",
        "isolation", "coughing", "pneumonia"},
       0.35},
      {"vectorborne",
       {"malaria", "dengue", "encephalitis", "leptospirosis", "plague",
        "rabies", "trichinosis"},
       {"mosquitoes", "nets", "larvicide", "swamps", "rodents", "fleas",
        "insecticide", "stagnant"},
       0.18},
      {"exotic",
       {"ebola", "anthrax", "hantavirus", "botulism", "polio", "hepatitis"},
       {"hemorrhagic", "biosafety", "spores", "quarantine zone",
        "field hospital", "protective suits"},
       0.07},
  };

  subtopics[static_cast<size_t>(RelationId::kPersonCharge)] = {
      {"whitecollar",
       {"fraud", "embezzlement", "insider trading", "tax evasion",
        "money laundering", "counterfeiting", "forgery", "bribery"},
       {"auditors", "ledgers", "offshore", "securities", "regulators",
        "accounts", "shell companies", "wiretaps"},
       0.42},
      {"violent",
       {"manslaughter", "assault", "kidnapping", "arson"},
       {"detectives", "forensics", "witnesses", "crime scene", "autopsy",
        "ballistics", "precinct"},
       0.30},
      {"property",
       {"larceny", "burglary", "theft", "smuggling", "vandalism",
        "trespassing"},
       {"stolen goods", "pawnshop", "surveillance", "warehouse raids",
        "fence", "customs"},
       0.18},
      {"corruption",
       {"perjury", "racketeering", "extortion", "obstruction of justice",
        "blackmail", "conspiracy", "identity theft"},
       {"grand jury", "informant", "subpoena", "kickbacks", "city hall",
        "testimony", "immunity deal"},
       0.10},
  };

  subtopics[static_cast<size_t>(RelationId::kElectionWinner)] = {
      {"national",
       {"presidential election", "parliamentary election", "referendum"},
       {"electorate", "landslide", "concession", "exit polls", "coalition",
        "inauguration", "manifesto"},
       0.45},
      {"local",
       {"mayoral election", "municipal election", "gubernatorial election"},
       {"precinct", "turnout", "canvassing", "town hall", "ward",
        "incumbent", "ballot measures"},
       0.35},
      {"legislative",
       {"senate race", "congressional race", "primary election",
        "runoff election"},
       {"nomination", "caucus", "swing districts", "fundraising",
        "endorsement", "debates", "polling average"},
       0.20},
  };

  subtopics[static_cast<size_t>(RelationId::kPersonCareer)] = {
      {"science",
       {"engineer", "chemist", "biologist", "physicist", "geologist",
        "mathematician", "oceanographer", "astronaut", "cartographer"},
       {"laboratory", "research grant", "publications", "experiments",
        "patents", "fieldwork", "symposium"},
       0.35},
      {"arts",
       {"violinist", "novelist", "sculptor", "pianist", "curator",
        "editor", "journalist"},
       {"gallery", "manuscript", "recital", "exhibition", "critics",
        "anthology", "studio"},
       0.25},
      {"law_government",
       {"senator", "judge", "diplomat", "prosecutor", "ambassador",
        "chancellor", "negotiator", "economist"},
       {"chambers", "legislation", "treaty", "cabinet", "ruling",
        "delegation", "ministry"},
       0.25},
      {"academia_medicine",
       {"professor", "surgeon", "teacher", "librarian", "historian",
        "veterinarian", "linguist", "architect", "urbanist", "pilot",
        "director"},
       {"faculty", "residency", "curriculum", "dissertation", "lecture",
        "clinic", "archives"},
       0.15},
  };

  subtopics[static_cast<size_t>(RelationId::kPersonOrganization)] = {
      {"corporate",
       {"corporation", "industries", "holdings", "partners", "systems",
        "group"},
       {"merger", "shareholders", "quarterly", "revenue", "startup",
        "executive", "board", "subsidiary", "payroll", "layoffs"},
       0.60},
      {"institutional",
       {"university", "institute", "laboratories", "foundation",
        "commission", "associates"},
       {"endowment", "trustees", "fellowship", "campus", "charter",
        "grants", "provost", "advisory panel"},
       0.40},
  };

  auto& triggers = lex.triggers;
  triggers[static_cast<size_t>(RelationId::kPersonOrganization)] = {
      "joined",        "works for",     "was hired by", "leads",
      "is employed by", "resigned from", "chairs",       "founded"};
  triggers[static_cast<size_t>(RelationId::kDiseaseOutbreak)] = {
      "outbreak began in", "cases surged in", "epidemic declared in",
      "outbreak reported in", "spread rapidly in"};
  triggers[static_cast<size_t>(RelationId::kPersonCareer)] = {
      "is a",  "became a", "worked as a", "serves as a",
      "was a", "trained as a", "retired as a"};
  triggers[static_cast<size_t>(RelationId::kNaturalDisaster)] = {
      "struck",     "hit",          "swept the coast of", "devastated",
      "ravaged",    "shook",        "flattened",          "battered"};
  triggers[static_cast<size_t>(RelationId::kManMadeDisaster)] = {
      "occurred in", "rocked", "devastated", "shut down", "paralyzed",
      "struck"};
  triggers[static_cast<size_t>(RelationId::kPersonCharge)] = {
      "was charged with", "was indicted for", "was convicted of",
      "faces charges of", "pleaded guilty to", "was accused of"};
  triggers[static_cast<size_t>(RelationId::kElectionWinner)] = {
      "was won by",      "was claimed by", "ended in victory for",
      "was captured by", "went to"};

  return lex;
}

}  // namespace

const Lexicon& GetLexicon() {
  static const Lexicon kLexicon = BuildLexicon();
  return kLexicon;
}

}  // namespace ie
