// On-disk binary corpus format + mmap-backed reader (DESIGN.md §13).
//
// The scale path: StreamingCorpusGenerator → CorpusWriter streams a corpus
// to disk one document at a time, and CorpusReader maps the file and
// decodes single documents on demand — at no point does the full document
// set reside in memory. Layout (all integers little-endian, the only
// byte order this codebase targets):
//
//   header   : magic "IECP" | u32 version | u64 num_docs | u64 footer_off
//   records  : per document, u32 payload_len then the payload —
//              doc id, sentences (token-id arrays), gold mentions and
//              tuples (annotation strings length-prefixed)
//   offsets  : u64 byte offset of each record, indexed by doc id
//   splits   : train/dev/test id arrays
//   vocab    : terms in id order, length-prefixed
//   footer   : section positions (located via the header's footer_off)
//
// The offset table makes ReadDoc(id) O(record size) on a mapped file; the
// header fields are back-patched by Finish(), so a file without a valid
// footer offset is an unfinished write and is rejected by Open().
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "corpus/generator.h"

namespace ie {

/// Streams documents into a corpus file. Append documents in id order
/// (ids must be sequential from 0 — what StreamingCorpusGenerator emits),
/// then call Finish() exactly once; a file whose writer never reached
/// Finish() is invalid by construction.
class CorpusWriter {
 public:
  static StatusOr<CorpusWriter> Create(const std::string& path);

  CorpusWriter(CorpusWriter&& other) noexcept;
  CorpusWriter& operator=(CorpusWriter&& other) noexcept;
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;
  ~CorpusWriter();

  Status Append(const Document& doc, const DocAnnotations& ann);

  /// Writes the offset table, splits, vocabulary and footer, back-patches
  /// the header, and closes the file.
  Status Finish(const CorpusSplits& splits, const Vocabulary& vocab);

  size_t num_docs() const { return offsets_.size(); }

 private:
  CorpusWriter() = default;

  Status WriteBytes(const void* data, size_t size);

  std::FILE* file_ = nullptr;
  std::vector<uint64_t> offsets_;
  uint64_t pos_ = 0;
  bool finished_ = false;
};

/// Random-access reader over a finished corpus file. The file is mmap-ed
/// read-only: documents are decoded on demand from the mapping, so resident
/// memory is the touched pages plus the (small) vocabulary and splits,
/// never the full document set.
class CorpusReader {
 public:
  static StatusOr<CorpusReader> Open(const std::string& path);

  CorpusReader(CorpusReader&&) noexcept;
  CorpusReader& operator=(CorpusReader&&) noexcept;
  CorpusReader(const CorpusReader&) = delete;
  CorpusReader& operator=(const CorpusReader&) = delete;
  ~CorpusReader();

  size_t NumDocs() const;
  const CorpusSplits& splits() const;
  const std::shared_ptr<Vocabulary>& shared_vocab() const;
  const Vocabulary& vocab() const { return *shared_vocab(); }

  /// Decodes document `id` (and its annotations when `ann` is non-null)
  /// from the mapping into caller-owned storage.
  Status ReadDoc(DocId id, Document* doc, DocAnnotations* ann = nullptr) const;

 private:
  struct Rep;  // owns the mapping + decoded splits/vocab
  CorpusReader();
  std::unique_ptr<Rep> rep_;
};

/// Streams a generated corpus straight to `path` without materializing it;
/// returns the number of documents written.
StatusOr<size_t> WriteGeneratedCorpus(const GeneratorOptions& options,
                                      const std::string& path);

/// Materializes a corpus file fully in memory (tests and small corpora —
/// the scale path keeps the CorpusReader instead).
StatusOr<Corpus> ReadCorpusFile(const std::string& path);

}  // namespace ie
