#include "corpus/corpus_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace ie {

namespace {

constexpr uint32_t kMagic = 0x50434549u;  // the bytes "IECP"
constexpr uint32_t kVersion = 1;
// magic | version | num_docs | footer_offset
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;
// offsets_pos | splits_pos | vocab_pos
constexpr size_t kFooterSize = 8 + 8 + 8;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked decoder over a byte range. Every accessor degrades to a
/// zero result and latches ok=false on underrun, so decode loops can run
/// to completion and check ok once.
struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  size_t Remaining() const { return static_cast<size_t>(end - p); }

  bool Skip(size_t n) {
    if (Remaining() < n) {
      ok = false;
      p = end;
      return false;
    }
    p += n;
    return true;
  }

  uint32_t U32() {
    uint32_t v = 0;
    if (Remaining() < sizeof(v)) {
      ok = false;
      p = end;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    if (Remaining() < sizeof(v)) {
      ok = false;
      p = end;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    return v;
  }

  std::string Str() {
    const uint32_t len = U32();
    if (Remaining() < len) {
      ok = false;
      p = end;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

Status Corrupt(const char* what) {
  return Status::InvalidArgument(StrFormat("corrupt corpus file: %s", what));
}

void PutIdList(std::vector<uint8_t>* out, const std::vector<DocId>& ids) {
  PutU64(out, ids.size());
  const size_t at = out->size();
  out->resize(at + ids.size() * sizeof(DocId));
  std::memcpy(out->data() + at, ids.data(), ids.size() * sizeof(DocId));
}

bool GetIdList(ByteReader* r, std::vector<DocId>* ids) {
  const uint64_t count = r->U64();
  if (r->Remaining() < count * sizeof(DocId)) {
    r->ok = false;
    return false;
  }
  ids->resize(count);
  std::memcpy(ids->data(), r->p, count * sizeof(DocId));
  r->p += count * sizeof(DocId);
  return true;
}

}  // namespace

// --- CorpusWriter ----------------------------------------------------------

StatusOr<CorpusWriter> CorpusWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal(StrFormat("cannot create %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  CorpusWriter writer;
  writer.file_ = file;
  // Placeholder header; Finish() back-patches num_docs and footer_offset.
  std::vector<uint8_t> header;
  PutU32(&header, kMagic);
  PutU32(&header, kVersion);
  PutU64(&header, 0);
  PutU64(&header, 0);
  IE_RETURN_IF_ERROR(writer.WriteBytes(header.data(), header.size()));
  return writer;
}

CorpusWriter::CorpusWriter(CorpusWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      offsets_(std::move(other.offsets_)),
      pos_(other.pos_),
      finished_(other.finished_) {}

CorpusWriter& CorpusWriter::operator=(CorpusWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    offsets_ = std::move(other.offsets_);
    pos_ = other.pos_;
    finished_ = other.finished_;
  }
  return *this;
}

CorpusWriter::~CorpusWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CorpusWriter::WriteBytes(const void* data, size_t size) {
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::Internal(
        StrFormat("corpus write failed: %s", std::strerror(errno)));
  }
  pos_ += size;
  return Status::OK();
}

Status CorpusWriter::Append(const Document& doc, const DocAnnotations& ann) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("corpus writer is closed");
  }
  if (doc.id != offsets_.size()) {
    return Status::InvalidArgument(
        StrFormat("documents must be appended in id order: expected %zu, "
                  "got %u",
                  offsets_.size(), doc.id));
  }
  std::vector<uint8_t> payload;
  PutU32(&payload, doc.id);
  PutU32(&payload, static_cast<uint32_t>(doc.sentences.size()));
  for (const Sentence& sentence : doc.sentences) {
    PutU32(&payload, static_cast<uint32_t>(sentence.tokens.size()));
    const size_t at = payload.size();
    payload.resize(at + sentence.tokens.size() * sizeof(TokenId));
    std::memcpy(payload.data() + at, sentence.tokens.data(),
                sentence.tokens.size() * sizeof(TokenId));
  }
  PutU32(&payload, static_cast<uint32_t>(ann.mentions.size()));
  for (const EntityMention& m : ann.mentions) {
    PutU32(&payload, m.sentence);
    PutU32(&payload, m.begin);
    PutU32(&payload, m.end);
    PutU32(&payload, static_cast<uint32_t>(m.type));
    PutString(&payload, m.value);
  }
  PutU32(&payload, static_cast<uint32_t>(ann.tuples.size()));
  for (const GoldTuple& t : ann.tuples) {
    PutU32(&payload, static_cast<uint32_t>(t.relation));
    PutU32(&payload, t.sentence);
    PutString(&payload, t.attr1);
    PutString(&payload, t.attr2);
  }

  offsets_.push_back(pos_);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  IE_RETURN_IF_ERROR(WriteBytes(&len, sizeof(len)));
  return WriteBytes(payload.data(), payload.size());
}

Status CorpusWriter::Finish(const CorpusSplits& splits,
                            const Vocabulary& vocab) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("corpus writer is closed");
  }
  const uint64_t offsets_pos = pos_;
  IE_RETURN_IF_ERROR(
      WriteBytes(offsets_.data(), offsets_.size() * sizeof(uint64_t)));

  const uint64_t splits_pos = pos_;
  {
    std::vector<uint8_t> buf;
    PutIdList(&buf, splits.train);
    PutIdList(&buf, splits.dev);
    PutIdList(&buf, splits.test);
    IE_RETURN_IF_ERROR(WriteBytes(buf.data(), buf.size()));
  }

  const uint64_t vocab_pos = pos_;
  {
    std::vector<uint8_t> buf;
    PutU64(&buf, vocab.size());
    for (uint32_t id = 0; id < vocab.size(); ++id) {
      PutString(&buf, vocab.Term(id));
      // Flush in chunks so a large vocabulary never doubles in memory.
      if (buf.size() >= (1u << 20)) {
        IE_RETURN_IF_ERROR(WriteBytes(buf.data(), buf.size()));
        buf.clear();
      }
    }
    IE_RETURN_IF_ERROR(WriteBytes(buf.data(), buf.size()));
  }

  const uint64_t footer_pos = pos_;
  {
    std::vector<uint8_t> footer;
    PutU64(&footer, offsets_pos);
    PutU64(&footer, splits_pos);
    PutU64(&footer, vocab_pos);
    IE_RETURN_IF_ERROR(WriteBytes(footer.data(), footer.size()));
  }

  // Back-patch the header now that the layout is known.
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("corpus writer: header seek failed");
  }
  std::vector<uint8_t> header;
  PutU32(&header, kMagic);
  PutU32(&header, kVersion);
  PutU64(&header, offsets_.size());
  PutU64(&header, footer_pos);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return Status::Internal("corpus writer: header rewrite failed");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
  if (rc != 0) {
    return Status::Internal(
        StrFormat("corpus close failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

// --- CorpusReader ----------------------------------------------------------

struct CorpusReader::Rep {
  const uint8_t* data = nullptr;  // mmap base
  size_t size = 0;
  const uint8_t* offsets = nullptr;  // offset table (num_docs u64s)
  uint64_t num_docs = 0;
  CorpusSplits splits;
  std::shared_ptr<Vocabulary> vocab;

  ~Rep() {
    if (data != nullptr) {
      // ARCH: const-escape (munmap takes void* by API; the mapping is
      // being torn down, so no reader can observe a mutation)
      ::munmap(const_cast<uint8_t*>(data), size);
    }
  }
};

CorpusReader::CorpusReader() = default;
CorpusReader::CorpusReader(CorpusReader&&) noexcept = default;
CorpusReader& CorpusReader::operator=(CorpusReader&&) noexcept = default;
CorpusReader::~CorpusReader() = default;

size_t CorpusReader::NumDocs() const { return rep_->num_docs; }
const CorpusSplits& CorpusReader::splits() const { return rep_->splits; }
const std::shared_ptr<Vocabulary>& CorpusReader::shared_vocab() const {
  return rep_->vocab;
}

StatusOr<CorpusReader> CorpusReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal(
        StrFormat("cannot stat %s: %s", path.c_str(), std::strerror(errno)));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderSize + kFooterSize) {
    ::close(fd);
    return Corrupt("shorter than header + footer");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == reinterpret_cast<void*>(-1)) {  // MAP_FAILED
    return Status::Internal(
        StrFormat("mmap of %s failed: %s", path.c_str(),
                  std::strerror(errno)));
  }

  CorpusReader reader;
  reader.rep_ = std::make_unique<Rep>();
  Rep& rep = *reader.rep_;
  rep.data = static_cast<const uint8_t*>(map);
  rep.size = size;

  ByteReader header{rep.data, rep.data + kHeaderSize};
  if (header.U32() != kMagic) return Corrupt("bad magic");
  if (header.U32() != kVersion) return Corrupt("unsupported version");
  rep.num_docs = header.U64();
  const uint64_t footer_pos = header.U64();
  if (footer_pos == 0) return Corrupt("unfinished write (no footer)");
  if (footer_pos + kFooterSize > size) return Corrupt("footer out of range");

  ByteReader footer{rep.data + footer_pos, rep.data + footer_pos + kFooterSize};
  const uint64_t offsets_pos = footer.U64();
  const uint64_t splits_pos = footer.U64();
  const uint64_t vocab_pos = footer.U64();
  if (offsets_pos < kHeaderSize || splits_pos < offsets_pos ||
      vocab_pos < splits_pos || vocab_pos > footer_pos) {
    return Corrupt("section order");
  }
  if (offsets_pos + rep.num_docs * sizeof(uint64_t) > splits_pos) {
    return Corrupt("offset table out of range");
  }
  rep.offsets = rep.data + offsets_pos;

  ByteReader splits{rep.data + splits_pos, rep.data + vocab_pos};
  if (!GetIdList(&splits, &rep.splits.train) ||
      !GetIdList(&splits, &rep.splits.dev) ||
      !GetIdList(&splits, &rep.splits.test)) {
    return Corrupt("splits section");
  }

  ByteReader vocab{rep.data + vocab_pos, rep.data + footer_pos};
  const uint64_t num_terms = vocab.U64();
  rep.vocab = std::make_shared<Vocabulary>();
  for (uint64_t i = 0; i < num_terms; ++i) {
    const std::string term = vocab.Str();
    if (!vocab.ok) return Corrupt("vocabulary section");
    if (rep.vocab->Intern(term) != i) {
      return Corrupt("vocabulary terms not unique");
    }
  }
  return reader;
}

Status CorpusReader::ReadDoc(DocId id, Document* doc,
                             DocAnnotations* ann) const {
  const Rep& rep = *rep_;
  if (id >= rep.num_docs) {
    return Status::OutOfRange(StrFormat("doc id %u >= %zu docs", id,
                                        static_cast<size_t>(rep.num_docs)));
  }
  uint64_t off = 0;
  std::memcpy(&off, rep.offsets + static_cast<size_t>(id) * sizeof(off),
              sizeof(off));
  if (off + sizeof(uint32_t) > rep.size) return Corrupt("record offset");
  uint32_t len = 0;
  std::memcpy(&len, rep.data + off, sizeof(len));
  if (off + sizeof(len) + len > rep.size) return Corrupt("record length");

  ByteReader r{rep.data + off + sizeof(len), rep.data + off + sizeof(len) + len};
  doc->id = r.U32();
  const uint32_t num_sentences = r.U32();
  if (num_sentences > r.Remaining() / sizeof(uint32_t)) {
    return Corrupt("sentence count");
  }
  doc->sentences.clear();
  doc->sentences.resize(num_sentences);
  for (Sentence& sentence : doc->sentences) {
    const uint32_t num_tokens = r.U32();
    if (num_tokens > r.Remaining() / sizeof(TokenId)) {
      return Corrupt("token count");
    }
    sentence.tokens.resize(num_tokens);
    std::memcpy(sentence.tokens.data(), r.p, num_tokens * sizeof(TokenId));
    r.Skip(num_tokens * sizeof(TokenId));
  }
  if (ann == nullptr) return r.ok ? Status::OK() : Corrupt("record payload");

  ann->mentions.clear();
  ann->tuples.clear();
  const uint32_t num_mentions = r.U32();
  if (num_mentions > r.Remaining() / (4 * sizeof(uint32_t))) {
    return Corrupt("mention count");
  }
  ann->mentions.reserve(num_mentions);
  for (uint32_t i = 0; i < num_mentions; ++i) {
    EntityMention m;
    m.sentence = r.U32();
    m.begin = r.U32();
    m.end = r.U32();
    m.type = static_cast<EntityType>(r.U32());
    m.value = r.Str();
    ann->mentions.push_back(std::move(m));
  }
  const uint32_t num_tuples = r.U32();
  if (num_tuples > r.Remaining() / (2 * sizeof(uint32_t))) {
    return Corrupt("tuple count");
  }
  ann->tuples.reserve(num_tuples);
  for (uint32_t i = 0; i < num_tuples; ++i) {
    GoldTuple t;
    t.relation = static_cast<RelationId>(r.U32());
    t.sentence = r.U32();
    t.attr1 = r.Str();
    t.attr2 = r.Str();
    ann->tuples.push_back(std::move(t));
  }
  return r.ok ? Status::OK() : Corrupt("record payload");
}

// --- conveniences ----------------------------------------------------------

StatusOr<size_t> WriteGeneratedCorpus(const GeneratorOptions& options,
                                      const std::string& path) {
  IE_ASSIGN_OR_RETURN(CorpusWriter writer, CorpusWriter::Create(path));
  StreamingCorpusGenerator gen(options);
  Document doc;
  DocAnnotations ann;
  while (gen.Next(&doc, &ann)) {
    IE_RETURN_IF_ERROR(writer.Append(doc, ann));
  }
  IE_RETURN_IF_ERROR(writer.Finish(gen.MakeSplits(), *gen.shared_vocab()));
  return writer.num_docs();
}

StatusOr<Corpus> ReadCorpusFile(const std::string& path) {
  IE_ASSIGN_OR_RETURN(CorpusReader reader, CorpusReader::Open(path));
  Corpus corpus(reader.shared_vocab());
  Document doc;
  DocAnnotations ann;
  for (DocId id = 0; id < reader.NumDocs(); ++id) {
    IE_RETURN_IF_ERROR(reader.ReadDoc(id, &doc, &ann));
    corpus.Add(std::move(doc), std::move(ann));
    doc = Document();
    ann = DocAnnotations();
  }
  corpus.mutable_splits() = reader.splits();
  return corpus;
}

}  // namespace ie
