#include "corpus/relation.h"

#include <cassert>

namespace ie {

const std::vector<RelationSpec>& AllRelations() {
  // Densities from Table 1. Extraction costs follow the paper where stated
  // (ND ~6 s/doc, PO ~0.01 s/doc); the others are assigned to preserve the
  // paper's "variety of extraction speeds" (Section 4).
  static const std::vector<RelationSpec> kRelations{
          {RelationId::kPersonOrganization, "PO",
           "Person-Organization Affiliation", EntityType::kPerson,
           EntityType::kOrganization, 0.1695, 0.01, /*dense=*/true},
          {RelationId::kDiseaseOutbreak, "DO", "Disease-Outbreak",
           EntityType::kDisease, EntityType::kTemporal, 0.0008, 0.05,
           /*dense=*/false},
          {RelationId::kPersonCareer, "PC", "Person-Career",
           EntityType::kPerson, EntityType::kCareer, 0.4216, 2.0,
           /*dense=*/true},
          {RelationId::kNaturalDisaster, "ND", "Natural Disaster-Location",
           EntityType::kNaturalDisaster, EntityType::kLocation, 0.0169, 6.0,
           /*dense=*/false},
          {RelationId::kManMadeDisaster, "MD", "Man Made Disaster-Location",
           EntityType::kManMadeDisaster, EntityType::kLocation, 0.0146, 4.0,
           /*dense=*/false},
          {RelationId::kPersonCharge, "PH", "Person-Charge",
           EntityType::kPerson, EntityType::kCharge, 0.0177, 2.0,
           /*dense=*/false},
          {RelationId::kElectionWinner, "EW", "Election-Winner",
           EntityType::kElection, EntityType::kPerson, 0.0050, 2.0,
           /*dense=*/false},
  };
  return kRelations;
}

const RelationSpec& GetRelation(RelationId id) {
  const auto& all = AllRelations();
  const size_t idx = static_cast<size_t>(id);
  assert(idx < all.size());
  return all[idx];
}

const RelationSpec* FindRelationByCode(const std::string& code) {
  for (const RelationSpec& spec : AllRelations()) {
    if (spec.code == code) return &spec;
  }
  return nullptr;
}

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kNone:
      return "None";
    case EntityType::kPerson:
      return "Person";
    case EntityType::kLocation:
      return "Location";
    case EntityType::kOrganization:
      return "Organization";
    case EntityType::kDisease:
      return "Disease";
    case EntityType::kNaturalDisaster:
      return "NaturalDisaster";
    case EntityType::kManMadeDisaster:
      return "ManMadeDisaster";
    case EntityType::kCharge:
      return "Charge";
    case EntityType::kCareer:
      return "Career";
    case EntityType::kElection:
      return "Election";
    case EntityType::kTemporal:
      return "Temporal";
  }
  return "Unknown";
}

}  // namespace ie
