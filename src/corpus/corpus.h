// The Corpus: documents + shared vocabulary + gold annotations +
// train/dev/test splits. Mirrors the paper's NYT corpus setup (train
// ~5%, development ~36%, test ~59% of documents).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "corpus/annotations.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

struct CorpusSplits {
  std::vector<DocId> train;
  std::vector<DocId> dev;
  std::vector<DocId> test;
};

class Corpus {
 public:
  /// Creates a corpus over a fresh vocabulary, or over `vocab` when given —
  /// auxiliary corpora (extractor training, query learning) share the main
  /// corpus's vocabulary so token/feature ids are interchangeable.
  explicit Corpus(std::shared_ptr<Vocabulary> vocab = nullptr)
      : vocab_(vocab ? std::move(vocab) : std::make_shared<Vocabulary>()) {}

  // Movable, not copyable (documents can be large).
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  Vocabulary& vocab() { return *vocab_; }
  const Vocabulary& vocab() const { return *vocab_; }
  const std::shared_ptr<Vocabulary>& shared_vocab() const { return vocab_; }

  size_t size() const { return docs_.size(); }

  const Document& doc(DocId id) const { return docs_[id]; }
  const DocAnnotations& annotations(DocId id) const {
    return annotations_[id];
  }

  const CorpusSplits& splits() const { return splits_; }
  CorpusSplits& mutable_splits() { return splits_; }

  /// Appends a document with its annotations; returns the assigned id.
  DocId Add(Document doc, DocAnnotations annotations);

  /// Count of documents holding a gold tuple for `relation` among `ids`.
  size_t CountGoldUseful(RelationId relation,
                         const std::vector<DocId>& ids) const;

 private:
  std::shared_ptr<Vocabulary> vocab_;  // stable address for featurizers
  std::vector<Document> docs_;
  std::vector<DocAnnotations> annotations_;
  CorpusSplits splits_;
};

}  // namespace ie
