#include "corpus/generator.h"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "corpus/lexicon.h"
#include "corpus/topic_model.h"

namespace ie {

namespace {

// Neutral connectors for co-occurrence negatives: both entity types appear
// in one sentence without expressing the relation.
const std::vector<std::string>& NeutralConnectors() {
  static const std::vector<std::string> kWords = {
      "visited",  "criticized", "praised",    "discussed",
      "met with", "wrote about", "toured",    "addressed",
      "mentioned", "interviewed"};
  return kWords;
}

// One planted anchor archetype: a relation subtopic (or a distractor twin
// that shares the vocabulary but plants no tuples).
struct Anchor {
  enum class Kind { kBackground, kRelation, kDistractor };
  Kind kind = Kind::kBackground;
  size_t background_topic = 0;   // kBackground
  RelationId relation = RelationId::kPersonOrganization;  // kRelation/kDistr.
  size_t subtopic = 0;
  double weight = 0.0;
};

// The document-at-a-time core. Construction runs the full setup (topic
// model, subtopics, anchor table); Next() then emits one document per call.
// The rng call sequence — setup, then per-document draws in id order, then
// the split shuffle — is exactly the sequence the original batch
// GenerateCorpus performed, so streaming and batch generation are
// byte-identical (the determinism golden tests pin this).
class Generator {
 public:
  explicit Generator(const GeneratorOptions& options)
      : options_(options),
        rng_(options.seed),
        vocab_(options.shared_vocab ? options.shared_vocab
                                    : std::make_shared<Vocabulary>()) {
    topic_model_ = std::make_unique<TopicModel>(
        vocab_.get(), options_.num_background_topics,
        options_.words_per_topic, &rng_);
    BuildSubtopics();
    BuildAnchorTable();
  }

  const std::shared_ptr<Vocabulary>& shared_vocab() const { return vocab_; }
  size_t num_documents() const { return options_.num_documents; }
  size_t num_generated() const { return next_id_; }

  /// Emits the next document (ids sequential from 0). Returns false once
  /// options.num_documents documents have been generated.
  bool Next(Document* doc, DocAnnotations* ann);

  /// Split assignment over the generated ids; call after the last Next().
  CorpusSplits MakeSplits();

 private:
  // --- setup ------------------------------------------------------------
  void BuildSubtopics();
  void BuildAnchorTable();

  // --- entity surface forms ----------------------------------------------
  std::string RandomPerson();
  std::string RandomLocation();
  std::string RandomOrganization();
  std::string RandomDisease();
  std::string RandomCharge();
  std::string RandomCareer();
  std::string RandomElection();
  std::string RandomTemporal();
  std::string RandomEntityValue(EntityType type, RelationId relation,
                                size_t subtopic);

  // --- sentence assembly --------------------------------------------------
  // Appends interned tokens of a space-separated phrase; returns [begin,end).
  std::pair<uint32_t, uint32_t> AppendPhrase(Sentence& s,
                                             const std::string& phrase);
  void AppendTopicalWords(Sentence& s, const Topic& topic, int count);
  Sentence FillerSentence(const Topic& topic);
  // A sentence holding a gold relation tuple; records mentions + tuple.
  Sentence TupleSentence(RelationId relation, size_t subtopic,
                         const Topic& topic, uint32_t sentence_index,
                         DocAnnotations& ann);
  // A sentence with a single entity mention, no tuple.
  Sentence EntityOnlySentence(EntityType type, RelationId relation,
                              size_t subtopic, const Topic& topic,
                              uint32_t sentence_index, DocAnnotations& ann);
  // Both entity types joined by a neutral connector, no tuple.
  Sentence CoOccurrenceSentence(RelationId relation, size_t subtopic,
                                const Topic& topic, uint32_t sentence_index,
                                DocAnnotations& ann);

  // --- document assembly --------------------------------------------------
  void GenerateDocument(Document& doc, DocAnnotations& ann);
  void PlantRelationContent(RelationId relation, size_t subtopic,
                            bool plant_tuples, const Topic& topic,
                            Document& doc, DocAnnotations& ann);
  void MaybePlantDenseRelations(const Topic& topic, Document& doc,
                                DocAnnotations& ann);

  const Topic& AnchorTopic(const Anchor& anchor) const;

  GeneratorOptions options_;
  Rng rng_;
  std::shared_ptr<Vocabulary> vocab_;
  size_t next_id_ = 0;
  std::unique_ptr<TopicModel> topic_model_;
  // subtopics_[relation] = list of subtopic Topics (vocabulary).
  std::array<std::vector<Topic>, kNumRelations> subtopics_;
  // Subtopic prevalence within each relation.
  std::array<std::vector<double>, kNumRelations> subtopic_weights_;
  std::vector<Anchor> anchors_;
  std::vector<double> anchor_weights_;
  // Cross-topic tuple probability for dense relations (PO, PC).
  std::array<double, kNumRelations> dense_plant_prob_ = {};
  // Probability that a background doc carries an off-topic instance.
  std::array<double, kNumRelations> offtopic_plant_prob_ = {};
};

void Generator::BuildSubtopics() {
  const Lexicon& lex = GetLexicon();
  for (const RelationSpec& spec : AllRelations()) {
    const size_t rel = static_cast<size_t>(spec.id);
    for (const Lexicon::Subtopic& st : lex.subtopics[rel]) {
      subtopics_[rel].push_back(topic_model_->MakeTopicFromWords(
          spec.code + "_" + st.name, st.flavor_words,
          /*extra_synthetic=*/50, st.prevalence, &rng_));
      subtopic_weights_[rel].push_back(st.prevalence);
    }
  }
}

void Generator::BuildAnchorTable() {
  anchors_.clear();
  anchor_weights_.clear();

  // Anchor mass per relation: sparse relations get (density × compensation);
  // dense relations get a fixed small anchor plus cross-topic planting that
  // tops density up to the Table 1 target.
  auto anchor_mass = [&](const RelationSpec& spec) {
    const double mult =
        options_.relation_anchor_multiplier[static_cast<size_t>(spec.id)];
    if (spec.dense) {
      return (spec.id == RelationId::kPersonCareer ? 0.040 : 0.030) *
             options_.density_scale * mult;
    }
    return spec.paper_density * options_.recall_compensation *
           options_.density_scale * mult;
  };

  double used_mass = 0.0;
  for (const RelationSpec& spec : AllRelations()) {
    const size_t rel = static_cast<size_t>(spec.id);
    const double mass = anchor_mass(spec);
    const double distractor_mass = 0.6 * mass;
    const auto& weights = subtopic_weights_[rel];
    const double weight_sum =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    for (size_t st = 0; st < weights.size(); ++st) {
      const double share = weights[st] / weight_sum;
      anchors_.push_back({Anchor::Kind::kRelation, 0, spec.id, st,
                          mass * share});
      anchors_.push_back({Anchor::Kind::kDistractor, 0, spec.id, st,
                          distractor_mass * share});
    }
    used_mass += mass + distractor_mass;

    // Cross-topic planting probability for dense relations, solving
    //   target = anchor + (1 - anchor) * q   for q.
    if (spec.dense) {
      const double target = spec.paper_density * options_.recall_compensation *
                            options_.density_scale;
      dense_plant_prob_[rel] =
          std::clamp((target - mass) / (1.0 - mass), 0.0, 1.0);
    } else {
      // A sliver of useful docs live off-topic (hurts keyword recall).
      offtopic_plant_prob_[rel] =
          0.08 * spec.paper_density * options_.recall_compensation *
          options_.density_scale;
    }
  }

  // Keep at least 15% background mass; when a preset (e.g. extractor
  // training) over-allocates anchors, rescale proportionally.
  constexpr double kMaxAnchorMass = 0.85;
  if (used_mass > kMaxAnchorMass) {
    const double shrink = kMaxAnchorMass / used_mass;
    for (Anchor& a : anchors_) a.weight *= shrink;
    used_mass = kMaxAnchorMass;
  }
  const double background_mass = 1.0 - used_mass;
  const auto& topic_weights = topic_model_->weights();
  const double topic_weight_sum =
      std::accumulate(topic_weights.begin(), topic_weights.end(), 0.0);
  for (size_t t = 0; t < topic_model_->NumTopics(); ++t) {
    anchors_.push_back({Anchor::Kind::kBackground, t,
                        RelationId::kPersonOrganization, 0,
                        background_mass * topic_weights[t] /
                            topic_weight_sum});
  }

  anchor_weights_.reserve(anchors_.size());
  for (const Anchor& a : anchors_) anchor_weights_.push_back(a.weight);
}

std::string Generator::RandomPerson() {
  const Lexicon& lex = GetLexicon();
  return lex.person_first_names[rng_.NextBounded(
             lex.person_first_names.size())] +
         " " +
         lex.person_last_names[rng_.NextBounded(lex.person_last_names.size())];
}

std::string Generator::RandomLocation() {
  const Lexicon& lex = GetLexicon();
  return lex.locations[rng_.NextBounded(lex.locations.size())];
}

std::string Generator::RandomOrganization() {
  const Lexicon& lex = GetLexicon();
  if (rng_.NextBool(0.2)) {
    return "university of " + RandomLocation();
  }
  return lex.org_stems[rng_.NextBounded(lex.org_stems.size())] + " " +
         lex.org_suffixes[rng_.NextBounded(lex.org_suffixes.size())];
}

std::string Generator::RandomDisease() {
  const Lexicon& lex = GetLexicon();
  return lex.diseases[rng_.NextBounded(lex.diseases.size())];
}

std::string Generator::RandomCharge() {
  const Lexicon& lex = GetLexicon();
  return lex.charges[rng_.NextBounded(lex.charges.size())];
}

std::string Generator::RandomCareer() {
  const Lexicon& lex = GetLexicon();
  return lex.careers[rng_.NextBounded(lex.careers.size())];
}

std::string Generator::RandomElection() {
  const Lexicon& lex = GetLexicon();
  return lex.election_kinds[rng_.NextBounded(lex.election_kinds.size())];
}

std::string Generator::RandomTemporal() {
  const Lexicon& lex = GetLexicon();
  const int year = 1987 + static_cast<int>(rng_.NextBounded(21));
  return lex.months[rng_.NextBounded(lex.months.size())] + " " +
         StrFormat("%d", year);
}

std::string Generator::RandomEntityValue(EntityType type, RelationId relation,
                                         size_t subtopic) {
  const Lexicon& lex = GetLexicon();
  const size_t rel = static_cast<size_t>(relation);

  // The relation's topical attribute draws from the subtopic's own entity
  // subset, giving each subtopic a characteristic value vocabulary.
  if (type == lex.topical_attribute[rel] &&
      subtopic < lex.subtopics[rel].size()) {
    const auto& terms = lex.subtopics[rel][subtopic].entity_terms;
    if (!terms.empty()) {
      if (type == EntityType::kOrganization) {
        // PO subtopics carry organization-name suffixes.
        if (rng_.NextBool(0.15) &&
            lex.subtopics[rel][subtopic].name == "institutional") {
          return "university of " + RandomLocation();
        }
        return lex.org_stems[rng_.NextBounded(lex.org_stems.size())] + " " +
               terms[rng_.NextBounded(terms.size())];
      }
      return terms[rng_.NextBounded(terms.size())];
    }
  }

  switch (type) {
    case EntityType::kPerson:
      return RandomPerson();
    case EntityType::kLocation:
      return RandomLocation();
    case EntityType::kOrganization:
      return RandomOrganization();
    case EntityType::kDisease:
      return RandomDisease();
    case EntityType::kCharge:
      return RandomCharge();
    case EntityType::kCareer:
      return RandomCareer();
    case EntityType::kElection:
      return RandomElection();
    case EntityType::kTemporal:
      return RandomTemporal();
    case EntityType::kNaturalDisaster:
    case EntityType::kManMadeDisaster: {
      // Fallback for out-of-range subtopics: any term of the relation.
      const auto& subtopics = lex.subtopics[rel];
      const auto& st = subtopics[rng_.NextBounded(subtopics.size())];
      return st.entity_terms[rng_.NextBounded(st.entity_terms.size())];
    }
    case EntityType::kNone:
      break;
  }
  return "unknown";
}

std::pair<uint32_t, uint32_t> Generator::AppendPhrase(
    Sentence& s, const std::string& phrase) {
  const uint32_t begin = static_cast<uint32_t>(s.tokens.size());
  for (const auto& piece : SplitString(phrase, " ")) {
    s.tokens.push_back(vocab_->Intern(piece));
  }
  return {begin, static_cast<uint32_t>(s.tokens.size())};
}

void Generator::AppendTopicalWords(Sentence& s, const Topic& topic,
                                   int count) {
  const Lexicon& lex = GetLexicon();
  Vocabulary& vocab = *vocab_;
  for (int i = 0; i < count; ++i) {
    const double roll = rng_.NextDouble();
    if (roll < 0.38) {
      const auto rank = rng_.NextZipf(lex.common_words.size(), 1.05);
      s.tokens.push_back(vocab.Intern(lex.common_words[rank]));
    } else if (roll < 0.80) {
      s.tokens.push_back(topic_model_->SampleWord(topic, &rng_));
    } else {
      const auto& noise =
          topic_model_->topic(topic_model_->SampleTopic(&rng_));
      s.tokens.push_back(topic_model_->SampleWord(noise, &rng_));
    }
  }
}

Sentence Generator::FillerSentence(const Topic& topic) {
  Sentence s;
  const int len = static_cast<int>(
      rng_.NextInt(options_.min_tokens_per_sentence,
                   options_.max_tokens_per_sentence));
  AppendTopicalWords(s, topic, len);
  // Relation trigger words are ordinary verbs ("hit", "joined", "went to")
  // that occur broadly in news text, so a trigger alone is a weak
  // usefulness cue — only its conjunction with entity context matters.
  if (rng_.NextBool(0.18)) {
    const Lexicon& lex = GetLexicon();
    const size_t rel = rng_.NextBounded(kNumRelations);
    const auto& triggers = lex.triggers[rel];
    const std::string& t = triggers[rng_.NextBounded(triggers.size())];
    AppendPhrase(s, t);
  }
  return s;
}

Sentence Generator::TupleSentence(RelationId relation, size_t subtopic,
                                  const Topic& topic, uint32_t sentence_index,
                                  DocAnnotations& ann) {
  const Lexicon& lex = GetLexicon();
  const RelationSpec& spec = GetRelation(relation);
  Sentence s;
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(1, 4)));

  const std::string a1 = RandomEntityValue(spec.attr1, relation, subtopic);
  const std::string a2 = RandomEntityValue(spec.attr2, relation, subtopic);
  const auto& triggers = lex.triggers[static_cast<size_t>(relation)];
  const std::string& trigger = triggers[rng_.NextBounded(triggers.size())];

  const auto [b1, e1] = AppendPhrase(s, a1);
  AppendPhrase(s, trigger);
  const auto [b2, e2] = AppendPhrase(s, a2);
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(1, 4)));

  ann.mentions.push_back({sentence_index, b1, e1, spec.attr1, a1});
  ann.mentions.push_back({sentence_index, b2, e2, spec.attr2, a2});
  ann.tuples.push_back({relation, a1, a2, sentence_index});
  return s;
}

Sentence Generator::EntityOnlySentence(EntityType type, RelationId relation,
                                       size_t subtopic, const Topic& topic,
                                       uint32_t sentence_index,
                                       DocAnnotations& ann) {
  Sentence s;
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(2, 5)));
  const std::string value = RandomEntityValue(type, relation, subtopic);
  const auto [b, e] = AppendPhrase(s, value);
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(2, 5)));
  ann.mentions.push_back({sentence_index, b, e, type, value});
  return s;
}

Sentence Generator::CoOccurrenceSentence(RelationId relation, size_t subtopic,
                                         const Topic& topic,
                                         uint32_t sentence_index,
                                         DocAnnotations& ann) {
  const RelationSpec& spec = GetRelation(relation);
  Sentence s;
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(1, 3)));
  const std::string a1 = RandomEntityValue(spec.attr1, relation, subtopic);
  const std::string a2 = RandomEntityValue(spec.attr2, relation, subtopic);
  const auto& connectors = NeutralConnectors();
  const auto [b1, e1] = AppendPhrase(s, a1);
  AppendPhrase(s, connectors[rng_.NextBounded(connectors.size())]);
  // Unrelated entity pairs sit farther apart than related ones; the padding
  // also keeps distance-based extractors (DO) from firing on negatives.
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(4, 8)));
  const auto [b2, e2] = AppendPhrase(s, a2);
  AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(1, 3)));
  ann.mentions.push_back({sentence_index, b1, e1, spec.attr1, a1});
  ann.mentions.push_back({sentence_index, b2, e2, spec.attr2, a2});
  return s;
}

void Generator::PlantRelationContent(RelationId relation, size_t subtopic,
                                     bool plant_tuples, const Topic& topic,
                                     Document& doc, DocAnnotations& ann) {
  const RelationSpec& spec = GetRelation(relation);
  auto insert_at_random = [&](Sentence&& s) {
    // Sentence index recorded by callers must match the final position, so
    // we append and fix the index inside the callers via doc.sentences.size.
    doc.sentences.push_back(std::move(s));
  };

  if (plant_tuples) {
    int instances = 1;
    if (rng_.NextBool(0.4)) ++instances;
    if (rng_.NextBool(0.2)) ++instances;
    for (int i = 0; i < instances; ++i) {
      const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
      insert_at_random(TupleSentence(relation, subtopic, topic, idx, ann));
    }
  }
  // Hard negatives: lone entities and neutral co-occurrences.
  if (rng_.NextBool(0.55)) {
    const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
    const EntityType type = rng_.NextBool(0.5) ? spec.attr1 : spec.attr2;
    insert_at_random(
        EntityOnlySentence(type, relation, subtopic, topic, idx, ann));
  }
  if (rng_.NextBool(plant_tuples ? 0.25 : 0.45)) {
    const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
    insert_at_random(CoOccurrenceSentence(relation, subtopic, topic, idx,
                                          ann));
  }
}

void Generator::MaybePlantDenseRelations(const Topic& topic, Document& doc,
                                         DocAnnotations& ann) {
  for (RelationId rel :
       {RelationId::kPersonCareer, RelationId::kPersonOrganization}) {
    const size_t idx = static_cast<size_t>(rel);
    if (dense_plant_prob_[idx] > 0.0 &&
        rng_.NextBool(dense_plant_prob_[idx])) {
      // Dense relations appear across all topics; the instance still uses a
      // prevalence-weighted subtopic's entity vocabulary.
      const size_t st = rng_.NextCategorical(subtopic_weights_[idx]);
      PlantRelationContent(rel, st, /*plant_tuples=*/true, topic, doc, ann);
    }
  }
}

const Topic& Generator::AnchorTopic(const Anchor& anchor) const {
  if (anchor.kind == Anchor::Kind::kBackground) {
    return topic_model_->topic(anchor.background_topic);
  }
  return subtopics_[static_cast<size_t>(anchor.relation)][anchor.subtopic];
}

void Generator::GenerateDocument(Document& doc, DocAnnotations& ann) {
  const Anchor& anchor = anchors_[rng_.NextCategorical(anchor_weights_)];
  const Topic& topic = AnchorTopic(anchor);

  const int num_sentences = static_cast<int>(
      rng_.NextInt(options_.min_sentences, options_.max_sentences));

  // Base filler body.
  for (int i = 0; i < num_sentences; ++i) {
    doc.sentences.push_back(FillerSentence(topic));
  }

  // Scatter temporal expressions (needed as DO negatives, and generally
  // realistic for news): ~35% of documents carry a date phrase somewhere.
  if (rng_.NextBool(0.35)) {
    const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
    Sentence s;
    AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(2, 6)));
    const std::string when = RandomTemporal();
    AppendPhrase(s, "in");
    const auto [b, e] = AppendPhrase(s, when);
    AppendTopicalWords(s, topic, static_cast<int>(rng_.NextInt(1, 4)));
    ann.mentions.push_back({idx, b, e, EntityType::kTemporal, when});
    doc.sentences.push_back(std::move(s));
  }

  // Scatter person mentions broadly (people appear all over a news corpus).
  if (rng_.NextBool(0.25)) {
    const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
    doc.sentences.push_back(EntityOnlySentence(
        EntityType::kPerson, RelationId::kPersonCareer, 0, topic, idx, ann));
  }
  // Locations likewise: news articles name places constantly, so a location
  // mention alone says nothing about disaster usefulness.
  if (rng_.NextBool(0.30)) {
    const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
    doc.sentences.push_back(EntityOnlySentence(
        EntityType::kLocation, RelationId::kNaturalDisaster, 0, topic, idx,
        ann));
  }
  // Topical entity terms occur outside relation contexts too (a "professor"
  // mentioned with no career statement, a disease in a research story, an
  // organization with no affiliation), so the presence of a single keyword
  // is a weak usefulness signal — as in real corpora.
  {
    const Lexicon& lex = GetLexicon();
    for (const RelationSpec& spec : AllRelations()) {
      const size_t rel = static_cast<size_t>(spec.id);
      // Organizations get less lone-mention noise: the suffix-pattern NER
      // plus HMM person tagging makes stray orgs a false-positive hazard.
      const double noise_prob =
          spec.id == RelationId::kPersonCareer      ? 0.08
          : spec.id == RelationId::kPersonOrganization ? 0.02
                                                       : 0.012;
      if (!rng_.NextBool(noise_prob)) continue;
      const size_t st = rng_.NextCategorical(subtopic_weights_[rel]);
      const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
      doc.sentences.push_back(EntityOnlySentence(
          lex.topical_attribute[rel], spec.id, st, topic, idx, ann));
    }
  }

  switch (anchor.kind) {
    case Anchor::Kind::kRelation:
      PlantRelationContent(anchor.relation, anchor.subtopic,
                           /*plant_tuples=*/true, topic, doc, ann);
      break;
    case Anchor::Kind::kDistractor:
      PlantRelationContent(anchor.relation, anchor.subtopic,
                           /*plant_tuples=*/false, topic, doc, ann);
      break;
    case Anchor::Kind::kBackground:
      // Rare off-topic instances of sparse relations.
      for (const RelationSpec& spec : AllRelations()) {
        const size_t rel = static_cast<size_t>(spec.id);
        if (offtopic_plant_prob_[rel] > 0.0 &&
            rng_.NextBool(offtopic_plant_prob_[rel])) {
          const size_t st =
              rng_.NextBounded(subtopics_[rel].size());
          const uint32_t idx = static_cast<uint32_t>(doc.sentences.size());
          doc.sentences.push_back(
              TupleSentence(spec.id, st, topic, idx, ann));
        }
      }
      break;
  }

  MaybePlantDenseRelations(topic, doc, ann);

  // Shuffling sentence order would invalidate recorded sentence indices;
  // instead we lightly rotate the document so planted content is not always
  // at the tail. Rotation preserves relative order; remap indices.
  const size_t n = doc.sentences.size();
  const size_t shift = rng_.NextBounded(n);
  if (shift > 0) {
    std::rotate(doc.sentences.begin(),
                doc.sentences.begin() + static_cast<long>(shift),
                doc.sentences.end());
    auto remap = [&](uint32_t old_idx) {
      return static_cast<uint32_t>((old_idx + n - shift) % n);
    };
    for (auto& m : ann.mentions) m.sentence = remap(m.sentence);
    for (auto& t : ann.tuples) t.sentence = remap(t.sentence);
  }

  doc.id = static_cast<DocId>(next_id_++);
}

bool Generator::Next(Document* doc, DocAnnotations* ann) {
  if (next_id_ >= options_.num_documents) return false;
  doc->sentences.clear();
  ann->mentions.clear();
  ann->tuples.clear();
  GenerateDocument(*doc, *ann);
  return true;
}

CorpusSplits Generator::MakeSplits() {
  std::vector<DocId> ids(next_id_);
  std::iota(ids.begin(), ids.end(), 0);
  rng_.Shuffle(ids);
  const double total = static_cast<double>(next_id_);
  const size_t n_train = static_cast<size_t>(options_.train_fraction * total);
  const size_t n_dev = static_cast<size_t>(options_.dev_fraction * total);
  CorpusSplits splits;
  const auto train_end = ids.begin() + static_cast<std::ptrdiff_t>(n_train);
  const auto dev_end = train_end + static_cast<std::ptrdiff_t>(n_dev);
  splits.train.assign(ids.begin(), train_end);
  splits.dev.assign(train_end, dev_end);
  splits.test.assign(dev_end, ids.end());
  return splits;
}

}  // namespace

class StreamingCorpusGenerator::Impl {
 public:
  explicit Impl(const GeneratorOptions& options) : gen(options) {}
  Generator gen;
};

StreamingCorpusGenerator::StreamingCorpusGenerator(
    const GeneratorOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

StreamingCorpusGenerator::~StreamingCorpusGenerator() = default;
StreamingCorpusGenerator::StreamingCorpusGenerator(
    StreamingCorpusGenerator&&) noexcept = default;
StreamingCorpusGenerator& StreamingCorpusGenerator::operator=(
    StreamingCorpusGenerator&&) noexcept = default;

const std::shared_ptr<Vocabulary>& StreamingCorpusGenerator::shared_vocab()
    const {
  return impl_->gen.shared_vocab();
}

size_t StreamingCorpusGenerator::num_documents() const {
  return impl_->gen.num_documents();
}

size_t StreamingCorpusGenerator::num_generated() const {
  return impl_->gen.num_generated();
}

bool StreamingCorpusGenerator::Next(Document* doc, DocAnnotations* ann) {
  return impl_->gen.Next(doc, ann);
}

CorpusSplits StreamingCorpusGenerator::MakeSplits() {
  IE_CHECK(impl_->gen.num_generated() == impl_->gen.num_documents());
  return impl_->gen.MakeSplits();
}

GeneratorOptions GeneratorOptions::ForExtractorTraining(RelationId relation,
                                                        size_t num_documents,
                                                        uint64_t seed) {
  GeneratorOptions options;
  options.num_documents = num_documents;
  options.seed = seed;
  // Make the target relation's subtopics dominate the anchor table; all
  // generated docs go to the train split.
  const RelationSpec& spec = GetRelation(relation);
  const double base = spec.dense ? 0.04 : spec.paper_density * 1.15;
  options.relation_anchor_multiplier[static_cast<size_t>(relation)] =
      0.35 / base;
  options.train_fraction = 1.0;
  options.dev_fraction = 0.0;
  return options;
}

Corpus GenerateCorpus(const GeneratorOptions& options) {
  StreamingCorpusGenerator gen(options);
  Corpus corpus(gen.shared_vocab());
  Document doc;
  DocAnnotations ann;
  while (gen.Next(&doc, &ann)) {
    corpus.Add(std::move(doc), std::move(ann));
  }
  corpus.mutable_splits() = gen.MakeSplits();
  return corpus;
}

StreamedCorpusInfo GenerateCorpusStreaming(const GeneratorOptions& options,
                                           const DocumentVisitor& visit) {
  StreamingCorpusGenerator gen(options);
  Document doc;
  DocAnnotations ann;
  while (gen.Next(&doc, &ann)) {
    visit(std::move(doc), std::move(ann));
  }
  StreamedCorpusInfo info;
  info.vocab = gen.shared_vocab();
  info.splits = gen.MakeSplits();
  return info;
}

}  // namespace ie
