// Synthetic topical vocabulary. Background topics (and relation subtopics)
// each own a Zipf-distributed pool of generated pronounceable words; word
// pools overlap only by construction of the shared common-word list, so
// topical skew — the property the paper's ranking models exploit — is
// explicit and controllable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

struct Topic {
  std::string name;
  /// Topical word ids, most-frequent first (sampled with a Zipf law).
  std::vector<TokenId> words;
  /// Relative prevalence of this topic in the collection.
  double weight = 1.0;
};

/// Generates a unique pronounceable synthetic word (CV-syllable based).
/// Appends to `used` to guarantee global uniqueness across calls.
class WordForge {
 public:
  explicit WordForge(Rng* rng) : rng_(rng) {}

  std::string NextWord();

 private:
  Rng* rng_;
  std::unordered_set<std::string> used_;
};

/// Collection of background topics over a shared vocabulary.
class TopicModel {
 public:
  /// Builds `num_topics` topics with `words_per_topic` fresh synthetic words
  /// each, interned into `vocab`. Topic prevalence follows a Zipf law so a
  /// few topics dominate, as in real news collections.
  TopicModel(Vocabulary* vocab, size_t num_topics, size_t words_per_topic,
             Rng* rng);

  size_t NumTopics() const { return topics_.size(); }
  const Topic& topic(size_t i) const { return topics_[i]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Samples a word id from a topic (Zipf within the topic's pool).
  TokenId SampleWord(const Topic& topic, Rng* rng) const;

  /// Samples a topic index according to prevalence weights.
  size_t SampleTopic(Rng* rng) const;

  /// Builds an ad-hoc topic from explicit surface words (interned) plus
  /// `extra_synthetic` fresh words; used for relation subtopics.
  Topic MakeTopicFromWords(const std::string& name,
                           const std::vector<std::string>& surface_words,
                           size_t extra_synthetic, double weight,
                           Rng* rng);

 private:
  Vocabulary* vocab_;
  WordForge forge_;
  std::vector<Topic> topics_;
  std::vector<double> weights_;
};

}  // namespace ie
