// The seven extraction relations evaluated in the paper (Table 1), with
// their target useful-document densities and the per-document extraction
// cost model used by the efficiency experiments (the paper reports ~6 s/doc
// for Natural Disaster–Location and ~0.01 s/doc for Person–Organization).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ie {

enum class RelationId : uint8_t {
  kPersonOrganization = 0,  // PO — dense, fast extractor
  kDiseaseOutbreak = 1,     // DO — very sparse
  kPersonCareer = 2,        // PC — densest
  kNaturalDisaster = 3,     // ND — sparse, slow extractor
  kManMadeDisaster = 4,     // MD — sparse
  kPersonCharge = 5,        // PH — sparse
  kElectionWinner = 6,      // EW — very sparse
};

inline constexpr size_t kNumRelations = 7;

/// Entity types recognized by the extraction substrate.
enum class EntityType : uint8_t {
  kNone = 0,
  kPerson,
  kLocation,
  kOrganization,
  kDisease,
  kNaturalDisaster,
  kManMadeDisaster,
  kCharge,
  kCareer,
  kElection,
  kTemporal,
};

inline constexpr size_t kNumEntityTypes = 11;

struct RelationSpec {
  RelationId id;
  /// Two-letter code used in the paper's tables (PO, DO, PC, ND, MD, PH, EW).
  std::string code;
  std::string name;
  EntityType attr1;
  EntityType attr2;
  /// Fraction of useful documents in the paper's test split (Table 1).
  double paper_density;
  /// Simulated extraction cost charged per processed document (seconds).
  double extraction_cost_seconds;
  /// Dense relations are scattered across many topics (paper Section 5).
  bool dense;
};

/// Immutable registry of the seven relations.
const std::vector<RelationSpec>& AllRelations();

/// Spec lookup by id.
const RelationSpec& GetRelation(RelationId id);

/// Spec lookup by two-letter code ("ND"); nullptr when unknown.
const RelationSpec* FindRelationByCode(const std::string& code);

const char* EntityTypeName(EntityType type);

}  // namespace ie
