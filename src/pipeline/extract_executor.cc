#include "pipeline/extract_executor.h"

#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace ie {

ExtractExecutor::ExtractExecutor(WorkFn work, ExtractExecutorOptions options)
    : work_(std::move(work)), options_(options) {
  IE_CHECK(work_ != nullptr);
  if (options_.prefetch_window == 0) options_.prefetch_window = 1;
#if IE_OBSERVABILITY
  queue_.set_latency_histogram(&MetricsRegistry::Global().GetHistogram(
      "executor.queue_latency_seconds"));
#endif
  if (options_.threads > 1) {
    workers_.reserve(options_.threads);
    for (size_t t = 0; t < options_.threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ExtractExecutor::~ExtractExecutor() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

void ExtractExecutor::WorkerLoop() {
  DocId doc = 0;
  while (queue_.Pop(&doc)) {
    IE_TRACE_COUNTER("executor.queue_depth", queue_.size());
    {
      MutexLock lock(mu_);
      auto it = cache_.find(doc);
      // Reclaimed by Take() or dropped by CancelQueued() after it was
      // queued but before we popped it.
      if (it == cache_.end() || it->second.state != State::kQueued) continue;
      it->second.state = State::kRunning;
    }
    LabeledExample result;
    std::exception_ptr error;
    IE_TRACE_SCOPE("executor.task");
    CpuTimer timer;
    try {
      result = work_(doc);
    } catch (...) {
      error = std::current_exception();
    }
    const double cpu = timer.ElapsedSeconds();
    IE_METRIC_HIST_OBSERVE("executor.task_seconds", cpu);
    {
      MutexLock lock(mu_);
      auto it = cache_.find(doc);
      IE_CHECK(it != cache_.end() && it->second.state == State::kRunning);
      it->second.result = std::move(result);
      it->second.error = error;
      it->second.state = State::kDone;
      stats_.worker_cpu_seconds += cpu;
      ++stats_.tasks_executed;
    }
    done_cv_.NotifyAll();
  }
}

void ExtractExecutor::Prefetch(DocId doc) {
  if (!speculative()) return;
  {
    MutexLock lock(mu_);
    if (cache_.size() >= options_.prefetch_window) return;
    if (!cache_.emplace(doc, Entry{}).second) return;  // already outstanding
  }
  queue_.Push(doc);
}

LabeledExample ExtractExecutor::Take(DocId doc) {
  if (speculative()) {
    MutexLock lock(mu_);
    auto it = cache_.find(doc);
    if (it != cache_.end()) {
      if (it->second.state == State::kQueued) {
        // Reclaim: erase so the worker that eventually pops this id skips
        // it, then compute inline below.
        cache_.erase(it);
        ++stats_.misses;
        IE_METRIC_COUNT("executor.misses");
      } else {
        if (it->second.state == State::kRunning) {
          ++stats_.waits;
          IE_METRIC_COUNT("executor.waits");
          IE_TRACE_SCOPE("executor.wait");
          // Only this consumer inserts/erases cache_ entries, so the
          // iterator survives the wait; workers flip the state in place.
          while (it->second.state != State::kDone) done_cv_.Wait(mu_);
        } else {
          ++stats_.hits;
          IE_METRIC_COUNT("executor.hits");
        }
        LabeledExample result = std::move(it->second.result);
        std::exception_ptr error = it->second.error;
        cache_.erase(it);
        if (error) std::rethrow_exception(error);
        return result;
      }
    } else {
      ++stats_.misses;
      IE_METRIC_COUNT("executor.misses");
    }
  } else {
    MutexLock lock(mu_);
    ++stats_.misses;
    IE_METRIC_COUNT("executor.misses");
  }
  IE_TRACE_SCOPE("executor.inline_task");
  CpuTimer timer;
  LabeledExample result = work_(doc);
  const double cpu = timer.ElapsedSeconds();
  IE_METRIC_HIST_OBSERVE("executor.task_seconds", cpu);
  {
    MutexLock lock(mu_);
    stats_.inline_cpu_seconds += cpu;
  }
  return result;
}

size_t ExtractExecutor::CancelQueued() {
  if (!speculative()) return 0;
  std::unordered_set<DocId> dropped;
  {
    MutexLock lock(mu_);
    // DETERMINISM: order-insensitive (erase-if over the cache; the set of
    // queued entries removed does not depend on visit order)
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->second.state == State::kQueued) {
        dropped.insert(it->first);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
    stats_.cancelled += dropped.size();
    IE_METRIC_COUNT_N("executor.cancelled", dropped.size());
  }
  // Purge the ids workers have not popped yet; any id a worker already
  // holds finds no cache entry and is skipped (same path as Take()'s
  // reclaim).
  queue_.RemoveIf([&dropped](DocId d) { return dropped.count(d) > 0; });
  return dropped.size();
}

ExtractExecutorStats ExtractExecutor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace ie
