// Incremental delta re-rank engine (DESIGN.md §8). The paper's adaptive
// loop re-scores and re-sorts the entire remaining pool on every model
// update — an O(pool × features) dot-product pass per update. Between two
// scoring snapshots the elastic-net learners move every weight by the same
// decay factor and ℓ1 penalty; only gradient-touched (or zero-clamped)
// features deviate (see FactoredWeightDelta). This engine caches each
// candidate's per-component margins m = w·x and sign masses z = Σ sign(w)·x,
// advances them per update as m ← scale·m − penalty·z (two multiplies per
// document), scatters the sparse corrections through a value-carrying
// feature-posting index (one FMA per touched posting), and serves
// candidates best-first from a binary heap so only the consumed frontier is
// ever ordered. Incremental and full passes produce identical processing
// orders (tests/rerank_equivalence_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "index/feature_postings.h"
#include "ranking/document_ranker.h"
#include "text/document.h"
#include "text/sparse_vector.h"

namespace ie {

struct RerankOptions {
  /// Delta re-ranking enabled; plain full rescoring otherwise. Both modes
  /// order documents identically — incremental is purely a cost saving.
  bool incremental = true;
  /// Fallback: a delta pass scatters one FMA per posting of each corrected
  /// feature, while a full pass gathers every pending document's features
  /// once per component (margin and sign mass share a fused walk). Scatter
  /// and gather cost about the same per posting, so when the correction
  /// support's posting mass exceeds `density_threshold × components ×
  /// pending postings` the delta pass is near break-even and the engine
  /// takes the simpler full rescore instead; below it the speedup grows as
  /// corrections shrink (≥2x once the mass is under roughly half the
  /// pending postings — see bench_rerank). Dense corrections happen when
  /// many observations violate the margin since the last snapshot, e.g.
  /// right after warmup.
  double density_threshold = 1.0;
  /// Worker threads for bulk scoring and delta passes (see ParallelFor).
  size_t scoring_threads = 1;
  /// Rankers with stateful Score() (Random) must be scored serially.
  bool allow_parallel_scoring = true;
};

struct RerankStats {
  size_t full_rescores = 0;      // full scoring passes (incl. fallbacks)
  size_t delta_rescores = 0;     // incremental passes taken
  size_t density_fallbacks = 0;  // delta passes abandoned as too dense
  // Documents needing sparse correction work in delta passes (all other
  // pending documents are advanced with two multiplies per component).
  size_t delta_documents_rescored = 0;
  // Scatter FMAs executed across all delta passes — the entire sparse cost
  // of the incremental path, comparable against full passes' gather cost
  // of 2 × components × pending postings each.
  size_t delta_posting_touches = 0;
};

/// Priority frontier over the unprocessed candidate pool.
class RerankEngine {
 public:
  /// `score_override`, when set, replaces the ranker's Score() in full
  /// passes (the Perfect oracle scores by usefulness, which features alone
  /// cannot express); such engines never take the delta path.
  RerankEngine(DocumentRanker* ranker,
               const std::vector<SparseVector>* features,
               RerankOptions options,
               std::function<double(DocId)> score_override = nullptr);

  /// Registers a candidate document. Insertion order is the deterministic
  /// tie-break: equal float scores pop in insertion order, mirroring the
  /// stable sort this engine replaced. Newly added candidates become
  /// eligible on the next Rerank().
  void AddCandidate(DocId doc);

  /// Re-scores pending candidates against the ranker's current model
  /// (snapshotting it) and rebuilds the frontier heap. Takes the delta path
  /// when the ranker exposes a snapshot delta, cached margins are valid,
  /// and the delta support is below the density threshold.
  void Rerank();

  /// Pops the best pending candidate; false when the pool is exhausted.
  bool PopNext(DocId* doc);

  /// Returns a popped-but-unconsumed candidate to the pending pool (the
  /// speculative extraction loop pops a lookahead window and pushes the
  /// unconsumed remainder back before re-ranking). The document keeps its
  /// original insertion slot — and hence its tie-break position — and its
  /// cached margins, which are still valid because delta passes only run
  /// after every lookahead document has been requeued.
  void Requeue(DocId doc);

  size_t pending() const { return pending_; }
  const RerankStats& stats() const { return stats_; }

 private:
  struct Slot {
    DocId doc = 0;
    float score = 0.0f;
  };
  struct HeapEntry {
    float score = 0.0f;
    uint32_t slot = 0;
  };

  static bool HeapEntryLess(const HeapEntry& a, const HeapEntry& b);
  bool TryDeltaRescore();
  void FullRescore();
  void ScoreSlotFull(uint32_t slot);
  void RebuildHeap();
  std::vector<uint32_t> PendingSlots() const;

  DocumentRanker* ranker_;  // may be null only with score_override
  const std::vector<SparseVector>* features_;
  RerankOptions options_;
  std::function<double(DocId)> score_override_;

  size_t components_ = 0;  // 0 = margin caching / delta path unavailable
  std::vector<Slot> slots_;
  // Processed flags live outside Slot as a compact byte array: the
  // correction scatter tests one per touched posting, and a dense uint8
  // vector keeps that probe to a single cache-friendly byte load.
  std::vector<uint8_t> processed_;       // parallel to slots_
  std::vector<double> margins_;          // slots_ x components_, flattened
  std::vector<double> sign_mass_;        // same layout as margins_
  std::vector<uint32_t> slot_of_doc_;    // DocId -> slot (kNoSlot = absent)
  std::vector<HeapEntry> heap_;
  FeaturePostingIndex posting_index_;    // built only when delta-capable
  size_t pending_ = 0;
  size_t pending_postings_ = 0;  // feature entries over pending docs
  uint32_t scored_upto_ = 0;     // slots below this have valid margins
  bool margins_valid_ = false;
  RerankStats stats_;
};

}  // namespace ie
