// AdaptiveExtractionPipeline — the paper's Figure 2 loop: initial sample →
// ranking generation → ordered tuple extraction → update detection →
// (adaptive) model refresh and re-rank. Supports the full-access scenario
// (rank the whole pool) and the search-interface scenario (grow the pool by
// querying with the top features of the updated model).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/arch.h"
#include "corpus/corpus.h"
#include "extract/extraction_system.h"
#include "index/compact_index.h"
#include "index/inverted_index.h"
#include "pipeline/result.h"
#include "ranking/learned_rankers.h"
#include "text/featurizer.h"
#include "update/update_detector.h"

namespace ie {

enum class RankerKind { kRandom, kPerfect, kBAggIE, kRSVMIE };
enum class SamplerKind { kSRS, kCQS };
enum class UpdateKind { kNone, kWindF, kFeatS, kTopK, kModC };
enum class AccessMode { kFullAccess, kSearchInterface };

const char* RankerKindName(RankerKind kind);
const char* UpdateKindName(UpdateKind kind);
const char* SamplerKindName(SamplerKind kind);
const char* AccessModeName(AccessMode mode);

struct PipelineConfig {
  RankerKind ranker = RankerKind::kRSVMIE;
  SamplerKind sampler = SamplerKind::kSRS;
  UpdateKind update = UpdateKind::kNone;
  AccessMode access = AccessMode::kFullAccess;

  /// Initial sample budget. The paper uses 2000 over a ~1.1M-document test
  /// split (~0.2%); at bench scale use ~1-2% of the pool.
  size_t sample_size = 200;
  uint64_t seed = 1;

  /// Learned-ranker hyperparameters (paper defaults; ablations override).
  RsvmIeOptions rsvm = {};
  BaggIeOptions bagg = {};

  /// Wind-F fires this many times over the run (paper: 50).
  size_t windf_updates = 50;
  TopKOptions topk = {};
  ModCOptions modc = {};  // alpha auto-set per ranker by Defaults()
  FeatSOptions feats = {};

  /// Worker threads for bulk re-rank scoring (1 = serial; >1 uses
  /// ParallelFor and reports re-rank overhead in wall time).
  size_t scoring_threads = 1;

  /// Worker threads for speculative per-document extraction (see
  /// pipeline/extract_executor.h). <= 1 runs extraction inline on the
  /// consumer thread (the serial reference). Results are byte-identical at
  /// every thread count — per-document extraction is pure and consumption
  /// stays strictly in ranked order.
  size_t extract_threads = 1;
  /// How far ahead of the ranked frontier the executor may speculate:
  /// maximum outstanding prefetched documents (queued + running + done but
  /// unconsumed). Also the size of the popped-but-unconsumed lookahead the
  /// loop returns to the engine (RerankEngine::Requeue) before a re-rank.
  size_t prefetch_window = 64;

  /// Incremental delta re-ranking (see pipeline/rerank_engine.h): on model
  /// updates, advance cached per-document margins through the factored
  /// weight delta instead of rescoring the whole remaining pool. Orders
  /// are identical in both modes; false forces always-full rescoring.
  bool incremental_rerank = true;
  /// Density fallback threshold (RerankOptions::density_threshold): delta
  /// passes whose correction posting mass exceeds this multiple of
  /// components × pending postings run as full rescores instead.
  double rerank_density_threshold = 1.0;

  /// Search-interface scenario parameters.
  size_t search_initial_queries = 20;
  size_t search_initial_depth = 400;
  size_t search_refresh_features = 100;  // paper: top-100 features
  size_t search_refresh_depth = 100;

  /// Populate PipelineResult::metrics with this run's delta against the
  /// process-wide MetricsRegistry (counters, gauges, latency histograms).
  /// The exact run-scoped counters (rerank.*, executor.*) are stamped
  /// regardless, so the result accessors always work. No-op when
  /// IE_OBSERVABILITY is compiled out.
  bool metrics_enabled = true;
  /// When non-empty, the run records begin/end spans + counter tracks into
  /// the global Tracer and writes a Chrome-trace/Perfetto JSON here
  /// (validate with tools/check_trace.py). Skipped with a warning if
  /// another trace session is already active. No-op when IE_OBSERVABILITY
  /// is compiled out.
  std::string trace_path;
  /// Per-thread trace-buffer capacity in events; spans beyond it are
  /// dropped whole (the export stays balanced) and counted.
  size_t trace_buffer_events = 1 << 16;

  /// Flight recorder (DESIGN.md §15; pipeline/recorder.h). When non-empty,
  /// every processed document appends one JSONL line to this path, flushed
  /// per line — a crashed run's ledger stays parseable up to the crash.
  /// Validate/render/diff with tools/report.py. No-op when
  /// IE_OBSERVABILITY is compiled out.
  std::string ledger_path;
  /// Retain the per-iteration flight-recorder series in
  /// PipelineResult::iterations (bounded, deterministic downsampling; see
  /// common/timeseries.h). No-op — and the result member does not exist —
  /// when IE_OBSERVABILITY is compiled out.
  bool record_iterations = false;
  /// Hard bound on retained in-memory iteration records; beyond it the
  /// series halves its resolution (stride doubling) instead of evicting.
  size_t iteration_series_capacity = 512;

  /// Builds a config with per-ranker detector defaults. Mod-C α keeps the
  /// paper's ordering (BAgg-IE above RSVM-IE; paper: 30° vs 5°) at
  /// thresholds recalibrated for these models' drift (6° vs 2°).
  static PipelineConfig Defaults(RankerKind ranker, SamplerKind sampler,
                                 UpdateKind update, uint64_t seed);
};

/// The shared-immutable half of the shared/session state split
/// (DESIGN.md §16): per-experiment inputs that any number of concurrent
/// sessions — seeds, configurations, and eventually the multi-tenant
/// service's extraction sessions — read with no synchronization. Every
/// member is a deep-const view; the `shared-immutable` lint rule
/// cross-checks the IE_SHARED_IMMUTABLE marker, so a mutable member or a
/// non-const pointer cannot slip in silently. All per-run mutable state
/// lives in SessionState (pipeline/session.h).
struct IE_SHARED_IMMUTABLE SharedContext {
  const Corpus* corpus = nullptr;
  const std::vector<DocId>* pool = nullptr;  // e.g. the test split
  const ExtractionOutcomes* outcomes = nullptr;
  const RelationSpec* relation = nullptr;
  /// Const facade over the featurizer: the featurization entry points
  /// (Featurize, WarmBigrams, AttributeFeatureId, BigramFeatureId) are
  /// const with a lock-guarded interning interior — the lone waived
  /// const-escape behind this struct (see Featurizer::bigram_ids_).
  /// Configure the featurizer (SetIdf) before sharing it.
  const Featurizer* featurizer = nullptr;
  /// Word-feature vectors indexed by DocId (see FeaturizePool).
  const std::vector<SparseVector>* word_features = nullptr;
  /// Index over the pool; required for CQS and search-interface access.
  const SearchIndex* index = nullptr;
  /// One learned query list for CQS (required when sampler == kCQS).
  const std::vector<std::string>* cqs_queries = nullptr;
  /// Optional live extraction: when set, every processed document runs the
  /// real IE system (NER → relation classification) instead of replaying
  /// the outcome cache — byte-identical verdicts (Process is
  /// deterministic; `outcomes` stays required for pool statistics and the
  /// Perfect oracle) but real per-document CPU, which is what the
  /// speculative executor parallelizes. See bench/bench_extract.cc.
  const ExtractionSystem* extraction_system = nullptr;
};

/// Pre-split name; new code should say SharedContext.
using PipelineContext = SharedContext;

/// Precomputes word features for every document of the corpus. With
/// `threads` > 1 documents are featurized in parallel with results
/// identical to the serial pass: each document owns its output slot, its
/// entry accumulation order is per-document, and bigram ids are assigned
/// by a serial in-order warm pass before the parallel one.
std::vector<SparseVector> FeaturizePool(const Corpus& corpus,
                                        const Featurizer& featurizer,
                                        size_t threads = 1);

/// Smoothed idf table over the corpus: ln(1 + N / (df + 1)) per token id.
/// With `threads` > 1 the document-frequency pass runs over contiguous
/// document blocks merged in fixed block order — integer counts, so the
/// result is exactly the serial one.
std::vector<float> ComputeIdf(const Corpus& corpus, size_t threads = 1);

/// Builds an index over the pool documents (the uncompressed reference
/// backend; SharedContext::index accepts either backend).
InvertedIndex BuildPoolIndex(const Corpus& corpus,
                             const std::vector<DocId>& pool);

/// Builds the compressed scale backend over the pool documents (finalized,
/// ready to search). Byte-identical retrieval to BuildPoolIndex's result
/// at any build_threads count (the shards encode independently).
CompactIndex BuildCompactPoolIndex(const Corpus& corpus,
                                   const std::vector<DocId>& pool,
                                   size_t build_threads = 1);

class AdaptiveExtractionPipeline {
 public:
  static PipelineResult Run(const SharedContext& context,
                            const PipelineConfig& config);
};

}  // namespace ie
