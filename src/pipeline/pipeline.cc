#include "pipeline/pipeline.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <unordered_set>
#include <utility>

#include "common/arena.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/trace.h"
#include "learn/feature_selection.h"
#include "pipeline/extract_executor.h"
#include "pipeline/recorder.h"
#include "pipeline/rerank_engine.h"
#include "pipeline/session.h"
#include "ranking/query_learning.h"

namespace ie {

const char* RankerKindName(RankerKind kind) {
  switch (kind) {
    case RankerKind::kRandom:
      return "Random";
    case RankerKind::kPerfect:
      return "Perfect";
    case RankerKind::kBAggIE:
      return "BAgg-IE";
    case RankerKind::kRSVMIE:
      return "RSVM-IE";
  }
  return "?";
}

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kNone:
      return "none";
    case UpdateKind::kWindF:
      return "Wind-F";
    case UpdateKind::kFeatS:
      return "Feat-S";
    case UpdateKind::kTopK:
      return "Top-K";
    case UpdateKind::kModC:
      return "Mod-C";
  }
  return "?";
}

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kSRS:
      return "SRS";
    case SamplerKind::kCQS:
      return "CQS";
  }
  return "?";
}

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kFullAccess:
      return "full";
    case AccessMode::kSearchInterface:
      return "search";
  }
  return "?";
}

PipelineConfig PipelineConfig::Defaults(RankerKind ranker,
                                        SamplerKind sampler,
                                        UpdateKind update, uint64_t seed) {
  PipelineConfig config;
  config.ranker = ranker;
  config.sampler = sampler;
  config.update = update;
  config.seed = seed;
  // Paper values are 5 deg (RSVM-IE) and 30 deg (BAgg-IE); our models
  // drift less per observed document (smaller effective learning rate), so
  // the thresholds are recalibrated to preserve the paper's update-count
  // regime (tens of updates, concentrated early) while keeping the
  // paper's per-ranker separation: the BAgg-IE committee mean swings
  // through a wider angle per absorbed batch than the RSVM-IE weights, so
  // its trigger sits higher.
  config.modc.alpha_degrees =
      ranker == RankerKind::kBAggIE ? 6.0 : 2.0;
  return config;
}

std::vector<SparseVector> FeaturizePool(const Corpus& corpus,
                                        const Featurizer& featurizer,
                                        size_t threads) {
  // Bigram feature ids must not depend on the parallel execution order:
  // warm the cache serially in document order (the same order the serial
  // pass would have interned them) so the parallel pass only reads it.
  if (featurizer.options().use_bigrams) {
    for (DocId id = 0; id < corpus.size(); ++id) {
      featurizer.WarmBigrams(corpus.doc(id));
    }
  }
  std::vector<SparseVector> features(corpus.size());
  ParallelFor(corpus.size(), threads, [&](size_t id) {
    features[id] = featurizer.Featurize(corpus.doc(static_cast<DocId>(id)));
  });
  return features;
}

std::vector<float> ComputeIdf(const Corpus& corpus, size_t threads) {
  const size_t vocab_size = corpus.vocab().size();
  const size_t docs = corpus.size();
  // Per-block document-frequency counts, merged in fixed block order.
  // Counts are integers, so the merged table — and hence every idf float —
  // is exactly what the serial pass produces.
  const size_t blocks = threads <= 1 ? 1 : threads;
  const size_t block_size = (docs + blocks - 1) / blocks;
  std::vector<std::vector<uint32_t>> partial(blocks);
  ParallelFor(blocks, threads, [&](size_t b) {
    std::vector<uint32_t>& df = partial[b];
    df.assign(vocab_size, 0);
    std::vector<uint32_t> seen_at(vocab_size, 0xffffffffu);
    const size_t begin = b * block_size;
    const size_t end = std::min(docs, begin + block_size);
    for (size_t id = begin; id < end; ++id) {
      for (const Sentence& sentence :
           corpus.doc(static_cast<DocId>(id)).sentences) {
        for (TokenId token : sentence.tokens) {
          if (token < df.size() && seen_at[token] != id) {
            seen_at[token] = static_cast<uint32_t>(id);
            ++df[token];
          }
        }
      }
    }
  });
  std::vector<uint32_t> df(vocab_size, 0);
  for (const std::vector<uint32_t>& block_df : partial) {
    for (size_t i = 0; i < vocab_size; ++i) df[i] += block_df[i];
  }
  std::vector<float> idf(df.size());
  const double n = static_cast<double>(corpus.size());
  ParallelFor(df.size(), threads, [&](size_t i) {
    idf[i] = static_cast<float>(std::log(1.0 + n / (df[i] + 1.0)));
  });
  return idf;
}

InvertedIndex BuildPoolIndex(const Corpus& corpus,
                             const std::vector<DocId>& pool) {
  InvertedIndex index;
  for (DocId id : pool) {
    IE_CHECK(index.Add(corpus.doc(id)).ok());
  }
  return index;
}

CompactIndex BuildCompactPoolIndex(const Corpus& corpus,
                                   const std::vector<DocId>& pool,
                                   size_t build_threads) {
  CompactIndex index;
  for (DocId id : pool) {
    IE_CHECK(index.Add(corpus.doc(id)).ok());
  }
  index.Finalize(build_threads);
  return index;
}

namespace {

/// Support set of a model's non-zero weights (feature-churn accounting).
/// Iterates the stored non-zeros directly instead of issuing a
/// bounds-checked Get per vocabulary id.
std::unordered_set<uint32_t> WeightSupport(const WeightVector& w) {
  std::unordered_set<uint32_t> support;
  w.ForEachNonZero([&support](uint32_t id, double value) {
    if (std::abs(value) > 1e-9) support.insert(id);
  });
  return support;
}

/// Squared L2 distance between two dense weight vectors, padding the
/// shorter with zeros (flight-recorder ‖Δw‖; id-ordered, deterministic).
double WeightDeltaNormSquared(const WeightVector& a, const WeightVector& b) {
  const std::vector<double>& av = a.raw();
  const std::vector<double>& bv = b.raw();
  const size_t n = std::max(av.size(), bv.size());
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d =
        (i < bv.size() ? bv[i] : 0.0) - (i < av.size() ? av[i] : 0.0);
    sq += d * d;
  }
  return sq;
}

/// The run proper. Kept separate from Run() so the ExtractExecutor (and its
/// worker threads) are joined — via `executor`'s destructor at the end of
/// this scope — before Run() exports the trace and snapshots the registry:
/// both reads then observe fully quiesced writers.
PipelineResult RunImpl(const SharedContext& context,
                       const PipelineConfig& config) {
  IE_TRACE_SCOPE("pipeline.run");
  IE_CHECK(context.corpus != nullptr && context.pool != nullptr &&
           context.outcomes != nullptr && context.relation != nullptr &&
           context.featurizer != nullptr &&
           context.word_features != nullptr);
  Rng rng(config.seed);

  // Every mutable collaborator of this run lives in one SessionState
  // (pipeline/session.h). Slots are filled at exactly the points the
  // pre-split code constructed the corresponding locals — the ranker and
  // detector seeds come from rng draws, so construction order is part of
  // the deterministic byte-identical contract.
  SessionState session;

  PipelineResult result;
  result.pool_size = context.pool->size();
  result.pool_useful = context.outcomes->CountUseful(*context.pool);

  // Attribute-feature ids are interned on first use; with speculative
  // workers that order would depend on scheduling. Intern them in pool
  // order up front so feature ids — and every float accumulated in id
  // order downstream — are identical at any extract_threads setting.
  for (DocId id : *context.pool) {
    for (const std::string& value : context.outcomes->AttributeValues(id)) {
      context.featurizer->AttributeFeatureId(value);
    }
  }

  // Pure per-document extraction: everything that depends only on the
  // document itself. Runs on executor workers (or inline when serial);
  // bookkeeping stays on the consumer thread in `consume` below.
  auto extract_example = [&context](DocId id) -> LabeledExample {
    bool useful;
    std::vector<std::string> attrs;
    if (context.extraction_system != nullptr) {
      const std::vector<ExtractedTuple> tuples =
          context.extraction_system->Process(context.corpus->doc(id));
      useful = !tuples.empty();
      if (useful) attrs = TupleAttributeValues(tuples);
    } else {
      useful = context.outcomes->useful(id);
      if (useful) attrs = context.outcomes->AttributeValues(id);
    }
    if (useful) {
      return {context.featurizer->Featurize(context.corpus->doc(id), attrs),
              1};
    }
    return {(*context.word_features)[id], -1};
  };
  ExtractExecutorOptions executor_options;
  executor_options.threads = config.extract_threads;
  executor_options.prefetch_window = config.prefetch_window;
  ExtractExecutor executor(extract_example, executor_options);
  const size_t window =
      executor.speculative() ? std::max<size_t>(1, config.prefetch_window)
                             : 1;

  // ---- Flight recorder (DESIGN.md §15) ---------------------------------
  // Passive observer of the loop below: when active, every consumed
  // document ends its iteration with one RecordIteration() sampling the
  // detector, engine, executor, and arena. It never feeds back into
  // control flow, so recorded and unrecorded runs are byte-identical
  // (asserted by the golden-hash matrix, which runs recorder-on).
  session.recorder = std::make_unique<PipelineRecorder>([&config] {
    PipelineRecorder::Options options;
    options.ledger_path = config.ledger_path;
    options.record_series = config.record_iterations;
    options.series_capacity = config.iteration_series_capacity;
    return options;
  }());
  if (session.recorder->active()) {
    RecorderRunInfo info;
    info.ranker = RankerKindName(config.ranker);
    info.sampler = SamplerKindName(config.sampler);
    info.update = UpdateKindName(config.update);
    info.access = AccessModeName(config.access);
    info.seed = config.seed;
    info.pool_size = context.pool->size();
    info.sample_size = std::min(config.sample_size, context.pool->size());
    info.extract_threads = config.extract_threads;
    info.scoring_threads = config.scoring_threads;
    info.incremental_rerank = config.incremental_rerank;
    session.recorder->BeginRun(info);
  }
  // Iteration context the record lambda reads; the loop phases fill these
  // in as the run's collaborators come to life.
  IterationPhase record_phase = IterationPhase::kWarmup;
  const UpdateDetector* detector_raw = nullptr;
  RerankEngine* engine_ptr = nullptr;
  uint64_t recorded_useful = 0;
  bool update_retrained = false;
  double update_dw = 0.0;
  std::vector<double> update_dw_c;
  auto record_iteration = [&](DocId id, bool useful) {
    if (!session.recorder->active()) return;
    IterationRecord rec;
    rec.doc = id;
    rec.phase = record_phase;
    rec.useful = useful;
    recorded_useful += useful ? 1 : 0;
    rec.useful_total = recorded_useful;
    rec.useful_rate = static_cast<double>(recorded_useful) /
                      static_cast<double>(session.recorder->iterations() + 1);
    rec.detector_statistic =
        detector_raw != nullptr ? detector_raw->LastStatistic() : 0.0;
    rec.retrained = update_retrained;
    rec.weight_delta_norm = update_dw;
    rec.component_delta_norms = std::move(update_dw_c);
    update_retrained = false;
    update_dw = 0.0;
    update_dw_c.clear();
    if (engine_ptr != nullptr) {
      rec.full_rescores = engine_ptr->stats().full_rescores;
      rec.delta_rescores = engine_ptr->stats().delta_rescores;
    }
    const ExtractExecutorStats executor_stats = executor.stats();
    rec.executor_hits = executor_stats.hits;
    rec.executor_waits = executor_stats.waits;
    rec.executor_misses = executor_stats.misses;
    rec.executor_cancelled = executor_stats.cancelled;
    rec.queue_depth = executor.queue_depth();
    rec.arena_bytes = Arena::ProcessReservedBytes();
    session.recorder->RecordIteration(std::move(rec));
  };

  WallTimer extract_wall;
  std::unordered_set<DocId> processed;
  auto consume = [&](DocId id) -> LabeledExample {
    LabeledExample example = executor.Take(id);
    result.extraction_seconds += context.relation->extraction_cost_seconds;
    result.processing_order.push_back(id);
    result.processed_useful.push_back(example.label > 0 ? 1 : 0);
    processed.insert(id);
    return example;
  };
  // Consumes `ids` front to back, keeping up to `window` documents
  // prefetched ahead of the cursor (used for the fixed-order phases:
  // warmup sample and search-interface leftovers). These phases have no
  // detector/update step, so the iteration record is sampled right after
  // the consume.
  auto consume_in_order = [&](const std::vector<DocId>& ids,
                              std::vector<LabeledExample>* out) {
    size_t next_prefetch = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (; next_prefetch < ids.size() && next_prefetch < i + window;
           ++next_prefetch) {
        executor.Prefetch(ids[next_prefetch]);
      }
      LabeledExample example = consume(ids[i]);
      record_iteration(ids[i], example.label > 0);
      if (out != nullptr) out->push_back(std::move(example));
    }
  };

  // ---- Initial sample ------------------------------------------------
  session.sampler = MakeSampler(context, config.sampler);
  std::vector<DocId> sample;
  {
    IE_TRACE_SCOPE("pipeline.sample");
    sample = session.sampler->Sample(
        *context.pool, std::min(config.sample_size, context.pool->size()),
        &rng);
  }

  std::vector<LabeledExample> sample_examples;
  sample_examples.reserve(sample.size());
  {
    IE_TRACE_SCOPE("pipeline.warmup");
    consume_in_order(sample, &sample_examples);
  }
  result.warmup_documents = sample.size();
  record_phase = IterationPhase::kMain;

  // ---- Ranking generation ----------------------------------------------
  session.ranker = MakeRanker(config, rng.NextUint64());
  {
    IE_TRACE_SCOPE("pipeline.train_initial");
    CpuTimer timer;
    session.ranker->TrainInitial(sample_examples);
    result.ranking_cpu_seconds += timer.ElapsedSeconds();
  }
  session.detector =
      MakeDetector(config, context.pool->size(), rng.NextUint64());
  detector_raw = session.detector.get();
  session.detector->OnModelUpdated(*session.ranker, sample_examples);
  std::unordered_set<uint32_t> prev_support =
      WeightSupport(session.ranker->ModelWeights());

  // ---- Candidate pool --------------------------------------------------
  // Candidates discovered before the engine exists (the initial pool) are
  // staged in `remaining` and shuffled once for the deterministic
  // tie-break; later discoveries (search-interface refreshes) go straight
  // into the engine, which appends them to the same tie-break order.
  std::vector<DocId> remaining;
  // DETERMINISM: order-insensitive (set-to-set copy; only membership is
  // ever read from in_pool)
  std::unordered_set<DocId> in_pool(processed.begin(), processed.end());
  auto add_candidate = [&](DocId id) {
    if (!in_pool.insert(id).second) return;
    if (engine_ptr != nullptr) {
      engine_ptr->AddCandidate(id);
    } else {
      remaining.push_back(id);
    }
  };
  if (config.access == AccessMode::kFullAccess) {
    for (DocId id : *context.pool) add_candidate(id);
  } else {
    IE_CHECK(context.index != nullptr);
    const std::vector<std::string> queries =
        LearnQueries(sample_examples, context.corpus->vocab(),
                     QueryMethod::kSvmWeights, config.search_initial_queries,
                     rng.NextUint64());
    for (const std::string& query : queries) {
      for (const SearchHit& hit : context.index->SearchText(
               query, context.corpus->vocab(), config.search_initial_depth)) {
        add_candidate(hit.doc);
      }
    }
  }
  rng.Shuffle(remaining);  // deterministic tie-break for equal scores

  const bool adaptive =
      config.update != UpdateKind::kNone &&
      (config.ranker == RankerKind::kBAggIE ||
       config.ranker == RankerKind::kRSVMIE);

  RerankOptions rerank_options;
  rerank_options.incremental = config.incremental_rerank && adaptive;
  rerank_options.density_threshold = config.rerank_density_threshold;
  rerank_options.scoring_threads = config.scoring_threads;
  // RandomRanker's Score() draws from its rng: scoring must stay serial
  // (and in insertion order) to keep runs deterministic.
  rerank_options.allow_parallel_scoring =
      config.ranker != RankerKind::kRandom;
  std::function<double(DocId)> score_override;
  if (config.ranker == RankerKind::kPerfect) {
    score_override = [&context](DocId id) {
      return context.outcomes->useful(id) ? 1.0 : 0.0;
    };
  }
  session.engine = std::make_unique<RerankEngine>(
      session.ranker.get(), context.word_features, rerank_options,
      std::move(score_override));
  for (DocId id : remaining) session.engine->AddCandidate(id);
  engine_ptr = session.engine.get();

  auto rerank = [&]() {
    IE_TRACE_SCOPE("pipeline.rank");
    // With worker threads, thread-CPU time misses the workers; fall back
    // to wall time for the overhead accounting in that configuration.
    CpuTimer cpu_timer;
    WallTimer wall_timer;
    session.engine->Rerank();
    const double seconds = config.scoring_threads > 1
                               ? wall_timer.ElapsedSeconds()
                               : cpu_timer.ElapsedSeconds();
    result.ranking_cpu_seconds += seconds;
    IE_METRIC_HIST_OBSERVE("pipeline.rank_seconds", seconds);
  };
  rerank();

  // ---- Extraction loop ---------------------------------------------------
  // The loop pops a lookahead window of the ranked frontier and prefetches
  // its extraction onto the executor while consuming strictly in popped
  // (= ranked) order. On a model update the unconsumed lookahead is
  // returned to the engine first, so the re-rank sees exactly the pending
  // set a serial run would — and any speculative results it already has
  // for demoted documents are simply consumed later.
  std::vector<LabeledExample> buffer;
  size_t peak_buffer_examples = 0;
  std::deque<DocId> lookahead;
  auto fill_lookahead = [&]() {
    DocId next_doc = 0;
    while (lookahead.size() < window && session.engine->PopNext(&next_doc)) {
      executor.Prefetch(next_doc);
      lookahead.push_back(next_doc);
    }
  };
  fill_lookahead();
  TraceSpan consume_span("pipeline.consume");
  while (!lookahead.empty()) {
    const DocId id = lookahead.front();
    lookahead.pop_front();
    LabeledExample example = consume(id);
    const bool useful = example.label > 0;

    bool triggered;
    {
      CpuTimer timer;
      triggered = session.detector->Observe(example.features, useful,
                                            *session.ranker);
      result.detector_cpu_seconds += timer.ElapsedSeconds();
    }
    // Non-adaptive runs never absorb the buffer; buffering there would
    // accumulate the whole pool's feature vectors for nothing.
    if (adaptive) {
      buffer.push_back(std::move(example));
      peak_buffer_examples = std::max(peak_buffer_examples, buffer.size());
    }

    if (triggered && adaptive) {
      while (!lookahead.empty()) {
        session.engine->Requeue(lookahead.back());
        lookahead.pop_back();
      }
      executor.CancelQueued();
    }
    if (triggered && adaptive && session.engine->pending() > 0) {
      IE_TRACE_SCOPE("pipeline.update");
      IE_METRIC_COUNT("pipeline.updates");
      {
        IE_TRACE_SCOPE("pipeline.retrain");
        CpuTimer timer;
        for (const LabeledExample& ex : buffer) {
          session.ranker->Observe(ex.features, ex.label > 0);
        }
        result.ranking_cpu_seconds += timer.ElapsedSeconds();
      }
      // Feature churn between consecutive models.
      const std::unordered_set<uint32_t> support =
          WeightSupport(session.ranker->ModelWeights());
      size_t added = 0, removed = 0;
      // DETERMINISM: order-insensitive (integer membership counting)
      for (uint32_t f : support) added += prev_support.count(f) == 0;
      // DETERMINISM: order-insensitive (integer membership counting)
      for (uint32_t f : prev_support) removed += support.count(f) == 0;
      result.features_added_per_update.push_back(added);
      result.features_removed_per_update.push_back(removed);
      prev_support = support;

      session.detector->OnModelUpdated(*session.ranker, buffer);
      buffer.clear();
      result.update_positions.push_back(result.processing_order.size());

      // Search-interface scenario: turn the refreshed model's top features
      // into new queries and grow the candidate pool.
      if (config.access == AccessMode::kSearchInterface) {
        const WeightVector weights = session.ranker->ModelWeights();
        for (const WeightedFeature& f :
             TopKFeatures(weights, config.search_refresh_features)) {
          if (f.id >= context.corpus->vocab().size()) continue;
          const std::string& term = context.corpus->vocab().Term(f.id);
          if (!IsQueryableTerm(term)) continue;
          for (const SearchHit& hit : context.index->SearchText(
                   term, context.corpus->vocab(),
                   config.search_refresh_depth)) {
            add_candidate(hit.doc);
          }
        }
      }

      // Exact per-component ‖Δw‖ across this update: the scoring
      // snapshots change only inside Rerank() (SnapshotForScoring), so
      // differencing them around the rerank captures exactly what the
      // ranking order saw. Skipped entirely when the recorder is off.
      if (session.recorder->active()) {
        const size_t components = session.ranker->ScoreComponentCount();
        std::vector<WeightVector> prev_snapshots;
        prev_snapshots.reserve(components);
        for (size_t c = 0; c < components; ++c) {
          prev_snapshots.push_back(session.ranker->ComponentSnapshotWeights(c));
        }
        rerank();
        update_retrained = true;
        update_dw_c.resize(components);
        double total_sq = 0.0;
        for (size_t c = 0; c < components; ++c) {
          const double sq = WeightDeltaNormSquared(
              prev_snapshots[c], session.ranker->ComponentSnapshotWeights(c));
          update_dw_c[c] = std::sqrt(sq);
          total_sq += sq;
        }
        update_dw = std::sqrt(total_sq);
      } else {
        rerank();
      }
    }
    record_iteration(id, useful);
    fill_lookahead();
  }

  // Search-interface scenario: documents never retrieved by any query are
  // processed last, in random order (so metrics cover the full pool).
  if (config.access == AccessMode::kSearchInterface) {
    IE_TRACE_SCOPE("pipeline.leftovers");
    std::vector<DocId> leftovers;
    for (DocId id : *context.pool) {
      if (processed.count(id) == 0) leftovers.push_back(id);
    }
    rng.Shuffle(leftovers);
    record_phase = IterationPhase::kTail;
    consume_in_order(leftovers, nullptr);
  }
  result.extract_wall_seconds = extract_wall.ElapsedSeconds();

  // Stamp the run-scoped counters from the exact per-run stats structs —
  // not from the global registry, whose counters of the same names
  // aggregate across concurrent runs. The result accessors
  // (speculative_hits() etc.) read these, so they are written even when
  // config.metrics_enabled is false.
  const ExtractExecutorStats executor_stats = executor.stats();
  result.extract_cpu_seconds =
      executor_stats.worker_cpu_seconds + executor_stats.inline_cpu_seconds;
  result.metrics.SetCounter("executor.hits", executor_stats.hits);
  result.metrics.SetCounter("executor.waits", executor_stats.waits);
  result.metrics.SetCounter("executor.misses", executor_stats.misses);
  result.metrics.SetCounter("executor.cancelled", executor_stats.cancelled);

  const RerankStats& rerank_stats = session.engine->stats();
  result.metrics.SetCounter("rerank.full_rescores",
                            rerank_stats.full_rescores);
  result.metrics.SetCounter("rerank.delta_rescores",
                            rerank_stats.delta_rescores);
  result.metrics.SetCounter("rerank.density_fallbacks",
                            rerank_stats.density_fallbacks);
  result.metrics.SetCounter("rerank.delta_documents_rescored",
                            rerank_stats.delta_documents_rescored);
  result.metrics.SetCounter("pipeline.peak_buffer_examples",
                            peak_buffer_examples);
  result.metrics.SetCounter("pipeline.documents_processed",
                            result.processing_order.size());

  if (session.recorder->active()) {
    RecorderRunSummary summary;
    summary.updates = result.update_positions.size();
    summary.useful_total = recorded_useful;
    summary.extraction_seconds = result.extraction_seconds;
    summary.extract_cpu_seconds = result.extract_cpu_seconds;
    summary.extract_wall_seconds = result.extract_wall_seconds;
    summary.ranking_cpu_seconds = result.ranking_cpu_seconds;
    summary.detector_cpu_seconds = result.detector_cpu_seconds;
    session.recorder->EndRun(summary);
  }
#if IE_OBSERVABILITY
  if (config.record_iterations) result.iterations = session.recorder->TakeSeries();
#endif

  result.final_model_features = session.ranker->NonZeroFeatureCount();
  // Final model snapshot, id-sorted (ForEachNonZero walks the dense
  // weight array in id order): the determinism golden test hashes this so
  // weight-level nondeterminism fails loudly, not just order-level.
  session.ranker->ModelWeights().ForEachNonZero([&result](uint32_t id, double w) {
    result.final_weights.emplace_back(id, w);
  });
  return result;
}

}  // namespace

PipelineResult AdaptiveExtractionPipeline::Run(
    const SharedContext& context, const PipelineConfig& config) {
  // Trace/metrics sessions wrap RunImpl so that by the time we export the
  // trace and snapshot the registry, RunImpl's executor destructor has
  // joined every worker thread (quiesced writers; race-free reads).
  const bool tracing =
      !config.trace_path.empty() &&
      Tracer::Global().Start(config.trace_buffer_events);
  if (!config.trace_path.empty() && !tracing) {
    IE_LOG(kWarn) << "trace_path set but another trace session is active; "
                     "skipping trace for this run";
  }
  MetricsSnapshot start;
  if (config.metrics_enabled) {
    start = MetricsRegistry::Global().Snapshot();
  }

  PipelineResult result = RunImpl(context, config);

  if (config.metrics_enabled) {
    MetricsSnapshot delta =
        MetricsRegistry::Global().Snapshot().DeltaSince(start);
    // Keep the exact run-scoped counters RunImpl stamped; fill everything
    // else (histograms, gauges, macro-tallied counters) from the delta.
    for (const auto& [name, value] : result.metrics.counters) {
      delta.SetCounter(name, value);
    }
    result.metrics = std::move(delta);
  }
  if (tracing) {
    const Status status = Tracer::Global().StopAndExport(config.trace_path);
    if (!status.ok()) {
      IE_LOG(kWarn) << "trace export failed: " << status.ToString();
    }
  }
  return result;
}

}  // namespace ie
