// PipelineResult: everything the evaluation layer needs from one
// extraction run — the processing order with per-document usefulness, the
// update log, the cost decomposition (simulated extraction seconds +
// measured ranking/detection overhead), and a per-run MetricsSnapshot.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "pipeline/recorder.h"
#include "text/document.h"

namespace ie {

struct PipelineResult {
  /// Documents in the order they were processed (sample first).
  std::vector<DocId> processing_order;
  /// Usefulness verdict per processed document (aligned with order).
  std::vector<uint8_t> processed_useful;

  size_t pool_size = 0;
  /// Useful documents in the full pool (recall denominator).
  size_t pool_useful = 0;
  /// Prefix of processing_order consumed by sampling/query evaluation.
  size_t warmup_documents = 0;

  /// Positions (processed-document counts) where model updates fired.
  std::vector<size_t> update_positions;

  /// Simulated extraction time (per-document cost model). Deterministic —
  /// one charge per consumed document regardless of extract_threads — so
  /// cost metrics stay comparable across thread counts.
  double extraction_seconds = 0.0;
  /// Measured per-document extraction CPU: the sum of thread-CPU timers
  /// around each document's extraction wherever it ran (executor workers
  /// or inline). Unlike wall time this does not shrink with speculation;
  /// it is the run's real extraction work. 0 unless the run did real work
  /// (live extraction or featurization of useful documents).
  double extract_cpu_seconds = 0.0;
  /// Wall-clock time of the processing phases (warmup consumption through
  /// the last document), including ranking overhead — the end-to-end
  /// docs/sec denominator for bench_extract.
  double extract_wall_seconds = 0.0;
  /// Measured CPU time inside the update detector.
  double detector_cpu_seconds = 0.0;
  /// Measured CPU time spent training/scoring/sorting (ranking overhead).
  double ranking_cpu_seconds = 0.0;

  /// Per-run view of the unified metrics registry (common/metrics.h):
  /// counters/histograms are this run's delta against the process-wide
  /// registry, with the run-scoped counters below stamped exactly from the
  /// engine/executor stats structs. Empty when
  /// PipelineConfig::metrics_enabled is false or IE_OBSERVABILITY is 0.
  MetricsSnapshot metrics;

#if IE_OBSERVABILITY
  /// Flight-recorder series (DESIGN.md §15): one IterationRecord per
  /// processed document, deterministically downsampled to
  /// PipelineConfig::iteration_series_capacity. Empty unless
  /// PipelineConfig::record_iterations. The member is compiled out
  /// entirely in obs-off builds — zero size cost; tests assert its absence
  /// with a requires-expression.
  std::vector<IterationRecord> iterations;
#endif  // IE_OBSERVABILITY

  /// Re-rank engine telemetry (see RerankStats in pipeline/rerank_engine.h):
  /// full scoring passes, incremental delta passes, delta passes abandoned
  /// as too dense, and documents touched across all delta passes. Thin
  /// forwarding accessors into `metrics` — kept so bench/eval schemas
  /// predating the metrics registry read the same numbers.
  size_t full_rescores() const {
    return static_cast<size_t>(metrics.CounterOr("rerank.full_rescores"));
  }
  size_t delta_rescores() const {
    return static_cast<size_t>(metrics.CounterOr("rerank.delta_rescores"));
  }
  size_t rerank_density_fallbacks() const {
    return static_cast<size_t>(metrics.CounterOr("rerank.density_fallbacks"));
  }
  size_t delta_documents_rescored() const {
    return static_cast<size_t>(
        metrics.CounterOr("rerank.delta_documents_rescored"));
  }

  /// Speculative extraction executor telemetry (see
  /// pipeline/extract_executor.h): consumed results that were ready
  /// (hits), awaited in-flight (waits), computed inline (misses), and
  /// queued prefetches dropped on re-ranks (cancelled). A serial run is
  /// all misses. Timing-dependent — excluded from determinism comparisons.
  size_t speculative_hits() const {
    return static_cast<size_t>(metrics.CounterOr("executor.hits"));
  }
  size_t speculative_waits() const {
    return static_cast<size_t>(metrics.CounterOr("executor.waits"));
  }
  size_t speculative_misses() const {
    return static_cast<size_t>(metrics.CounterOr("executor.misses"));
  }
  size_t speculative_cancelled() const {
    return static_cast<size_t>(metrics.CounterOr("executor.cancelled"));
  }

  /// Peak size of the between-updates example buffer. Non-adaptive runs
  /// skip buffering entirely, so this stays 0 for them (regression guard
  /// against re-introducing unbounded feature-vector accumulation).
  size_t peak_buffer_examples() const {
    return static_cast<size_t>(
        metrics.CounterOr("pipeline.peak_buffer_examples"));
  }

  /// Non-zero feature count of the final model (0 for rankers without one).
  size_t final_model_features = 0;
  /// The final model's non-zero weights, ascending by feature id (empty
  /// for rankers without a weight vector). Deterministic for a given
  /// config+seed at any thread count; the golden-hash determinism test
  /// (tests/determinism_golden_test.cc) folds these into its digest.
  std::vector<std::pair<uint32_t, double>> final_weights;
  /// Features added/removed across updates (feature-churn telemetry).
  std::vector<size_t> features_added_per_update;
  std::vector<size_t> features_removed_per_update;

  double TotalSeconds() const {
    return extraction_seconds + detector_cpu_seconds + ranking_cpu_seconds;
  }
  size_t NumUpdates() const { return update_positions.size(); }
};

}  // namespace ie
