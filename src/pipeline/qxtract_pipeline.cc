#include "pipeline/qxtract_pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "pipeline/session.h"
#include "ranking/query_learning.h"
#include "sampling/sampler.h"

namespace ie {

PipelineResult QXtractPipeline::Run(const SharedContext& context,
                                    const QXtractConfig& config) {
  IE_CHECK(context.corpus != nullptr && context.pool != nullptr &&
           context.outcomes != nullptr && context.relation != nullptr &&
           context.word_features != nullptr && context.index != nullptr);
  Rng rng(config.seed);

  PipelineResult result;
  result.pool_size = context.pool->size();
  result.pool_useful = context.outcomes->CountUseful(*context.pool);

  const std::unordered_set<DocId> pool_set(context.pool->begin(),
                                           context.pool->end());
  std::unordered_set<DocId> processed;
  auto process_doc = [&](DocId id) {
    const bool useful = context.outcomes->useful(id);
    result.extraction_seconds += context.relation->extraction_cost_seconds;
    result.processing_order.push_back(id);
    result.processed_useful.push_back(useful ? 1 : 0);
    processed.insert(id);
  };

  // ---- Sample and label -------------------------------------------------
  std::unique_ptr<Sampler> sampler = MakeSampler(context, config.sampler);
  std::vector<LabeledExample> sample;
  for (DocId id : sampler->Sample(
           *context.pool, std::min(config.sample_size, context.pool->size()),
           &rng)) {
    process_doc(id);
    sample.push_back(
        {(*context.word_features)[id],
         context.outcomes->useful(id) ? 1 : -1});
  }
  result.warmup_documents = result.processing_order.size();

  // ---- Learn queries (all three generation methods) and retrieve --------
  CpuTimer timer;
  const size_t depth = config.retrieved_per_query > 0
                           ? config.retrieved_per_query
                           : std::max<size_t>(50, context.pool->size() / 20);
  std::vector<DocId> retrieval_order;  // rank-of-retrieval, deduped
  std::unordered_set<DocId> retrieved;
  for (size_t m = 0; m < kNumQueryMethods; ++m) {
    for (const std::string& query :
         LearnQueries(sample, context.corpus->vocab(),
                      static_cast<QueryMethod>(m),
                      config.queries_per_method, rng.NextUint64())) {
      for (const SearchHit& hit : context.index->SearchText(
               query, context.corpus->vocab(), depth)) {
        if (pool_set.count(hit.doc) == 0) continue;
        if (processed.count(hit.doc) > 0) continue;
        if (retrieved.insert(hit.doc).second) {
          retrieval_order.push_back(hit.doc);
        }
      }
    }
  }
  result.ranking_cpu_seconds += timer.ElapsedSeconds();

  // ---- Process: retrieval order first, random remainder last ------------
  for (DocId id : retrieval_order) process_doc(id);
  std::vector<DocId> leftovers;
  for (DocId id : *context.pool) {
    if (processed.count(id) == 0) leftovers.push_back(id);
  }
  rng.Shuffle(leftovers);
  for (DocId id : leftovers) process_doc(id);
  return result;
}

}  // namespace ie
