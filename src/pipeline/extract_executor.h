// Speculative parallel extraction executor (DESIGN.md §9). The paper's
// premise is that running the IE system dominates wall time; ranking only
// decides *order*. Per-document extraction (NER → candidate enumeration →
// relation classification → featurization) depends on nothing but the
// document, so a worker pool can compute it for the top-W documents of the
// ranked frontier *ahead* of the consumer without changing a single emitted
// byte: the main loop still consumes strictly in ranked order, and a
// document that a model update demotes simply has its cached result
// consumed later. Speculation is invisible in the output and pays off
// whenever the frontier prefix survives the next re-rank (it almost always
// does — updates are rare and corrections small; see RerankEngine).
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "common/work_queue.h"
#include "learn/binary_svm.h"  // LabeledExample
#include "text/document.h"

namespace ie {

struct ExtractExecutorOptions {
  /// Worker threads. <= 1 disables speculation: Take() computes inline on
  /// the calling thread and Prefetch() is a no-op (the strictly serial
  /// reference behaviour).
  size_t threads = 1;
  /// Maximum outstanding speculative documents (queued + running + done but
  /// not yet consumed). Bounds memory and wasted work after a re-rank.
  size_t prefetch_window = 64;
};

struct ExtractExecutorStats {
  size_t hits = 0;        // Take() served from a completed speculative result
  size_t waits = 0;       // Take() blocked on an in-flight computation
  size_t misses = 0;      // Take() computed inline (never prefetched/stolen)
  size_t cancelled = 0;   // queued tasks dropped by CancelQueued()
  size_t tasks_executed = 0;  // worker-side executions
  /// Thread-CPU seconds spent in the work function, split by where it ran.
  /// The sum is the run's total extraction CPU independent of thread count.
  double worker_cpu_seconds = 0.0;
  double inline_cpu_seconds = 0.0;
};

/// Prefetching work pool over a pure per-document work function. All
/// public methods are meant for one consumer thread (the pipeline loop);
/// workers only touch internal state.
class ExtractExecutor {
 public:
  using WorkFn = std::function<LabeledExample(DocId)>;

  /// `work` must be pure and safe to call concurrently for distinct
  /// documents; it may run on any worker or on the consumer thread.
  ExtractExecutor(WorkFn work, ExtractExecutorOptions options);
  ~ExtractExecutor();

  ExtractExecutor(const ExtractExecutor&) = delete;
  ExtractExecutor& operator=(const ExtractExecutor&) = delete;

  bool speculative() const { return !workers_.empty(); }

  /// Requests speculative extraction of `doc`. No-op when not speculative,
  /// already outstanding, or the window is full.
  void Prefetch(DocId doc) EXCLUDES(mu_);

  /// Returns the extraction result for `doc`, consuming any speculative
  /// state: completed results are taken over, queued work is reclaimed and
  /// run inline, in-flight work is awaited. Exactly one Take per document.
  LabeledExample Take(DocId doc) EXCLUDES(mu_);

  /// Drops all queued-but-not-started speculative work (typically after a
  /// re-rank invalidated the frontier). Running/completed work is kept —
  /// demoted documents' results are simply consumed later.
  size_t CancelQueued() EXCLUDES(mu_);

  ExtractExecutorStats stats() const EXCLUDES(mu_);

  /// Speculative tasks queued but not yet started (0 when not speculative).
  /// Consumer-thread introspection for the flight recorder's queue-depth
  /// column; the traced counter executor.queue_depth reads the same value.
  size_t queue_depth() const { return queue_.size(); }

 private:
  enum class State { kQueued, kRunning, kDone };
  struct Entry {
    State state = State::kQueued;
    LabeledExample result;
    std::exception_ptr error;
  };

  void WorkerLoop() EXCLUDES(mu_);

  WorkFn work_;
  ExtractExecutorOptions options_;
  // Never acquired with mu_ held (and vice versa): queue operations stay
  // outside the cache lock by design, so there is no lock order to get
  // wrong between the queue's internal mutex and mu_ (DESIGN.md §11).
  WorkQueue<DocId> queue_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  CondVar done_cv_;
  std::unordered_map<DocId, Entry> cache_ GUARDED_BY(mu_);
  ExtractExecutorStats stats_ GUARDED_BY(mu_);
};

}  // namespace ie
