// FC / A-FC baseline pipelines, producing the same PipelineResult as the
// adaptive learning-to-rank pipeline so all strategies share the
// evaluation path. FC scores the pool once from sample-derived queries;
// A-FC additionally folds processed-document verdicts back into the query
// qualities, learns new queries, and re-ranks periodically.
#pragma once

#include "pipeline/pipeline.h"
#include "ranking/factcrawl.h"

namespace ie {

struct FactCrawlConfig {
  bool adaptive = false;  // false = FC, true = A-FC
  SamplerKind sampler = SamplerKind::kSRS;
  size_t sample_size = 200;
  uint64_t seed = 1;
  FactCrawlOptions factcrawl = {};
  /// A-FC: re-rank cadence in processed documents. The paper re-ranks after
  /// every document; a small interval keeps bench runs tractable while
  /// preserving the behaviour (overhead is measured either way).
  size_t rerank_interval = 100;
  /// A-FC: query refresh happens on every k-th re-rank.
  size_t refresh_every_reranks = 5;
  /// Cap on labeled documents kept for query refreshes.
  size_t max_labeled_kept = 4000;
};

class FactCrawlPipeline {
 public:
  static PipelineResult Run(const SharedContext& context,
                            const FactCrawlConfig& config);
};

}  // namespace ie
