#include "pipeline/session.h"

#include <algorithm>

#include "common/logging.h"
#include "ranking/learned_rankers.h"
#include "sampling/sampler.h"

namespace ie {

std::unique_ptr<DocumentRanker> MakeRanker(const PipelineConfig& config,
                                           uint64_t seed) {
  switch (config.ranker) {
    case RankerKind::kRandom:
      return std::make_unique<RandomRanker>(seed);
    case RankerKind::kPerfect:
      return std::make_unique<PerfectRanker>();
    case RankerKind::kBAggIE:
      return std::make_unique<BaggIeRanker>(config.bagg, seed);
    case RankerKind::kRSVMIE:
      return std::make_unique<RsvmIeRanker>(config.rsvm, seed);
  }
  return nullptr;
}

std::unique_ptr<UpdateDetector> MakeDetector(const PipelineConfig& config,
                                             size_t pool_size,
                                             uint64_t seed) {
  switch (config.update) {
    case UpdateKind::kNone:
      return std::make_unique<NeverUpdateDetector>();
    case UpdateKind::kWindF:
      return std::make_unique<WindFDetector>(
          std::max<size_t>(1, pool_size / config.windf_updates));
    case UpdateKind::kFeatS:
      return std::make_unique<FeatSDetector>(config.feats);
    case UpdateKind::kTopK:
      return std::make_unique<TopKDetector>(config.topk);
    case UpdateKind::kModC:
      return std::make_unique<ModCDetector>(config.modc, seed);
  }
  return nullptr;
}

std::unique_ptr<Sampler> MakeSampler(const SharedContext& shared,
                                     SamplerKind kind) {
  if (kind == SamplerKind::kCQS) {
    IE_CHECK(shared.index != nullptr && shared.cqs_queries != nullptr);
    return std::make_unique<CqsSampler>(*shared.cqs_queries, shared.index,
                                        &shared.corpus->vocab());
  }
  return std::make_unique<SrsSampler>();
}

}  // namespace ie
