#include "pipeline/rerank_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ie {

namespace {

constexpr uint32_t kNoSlot = 0xffffffffu;

}  // namespace

RerankEngine::RerankEngine(DocumentRanker* ranker,
                           const std::vector<SparseVector>* features,
                           RerankOptions options,
                           std::function<double(DocId)> score_override)
    : ranker_(ranker),
      features_(features),
      options_(options),
      score_override_(std::move(score_override)) {
  IE_CHECK(features_ != nullptr);
  IE_CHECK(ranker_ != nullptr || score_override_ != nullptr);
  if (ranker_ != nullptr && score_override_ == nullptr) {
    components_ = ranker_->ScoreComponentCount();
  }
  if (!options_.incremental) components_ = 0;
}

void RerankEngine::AddCandidate(DocId doc) {
  if (doc >= slot_of_doc_.size()) {
    slot_of_doc_.resize(doc + 1, kNoSlot);
  }
  IE_CHECK(slot_of_doc_[doc] == kNoSlot);
  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  slot_of_doc_[doc] = slot;
  slots_.push_back(Slot{doc, 0.0f});
  processed_.push_back(0);
  if (components_ > 0) {
    margins_.resize(slots_.size() * components_, 0.0);
    sign_mass_.resize(slots_.size() * components_, 0.0);
    // Postings are keyed by slot, not DocId: the correction scatter then
    // lands directly on the margin rows without an id→slot indirection.
    posting_index_.Add(slot, (*features_)[doc]);
  }
  ++pending_;
  pending_postings_ += (*features_)[doc].size();
}

std::vector<uint32_t> RerankEngine::PendingSlots() const {
  std::vector<uint32_t> out;
  out.reserve(pending_);
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (!processed_[s]) out.push_back(s);
  }
  return out;
}

void RerankEngine::ScoreSlotFull(uint32_t slot) {
  const SparseVector& x = (*features_)[slots_[slot].doc];
  if (components_ > 0) {
    double* m = &margins_[slot * components_];
    double* z = &sign_mass_[slot * components_];
    for (size_t c = 0; c < components_; ++c) {
      ranker_->ComponentMarginAndSignMass(c, x, &m[c], &z[c]);
    }
    slots_[slot].score = static_cast<float>(ranker_->CombineMargins(m));
  } else if (score_override_ != nullptr) {
    slots_[slot].score = static_cast<float>(score_override_(slots_[slot].doc));
  } else {
    slots_[slot].score = static_cast<float>(ranker_->Score(x));
  }
}

void RerankEngine::FullRescore() {
  IE_TRACE_SCOPE("rerank.full");
  IE_METRIC_COUNT("rerank.full_rescores");
  const std::vector<uint32_t> pending = PendingSlots();
  auto score_one = [&](size_t i) { ScoreSlotFull(pending[i]); };
  if (options_.allow_parallel_scoring && options_.scoring_threads > 1) {
    ParallelFor(pending.size(), options_.scoring_threads, score_one);
  } else {
    for (size_t i = 0; i < pending.size(); ++i) score_one(i);
  }
  scored_upto_ = static_cast<uint32_t>(slots_.size());
  margins_valid_ = components_ > 0;
  ++stats_.full_rescores;
}

bool RerankEngine::TryDeltaRescore() {
  if (components_ == 0 || !margins_valid_ || ranker_ == nullptr ||
      !ranker_->HasSnapshotDelta()) {
    return false;
  }
  std::vector<FactoredWeightDelta> deltas;
  deltas.reserve(components_);
  size_t posting_touches = 0;
  for (size_t c = 0; c < components_; ++c) {
    deltas.push_back(ranker_->ComponentSnapshotDelta(c));
    for (const uint32_t feature : deltas.back().margin_correction.ids) {
      posting_touches += posting_index_.Postings(feature).size();
    }
    for (const uint32_t feature : deltas.back().sign_correction.ids) {
      posting_touches += posting_index_.Postings(feature).size();
    }
  }
  // Density fallback (see RerankOptions::density_threshold): compare the
  // delta pass's posting scatters against the full pass's per-component
  // feature walks over the pending pool.
  if (static_cast<double>(posting_touches) >
      options_.density_threshold * static_cast<double>(components_) *
          static_cast<double>(pending_postings_)) {
    ++stats_.density_fallbacks;
    IE_METRIC_COUNT("rerank.density_fallbacks");
    return false;
  }
  IE_TRACE_SCOPE("rerank.delta");
  IE_METRIC_COUNT("rerank.delta_rescores");
  IE_METRIC_COUNT_N("rerank.delta_posting_touches", posting_touches);

  const std::vector<uint32_t> pending = PendingSlots();

  // Pass 1 — uniform advance: m ← scale·m − penalty·z for every pending
  // cached document (two multiplies per component). Each index writes only
  // its own slot, so ParallelFor stays deterministic.
  auto advance_one = [&](size_t i) {
    const uint32_t slot = pending[i];
    if (slot >= scored_upto_) return;  // fresh: scored from scratch in pass 3
    double* m = &margins_[slot * components_];
    const double* z = &sign_mass_[slot * components_];
    for (size_t c = 0; c < components_; ++c) {
      const FactoredWeightDelta& d = deltas[c];
      if (d.identity()) continue;
      m[c] = d.scale * m[c] - d.penalty * z[c];
    }
  };
  if (options_.allow_parallel_scoring && options_.scoring_threads > 1) {
    ParallelFor(pending.size(), options_.scoring_threads, advance_one);
  } else {
    for (size_t i = 0; i < pending.size(); ++i) advance_one(i);
  }

  // Pass 2 — correction scatter: one FMA per (corrected feature, posting).
  // Serial on purpose: scattering writes race on slots, and the fixed
  // component/feature/posting iteration order keeps runs deterministic.
  // This pass is the entire sparse cost of the update — `posting_touches`
  // fused multiply-adds.
  std::vector<uint8_t> corrected(slots_.size(), 0);
  size_t corrected_count = 0;
  for (size_t c = 0; c < components_; ++c) {
    auto scatter = [&](const WeightDelta& correction,
                       std::vector<double>& target) {
      for (size_t k = 0; k < correction.size(); ++k) {
        const uint32_t feature = correction.ids[k];
        const double change = correction.values[k];
        for (const FeaturePostingIndex::Posting& posting :
             posting_index_.Postings(feature)) {
          const uint32_t slot = posting.item;
          if (slot >= scored_upto_ || processed_[slot]) continue;
          target[slot * components_ + c] +=
              change * static_cast<double>(posting.value);
          if (!corrected[slot]) {
            corrected[slot] = 1;
            ++corrected_count;
          }
        }
      }
    };
    scatter(deltas[c].margin_correction, margins_);
    scatter(deltas[c].sign_correction, sign_mass_);
  }

  // Pass 3 — recombine every pending document (snapshot biases may have
  // moved even where margins did not) and score new candidates fresh.
  auto combine_one = [&](size_t i) {
    const uint32_t slot = pending[i];
    if (slot >= scored_upto_) {
      ScoreSlotFull(slot);
    } else {
      slots_[slot].score = static_cast<float>(
          ranker_->CombineMargins(&margins_[slot * components_]));
    }
  };
  if (options_.allow_parallel_scoring && options_.scoring_threads > 1) {
    ParallelFor(pending.size(), options_.scoring_threads, combine_one);
  } else {
    for (size_t i = 0; i < pending.size(); ++i) combine_one(i);
  }

  scored_upto_ = static_cast<uint32_t>(slots_.size());
  ++stats_.delta_rescores;
  stats_.delta_documents_rescored += corrected_count;
  stats_.delta_posting_touches += posting_touches;
  IE_METRIC_COUNT_N("rerank.delta_documents_rescored", corrected_count);
  return true;
}

void RerankEngine::Rerank() {
  if (ranker_ != nullptr) ranker_->SnapshotForScoring();
  if (!TryDeltaRescore()) FullRescore();
  RebuildHeap();
}

// Strict total order for the frontier heap: higher score first, then
// earlier insertion (lower slot) — the deterministic tie-break that makes
// heap selection reproduce the stable sort it replaced. std::*_heap expect
// a less-than whose "largest" element is the heap top.
bool RerankEngine::HeapEntryLess(const HeapEntry& a, const HeapEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.slot > b.slot;
}

void RerankEngine::RebuildHeap() {
  heap_.clear();
  heap_.reserve(pending_);
  for (uint32_t s = 0; s < slots_.size(); ++s) {
    if (!processed_[s]) heap_.push_back(HeapEntry{slots_[s].score, s});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapEntryLess);
}

void RerankEngine::Requeue(DocId doc) {
  IE_CHECK(doc < slot_of_doc_.size() && slot_of_doc_[doc] != kNoSlot);
  const uint32_t slot = slot_of_doc_[doc];
  IE_CHECK(processed_[slot]);
  processed_[slot] = 0;
  ++pending_;
  pending_postings_ += (*features_)[doc].size();
  heap_.push_back(HeapEntry{slots_[slot].score, slot});
  std::push_heap(heap_.begin(), heap_.end(), HeapEntryLess);
}

bool RerankEngine::PopNext(DocId* doc) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapEntryLess);
  const HeapEntry top = heap_.back();
  heap_.pop_back();
  IE_CHECK(!processed_[top.slot]);
  processed_[top.slot] = 1;
  --pending_;
  pending_postings_ -= (*features_)[slots_[top.slot].doc].size();
  *doc = slots_[top.slot].doc;
  return true;
}

}  // namespace ie
