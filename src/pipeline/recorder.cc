// detlint: export-path — the JSONL run ledger is machine-parsed
// (tools/report.py); every floating value goes through AppendJsonNumber
// (locale-independent, round-trip exact; DESIGN.md §12).
//
// Ledger schema (one JSON object per line; DESIGN.md §15):
//   {"type":"header","schema":1,...run metadata...}
//   {"type":"iter","i":1,...one IterationRecord...}   × N, flushed each
//   {"type":"end",...run totals...}                   absent if crashed
#include "pipeline/recorder.h"

#if IE_OBSERVABILITY

#include <charconv>

#include "common/logging.h"
#include "common/string_util.h"

namespace ie {

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendKeyString(std::string* out, const char* key, const char* value) {
  *out += ",\"";
  *out += key;
  *out += "\":\"";
  AppendEscaped(out, value);
  out->push_back('"');
}

void AppendKeyUint(std::string* out, const char* key, uint64_t value) {
  // to_chars instead of snprintf: this runs ~12x per iteration on the
  // recorder hot path, and the printf machinery alone costs more than the
  // 3% overhead budget allows at smoke scale.
  *out += ",\"";
  *out += key;
  *out += "\":";
  char buf[20];
  const auto rc = std::to_chars(buf, buf + sizeof(buf), value);
  out->append(buf, rc.ptr);
}

void AppendKeyDouble(std::string* out, const char* key, double value) {
  *out += ",\"";
  *out += key;
  *out += "\":";
  AppendJsonNumber(out, value);
}

void AppendKeyBool(std::string* out, const char* key, bool value) {
  *out += ",\"";
  *out += key;
  *out += value ? "\":true" : "\":false";
}

}  // namespace

PipelineRecorder::PipelineRecorder(Options options)
    : options_(std::move(options)), ring_(options_.series_capacity) {
  if (options_.ledger_path.empty()) return;
  ledger_ = std::fopen(options_.ledger_path.c_str(), "wb");
  if (ledger_ == nullptr) {
    IE_LOG(kWarn) << "flight recorder: cannot open ledger '"
                  << options_.ledger_path << "'; ledger disabled";
  }
}

PipelineRecorder::~PipelineRecorder() {
  // EndRun() normally closed it; this path is the crash-analogue where the
  // run unwound early — whatever was flushed per-line stays parseable.
  if (ledger_ != nullptr) std::fclose(ledger_);
  ledger_ = nullptr;
}

void PipelineRecorder::WriteLedgerLine() {
  if (ledger_ == nullptr) return;
  line_.push_back('\n');
  const bool ok =
      std::fwrite(line_.data(), 1, line_.size(), ledger_) == line_.size() &&
      std::fflush(ledger_) == 0;
  if (!ok) {
    IE_LOG(kWarn) << "flight recorder: write to ledger '"
                  << options_.ledger_path << "' failed; ledger disabled";
    std::fclose(ledger_);
    ledger_ = nullptr;
  }
}

void PipelineRecorder::BeginRun(const RecorderRunInfo& info) {
  if (ledger_ == nullptr) return;
  line_ = "{\"type\":\"header\",\"schema\":1";
  AppendKeyString(&line_, "ranker", info.ranker);
  AppendKeyString(&line_, "sampler", info.sampler);
  AppendKeyString(&line_, "update", info.update);
  AppendKeyString(&line_, "access", info.access);
  AppendKeyUint(&line_, "seed", info.seed);
  AppendKeyUint(&line_, "pool_size", info.pool_size);
  AppendKeyUint(&line_, "sample_size", info.sample_size);
  AppendKeyUint(&line_, "extract_threads", info.extract_threads);
  AppendKeyUint(&line_, "scoring_threads", info.scoring_threads);
  AppendKeyBool(&line_, "incremental_rerank", info.incremental_rerank);
  line_.push_back('}');
  WriteLedgerLine();
}

void PipelineRecorder::RecordIteration(IterationRecord record) {
  record.index = iterations_++;
  if (ledger_ != nullptr) {
    line_ = "{\"type\":\"iter\"";
    AppendKeyUint(&line_, "i", record.index + 1);
    AppendKeyUint(&line_, "doc", record.doc);
    AppendKeyString(&line_, "phase", IterationPhaseName(record.phase));
    AppendKeyUint(&line_, "useful", record.useful ? 1 : 0);
    AppendKeyUint(&line_, "useful_total", record.useful_total);
    AppendKeyDouble(&line_, "useful_rate", record.useful_rate);
    AppendKeyDouble(&line_, "stat", record.detector_statistic);
    AppendKeyUint(&line_, "retrain", record.retrained ? 1 : 0);
    if (record.retrained) {
      AppendKeyDouble(&line_, "dw", record.weight_delta_norm);
      line_ += ",\"dw_c\":[";
      for (size_t c = 0; c < record.component_delta_norms.size(); ++c) {
        if (c > 0) line_.push_back(',');
        AppendJsonNumber(&line_, record.component_delta_norms[c]);
      }
      line_.push_back(']');
    }
    AppendKeyUint(&line_, "full_rescores", record.full_rescores);
    AppendKeyUint(&line_, "delta_rescores", record.delta_rescores);
    AppendKeyUint(&line_, "hits", record.executor_hits);
    AppendKeyUint(&line_, "waits", record.executor_waits);
    AppendKeyUint(&line_, "misses", record.executor_misses);
    AppendKeyUint(&line_, "cancelled", record.executor_cancelled);
    AppendKeyUint(&line_, "queue", record.queue_depth);
    AppendKeyUint(&line_, "arena", record.arena_bytes);
    line_.push_back('}');
    WriteLedgerLine();
  }
  if (options_.record_series) {
    ring_.Append([&record](uint64_t index) {
      record.index = index;
      return std::move(record);
    });
  }
}

void PipelineRecorder::EndRun(const RecorderRunSummary& summary) {
  if (ledger_ == nullptr) return;
  line_ = "{\"type\":\"end\"";
  AppendKeyUint(&line_, "iterations", iterations_);
  AppendKeyUint(&line_, "updates", summary.updates);
  AppendKeyUint(&line_, "useful_total", summary.useful_total);
  AppendKeyDouble(&line_, "extraction_seconds", summary.extraction_seconds);
  AppendKeyDouble(&line_, "extract_cpu_seconds",
                  summary.extract_cpu_seconds);
  AppendKeyDouble(&line_, "extract_wall_seconds",
                  summary.extract_wall_seconds);
  AppendKeyDouble(&line_, "ranking_cpu_seconds",
                  summary.ranking_cpu_seconds);
  AppendKeyDouble(&line_, "detector_cpu_seconds",
                  summary.detector_cpu_seconds);
  line_.push_back('}');
  WriteLedgerLine();
  if (ledger_ != nullptr) {
    std::fclose(ledger_);
    ledger_ = nullptr;
  }
}

}  // namespace ie

#endif  // IE_OBSERVABILITY
