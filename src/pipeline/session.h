// SessionState — the per-session mutable half of the shared/session state
// split (DESIGN.md §16). One extraction session is the paper's loop bound
// to one relation: its ranker (which owns the learner — ElasticNetSgd
// weights or the bagging committee), update detector, rerank frontier,
// initial sampler, and flight recorder. Everything in here is owned by
// exactly one session and touched by exactly one consumer thread; every
// read-only input lives in SharedContext (pipeline/pipeline.h), which any
// number of sessions share untouched. The multi-tenant service stacks N
// SessionStates over one SharedContext.
#pragma once

#include <memory>

#include "pipeline/pipeline.h"
#include "pipeline/recorder.h"
#include "pipeline/rerank_engine.h"
#include "ranking/document_ranker.h"
#include "sampling/sampler.h"
#include "update/update_detector.h"

namespace ie {

/// Per-session component factories. Split out of the run loop so a
/// serving layer can construct (and later checkpoint/restore) session
/// components without running a pipeline.

/// The configured ranker, seeded for this session.
std::unique_ptr<DocumentRanker> MakeRanker(const PipelineConfig& config,
                                           uint64_t seed);

/// The configured update detector. `pool_size` calibrates Wind-F's
/// fixed-interval schedule.
std::unique_ptr<UpdateDetector> MakeDetector(const PipelineConfig& config,
                                             size_t pool_size,
                                             uint64_t seed);

/// The configured initial sampler over the shared context (CQS needs the
/// shared index + query list; checked here).
std::unique_ptr<Sampler> MakeSampler(const SharedContext& shared,
                                     SamplerKind kind);

/// All mutable state of one extraction session. Members are filled in as
/// the run brings its collaborators to life (the ranker only exists after
/// the warmup sample is labeled, the engine after the ranker), so slots
/// start empty rather than being constructed up front — construction
/// order is part of the deterministic rng draw sequence.
struct SessionState {
  std::unique_ptr<Sampler> sampler;
  std::unique_ptr<DocumentRanker> ranker;
  std::unique_ptr<UpdateDetector> detector;
  /// Priority frontier over this session's unprocessed candidates.
  std::unique_ptr<RerankEngine> engine;
  /// Flight recorder (DESIGN.md §15); inert unless configured.
  std::unique_ptr<PipelineRecorder> recorder;
};

}  // namespace ie
