// PipelineRecorder — the pipeline flight recorder (DESIGN.md §15). Once
// per iteration (one consumed document) the pipeline samples a full
// IterationRecord across its collaborators — usefulness so far, the
// detector's drift statistic and retrain decision, exact per-component
// ‖Δw‖ at updates, the re-rank engine's delta-vs-full counts, executor
// hit/wait/miss/cancel totals, speculative queue depth, and process arena
// bytes — and the recorder fans it out to two sinks:
//
//   1. a crash-safe JSONL run ledger (one line per iteration, flushed per
//      line, so a partial file is parseable up to the crash point; schema
//      in DESIGN.md §15, validated by tools/report.py --validate), and
//   2. a bounded in-memory series (SampledRing, common/timeseries.h)
//      surfaced as PipelineResult::iterations for in-process consumers.
//
// In IE_OBSERVABILITY=0 builds the recorder is an inert stub and the
// PipelineResult member does not exist — zero size and zero work, like the
// rest of the observability layer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"  // IE_OBSERVABILITY
#include "common/timeseries.h"

namespace ie {

/// Which stage of the run an iteration belongs to: the fixed-order warmup
/// sample, the ranked main loop, or the search-interface leftovers tail.
enum class IterationPhase : uint8_t { kWarmup = 0, kMain = 1, kTail = 2 };

inline const char* IterationPhaseName(IterationPhase phase) {
  switch (phase) {
    case IterationPhase::kWarmup:
      return "warmup";
    case IterationPhase::kMain:
      return "main";
    case IterationPhase::kTail:
      return "tail";
  }
  return "?";
}

/// One iteration's telemetry. Counter-like fields are cumulative over the
/// run (monotone non-decreasing across records — the ledger validator
/// checks this), so a downsampled series still reconstructs totals.
struct IterationRecord {
  /// 0-based iteration index == position in PipelineResult's
  /// processing_order (the ledger's "i" field is this plus 1).
  uint64_t index = 0;
  uint32_t doc = 0;
  IterationPhase phase = IterationPhase::kMain;
  bool useful = false;
  /// True when this iteration triggered a model update (retrain + rerank).
  bool retrained = false;
  uint64_t useful_total = 0;
  double useful_rate = 0.0;  // useful_total / (index + 1)
  /// UpdateDetector::LastStatistic() after observing this document.
  double detector_statistic = 0.0;
  /// ‖Δw‖₂ of the model across this iteration's update (0 unless
  /// retrained): total over all components and the per-component split
  /// (RSVM-IE: one entry; BAgg-IE: one per committee member).
  double weight_delta_norm = 0.0;
  std::vector<double> component_delta_norms;
  uint64_t full_rescores = 0;   // cumulative RerankStats
  uint64_t delta_rescores = 0;
  uint64_t executor_hits = 0;   // cumulative ExtractExecutorStats
  uint64_t executor_waits = 0;
  uint64_t executor_misses = 0;
  uint64_t executor_cancelled = 0;
  /// Speculative tasks queued behind the frontier right now (not
  /// cumulative), and process-wide arena bytes reserved right now.
  uint64_t queue_depth = 0;
  uint64_t arena_bytes = 0;
};

/// Run metadata for the ledger header line (name fields point at static
/// strings — the *KindName tables).
struct RecorderRunInfo {
  const char* ranker = "?";
  const char* sampler = "?";
  const char* update = "?";
  const char* access = "?";
  uint64_t seed = 0;
  uint64_t pool_size = 0;
  uint64_t sample_size = 0;
  uint64_t extract_threads = 1;
  uint64_t scoring_threads = 1;
  bool incremental_rerank = false;
};

/// End-of-run totals for the ledger footer line. A ledger without a footer
/// is a crashed (truncated) run — still parseable, flagged by the
/// validator.
struct RecorderRunSummary {
  uint64_t updates = 0;
  uint64_t useful_total = 0;
  double extraction_seconds = 0.0;
  double extract_cpu_seconds = 0.0;
  double extract_wall_seconds = 0.0;
  double ranking_cpu_seconds = 0.0;
  double detector_cpu_seconds = 0.0;
};

#if IE_OBSERVABILITY

class PipelineRecorder {
 public:
  struct Options {
    /// JSONL ledger destination; empty disables the ledger sink.
    std::string ledger_path;
    /// Retain the in-memory downsampled series (TakeSeries()).
    bool record_series = false;
    size_t series_capacity = 512;
  };

  explicit PipelineRecorder(Options options);
  ~PipelineRecorder();

  PipelineRecorder(const PipelineRecorder&) = delete;
  PipelineRecorder& operator=(const PipelineRecorder&) = delete;

  /// False when neither sink is enabled — callers skip sampling entirely.
  bool active() const { return ledger_ != nullptr || options_.record_series; }

  /// Writes the ledger header line. Call once, before any iteration.
  void BeginRun(const RecorderRunInfo& info);

  /// Appends one iteration to both sinks. `record.index` is assigned here
  /// (call order defines the iteration order); the ledger line is flushed
  /// before returning, so it survives a crash of the very next iteration.
  void RecordIteration(IterationRecord record);

  /// Writes the ledger footer line and closes the file.
  void EndRun(const RecorderRunSummary& summary);

  /// The retained downsampled series, ascending by index (empty unless
  /// Options::record_series). Leaves the recorder's series empty.
  std::vector<IterationRecord> TakeSeries() { return ring_.TakeSamples(); }

  /// Iterations recorded so far.
  uint64_t iterations() const { return iterations_; }

 private:
  void WriteLedgerLine();  // writes + flushes line_, with failure latching

  Options options_;
  SampledRing<IterationRecord> ring_;
  uint64_t iterations_ = 0;
  std::FILE* ledger_ = nullptr;
  std::string line_;  // reused per-line buffer
};

#else  // !IE_OBSERVABILITY

/// Inert flight recorder: every member compiles to nothing, mirroring the
/// IE_METRIC_*/IE_TRACE_* macros. PipelineResult has no `iterations`
/// member in this configuration (see pipeline/result.h).
class PipelineRecorder {
 public:
  struct Options {
    std::string ledger_path;
    bool record_series = false;
    size_t series_capacity = 512;
  };

  explicit PipelineRecorder(Options) {}

  PipelineRecorder(const PipelineRecorder&) = delete;
  PipelineRecorder& operator=(const PipelineRecorder&) = delete;

  bool active() const { return false; }
  void BeginRun(const RecorderRunInfo&) {}
  void RecordIteration(IterationRecord) {}
  void EndRun(const RecorderRunSummary&) {}
  std::vector<IterationRecord> TakeSeries() { return {}; }
  uint64_t iterations() const { return 0; }
};

#endif  // IE_OBSERVABILITY

}  // namespace ie
