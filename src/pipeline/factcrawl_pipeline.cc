#include "pipeline/factcrawl_pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "sampling/sampler.h"

namespace ie {

PipelineResult FactCrawlPipeline::Run(const SharedContext& context,
                                      const FactCrawlConfig& config) {
  IE_CHECK(context.corpus != nullptr && context.pool != nullptr &&
           context.outcomes != nullptr && context.relation != nullptr &&
           context.featurizer != nullptr &&
           context.word_features != nullptr && context.index != nullptr);
  Rng rng(config.seed);

  PipelineResult result;
  result.pool_size = context.pool->size();
  result.pool_useful = context.outcomes->CountUseful(*context.pool);

  std::unordered_set<DocId> processed;
  std::vector<LabeledExample> labeled;
  auto process_doc = [&](DocId id) -> bool {
    const bool useful = context.outcomes->useful(id);
    result.extraction_seconds += context.relation->extraction_cost_seconds;
    result.processing_order.push_back(id);
    result.processed_useful.push_back(useful ? 1 : 0);
    processed.insert(id);
    if (labeled.size() < config.max_labeled_kept) {
      labeled.push_back(
          {(*context.word_features)[id], useful ? 1 : -1});
    }
    return useful;
  };

  // ---- Sample + query learning + one-time query evaluation -------------
  std::unique_ptr<Sampler> sampler;
  if (config.sampler == SamplerKind::kCQS) {
    IE_CHECK(context.cqs_queries != nullptr);
    sampler = std::make_unique<CqsSampler>(*context.cqs_queries,
                                           context.index,
                                           &context.corpus->vocab());
  } else {
    sampler = std::make_unique<SrsSampler>();
  }
  for (DocId id : sampler->Sample(
           *context.pool, std::min(config.sample_size, context.pool->size()),
           &rng)) {
    process_doc(id);
  }

  FactCrawlOptions fc_options = config.factcrawl;
  if (fc_options.retrieved_per_query == 0) {
    fc_options.retrieved_per_query =
        std::max<size_t>(30, context.pool->size() / 100);
  }
  FactCrawl factcrawl(fc_options, context.index, &context.corpus->vocab());
  CpuTimer setup_timer;
  factcrawl.LearnInitialQueries(labeled, rng.NextUint64());
  result.ranking_cpu_seconds += setup_timer.ElapsedSeconds();

  // Query-quality estimation runs the extractor over a few documents per
  // query: real extraction effort, charged and recorded.
  const std::vector<DocId> eval_docs = factcrawl.EvaluateQueries(
      [&](DocId id) { return context.outcomes->useful(id); });
  for (DocId id : eval_docs) {
    if (processed.count(id) == 0) process_doc(id);
  }
  result.warmup_documents = result.processing_order.size();

  {
    CpuTimer timer;
    factcrawl.RecomputeScores();
    result.ranking_cpu_seconds += timer.ElapsedSeconds();
  }

  std::vector<DocId> remaining;
  for (DocId id : *context.pool) {
    if (processed.count(id) == 0) remaining.push_back(id);
  }
  rng.Shuffle(remaining);

  auto rerank = [&]() {
    CpuTimer timer;
    std::stable_sort(remaining.begin(), remaining.end(),
                     [&](DocId a, DocId b) {
                       return factcrawl.Score(a) > factcrawl.Score(b);
                     });
    result.ranking_cpu_seconds += timer.ElapsedSeconds();
  };
  rerank();

  // ---- Extraction loop -------------------------------------------------
  size_t cursor = 0;
  size_t reranks = 0;
  while (cursor < remaining.size()) {
    const DocId id = remaining[cursor++];
    const bool useful = process_doc(id);

    if (!config.adaptive) continue;
    {
      CpuTimer timer;
      factcrawl.ObserveProcessed(id, useful);
      result.ranking_cpu_seconds += timer.ElapsedSeconds();
    }
    if (cursor % config.rerank_interval == 0 && cursor < remaining.size()) {
      ++reranks;
      CpuTimer timer;
      if (reranks % config.refresh_every_reranks == 0) {
        factcrawl.RefreshQueries(labeled, rng.NextUint64());
      }
      factcrawl.RecomputeScores();
      result.ranking_cpu_seconds += timer.ElapsedSeconds();
      remaining.erase(remaining.begin(),
                      remaining.begin() + static_cast<long>(cursor));
      cursor = 0;
      rerank();
      result.update_positions.push_back(result.processing_order.size());
    }
  }

  return result;
}

}  // namespace ie
