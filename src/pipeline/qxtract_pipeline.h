// QXtract baseline (Agichtein & Gravano, ICDE'03; the paper's Figure 1,
// left path). QXtract learns keyword queries from an automatically labeled
// sample and processes the retrieved documents in plain retrieval order —
// no usefulness re-ranking. The paper evaluated it and found it dominated
// by FactCrawl; this pipeline exists so that claim can be checked here
// too (see bench_table4's optional QXtract row and qxtract tests).
#pragma once

#include "pipeline/pipeline.h"

namespace ie {

struct QXtractConfig {
  SamplerKind sampler = SamplerKind::kSRS;
  size_t sample_size = 200;
  uint64_t seed = 1;
  /// Queries learned per generation method (all three methods are used,
  /// mirroring QXtract's committee of query learners).
  size_t queries_per_method = 15;
  /// Retrieval depth per query; 0 = pool-proportional (5%).
  size_t retrieved_per_query = 0;
};

/// Runs QXtract document selection: sample -> learn queries -> retrieve ->
/// process retrieved documents in rank-of-retrieval order -> process the
/// never-retrieved remainder in random order.
class QXtractPipeline {
 public:
  static PipelineResult Run(const SharedContext& context,
                            const QXtractConfig& config);
};

}  // namespace ie
