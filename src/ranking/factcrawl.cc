#include "ranking/factcrawl.h"

#include <algorithm>
#include <cmath>

#include "common/ordered.h"

namespace ie {

void FactCrawl::AddQuery(const std::string& term, QueryMethod method) {
  if (!used_terms_.insert(term).second) return;  // dedupe across methods
  queries_.push_back({term, method, 0, 0, 0, 0});
  retrieved_.emplace_back();
  RetrieveSetFor(queries_.size() - 1);
}

void FactCrawl::RetrieveSetFor(size_t query_index) {
  const std::vector<SearchHit> hits = index_->SearchText(
      queries_[query_index].term, *vocab_, options_.retrieved_per_query);
  auto& set = retrieved_[query_index];
  for (const SearchHit& hit : hits) {
    if (set.insert(hit.doc).second) {
      doc_queries_[hit.doc].push_back(static_cast<uint32_t>(query_index));
    }
  }
}

void FactCrawl::LearnInitialQueries(
    const std::vector<LabeledExample>& sample, uint64_t seed) {
  for (size_t m = 0; m < kNumQueryMethods; ++m) {
    const auto method = static_cast<QueryMethod>(m);
    for (const std::string& term :
         LearnQueries(sample, *vocab_, method, options_.queries_per_method,
                      seed + m)) {
      AddQuery(term, method);
    }
  }
}

std::vector<DocId> FactCrawl::EvaluateQueries(
    const std::function<bool(DocId)>& is_useful) {
  std::unordered_set<DocId> consumed;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    QueryStats& q = queries_[qi];
    if (q.eval_total > 0) continue;  // already evaluated
    const std::vector<SearchHit> hits = index_->SearchText(
        q.term, *vocab_, options_.eval_docs_per_query);
    for (const SearchHit& hit : hits) {
      ++q.eval_total;
      if (is_useful(hit.doc)) ++q.eval_useful;
      consumed.insert(hit.doc);
    }
  }
  // The evaluated documents flow straight into the caller's processing
  // order: return them doc-id-sorted, not in hash-iteration order.
  return SortedKeys(consumed);
}

double FactCrawl::FBeta(const QueryStats& q,
                        double total_useful_estimate) const {
  const double useful =
      static_cast<double>(q.eval_useful + q.processed_useful);
  const double total =
      static_cast<double>(q.eval_total + q.processed_total);
  if (total == 0.0 || useful == 0.0) return 0.0;
  const double precision = useful / total;
  const double recall =
      total_useful_estimate > 0.0
          ? std::min(1.0, useful / total_useful_estimate)
          : 0.0;
  const double b2 = options_.beta * options_.beta;
  const double denom = b2 * precision + recall;
  if (denom == 0.0) return 0.0;
  return (1.0 + b2) * precision * recall / denom;
}

const std::unordered_map<DocId, double>& FactCrawl::RecomputeScores() {
  // Recall denominator: queries cannot see true collection recall, so the
  // estimate is the largest per-query useful count observed so far.
  double total_useful_estimate = 0.0;
  for (const QueryStats& q : queries_) {
    total_useful_estimate = std::max(
        total_useful_estimate,
        static_cast<double>(q.eval_useful + q.processed_useful));
  }

  std::vector<double> fbeta(queries_.size());
  double method_sum[kNumQueryMethods] = {0.0, 0.0, 0.0};
  size_t method_count[kNumQueryMethods] = {0, 0, 0};
  for (size_t i = 0; i < queries_.size(); ++i) {
    fbeta[i] = FBeta(queries_[i], total_useful_estimate);
    const size_t m = static_cast<size_t>(queries_[i].method);
    method_sum[m] += fbeta[i];
    ++method_count[m];
  }
  double method_avg[kNumQueryMethods];
  for (size_t m = 0; m < kNumQueryMethods; ++m) {
    method_avg[m] =
        method_count[m] > 0
            ? method_sum[m] / static_cast<double>(method_count[m])
            : 0.0;
  }

  scores_.clear();
  // DETERMINISM: order-insensitive (each doc's score is computed from its
  // own query list and written to its own key; no cross-doc accumulation)
  for (const auto& [doc, query_indices] : doc_queries_) {
    double s = 0.0;
    for (uint32_t qi : query_indices) {
      s += fbeta[qi] *
           method_avg[static_cast<size_t>(queries_[qi].method)];
    }
    scores_[doc] = s;
  }
  return scores_;
}

double FactCrawl::Score(DocId doc) const {
  const auto it = scores_.find(doc);
  return it == scores_.end() ? 0.0 : it->second;
}

void FactCrawl::ObserveProcessed(DocId doc, bool useful) {
  const auto it = doc_queries_.find(doc);
  if (it == doc_queries_.end()) return;
  for (uint32_t qi : it->second) {
    ++queries_[qi].processed_total;
    if (useful) ++queries_[qi].processed_useful;
  }
}

void FactCrawl::RefreshQueries(const std::vector<LabeledExample>& labeled,
                               uint64_t seed) {
  const std::vector<std::string> terms =
      LearnQueries(labeled, *vocab_, QueryMethod::kSvmWeights,
                   options_.new_queries_per_refresh + used_terms_.size(),
                   seed);
  size_t added = 0;
  for (const std::string& term : terms) {
    if (added >= options_.new_queries_per_refresh) break;
    if (used_terms_.count(term) > 0) continue;
    AddQuery(term, QueryMethod::kSvmWeights);
    ++added;
  }
}

}  // namespace ie
