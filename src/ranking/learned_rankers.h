// The paper's two ranking-generation strategies (Section 3.1):
// RSVM-IE — online RankSVM with stochastic pairwise descent; and
// BAgg-IE — bagging committee of online binary SVM classifiers.
// Both use Pegasos gradient steps and elastic-net in-training feature
// selection; paper parameter defaults: RSVM-IE λAll=0.1, BAgg-IE λAll=0.5,
// λL2=0.99 for both.
#pragma once

#include "learn/bagging.h"
#include "learn/rank_svm.h"
#include "ranking/document_ranker.h"

namespace ie {

struct RsvmIeOptions {
  RankSvmOptions rank_svm = {
      .sgd = {.lambda_all = 0.1,
              .lambda_l2_share = 0.99,
              .step_offset = 2.0,
              .step_clamp = 2000},
      .pool_capacity = 2000,
      .steps_per_observation = 4};
  /// Extra pairwise steps after the initial sample is loaded.
  size_t initial_pair_steps = 6000;
};

class RsvmIeRanker : public DocumentRanker {
 public:
  explicit RsvmIeRanker(RsvmIeOptions options = {}, uint64_t seed = 41)
      : options_(options), svm_(options.rank_svm, seed) {}

  void TrainInitial(const std::vector<LabeledExample>& sample) override;
  void Observe(const SparseVector& features, bool useful) override;
  void SnapshotForScoring() override { snapshot_ = svm_.DenseWeights(); }
  double Score(const SparseVector& features) const override {
    return snapshot_.Dot(features);
  }
  WeightVector ModelWeights() const override { return svm_.DenseWeights(); }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<RsvmIeRanker>(*this);
  }
  std::string name() const override { return "RSVM-IE"; }
  size_t NonZeroFeatureCount() const override { return svm_.NonZeroCount(); }

 private:
  RsvmIeOptions options_;
  OnlineRankSvm svm_;
  WeightVector snapshot_;
};

struct BaggIeOptions {
  BaggingOptions bagging = {
      .sgd = {.lambda_all = 0.5,
              .lambda_l2_share = 0.99,
              .step_offset = 2.0,
              // Lower clamp than RSVM-IE: the larger lambda_all shrinks the
              // clamped learning rate, so BAgg-IE needs a shorter effective
              // horizon to keep online adaptation responsive.
              .step_clamp = 1000},
      .committee_size = 3,
      .balance_pool_capacity = 1000,
      .initial_epochs = 5};
};

class BaggIeRanker : public DocumentRanker {
 public:
  explicit BaggIeRanker(BaggIeOptions options = {}, uint64_t seed = 43)
      : options_(options), committee_(options.bagging, seed) {}

  void TrainInitial(const std::vector<LabeledExample>& sample) override {
    committee_.TrainInitial(sample);
  }
  void Observe(const SparseVector& features, bool useful) override {
    committee_.Observe(features, useful);
  }
  void SnapshotForScoring() override;
  double Score(const SparseVector& features) const override;
  WeightVector ModelWeights() const override {
    return committee_.MeanDenseWeights();
  }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<BaggIeRanker>(*this);
  }
  std::string name() const override { return "BAgg-IE"; }
  size_t NonZeroFeatureCount() const override {
    return committee_.NonZeroCount();
  }

 private:
  BaggIeOptions options_;
  BaggingCommittee committee_;
  std::vector<WeightVector> snapshots_;
  std::vector<double> snapshot_biases_;
};

}  // namespace ie
