// The paper's two ranking-generation strategies (Section 3.1):
// RSVM-IE — online RankSVM with stochastic pairwise descent; and
// BAgg-IE — bagging committee of online binary SVM classifiers.
// Both use Pegasos gradient steps and elastic-net in-training feature
// selection; paper parameter defaults: RSVM-IE λAll=0.1, BAgg-IE λAll=0.5,
// λL2=0.99 for both.
#pragma once

#include "learn/bagging.h"
#include "learn/rank_svm.h"
#include "ranking/document_ranker.h"

namespace ie {

struct RsvmIeOptions {
  RankSvmOptions rank_svm = {
      .sgd = {.lambda_all = 0.1,
              .lambda_l2_share = 0.99,
              .step_offset = 2.0,
              .step_clamp = 2000},
      .pool_capacity = 2000,
      .steps_per_observation = 4};
  /// Extra pairwise steps after the initial sample is loaded.
  size_t initial_pair_steps = 6000;
};

class RsvmIeRanker : public DocumentRanker {
 public:
  explicit RsvmIeRanker(RsvmIeOptions options = {}, uint64_t seed = 41)
      : options_(options), svm_(options.rank_svm, seed) {}

  void TrainInitial(const std::vector<LabeledExample>& sample) override;
  void Observe(const SparseVector& features, bool useful) override;
  void SnapshotForScoring() override;
  double Score(const SparseVector& features) const override {
    return snapshot_.Dot(features);
  }
  uint64_t ModelVersion() const override { return svm_.version(); }
  size_t ScoreComponentCount() const override { return 1; }
  double ComponentMargin(size_t, const SparseVector& x) const override {
    return snapshot_.Dot(x);
  }
  double ComponentSignMass(size_t, const SparseVector& x) const override {
    return snapshot_.SignMass(x);
  }
  void ComponentMarginAndSignMass(size_t, const SparseVector& x,
                                  double* margin,
                                  double* sign_mass) const override {
    snapshot_.DotAndSignMass(x, margin, sign_mass);
  }
  double CombineMargins(const double* margins) const override {
    return margins[0];
  }
  bool HasSnapshotDelta() const override { return has_delta_; }
  FactoredWeightDelta ComponentSnapshotDelta(size_t) const override {
    return snapshot_delta_;
  }
  WeightVector ComponentSnapshotWeights(size_t) const override {
    return snapshot_;
  }
  WeightVector ModelWeights() const override { return svm_.DenseWeights(); }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<RsvmIeRanker>(*this);
  }
  std::string name() const override { return "RSVM-IE"; }
  size_t NonZeroFeatureCount() const override { return svm_.NonZeroCount(); }

 private:
  RsvmIeOptions options_;
  OnlineRankSvm svm_;
  WeightVector snapshot_;
  FactoredWeightDelta snapshot_delta_;  // latest snapshot vs the one before
  uint64_t snapshot_version_ = 0;
  bool has_snapshot_ = false;
  bool has_delta_ = false;
};

struct BaggIeOptions {
  BaggingOptions bagging = {
      .sgd = {.lambda_all = 0.5,
              .lambda_l2_share = 0.99,
              .step_offset = 2.0,
              // Lower clamp than RSVM-IE: the larger lambda_all shrinks the
              // clamped learning rate, so BAgg-IE needs a shorter effective
              // horizon to keep online adaptation responsive.
              .step_clamp = 1000},
      .committee_size = 3,
      .balance_pool_capacity = 1000,
      .initial_epochs = 5};
};

class BaggIeRanker : public DocumentRanker {
 public:
  explicit BaggIeRanker(BaggIeOptions options = {}, uint64_t seed = 43)
      : options_(options), committee_(options.bagging, seed) {}

  void TrainInitial(const std::vector<LabeledExample>& sample) override {
    committee_.TrainInitial(sample);
  }
  void Observe(const SparseVector& features, bool useful) override {
    committee_.Observe(features, useful);
  }
  void SnapshotForScoring() override;
  double Score(const SparseVector& features) const override;
  uint64_t ModelVersion() const override { return committee_.version(); }
  size_t ScoreComponentCount() const override {
    return committee_.committee_size();
  }
  double ComponentMargin(size_t c, const SparseVector& x) const override {
    return snapshots_[c].Dot(x);
  }
  double ComponentSignMass(size_t c, const SparseVector& x) const override {
    return snapshots_[c].SignMass(x);
  }
  void ComponentMarginAndSignMass(size_t c, const SparseVector& x,
                                  double* margin,
                                  double* sign_mass) const override {
    snapshots_[c].DotAndSignMass(x, margin, sign_mass);
  }
  double CombineMargins(const double* margins) const override;
  bool HasSnapshotDelta() const override { return has_delta_; }
  FactoredWeightDelta ComponentSnapshotDelta(size_t c) const override {
    return snapshot_deltas_[c];
  }
  WeightVector ComponentSnapshotWeights(size_t c) const override {
    return c < snapshots_.size() ? snapshots_[c] : WeightVector{};
  }
  WeightVector ModelWeights() const override {
    return committee_.MeanDenseWeights();
  }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<BaggIeRanker>(*this);
  }
  std::string name() const override { return "BAgg-IE"; }
  size_t NonZeroFeatureCount() const override {
    return committee_.NonZeroCount();
  }

 private:
  BaggIeOptions options_;
  BaggingCommittee committee_;
  std::vector<WeightVector> snapshots_;
  std::vector<double> snapshot_biases_;
  // Per member, latest snapshot vs the one before it.
  std::vector<FactoredWeightDelta> snapshot_deltas_;
  uint64_t snapshot_version_ = 0;
  bool has_snapshot_ = false;
  bool has_delta_ = false;
};

}  // namespace ie
