// FactCrawl baseline (Boden et al., WebDB'11) and its adaptive variant
// A-FC (paper Section 4). FactCrawl learns keyword queries from a labeled
// sample with several generation methods, estimates each query's quality
// Fβ(q) by retrieving a few documents and running the extractor over them,
// and scores documents as S(d) = Σ_{q ∈ Q_d} Fβ(q) · Fβ_avg(method(q)).
// A-FC additionally recomputes query qualities from documents processed
// during extraction, learns new queries, and re-ranks periodically.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "index/search_index.h"
#include "learn/binary_svm.h"
#include "ranking/query_learning.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

struct FactCrawlOptions {
  /// β of the F-measure; < 1 weights precision over recall.
  double beta = 0.5;
  /// Documents retrieved and run through the extractor per query during
  /// the one-time quality-estimation step (this is charged as extraction
  /// effort by the pipeline).
  size_t eval_docs_per_query = 20;
  /// Retrieval depth per query when building the scored pool. The paper's
  /// FactCrawl uses ~300 over a 1.09M-document pool (~0.03%); 0 = auto,
  /// scaled to 1% of the pool so FC keeps its scale-relative coverage
  /// (leaving most of the pool unretrieved, hence randomly ordered).
  size_t retrieved_per_query = 0;
  size_t queries_per_method = 15;
  /// A-FC: terms added per query refresh.
  size_t new_queries_per_refresh = 5;
};

class FactCrawl {
 public:
  FactCrawl(FactCrawlOptions options, const SearchIndex* index,
            const Vocabulary* vocab)
      : options_(options), index_(index), vocab_(vocab) {}

  /// Learns queries from the labeled sample with all generation methods.
  void LearnInitialQueries(const std::vector<LabeledExample>& sample,
                           uint64_t seed);

  /// One-time query quality estimation: retrieves eval_docs_per_query
  /// documents per query and labels them with `is_useful` (the extractor
  /// verdict). Returns the distinct documents consumed, so the pipeline
  /// can charge their extraction cost.
  std::vector<DocId> EvaluateQueries(
      const std::function<bool(DocId)>& is_useful);

  /// Builds retrieval sets (top retrieved_per_query per query) and returns
  /// S(d) for every retrieved document.
  const std::unordered_map<DocId, double>& RecomputeScores();

  /// Current score of one document (0 when retrieved by no query).
  double Score(DocId doc) const;

  /// A-FC: incorporate the verdict of a processed document into the
  /// retrieval statistics of the queries that retrieved it.
  void ObserveProcessed(DocId doc, bool useful);

  /// A-FC: learns additional queries (SVM method) from accumulated labeled
  /// documents, skipping terms already in use, then refreshes retrieval
  /// sets for the new queries.
  void RefreshQueries(const std::vector<LabeledExample>& labeled,
                      uint64_t seed);

  size_t NumQueries() const { return queries_.size(); }

  struct QueryStats {
    std::string term;
    QueryMethod method;
    size_t eval_useful = 0;
    size_t eval_total = 0;
    size_t processed_useful = 0;
    size_t processed_total = 0;
  };
  const std::vector<QueryStats>& queries() const { return queries_; }

 private:
  double FBeta(const QueryStats& q, double total_useful_estimate) const;
  void AddQuery(const std::string& term, QueryMethod method);
  void RetrieveSetFor(size_t query_index);

  FactCrawlOptions options_;
  const SearchIndex* index_;
  const Vocabulary* vocab_;

  std::vector<QueryStats> queries_;
  std::vector<std::unordered_set<DocId>> retrieved_;  // per query
  std::unordered_map<DocId, std::vector<uint32_t>> doc_queries_;
  std::unordered_set<std::string> used_terms_;
  std::unordered_map<DocId, double> scores_;
};

}  // namespace ie
