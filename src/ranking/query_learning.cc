#include "ranking/query_learning.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/ordered.h"
#include "common/rng.h"

namespace ie {

const char* QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kSvmWeights:
      return "svm";
    case QueryMethod::kLogOdds:
      return "odds";
    case QueryMethod::kTfDominance:
      return "tf";
  }
  return "?";
}

bool IsQueryableTerm(const std::string& term) {
  if (term.empty()) return false;
  if (term.find(':') != std::string::npos) return false;  // attr: features
  if (term.find('_') != std::string::npos) return false;  // bigram features
  return true;
}

namespace {

std::vector<std::string> RankTerms(
    const std::vector<std::pair<uint32_t, double>>& scored,
    const Vocabulary& vocab, size_t num_terms) {
  std::vector<std::pair<uint32_t, double>> sorted = scored;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> terms;
  for (const auto& [id, score] : sorted) {
    if (terms.size() >= num_terms) break;
    if (score <= 0.0) break;
    if (id >= vocab.size()) continue;
    const std::string& term = vocab.Term(id);
    if (!IsQueryableTerm(term)) continue;
    terms.push_back(term);
  }
  return terms;
}

}  // namespace

std::vector<std::string> LearnQueries(
    const std::vector<LabeledExample>& sample, const Vocabulary& vocab,
    QueryMethod method, size_t num_terms, uint64_t seed) {
  if (method == QueryMethod::kSvmWeights) {
    OnlineBinarySvm svm(
        {.lambda_all = 0.01, .lambda_l2_share = 1.0});
    Rng rng(seed);
    svm.TrainBatch(sample, /*epochs=*/5, &rng);
    const WeightVector w = svm.DenseWeights();
    std::vector<std::pair<uint32_t, double>> scored;
    for (uint32_t id = 0; id < w.dimension(); ++id) {
      const double v = w.Get(id);
      if (v > 0.0) scored.emplace_back(id, v);
    }
    return RankTerms(scored, vocab, num_terms);
  }

  // Document-frequency statistics per class.
  std::unordered_map<uint32_t, double> df_pos, df_all;
  size_t n_pos = 0;
  for (const LabeledExample& ex : sample) {
    if (ex.label > 0) ++n_pos;
    for (const auto& [id, value] : ex.features) {
      (void)value;
      df_all[id] += 1.0;
      if (ex.label > 0) df_pos[id] += 1.0;
    }
  }
  const size_t n_all = sample.size();
  const size_t n_neg = n_all - n_pos;
  if (n_pos == 0 || n_neg == 0) return {};

  // Sorted visit order so `scored` is built identically on every standard
  // library (RankTerms breaks score ties by id, but why rely on it).
  std::vector<std::pair<uint32_t, double>> scored;
  ForEachSorted(df_all, [&](uint32_t id, double all_count) {
    const double pos_count =
        df_pos.count(id) > 0 ? df_pos.at(id) : 0.0;
    const double neg_count = all_count - pos_count;
    if (method == QueryMethod::kLogOdds) {
      const double p_pos =
          (pos_count + 0.5) / (static_cast<double>(n_pos) + 1.0);
      const double p_neg =
          (neg_count + 0.5) / (static_cast<double>(n_neg) + 1.0);
      const double odds = std::log(p_pos / (1.0 - p_pos)) -
                          std::log(p_neg / (1.0 - p_neg));
      // Require a minimum support so rare noise terms do not dominate.
      if (pos_count >= 3.0) scored.emplace_back(id, odds);
    } else {  // kTfDominance
      if (pos_count >= 3.0) {
        scored.emplace_back(id, pos_count / (all_count + 5.0));
      }
    }
  });
  return RankTerms(scored, vocab, num_terms);
}

}  // namespace ie
