#include "ranking/learned_rankers.h"

#include <cmath>
#include <utility>

namespace ie {

void RsvmIeRanker::TrainInitial(const std::vector<LabeledExample>& sample) {
  // Load the sample into the reservoir pools without per-observation
  // training, then take the configured number of pairwise steps.
  for (const LabeledExample& ex : sample) {
    // Temporarily zero the per-observation step count by training manually.
    if (ex.label > 0) {
      svm_.Observe(ex.features, true);
    } else {
      svm_.Observe(ex.features, false);
    }
  }
  svm_.TrainPairs(options_.initial_pair_steps);
  SnapshotForScoring();
}

void RsvmIeRanker::Observe(const SparseVector& features, bool useful) {
  svm_.Observe(features, useful);
}

void RsvmIeRanker::SnapshotForScoring() {
  const uint64_t version = svm_.version();
  if (has_snapshot_ && snapshot_version_ == version) {
    // Model unchanged since the last snapshot: the delta is the identity.
    snapshot_delta_ = {};
    has_delta_ = true;
    return;
  }
  // Committing pins every weight in place, so the change since the previous
  // snapshot factors into (decay scale, ℓ1 penalty, sparse corrections);
  // DenseWeights after the commit is a plain copy of the committed state.
  FactoredWeightDelta delta = svm_.CommitWeights();
  snapshot_ = svm_.DenseWeights();
  if (has_snapshot_) {
    snapshot_delta_ = std::move(delta);
    has_delta_ = true;
  }
  snapshot_version_ = version;
  has_snapshot_ = true;
}

void BaggIeRanker::SnapshotForScoring() {
  const uint64_t version = committee_.version();
  if (has_snapshot_ && snapshot_version_ == version) {
    snapshot_deltas_.assign(snapshots_.size(), FactoredWeightDelta{});
    has_delta_ = true;
    return;
  }
  const size_t members = committee_.committee_size();
  std::vector<FactoredWeightDelta> deltas;
  deltas.reserve(members);
  snapshots_.resize(members);
  snapshot_biases_.resize(members);
  for (size_t i = 0; i < members; ++i) {
    deltas.push_back(committee_.mutable_member(i).CommitWeights());
    snapshots_[i] = committee_.member(i).DenseWeights();
    snapshot_biases_[i] = committee_.member(i).bias();
  }
  if (has_snapshot_) {
    snapshot_deltas_ = std::move(deltas);
    has_delta_ = true;
  }
  snapshot_version_ = version;
  has_snapshot_ = true;
}

double BaggIeRanker::Score(const SparseVector& features) const {
  double s = 0.0;
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    const double margin = snapshots_[i].Dot(features) + snapshot_biases_[i];
    s += 1.0 / (1.0 + std::exp(-margin));
  }
  return s;
}

double BaggIeRanker::CombineMargins(const double* margins) const {
  // Must mirror Score() operation-for-operation: cached-margin scores have
  // to agree with direct scoring to the last bit.
  double s = 0.0;
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    const double margin = margins[i] + snapshot_biases_[i];
    s += 1.0 / (1.0 + std::exp(-margin));
  }
  return s;
}

}  // namespace ie
