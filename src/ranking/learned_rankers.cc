#include "ranking/learned_rankers.h"

#include <cmath>

namespace ie {

void RsvmIeRanker::TrainInitial(const std::vector<LabeledExample>& sample) {
  // Load the sample into the reservoir pools without per-observation
  // training, then take the configured number of pairwise steps.
  for (const LabeledExample& ex : sample) {
    // Temporarily zero the per-observation step count by training manually.
    if (ex.label > 0) {
      svm_.Observe(ex.features, true);
    } else {
      svm_.Observe(ex.features, false);
    }
  }
  svm_.TrainPairs(options_.initial_pair_steps);
  SnapshotForScoring();
}

void RsvmIeRanker::Observe(const SparseVector& features, bool useful) {
  svm_.Observe(features, useful);
}

void BaggIeRanker::SnapshotForScoring() {
  snapshots_.clear();
  snapshot_biases_.clear();
  for (size_t i = 0; i < committee_.committee_size(); ++i) {
    snapshots_.push_back(committee_.member(i).DenseWeights());
    snapshot_biases_.push_back(committee_.member(i).bias());
  }
}

double BaggIeRanker::Score(const SparseVector& features) const {
  double s = 0.0;
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    const double margin = snapshots_[i].Dot(features) + snapshot_biases_[i];
    s += 1.0 / (1.0 + std::exp(-margin));
  }
  return s;
}

}  // namespace ie
