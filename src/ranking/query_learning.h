// Query-generation methods in the QXtract family (Agichtein & Gravano,
// ICDE'03): learn single-term keyword queries that tend to retrieve useful
// documents, from a sample of automatically labeled documents. Three
// methods (mirroring QXtract's use of several learners; FactCrawl weighs
// queries per generation method):
//   SVM weights  — top positive-weight terms of a linear SVM,
//   log-odds     — terms with highest smoothed log-odds of usefulness,
//   TF dominance — terms most frequent in useful documents relative to
//                  their overall frequency.
#pragma once

#include <string>
#include <vector>

#include "learn/binary_svm.h"
#include "text/vocabulary.h"

namespace ie {

enum class QueryMethod { kSvmWeights = 0, kLogOdds = 1, kTfDominance = 2 };
inline constexpr size_t kNumQueryMethods = 3;

const char* QueryMethodName(QueryMethod method);

/// Learns `num_terms` single-term queries with one method. Only word
/// features are eligible (tuple-attribute features are skipped). Terms are
/// returned most-promising first.
std::vector<std::string> LearnQueries(
    const std::vector<LabeledExample>& sample, const Vocabulary& vocab,
    QueryMethod method, size_t num_terms, uint64_t seed = 51);

/// True for feature ids that correspond to plain word terms usable as
/// keyword queries (filters the "attr:" featurizer namespace and bigrams).
bool IsQueryableTerm(const std::string& term);

}  // namespace ie
