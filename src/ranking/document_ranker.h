// DocumentRanker: the interface the adaptive pipeline drives. A ranker is
// trained on an initial labeled sample, scores unprocessed documents (on
// word features only — tuple attributes are unknown before extraction),
// and absorbs processed documents online when the update detector fires.
// Includes the trivial Random and Perfect (oracle) reference rankers shown
// in every recall figure of the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "learn/binary_svm.h"  // LabeledExample
#include "text/sparse_vector.h"

namespace ie {

class DocumentRanker {
 public:
  virtual ~DocumentRanker() = default;

  /// Trains the initial model from the automatically labeled sample.
  virtual void TrainInitial(const std::vector<LabeledExample>& sample) = 0;

  /// Absorbs one processed document (features include extracted tuple
  /// attribute values) into the model.
  virtual void Observe(const SparseVector& features, bool useful) = 0;

  /// Snapshots model state for a bulk scoring pass (re-rank); Score() must
  /// reflect the state as of the latest snapshot.
  virtual void SnapshotForScoring() = 0;

  /// Priority score; higher means more likely useful.
  virtual double Score(const SparseVector& features) const = 0;

  /// Dense model weights for update detection / query refresh. Rankers
  /// without a weight vector return an empty vector.
  virtual WeightVector ModelWeights() const = 0;

  /// Deep copy (Mod-C trains a shadow clone on recent documents).
  virtual std::unique_ptr<DocumentRanker> Clone() const = 0;

  virtual std::string name() const = 0;

  /// Count of features with non-zero weight (feature-selection metric).
  virtual size_t NonZeroFeatureCount() const { return 0; }
};

/// Uniform-random ordering (lower reference line in the figures).
class RandomRanker : public DocumentRanker {
 public:
  explicit RandomRanker(uint64_t seed = 3) : rng_(seed) {}

  void TrainInitial(const std::vector<LabeledExample>&) override {}
  void Observe(const SparseVector&, bool) override {}
  void SnapshotForScoring() override {}
  double Score(const SparseVector&) const override {
    return rng_.NextDouble();
  }
  WeightVector ModelWeights() const override { return {}; }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<RandomRanker>(*this);
  }
  std::string name() const override { return "random"; }

 private:
  mutable Rng rng_;
};

/// Oracle ordering: all useful documents first (upper reference line).
/// Scores are looked up from precomputed usefulness, keyed externally.
class PerfectRanker : public DocumentRanker {
 public:
  /// `useful_score` is queried by the pipeline through ScoreDoc; the
  /// generic Score() cannot know usefulness from features alone, so the
  /// pipeline special-cases this ranker via set_current_usefulness.
  PerfectRanker() = default;

  void TrainInitial(const std::vector<LabeledExample>&) override {}
  void Observe(const SparseVector&, bool) override {}
  void SnapshotForScoring() override {}
  double Score(const SparseVector&) const override { return current_; }
  WeightVector ModelWeights() const override { return {}; }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<PerfectRanker>(*this);
  }
  std::string name() const override { return "perfect"; }

  /// The pipeline sets this to 1/0 right before scoring each document.
  void set_current_usefulness(double value) { current_ = value; }

 private:
  double current_ = 0.0;
};

}  // namespace ie
