// DocumentRanker: the interface the adaptive pipeline drives. A ranker is
// trained on an initial labeled sample, scores unprocessed documents (on
// word features only — tuple attributes are unknown before extraction),
// and absorbs processed documents online when the update detector fires.
// Includes the trivial Random and Perfect (oracle) reference rankers shown
// in every recall figure of the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "learn/binary_svm.h"  // LabeledExample
#include "text/sparse_vector.h"

namespace ie {

class DocumentRanker {
 public:
  virtual ~DocumentRanker() = default;

  /// Trains the initial model from the automatically labeled sample.
  virtual void TrainInitial(const std::vector<LabeledExample>& sample) = 0;

  /// Absorbs one processed document (features include extracted tuple
  /// attribute values) into the model.
  virtual void Observe(const SparseVector& features, bool useful) = 0;

  /// Snapshots model state for a bulk scoring pass (re-rank); Score() must
  /// reflect the state as of the latest snapshot.
  virtual void SnapshotForScoring() = 0;

  /// Priority score; higher means more likely useful.
  virtual double Score(const SparseVector& features) const = 0;

  /// Monotonically increasing model-version counter: changes whenever the
  /// scoring function would change (TrainInitial / Observe). Rankers that
  /// never learn report 0 forever. SnapshotForScoring() captures the
  /// version, letting callers skip re-scoring when nothing moved.
  virtual uint64_t ModelVersion() const { return 0; }

  // --- Incremental re-rank support (optional) ------------------------------
  // A ranker whose snapshot score decomposes as
  //   Score(x) = CombineMargins(m)   with   m[c] = w_c · x
  // over ScoreComponentCount() linear components lets the pipeline cache
  // per-document margins and advance them across snapshots instead of
  // recomputing every dot product. Because the elastic-net learners apply a
  // *uniform* Pegasos decay and cumulative ℓ1 penalty to every weight, the
  // change between two snapshots factors (see FactoredWeightDelta) into two
  // scalars plus sparse corrections, and a cached margin moves by
  //   m' = scale·m − penalty·z + margin_correction·x
  //   z' = z + sign_correction·x
  // where z = ComponentSignMass is cached alongside m. Only documents whose
  // features intersect a correction support need sparse work; every other
  // pending document is advanced with two multiplies. Biases live inside
  // CombineMargins (they shift every document identically, so they never
  // invalidate cached margins). Rankers that cannot decompose report zero
  // components and are always fully rescored.

  /// Number of linear score components; 0 = incremental rescore unsupported.
  virtual size_t ScoreComponentCount() const { return 0; }

  /// Bias-free margin w_c · x of component c on the latest snapshot.
  virtual double ComponentMargin(size_t c, const SparseVector& x) const {
    (void)c;
    (void)x;
    return 0.0;
  }

  /// Sign mass Σ_f sign(w_c,f)·x_f of component c on the latest snapshot —
  /// the companion cache that prices the uniform ℓ1 penalty per document.
  virtual double ComponentSignMass(size_t c, const SparseVector& x) const {
    (void)c;
    (void)x;
    return 0.0;
  }

  /// Margin and sign mass of component c in one pass over x — full
  /// rescores in incremental mode use this so caching the sign mass does
  /// not double the gather cost. Must equal the two separate calls
  /// bit-for-bit; rankers backed by a WeightVector override it with the
  /// fused single-walk gather.
  virtual void ComponentMarginAndSignMass(size_t c, const SparseVector& x,
                                          double* margin,
                                          double* sign_mass) const {
    *margin = ComponentMargin(c, x);
    *sign_mass = ComponentSignMass(c, x);
  }

  /// Combines component margins (adding any snapshot biases) into the same
  /// value Score() would produce — bit-identical, so cached-margin and
  /// direct scoring sort identically.
  virtual double CombineMargins(const double* margins) const {
    (void)margins;
    return 0.0;
  }

  /// True when the two most recent SnapshotForScoring() calls both captured
  /// state, i.e. ComponentSnapshotDelta() is defined.
  virtual bool HasSnapshotDelta() const { return false; }

  /// Factored weight change of component c between the previous and latest
  /// snapshot (double precision; see FactoredWeightDelta).
  virtual FactoredWeightDelta ComponentSnapshotDelta(size_t c) const {
    (void)c;
    return {};
  }

  /// Dense weights of component c as of the latest SnapshotForScoring()
  /// (RSVM-IE: the single model; BAgg-IE: committee member c). The flight
  /// recorder differences consecutive snapshots to report exact ‖Δw‖ per
  /// component at each update. Empty for rankers without components.
  virtual WeightVector ComponentSnapshotWeights(size_t c) const {
    (void)c;
    return {};
  }

  /// Dense model weights for update detection / query refresh. Rankers
  /// without a weight vector return an empty vector.
  virtual WeightVector ModelWeights() const = 0;

  /// Deep copy (Mod-C trains a shadow clone on recent documents).
  virtual std::unique_ptr<DocumentRanker> Clone() const = 0;

  virtual std::string name() const = 0;

  /// Count of features with non-zero weight (feature-selection metric).
  virtual size_t NonZeroFeatureCount() const { return 0; }
};

/// Uniform-random ordering (lower reference line in the figures).
class RandomRanker : public DocumentRanker {
 public:
  explicit RandomRanker(uint64_t seed = 3) : rng_(seed) {}

  void TrainInitial(const std::vector<LabeledExample>&) override {}
  void Observe(const SparseVector&, bool) override {}
  void SnapshotForScoring() override {}
  double Score(const SparseVector&) const override {
    return rng_.NextDouble();
  }
  WeightVector ModelWeights() const override { return {}; }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<RandomRanker>(*this);
  }
  std::string name() const override { return "random"; }

 private:
  // ARCH: const-escape (Score() is const across the ranker interface but
  // the random baseline draws per call; the rng is per-ranker — and hence
  // per-session — state, never shared, and the rerank engine keeps its
  // scoring serial and insertion-ordered so runs stay deterministic)
  mutable Rng rng_;
};

/// Oracle ordering: all useful documents first (upper reference line).
/// Scores are looked up from precomputed usefulness, keyed externally.
class PerfectRanker : public DocumentRanker {
 public:
  /// `useful_score` is queried by the pipeline through ScoreDoc; the
  /// generic Score() cannot know usefulness from features alone, so the
  /// pipeline special-cases this ranker via set_current_usefulness.
  PerfectRanker() = default;

  void TrainInitial(const std::vector<LabeledExample>&) override {}
  void Observe(const SparseVector&, bool) override {}
  void SnapshotForScoring() override {}
  double Score(const SparseVector&) const override { return current_; }
  WeightVector ModelWeights() const override { return {}; }
  std::unique_ptr<DocumentRanker> Clone() const override {
    return std::make_unique<PerfectRanker>(*this);
  }
  std::string name() const override { return "perfect"; }

  /// The pipeline sets this to 1/0 right before scoring each document.
  void set_current_usefulness(double value) { current_ = value; }

 private:
  double current_ = 0.0;
};

}  // namespace ie
