#include "update/update_detector.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"

namespace ie {

void TopKDetector::OnModelUpdated(
    const DocumentRanker& ranker,
    const std::vector<LabeledExample>& absorbed) {
  (void)ranker;
  // The side classifier keeps learning across updates; absorbed documents
  // were already fed through Observe. Snapshot the reference feature set.
  (void)absorbed;
  reference_topk_ = TopKFeatures(side_.DenseWeights(), options_.k);
  since_check_ = 0;
}

bool TopKDetector::Observe(const SparseVector& features, bool useful,
                           const DocumentRanker& ranker) {
  (void)ranker;
  side_.Update(features, useful ? 1 : -1);
  if (++since_check_ < options_.check_interval) return false;
  since_check_ = 0;
  IE_METRIC_COUNT("detector.checks");
  const std::vector<WeightedFeature> current =
      TopKFeatures(side_.DenseWeights(), options_.k);
  last_distance_ = GeneralizedFootrule(reference_topk_, current);
  IE_METRIC_GAUGE_SET("detector.topk.footrule", last_distance_);
  IE_TRACE_COUNTER("detector.topk.footrule", last_distance_);
  return last_distance_ > options_.tau;
}

void ModCDetector::OnModelUpdated(
    const DocumentRanker& ranker,
    const std::vector<LabeledExample>& absorbed) {
  (void)absorbed;
  shadow_ = ranker.Clone();
  frozen_weights_ = ranker.ModelWeights();
  last_angle_ = 0.0;
}

bool ModCDetector::Observe(const SparseVector& features, bool useful,
                           const DocumentRanker& ranker) {
  (void)ranker;
  if (shadow_ == nullptr) return false;
  if (!rng_.NextBool(options_.rho)) return false;
  shadow_->Observe(features, useful);
  const WeightVector shadow_weights = shadow_->ModelWeights();
  const double cosine = WeightVector::Cosine(shadow_weights,
                                             frozen_weights_);
  last_angle_ =
      std::acos(std::clamp(cosine, -1.0, 1.0)) * 180.0 / M_PI;
  IE_METRIC_COUNT("detector.checks");
  IE_METRIC_GAUGE_SET("detector.modc.angle_degrees", last_angle_);
  IE_TRACE_COUNTER("detector.modc.angle_degrees", last_angle_);
  return last_angle_ > options_.alpha_degrees;
}

void FeatSDetector::OnModelUpdated(
    const DocumentRanker& ranker,
    const std::vector<LabeledExample>& absorbed) {
  (void)ranker;
  // The documents the model was (re)trained on define the "training
  // distribution" the one-class SVM models.
  for (const LabeledExample& ex : absorbed) {
    svm_.Observe(ex.features);
  }
  // Recalibrate the inlier margin to a quantile of the training decisions,
  // so S ~ (1 - quantile) on in-distribution data regardless of kernel
  // scale.
  if (!absorbed.empty()) {
    std::vector<double> decisions;
    decisions.reserve(absorbed.size());
    for (const LabeledExample& ex : absorbed) {
      decisions.push_back(svm_.Decision(ex.features));
    }
    std::sort(decisions.begin(), decisions.end());
    const size_t idx = static_cast<size_t>(
        options_.margin_quantile *
        static_cast<double>(decisions.size() - 1));
    margin_ = decisions[idx];
  }
  recent_inlier_.clear();
  inlier_sum_ = 0;
  since_check_ = 0;
}

bool FeatSDetector::Observe(const SparseVector& features, bool useful,
                            const DocumentRanker& ranker) {
  (void)useful;
  (void)ranker;
  const uint8_t inlier = svm_.IsInlier(features, margin_) ? 1 : 0;
  recent_inlier_.push_back(inlier);
  inlier_sum_ += inlier;
  if (recent_inlier_.size() > options_.window) {
    inlier_sum_ -= recent_inlier_.front();
    recent_inlier_.pop_front();
  }
  if (++since_check_ < options_.min_docs_between_checks) return false;
  since_check_ = 0;
  if (recent_inlier_.empty()) return false;
  const double s = static_cast<double>(inlier_sum_) /
                   static_cast<double>(recent_inlier_.size());
  last_shift_ = 1.0 - s;
  IE_METRIC_COUNT("detector.checks");
  IE_METRIC_GAUGE_SET("detector.feats.shift", last_shift_);
  IE_TRACE_COUNTER("detector.feats.shift", last_shift_);
  return last_shift_ > options_.threshold;
}

}  // namespace ie
