// Update detection (paper Section 3.2): decide when retraining the ranking
// model — and re-ranking the unprocessed documents — is likely to have a
// significantly positive impact. The pipeline freezes the ranking model
// between updates, buffers processed documents, and asks the detector after
// each one; on trigger, the buffered documents are absorbed and the
// remaining pool is re-ranked.
//
// Detectors: Wind-F (fixed window baseline), Feat-S (feature-shift via
// online one-class SVM baseline), Top-K (footrule distance over the most
// influential features of a side classifier), Mod-C (angle between the
// ranking model and a shadow model trained on a fraction ρ of recent docs).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "learn/binary_svm.h"
#include "learn/feature_selection.h"
#include "learn/one_class_svm.h"
#include "ranking/document_ranker.h"
#include "text/sparse_vector.h"

namespace ie {

class UpdateDetector {
 public:
  virtual ~UpdateDetector() = default;

  /// Called after the ranker (re)trains: at initialization with the sample,
  /// and after every triggered update with the freshly absorbed documents.
  virtual void OnModelUpdated(const DocumentRanker& ranker,
                              const std::vector<LabeledExample>& absorbed) {
    (void)ranker;
    (void)absorbed;
  }

  /// Observes one processed document; returns true to trigger an update.
  virtual bool Observe(const SparseVector& features, bool useful,
                       const DocumentRanker& ranker) = 0;

  /// The detector's scalar drift statistic as of the last Observe() — the
  /// value compared against its trigger threshold (Top-K footrule, Mod-C
  /// angle, Feat-S shift). The pipeline flight recorder samples this once
  /// per iteration; detectors without a statistic report 0.
  virtual double LastStatistic() const { return 0.0; }

  virtual std::string name() const = 0;
};

/// Never updates: the "Base" (non-adaptive) configurations.
class NeverUpdateDetector : public UpdateDetector {
 public:
  bool Observe(const SparseVector&, bool, const DocumentRanker&) override {
    return false;
  }
  std::string name() const override { return "none"; }
};

/// Wind-F: updates every `interval` processed documents (the paper reports
/// 50 updates per run, i.e. interval = pool size / 50).
class WindFDetector : public UpdateDetector {
 public:
  explicit WindFDetector(size_t interval) : interval_(interval) {}

  bool Observe(const SparseVector&, bool, const DocumentRanker&) override {
    return ++count_ % interval_ == 0;
  }
  std::string name() const override { return "Wind-F"; }

 private:
  size_t interval_;
  size_t count_ = 0;
};

struct TopKOptions {
  size_t k = 200;
  /// Trigger threshold τ on the generalized footrule (paper: τ = ε·K with
  /// ε = 0.0025, i.e. 0.5; our footrule is normalized per-list, so the
  /// threshold is calibrated on the same scale — see bench_fig8).
  double tau = 0.10;
  /// Distance checks are O(model dimension); check every N documents
  /// (1 = the paper's per-document behaviour, used by the Table 3 bench).
  size_t check_interval = 1;
  ElasticNetOptions side_classifier = {.lambda_all = 0.01,
                                       .lambda_l2_share = 1.0,
                                       .step_offset = 2.0,
                                       .step_clamp = 2000};
};

/// Top-K: maintains its own online linear SVM on the same features as the
/// ranker; compares the current top-K features against the top-K at the
/// last model update with the generalized Spearman's footrule.
class TopKDetector : public UpdateDetector {
 public:
  explicit TopKDetector(TopKOptions options = {})
      : options_(options), side_(options.side_classifier) {}

  void OnModelUpdated(const DocumentRanker& ranker,
                      const std::vector<LabeledExample>& absorbed) override;
  bool Observe(const SparseVector& features, bool useful,
               const DocumentRanker& ranker) override;
  std::string name() const override { return "Top-K"; }

  /// Last computed footrule distance (introspection for tests/benches).
  double last_distance() const { return last_distance_; }
  double LastStatistic() const override { return last_distance_; }

 private:
  TopKOptions options_;
  OnlineBinarySvm side_;
  std::vector<WeightedFeature> reference_topk_;
  size_t since_check_ = 0;
  double last_distance_ = 0.0;
};

struct ModCOptions {
  /// Fraction ρ of recent documents fed to the shadow model.
  double rho = 0.1;
  /// Trigger angle α in degrees (paper: 5° for RSVM-IE, 30° for BAgg-IE).
  double alpha_degrees = 5.0;
};

/// Mod-C: clones the ranking model at each update; routes a fraction ρ of
/// recent documents into the clone; triggers when the angle between the
/// clone's and the frozen model's weight vectors exceeds α.
class ModCDetector : public UpdateDetector {
 public:
  explicit ModCDetector(ModCOptions options = {}, uint64_t seed = 53)
      : options_(options), rng_(seed) {}

  void OnModelUpdated(const DocumentRanker& ranker,
                      const std::vector<LabeledExample>& absorbed) override;
  bool Observe(const SparseVector& features, bool useful,
               const DocumentRanker& ranker) override;
  std::string name() const override { return "Mod-C"; }

  double last_angle_degrees() const { return last_angle_; }
  double LastStatistic() const override { return last_angle_; }

 private:
  ModCOptions options_;
  Rng rng_;
  std::unique_ptr<DocumentRanker> shadow_;
  WeightVector frozen_weights_;
  double last_angle_ = 0.0;
};

struct FeatSOptions {
  /// The paper uses γ = 0.01 on its feature scale; our documents are
  /// ℓ2-normalized (squared distances in [0, 2]), so the width is rescaled
  /// to keep the kernel discriminative.
  OneClassSvmOptions svm = {.gamma = 8.0, .lambda = 0.01, .budget = 128};
  /// Trigger threshold on F = 1 - S (paper: τ = 0.55).
  double threshold = 0.55;
  /// Minimum documents between checks (paper: 700).
  size_t min_docs_between_checks = 700;
  /// Sliding window of recent documents evaluated for inlier fraction S.
  size_t window = 200;
  /// Inlier margin = this quantile of the training documents' decision
  /// values, recalibrated at every model update.
  double margin_quantile = 0.45;
};

/// Feat-S: feature-shift detection with an online Gaussian-kernel one-class
/// SVM (Glazer et al., ICPR'12, as adapted by the paper).
class FeatSDetector : public UpdateDetector {
 public:
  explicit FeatSDetector(FeatSOptions options = {})
      : options_(options), svm_(options.svm) {}

  void OnModelUpdated(const DocumentRanker& ranker,
                      const std::vector<LabeledExample>& absorbed) override;
  bool Observe(const SparseVector& features, bool useful,
               const DocumentRanker& ranker) override;
  std::string name() const override { return "Feat-S"; }

  double last_shift() const { return last_shift_; }
  double LastStatistic() const override { return last_shift_; }

 private:
  FeatSOptions options_;
  OneClassSvm svm_;
  std::deque<uint8_t> recent_inlier_;  // sliding window, O(1) push/evict
  size_t inlier_sum_ = 0;              // running count of inliers in window
  size_t since_check_ = 0;
  double last_shift_ = 0.0;
  double margin_ = 0.0;
};

}  // namespace ie
