#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace ie {

Status InvertedIndex::Add(const Document& doc) {
  if (doc_lengths_.count(doc.id) > 0) {
    return Status::InvalidArgument(
        StrFormat("document %u already indexed", doc.id));
  }
  std::unordered_map<TokenId, uint32_t> tf;
  uint32_t length = 0;
  for (const Sentence& sentence : doc.sentences) {
    for (TokenId token : sentence.tokens) {
      ++tf[token];
      ++length;
    }
  }
  doc_lengths_[doc.id] = length;
  total_length_ += length;
  // DETERMINISM: order-insensitive (each term gets exactly one posting per
  // document, so per-term posting lists stay in Add() call order)
  for (const auto& [term, count] : tf) {
    postings_[term].push_back({doc.id, count});
    ++num_postings_;
  }
  return Status::OK();
}

size_t InvertedIndex::DocFreq(TokenId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

size_t InvertedIndex::PostingsBytes() const {
  size_t bytes = 0;
  // DETERMINISM: order-insensitive (summation of integer sizes)
  for (const auto& [term, list] : postings_) {
    bytes += sizeof(term) + sizeof(list) + list.capacity() * sizeof(Posting);
  }
  return bytes;
}

std::vector<SearchHit> InvertedIndex::Search(
    const std::vector<TokenId>& terms, size_t k) const {
  if (k == 0 || doc_lengths_.empty()) return {};
  const double n = static_cast<double>(NumDocs());
  const double avg_len = total_length_ / n;

  // The query is a term set: walk each distinct term's posting list once
  // (a repeated token used to re-walk its list and double-add its
  // contribution). First-occurrence order fixes the per-document float
  // accumulation order — the cross-backend byte-identity contract.
  std::unordered_map<DocId, double> scores;
  for (TokenId term : DedupeQueryTerms(terms)) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double df = static_cast<double>(it->second.size());
    // BM25 idf with the standard +1 inside the log to keep it positive.
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : it->second) {
      const double len = doc_lengths_.at(p.doc);
      const double tf = p.tf;
      const double denom =
          tf + params_.k1 * (1.0 - params_.b + params_.b * len / avg_len);
      scores[p.doc] += idf * (tf * (params_.k1 + 1.0)) / denom;
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  // DETERMINISM: order-insensitive (scores were accumulated in query-term
  // order; hits are fully re-sorted below with a doc-id tie-break)
  for (const auto& [doc, score] : scores) {
    hits.push_back({doc, static_cast<float>(score)});
  }
  SortHitsTopK(hits, k);
  return hits;
}

}  // namespace ie
