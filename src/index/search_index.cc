#include "index/search_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace ie {

std::vector<SearchHit> SearchIndex::SearchText(const std::string& query,
                                               const Vocabulary& vocab,
                                               size_t k) const {
  std::vector<TokenId> terms;
  for (const auto& piece : SplitString(query, " \t\r\n")) {
    const TokenId id = vocab.Lookup(piece);
    if (id != Vocabulary::kInvalidId) terms.push_back(id);
  }
  return Search(terms, k);
}

std::vector<TokenId> DedupeQueryTerms(const std::vector<TokenId>& terms) {
  std::vector<TokenId> unique;
  unique.reserve(terms.size());
  std::unordered_set<TokenId> seen;
  for (TokenId term : terms) {
    if (seen.insert(term).second) unique.push_back(term);
  }
  return unique;
}

void SortHitsTopK(std::vector<SearchHit>& hits, size_t k) {
  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (hits.size() > k) {
    using Diff = std::vector<SearchHit>::difference_type;
    std::partial_sort(hits.begin(), hits.begin() + static_cast<Diff>(k),
                      hits.end(), better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
}

}  // namespace ie
