#include "index/compact_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace ie {

namespace {

// LEB128: 7 value bits per byte, high bit = continuation.
void EncodeVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<uint8_t>(v | 0x80u));
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint32_t DecodeVarint(const uint8_t** p) {
  uint32_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = *(*p)++;
    v |= static_cast<uint32_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
    shift += 7;
  }
}

/// Conservative slack on summed score upper bounds. Per-posting
/// contributions and block maxima are exact doubles, but the pruning sums
/// them in a different association order than the exact scoring loop, so
/// the two double sums may differ in the last few ulps. Scaling the bound
/// up by 1e-9 relative dwarfs that reassociation error (<= ~1e-14
/// relative for these tiny sums) without costing measurable pruning.
constexpr double kBoundSlack = 1.0 + 1e-9;

}  // namespace

CompactIndex::CompactIndex(Bm25Params params, size_t num_shards)
    : params_(params), shards_(std::max<size_t>(1, num_shards)) {}

size_t CompactIndex::ShardOf(TokenId term) const {
  // splitmix64-style finalizer: term ids are dense and sequential, so the
  // shard assignment must mix, not just mod.
  uint64_t z = static_cast<uint64_t>(term) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<size_t>(z % shards_.size());
}

Status CompactIndex::Add(const Document& doc) {
  if (finalized_) {
    return Status::FailedPrecondition("CompactIndex already finalized");
  }
  if (doc.id > kMaxDocId) {
    return Status::InvalidArgument(
        StrFormat("doc id %u exceeds CompactIndex::kMaxDocId", doc.id));
  }
  if (doc_lengths_.count(doc.id) > 0) {
    return Status::InvalidArgument(
        StrFormat("document %u already indexed", doc.id));
  }
  std::unordered_map<TokenId, uint32_t> tf;
  uint32_t length = 0;
  for (const Sentence& sentence : doc.sentences) {
    for (TokenId token : sentence.tokens) {
      ++tf[token];
      ++length;
    }
  }
  doc_lengths_[doc.id] = length;
  total_length_ += length;
  // DETERMINISM: order-insensitive (one staged posting per (term, doc);
  // Finalize re-sorts every list by doc id before encoding)
  for (const auto& [term, count] : tf) {
    staged_[term].push_back({doc.id, count});
    ++num_postings_;
  }
  return Status::OK();
}

double CompactIndex::Contribution(double idf, uint32_t tf, DocId doc) const {
  // Must stay arithmetically identical to InvertedIndex::Search's per
  // posting expression — same association order, token for token — or the
  // cross-backend byte-identity contract breaks in the last ulp.
  const double len = doc_lengths_.at(doc);
  const double tfd = tf;
  const double denom =
      tfd + params_.k1 * (1.0 - params_.b + params_.b * len / avg_len_);
  return idf * (tfd * (params_.k1 + 1.0)) / denom;
}

void CompactIndex::Finalize(size_t threads) {
  if (finalized_) return;
  const double n = static_cast<double>(NumDocs());
  avg_len_ = n > 0.0 ? total_length_ / n : 0.0;
  finalized_ = true;  // Contribution() needs avg_len_ set

  // Bucket the staged terms per shard and sort each bucket. The historical
  // serial pass visited terms in globally ascending order, so per shard it
  // encoded exactly that shard's terms in ascending order — which is what
  // each bucket reproduces. Shards never read each other's state, so the
  // per-shard encode below is byte-identical to the serial build whether
  // it runs on one thread or many.
  std::vector<std::vector<TokenId>> shard_terms(shards_.size());
  // DETERMINISM: order-insensitive (bucketing only: one term lands in
  // exactly one bucket, and every bucket is sorted before encoding)
  for (const auto& [term, staged] : staged_) {
    (void)staged;
    shard_terms[ShardOf(term)].push_back(term);
  }
  for (std::vector<TokenId>& bucket : shard_terms) {
    std::sort(bucket.begin(), bucket.end());
  }

  // Per-shard encode: writes only shards_[s]; staged_ is read-only here,
  // so concurrent shard tasks are safe and deterministic.
  auto encode_shard = [&](size_t s) {
    Shard& shard = shards_[s];
    std::vector<StagedPosting> list;
    for (const TokenId term : shard_terms[s]) {
      const std::vector<StagedPosting>& staged = staged_.at(term);
      list.assign(staged.begin(), staged.end());
      std::sort(list.begin(), list.end(),
                [](const StagedPosting& a, const StagedPosting& b) {
                  return a.doc < b.doc;
                });
      TermMeta meta;
      meta.doc_freq = static_cast<uint32_t>(list.size());
      const double df = static_cast<double>(list.size());
      // Same idf expression as InvertedIndex::Search.
      meta.idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
      meta.first_block = static_cast<uint32_t>(shard.blocks.size());
      for (size_t begin = 0; begin < list.size(); begin += kBlockSize) {
        const size_t end = std::min(list.size(), begin + kBlockSize);
        BlockMeta block;
        block.offset = shard.blob.size();
        block.count = static_cast<uint32_t>(end - begin);
        block.last_doc = list[end - 1].doc;
        DocId prev = 0;
        for (size_t i = begin; i < end; ++i) {
          // First posting of a block stores the absolute doc id, so blocks
          // decode independently after a skip; the rest store gaps. The low
          // bit flags a tf varint — most postings have tf == 1 and pay no
          // tf byte at all.
          const uint32_t value =
              i == begin ? list[i].doc : list[i].doc - prev;
          const bool has_tf = list[i].tf != 1;
          EncodeVarint(&shard.blob, (value << 1) | (has_tf ? 1u : 0u));
          if (has_tf) EncodeVarint(&shard.blob, list[i].tf);
          prev = list[i].doc;
          block.max_score =
              std::max(block.max_score,
                       Contribution(meta.idf, list[i].tf, list[i].doc));
        }
        meta.max_score = std::max(meta.max_score, block.max_score);
        shard.blocks.push_back(block);
      }
      meta.num_blocks =
          static_cast<uint32_t>(shard.blocks.size()) - meta.first_block;
      shard.terms.emplace(term, meta);
    }
  };
  ParallelFor(shards_.size(), threads, encode_shard);
  staged_.clear();
  for (Shard& shard : shards_) {
    shard.blob.shrink_to_fit();
    shard.blocks.shrink_to_fit();
  }
}

const CompactIndex::TermMeta* CompactIndex::FindTerm(
    TokenId term, const Shard** shard) const {
  const Shard& s = shards_[ShardOf(term)];
  auto it = s.terms.find(term);
  if (it == s.terms.end()) return nullptr;
  *shard = &s;
  return &it->second;
}

size_t CompactIndex::DocFreq(TokenId term) const {
  IE_CHECK(finalized_);
  const Shard* shard = nullptr;
  const TermMeta* meta = FindTerm(term, &shard);
  return meta == nullptr ? 0 : meta->doc_freq;
}

size_t CompactIndex::PostingsBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    bytes += shard.blob.capacity();
    bytes += shard.blocks.capacity() * sizeof(BlockMeta);
    bytes += shard.terms.size() * (sizeof(TokenId) + sizeof(TermMeta));
  }
  return bytes;
}

// One decoding position in a term's posting list. Never materializes the
// list: holds the current posting plus a byte pointer into the block.
struct CompactIndex::Cursor {
  const Shard* shard = nullptr;
  const TermMeta* term = nullptr;
  size_t block = 0;        // absolute index into shard->blocks
  const uint8_t* ptr = nullptr;
  uint32_t remaining = 0;  // postings not yet decoded in this block
  DocId doc = 0;
  uint32_t tf = 0;
  bool exhausted = false;

  double BlockMax() const { return shard->blocks[block].max_score; }

  void Open(size_t block_index) {
    block = block_index;
    const BlockMeta& meta = shard->blocks[block];
    ptr = shard->blob.data() + meta.offset;
    const uint32_t head = DecodeVarint(&ptr);
    doc = head >> 1;  // block-initial posting is absolute
    tf = (head & 1u) != 0 ? DecodeVarint(&ptr) : 1;
    remaining = meta.count - 1;
  }

  void Advance() {
    if (remaining > 0) {
      const uint32_t head = DecodeVarint(&ptr);
      doc += head >> 1;
      tf = (head & 1u) != 0 ? DecodeVarint(&ptr) : 1;
      --remaining;
      return;
    }
    const size_t end =
        static_cast<size_t>(term->first_block) + term->num_blocks;
    if (block + 1 < end) {
      Open(block + 1);
    } else {
      exhausted = true;
    }
  }

  /// Moves to the first posting with doc id >= target, skipping whole
  /// blocks via the last_doc skip pointers (no decoding inside skipped
  /// blocks).
  void AdvanceTo(DocId target) {
    if (exhausted || doc >= target) return;
    const size_t end =
        static_cast<size_t>(term->first_block) + term->num_blocks;
    if (shard->blocks[block].last_doc < target) {
      size_t next = block + 1;
      while (next < end && shard->blocks[next].last_doc < target) ++next;
      if (next == end) {
        exhausted = true;
        return;
      }
      Open(next);
    }
    while (doc < target) Advance();
  }
};

std::vector<SearchHit> CompactIndex::Search(const std::vector<TokenId>& terms,
                                            size_t k) const {
  IE_CHECK(finalized_);
  if (k == 0 || doc_lengths_.empty()) return {};

  // Cursors in deduped first-occurrence query order — the order the exact
  // scoring loop below adds contributions in, matching InvertedIndex.
  std::vector<Cursor> cursors;
  // DETERMINISM: order-insensitive (DedupeQueryTerms returns a plain
  // vector in first-occurrence order; no hash container is iterated here).
  for (TokenId term : DedupeQueryTerms(terms)) {
    const Shard* shard = nullptr;
    const TermMeta* meta = FindTerm(term, &shard);
    if (meta == nullptr) continue;
    Cursor cursor;
    cursor.shard = shard;
    cursor.term = meta;
    cursor.Open(meta->first_block);
    cursors.push_back(cursor);
  }
  if (cursors.empty()) return {};

  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  // Max-heap under `better`: the front is the *worst* of the best k, i.e.
  // the pruning threshold.
  std::vector<SearchHit> heap;
  heap.reserve(std::min(k, doc_lengths_.size()));

  std::vector<size_t> order;  // live cursors, sorted by current doc id
  order.reserve(cursors.size());
  while (true) {
    order.clear();
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].exhausted) order.push_back(i);
    }
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (cursors[a].doc != cursors[b].doc) {
        return cursors[a].doc < cursors[b].doc;
      }
      return a < b;
    });

    const bool full = heap.size() >= k;
    const float threshold = full ? heap.front().score : 0.0f;

    // WAND pivot: the first prefix of doc-sorted cursors whose summed
    // term-level max scores could still reach the threshold. Documents
    // before the pivot doc cannot make the top k.
    constexpr size_t kNoPivot = static_cast<size_t>(-1);
    size_t pivot = kNoPivot;
    double upper = 0.0;
    for (size_t j = 0; j < order.size(); ++j) {
      upper += cursors[order[j]].term->max_score;
      if (!full || static_cast<float>(upper * kBoundSlack) >= threshold) {
        pivot = j;
        break;
      }
    }
    if (pivot == kNoPivot) break;  // no remaining doc can beat the heap
    const DocId pivot_doc = cursors[order[pivot]].doc;

    if (cursors[order[0]].doc != pivot_doc) {
      // Cheap skip: every cursor before the pivot jumps to the pivot doc
      // (block skip pointers avoid decoding the skipped ranges).
      for (size_t j = 0; j < pivot; ++j) {
        cursors[order[j]].AdvanceTo(pivot_doc);
      }
      continue;
    }

    // Candidate document. Block-max refinement: the sum of the *current
    // blocks'* maxima is a tighter bound than the term-level one.
    double block_upper = 0.0;
    for (size_t j = 0; j < order.size() && cursors[order[j]].doc == pivot_doc;
         ++j) {
      block_upper += cursors[order[j]].BlockMax();
    }
    const bool prunable =
        full && static_cast<float>(block_upper * kBoundSlack) < threshold;
    if (!prunable) {
      // Exact score, accumulated in deduped query-term order — the same
      // addition sequence InvertedIndex applies to its score accumulator.
      double score = 0.0;
      for (const Cursor& cursor : cursors) {
        if (!cursor.exhausted && cursor.doc == pivot_doc) {
          score += Contribution(cursor.term->idf, cursor.tf, pivot_doc);
        }
      }
      const SearchHit hit{pivot_doc, static_cast<float>(score)};
      if (!full) {
        heap.push_back(hit);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(hit, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = hit;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
    for (Cursor& cursor : cursors) {
      if (!cursor.exhausted && cursor.doc == pivot_doc) cursor.Advance();
    }
  }

  SortHitsTopK(heap, k);
  return heap;
}

}  // namespace ie
