#include "index/feature_postings.h"

namespace ie {

namespace {
const std::vector<FeaturePostingIndex::Posting>& EmptyPostings() {
  static const std::vector<FeaturePostingIndex::Posting> empty;
  return empty;
}
}  // namespace

void FeaturePostingIndex::Add(uint32_t item, const SparseVector& features) {
  ++num_items_;
  if (features.empty()) return;
  if (features.DimensionBound() > postings_.size()) {
    postings_.resize(features.DimensionBound());
  }
  for (const auto& [id, value] : features) {
    postings_[id].push_back(Posting{item, value});
    ++total_postings_;
  }
}

const std::vector<FeaturePostingIndex::Posting>& FeaturePostingIndex::Postings(
    uint32_t feature) const {
  if (feature >= postings_.size()) return EmptyPostings();
  return postings_[feature];
}

}  // namespace ie
