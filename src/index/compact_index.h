// CompactIndex — the million-document backend of the SearchIndex
// interface (DESIGN.md §13). Postings are sharded by term hash and stored
// delta-compressed: per term, doc-id gaps (low bit = "tf varint follows";
// tf == 1 postings pay no tf byte) are LEB128 varints laid out in blocks
// of 128 postings, each block carrying skip
// metadata (last doc id, byte offset) and the exact maximum BM25
// contribution of any posting in the block. Search runs WAND-style
// document-at-a-time top-k with term-level and block-level max-score
// pruning; the pruning is conservative (see DESIGN.md §13 for the
// invariant), so the returned hits are byte-identical to
// InvertedIndex::Search over the same documents.
//
// Build protocol: Add() every document, then Finalize() once — Finalize
// computes the corpus statistics the max-score metadata depends on
// (document frequencies, average length) and compresses the staged
// postings, releasing the staging memory. Search/DocFreq require a
// finalized index.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/search_index.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

class CompactIndex : public SearchIndex {
 public:
  /// Postings per block: small enough that block-max pruning has
  /// resolution, large enough that skip metadata stays a rounding error
  /// of the postings bytes.
  static constexpr size_t kBlockSize = 128;

  /// Doc ids must leave the top bit free: the encoder folds a has-tf flag
  /// into the low bit of the (doc or gap) varint, i.e. stores value*2+flag
  /// in 32 bits. Every corpus in this codebase assigns dense sequential
  /// ids, so the cap is theoretical.
  static constexpr DocId kMaxDocId = 0x7fffffffu;

  explicit CompactIndex(Bm25Params params = {}, size_t num_shards = 16);

  /// Stages a document (bag-of-words over all sentences). Documents may be
  /// added in any id order; re-adding the same id is an error, as is
  /// adding after Finalize().
  Status Add(const Document& doc);

  /// Compresses the staged postings into the sharded store and computes
  /// the block-max metadata. Idempotent; called implicitly by nothing —
  /// builders call it exactly once after the last Add(). With threads > 1
  /// the shards are encoded with ParallelFor, one task per shard — each
  /// shard's content depends only on its own terms (visited in ascending
  /// term order), so the output is byte-identical to the serial build at
  /// any thread count.
  void Finalize(size_t threads = 1);

  bool finalized() const { return finalized_; }

  size_t NumDocs() const override { return doc_lengths_.size(); }
  size_t NumPostings() const override { return num_postings_; }

  size_t DocFreq(TokenId term) const override;

  std::vector<SearchHit> Search(const std::vector<TokenId>& terms,
                                size_t k) const override;

  /// Compressed accounting: shard blobs + block skip/max metadata +
  /// per-term directory entries.
  size_t PostingsBytes() const override;

  size_t NumShards() const { return shards_.size(); }

 private:
  // Field order keeps the struct at 24 bytes (no padding holes): the skip
  // metadata is a per-128-postings cost and is counted by PostingsBytes.
  struct BlockMeta {
    uint64_t offset = 0;   // byte offset of the block within the shard blob
    double max_score = 0;  // exact max BM25 contribution in the block
    DocId last_doc = 0;    // skip pointer: last doc id in the block
    uint32_t count = 0;    // postings in the block (<= kBlockSize)
  };

  struct TermMeta {
    uint32_t doc_freq = 0;
    uint32_t first_block = 0;  // index into the shard's block array
    uint32_t num_blocks = 0;
    double idf = 0.0;          // precomputed at Finalize
    double max_score = 0.0;    // max over blocks (WAND term upper bound)
  };

  struct Shard {
    std::unordered_map<TokenId, TermMeta> terms;
    std::vector<BlockMeta> blocks;
    std::vector<uint8_t> blob;
  };

  struct Cursor;  // defined in compact_index.cc

  size_t ShardOf(TokenId term) const;
  const TermMeta* FindTerm(TokenId term, const Shard** shard) const;
  double Contribution(double idf, uint32_t tf, DocId doc) const;

  Bm25Params params_;
  std::vector<Shard> shards_;
  std::unordered_map<DocId, uint32_t> doc_lengths_;
  size_t num_postings_ = 0;
  double total_length_ = 0.0;
  bool finalized_ = false;
  double avg_len_ = 0.0;

  // Staging (released by Finalize): per-term (doc, tf) pairs in Add order.
  struct StagedPosting {
    DocId doc;
    uint32_t tf;
  };
  std::unordered_map<TokenId, std::vector<StagedPosting>> staged_;
};

}  // namespace ie
