// Postings over featurized items: feature id -> (item handle, feature
// value) pairs. The incremental re-rank engine builds one over the
// candidate pool — keyed by its dense slot indices — and *scatters* sparse
// weight corrections through it: applying correction (f, Δ) costs one fused
// multiply-add per posting of f, so a delta pass costs exactly the
// correction support's posting mass — every untouched document keeps its
// cached margins (DESIGN.md §8). Storing the caller's dense handle rather
// than the DocId keeps the scatter loop free of an id→slot indirection.
#pragma once

#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"

namespace ie {

class FeaturePostingIndex {
 public:
  struct Posting {
    uint32_t item = 0;   // caller-chosen dense handle (e.g. a pool slot)
    float value = 0.0f;  // the item's feature value, for scattering
  };

  /// Registers an item's features; each item must be added once.
  void Add(uint32_t item, const SparseVector& features);

  /// Postings of `feature` (empty when unseen), in Add order.
  const std::vector<Posting>& Postings(uint32_t feature) const;

  size_t TotalPostings() const { return total_postings_; }
  size_t NumItems() const { return num_items_; }

 private:
  std::vector<std::vector<Posting>> postings_;  // indexed by feature id
  size_t total_postings_ = 0;
  size_t num_items_ = 0;
};

}  // namespace ie
