// SearchIndex — the keyword-retrieval interface every index backend
// implements (DESIGN.md §13). QXtract-style query generation, CQS
// sampling, FactCrawl, and the search-interface access scenario all
// retrieve documents through this interface, so backends are
// interchangeable; the contract is *byte-identical* `SearchHit` output:
// for the same indexed documents and query, every backend must return the
// same hits with bit-equal float scores (same BM25 arithmetic, same
// per-document accumulation order, same tie-break). The two backends are
//   InvertedIndex — uncompressed in-memory postings (small/medium pools);
//   CompactIndex  — sharded, delta+varint-compressed postings with
//                   block-max top-k pruning (million-document pools).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

struct SearchHit {
  DocId doc = 0;
  float score = 0.0f;
};

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

class SearchIndex {
 public:
  virtual ~SearchIndex() = default;

  virtual size_t NumDocs() const = 0;
  virtual size_t NumPostings() const = 0;

  /// Document frequency of a term (0 when unseen).
  virtual size_t DocFreq(TokenId term) const = 0;

  /// Disjunctive (OR) BM25 top-k retrieval for a multi-term query.
  /// Repeated query terms count once (the query is a term *set*: each
  /// distinct term contributes one BM25 summand, in first-occurrence
  /// order). Ties broken by doc id for determinism. Terms absent from the
  /// index contribute nothing.
  virtual std::vector<SearchHit> Search(const std::vector<TokenId>& terms,
                                        size_t k) const = 0;

  /// Bytes resident for postings storage (lists + per-term/skip metadata;
  /// excludes document-length tables, which both backends share). The
  /// scale bench reports the backend ratio from this.
  virtual size_t PostingsBytes() const = 0;

  /// Convenience: tokenizes `query` on whitespace (space, tab, CR, LF —
  /// the tokenizer's notion of whitespace, so multi-line queries work),
  /// looks terms up in `vocab` (unknown words are dropped), and searches.
  std::vector<SearchHit> SearchText(const std::string& query,
                                    const Vocabulary& vocab, size_t k) const;
};

/// Distinct query terms in first-occurrence order. Both backends dedupe
/// through this so a repeated token never re-walks its posting list
/// (double-adding its contribution was the pre-interface BM25 bug) and the
/// per-document float-accumulation order matches across backends.
std::vector<TokenId> DedupeQueryTerms(const std::vector<TokenId>& terms);

/// Sorts the best `k` hits to the front — descending score, ascending doc
/// id on ties — and truncates. Shared by both backends so the final
/// ordering logic cannot drift.
void SortHitsTopK(std::vector<SearchHit>& hits, size_t k);

}  // namespace ie
