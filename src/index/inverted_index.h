// In-memory inverted index with BM25 ranking — the repository's substitute
// for Lucene (DESIGN.md §2). Provides the standard keyword-search interface
// that QXtract-style query generation, CQS sampling, FactCrawl, and the
// search-interface access scenario retrieve documents through: documents
// are ranked by how well they match the query, NOT by extraction
// usefulness, which is exactly the mismatch the paper's rankers fix.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

struct SearchHit {
  DocId doc = 0;
  float score = 0.0f;
};

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

class InvertedIndex {
 public:
  explicit InvertedIndex(Bm25Params params = {}) : params_(params) {}

  /// Indexes a document (bag-of-words over all sentences). Documents may be
  /// added in any id order; re-adding the same id is an error.
  Status Add(const Document& doc);

  size_t NumDocs() const { return doc_lengths_.size(); }
  size_t NumPostings() const { return num_postings_; }

  /// Document frequency of a term (0 when unseen).
  size_t DocFreq(TokenId term) const;

  /// Disjunctive (OR) BM25 top-k retrieval for a multi-term query.
  /// Ties broken by doc id for determinism. Terms absent from the index
  /// contribute nothing.
  std::vector<SearchHit> Search(const std::vector<TokenId>& terms,
                                size_t k) const;

  /// Convenience: tokenizes `query` by whitespace, looks terms up in
  /// `vocab` (unknown words are dropped), and searches.
  std::vector<SearchHit> SearchText(const std::string& query,
                                    const Vocabulary& vocab, size_t k) const;

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };

  Bm25Params params_;
  std::unordered_map<TokenId, std::vector<Posting>> postings_;
  std::unordered_map<DocId, uint32_t> doc_lengths_;
  size_t num_postings_ = 0;
  double total_length_ = 0.0;
};

}  // namespace ie
