// In-memory inverted index with BM25 ranking — the repository's substitute
// for Lucene (DESIGN.md §2). Provides the standard keyword-search interface
// that QXtract-style query generation, CQS sampling, FactCrawl, and the
// search-interface access scenario retrieve documents through: documents
// are ranked by how well they match the query, NOT by extraction
// usefulness, which is exactly the mismatch the paper's rankers fix.
//
// This is the uncompressed reference backend of the SearchIndex interface;
// CompactIndex (compact_index.h) is the scale backend and must return
// byte-identical hits.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/search_index.h"
#include "text/document.h"
#include "text/vocabulary.h"

namespace ie {

class InvertedIndex : public SearchIndex {
 public:
  explicit InvertedIndex(Bm25Params params = {}) : params_(params) {}

  /// Indexes a document (bag-of-words over all sentences). Documents may be
  /// added in any id order; re-adding the same id is an error.
  Status Add(const Document& doc);

  size_t NumDocs() const override { return doc_lengths_.size(); }
  size_t NumPostings() const override { return num_postings_; }

  size_t DocFreq(TokenId term) const override;

  std::vector<SearchHit> Search(const std::vector<TokenId>& terms,
                                size_t k) const override;

  /// Uncompressed accounting: allocated posting capacity plus the per-term
  /// hash-table entries.
  size_t PostingsBytes() const override;

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };

  Bm25Params params_;
  std::unordered_map<TokenId, std::vector<Posting>> postings_;
  std::unordered_map<DocId, uint32_t> doc_lengths_;
  size_t num_postings_ = 0;
  double total_length_ = 0.0;
};

}  // namespace ie
