// Tests for the observability layer (common/metrics.h, common/trace.h):
// instrument semantics, snapshot determinism and deltas, Chrome-trace
// export invariants, pipeline integration, and a multi-threaded stress
// surface (ObservabilityStress.*) re-spun under the tsan preset by
// tools/run_sanitized_tests.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/work_queue.h"
#include "test_util.h"

namespace ie {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         "_" + name;
}

// ---- Counter / Gauge ---------------------------------------------------

TEST(MetricsInstrumentTest, CounterAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(MetricsInstrumentTest, GaugeKeepsLastValue) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

// ---- Histogram ---------------------------------------------------------

TEST(HistogramTest, BucketPlacementAndSummary) {
  Histogram hist({1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 50.0, 500.0}) hist.Observe(v);
  const HistogramSnapshot snapshot = hist.Snapshot();
  // counts[i] covers values <= bounds[i]; last slot is overflow.
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);  // 0.5, 1.0 (inclusive upper bound)
  EXPECT_EQ(snapshot.counts[1], 1u);  // 5.0
  EXPECT_EQ(snapshot.counts[2], 1u);  // 50.0
  EXPECT_EQ(snapshot.counts[3], 1u);  // 500.0 overflow
  EXPECT_EQ(snapshot.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(snapshot.summary.min(), 0.5);
  EXPECT_DOUBLE_EQ(snapshot.summary.max(), 500.0);
  EXPECT_NEAR(snapshot.summary.mean(), 111.3, 1e-9);
}

TEST(HistogramTest, MergesThreadShardsExactly) {
  Histogram hist({1.0, 2.0, 3.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // 0.5, 1.5, 2.5, 3.5 -> one value per bucket (last one overflow).
        hist.Observe(static_cast<double>(t % 4) + 0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.TotalCount(),
            static_cast<uint64_t>(kThreads * kPerThread));
  for (size_t b = 0; b < snapshot.counts.size(); ++b) {
    EXPECT_EQ(snapshot.counts[b], static_cast<uint64_t>(kPerThread))
        << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(snapshot.summary.min(), 0.5);
  EXPECT_DOUBLE_EQ(snapshot.summary.max(), 3.5);
  EXPECT_NEAR(snapshot.summary.mean(), 2.0, 1e-9);
}

TEST(HistogramTest, DefaultBoundsAreLatencyScale) {
  Histogram hist({});
  EXPECT_EQ(hist.bounds(), DefaultLatencyBounds());
  EXPECT_GT(hist.bounds().size(), 15u);
  for (size_t i = 1; i < hist.bounds().size(); ++i) {
    EXPECT_LT(hist.bounds()[i - 1], hist.bounds()[i]);
  }
}

// ---- Registry + snapshot ----------------------------------------------

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.counter");
  Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&registry.GetGauge("test.x"), &registry.GetGauge("test.y"));
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Add(3);
  registry.GetCounter("a.first").Add(1);
  registry.GetGauge("m.middle").Set(0.5);
  registry.GetHistogram("h.x", {1.0}).Observe(0.5);
  const MetricsSnapshot s1 = registry.Snapshot();
  const MetricsSnapshot s2 = registry.Snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "a.first");
  EXPECT_EQ(s1.counters[1].first, "z.last");
  EXPECT_EQ(s1.counters, s2.counters);  // no writers between snapshots
  EXPECT_EQ(s1.gauges, s2.gauges);
  EXPECT_EQ(s1.CounterOr("z.last"), 3u);
  EXPECT_EQ(s1.CounterOr("missing", 7u), 7u);
  EXPECT_DOUBLE_EQ(s1.GaugeOr("m.middle"), 0.5);
  ASSERT_NE(s1.FindHistogram("h.x"), nullptr);
  EXPECT_EQ(s1.FindHistogram("h.x")->TotalCount(), 1u);
  EXPECT_EQ(s1.FindHistogram("absent"), nullptr);
}

TEST(MetricsSnapshotTest, SetCounterKeepsOrdering) {
  MetricsSnapshot snapshot;
  snapshot.SetCounter("b", 2);
  snapshot.SetCounter("a", 1);
  snapshot.SetCounter("c", 3);
  snapshot.SetCounter("b", 20);  // overwrite
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[1].first, "b");
  EXPECT_EQ(snapshot.counters[1].second, 20u);
  EXPECT_EQ(snapshot.counters[2].first, "c");
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(10);
  Histogram& hist = registry.GetHistogram("h", {1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  const MetricsSnapshot start = registry.Snapshot();

  registry.GetCounter("c").Add(5);
  registry.GetCounter("new").Add(2);  // absent at start: passes through
  hist.Observe(0.25);
  hist.Observe(5.0);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(start);

  EXPECT_EQ(delta.CounterOr("c"), 5u);
  EXPECT_EQ(delta.CounterOr("new"), 2u);
  const HistogramSnapshot* h = delta.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->TotalCount(), 2u);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 1u);  // 0.25
  EXPECT_EQ(h->counts[1], 0u);
  EXPECT_EQ(h->counts[2], 1u);  // 5.0 overflow
  // Window summary inverted from the merge algebra: samples {0.25, 5.0}.
  EXPECT_NEAR(h->summary.mean(), 2.625, 1e-9);
  EXPECT_NEAR(h->summary.variance(), 11.28125, 1e-6);
}

TEST(MetricsSnapshotTest, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("runs").Add(1);
  registry.GetGauge("angle").Set(2.5);
  registry.GetHistogram("lat", {1.0}).Observe(0.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"angle\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [{\"le\": 1, \"count\": 1}]"),
            std::string::npos);
  // Balanced braces (cheap well-formedness guard; tools/check_trace.py
  // does full JSON parsing for traces).
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
}

// ---- Macros ------------------------------------------------------------

TEST(MetricsMacroTest, MacrosRecordIntoGlobalRegistry) {
  const uint64_t before =
      MetricsRegistry::Global().Snapshot().CounterOr("test.macro_counter");
  IE_METRIC_COUNT("test.macro_counter");
  IE_METRIC_COUNT_N("test.macro_counter", 4);
  IE_METRIC_GAUGE_SET("test.macro_gauge", 1.5);
  IE_METRIC_HIST_OBSERVE("test.macro_hist", 0.001);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
#if IE_OBSERVABILITY
  EXPECT_EQ(snapshot.CounterOr("test.macro_counter"), before + 5);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("test.macro_gauge"), 1.5);
  ASSERT_NE(snapshot.FindHistogram("test.macro_hist"), nullptr);
  EXPECT_GE(snapshot.FindHistogram("test.macro_hist")->TotalCount(), 1u);
#else
  // Compiled out: the macros must leave the registry untouched.
  EXPECT_EQ(snapshot.CounterOr("test.macro_counter"), before);
  EXPECT_EQ(snapshot.FindHistogram("test.macro_hist"), nullptr);
#endif
}

// ---- Tracer ------------------------------------------------------------

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Global().Stop(); }
};

TEST_F(TracerTest, ExportsBalancedSpans) {
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Global().Start());
  EXPECT_FALSE(Tracer::Global().Start());  // one session at a time
  {
    IE_TRACE_SCOPE("outer");
    IE_TRACE_SCOPE("inner");
    IE_TRACE_INSTANT("tick");
    IE_TRACE_COUNTER("depth", 3);
  }
  ASSERT_TRUE(Tracer::Global().StopAndExport(path).ok());
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#if IE_OBSERVABILITY
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  EXPECT_EQ(CountOccurrences(json, "\"name\": \"outer\""), 2u);  // B + E
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"I\""), 1u);
  EXPECT_NE(json.find("\"args\": {\"value\": 3}"), std::string::npos);
#endif
  std::remove(path.c_str());
}

#if IE_OBSERVABILITY

TEST_F(TracerTest, InactiveTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::Global().active());
  IE_TRACE_SCOPE("ignored");
  IE_TRACE_INSTANT("ignored");
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Global().Start());
  ASSERT_TRUE(Tracer::Global().StopAndExport(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_EQ(json.find("ignored"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TracerTest, FullBufferDropsWholeSpansAndStaysBalanced) {
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Global().Start(/*capacity_per_thread=*/8));
  for (int i = 0; i < 100; ++i) {
    IE_TRACE_SCOPE("span");
  }
  EXPECT_GT(Tracer::Global().dropped_events(), 0u);
  ASSERT_TRUE(Tracer::Global().StopAndExport(path).ok());
  const std::string json = ReadFile(path);
  const size_t begins = CountOccurrences(json, "\"ph\": \"B\"");
  EXPECT_GT(begins, 0u);
  EXPECT_LE(begins, 4u);  // capacity 8 → at most 4 whole spans
  EXPECT_EQ(begins, CountOccurrences(json, "\"ph\": \"E\""));
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TracerTest, OpenSpansAreClosedByExport) {
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Global().Start());
  TraceBuffer* buffer = Tracer::Global().ThreadBuffer();
  ASSERT_NE(buffer, nullptr);
  ASSERT_TRUE(buffer->BeginSpan("unclosed"));
  ASSERT_TRUE(Tracer::Global().StopAndExport(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  EXPECT_EQ(CountOccurrences(json, "\"name\": \"unclosed\""), 2u);
  std::remove(path.c_str());
}

TEST_F(TracerTest, TimestampsAreMonotonicPerBuffer) {
  ASSERT_TRUE(Tracer::Global().Start());
  for (int i = 0; i < 50; ++i) IE_TRACE_INSTANT("tick");
  TraceBuffer* buffer = Tracer::Global().ThreadBuffer();
  ASSERT_NE(buffer, nullptr);
  Tracer::Global().Stop();
  ASSERT_GE(buffer->size(), 50u);
  for (size_t i = 1; i < buffer->size(); ++i) {
    EXPECT_GE(buffer->event(i).ts_ns, buffer->event(i - 1).ts_ns);
  }
}

#endif  // IE_OBSERVABILITY

// ---- Pipeline integration ----------------------------------------------

TEST(PipelineObservabilityTest, RunPopulatesMetricsAndTrace) {
  const SharedContext context = test::MakeSharedContext(RelationId::kPersonOrganization);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, /*seed=*/7);
  config.sample_size = 60;
  const std::string path = TempPath("pipeline_trace.json");
  config.trace_path = path;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);

  // The stamped run-scoped counters always exist (any IE_OBSERVABILITY).
  EXPECT_EQ(result.metrics.CounterOr("pipeline.documents_processed"),
            result.processing_order.size());
  EXPECT_EQ(result.speculative_misses(), result.processing_order.size());
  EXPECT_GT(result.full_rescores(), 0u);
#if IE_OBSERVABILITY
  EXPECT_GT(result.metrics.CounterOr("learn.pegasos_steps"), 0u);
  EXPECT_GT(result.metrics.CounterOr("detector.checks"), 0u);
  ASSERT_NE(result.metrics.FindHistogram("pipeline.rank_seconds"), nullptr);
  EXPECT_EQ(result.metrics.FindHistogram("pipeline.rank_seconds")
                ->TotalCount(),
            result.full_rescores() + result.delta_rescores());
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  for (const char* span : {"pipeline.run", "pipeline.sample",
                           "pipeline.warmup", "pipeline.rank",
                           "pipeline.consume"}) {
    EXPECT_NE(json.find(span), std::string::npos) << span;
  }
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
#endif
  std::remove(path.c_str());
}

TEST(PipelineObservabilityTest, MetricsDisabledStillStampsRunCounters) {
  const SharedContext context = test::MakeSharedContext(RelationId::kPersonOrganization);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kNone, /*seed=*/7);
  config.sample_size = 60;
  config.metrics_enabled = false;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_EQ(result.speculative_misses(), result.processing_order.size());
  EXPECT_GT(result.full_rescores(), 0u);
  // No registry delta: only the stamped run-scoped counters, no histograms.
  EXPECT_TRUE(result.metrics.histograms.empty());
}

TEST(PipelineObservabilityTest, MetricsAreRunScoped) {
  const SharedContext context = test::MakeSharedContext(RelationId::kPersonOrganization);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kNone, /*seed=*/7);
  config.sample_size = 60;
  const PipelineResult a = AdaptiveExtractionPipeline::Run(context, config);
  const PipelineResult b = AdaptiveExtractionPipeline::Run(context, config);
  // Deltas, not process totals: the second run reports its own work, which
  // for an identical config equals the first run's (deterministic loop).
  EXPECT_EQ(a.metrics.CounterOr("pipeline.documents_processed"),
            b.metrics.CounterOr("pipeline.documents_processed"));
  EXPECT_EQ(a.full_rescores(), b.full_rescores());
#if IE_OBSERVABILITY
  EXPECT_EQ(a.metrics.CounterOr("learn.pegasos_steps"),
            b.metrics.CounterOr("learn.pegasos_steps"));
#endif
}

// ---- Concurrency stress (re-spun under tsan by run_sanitized_tests.sh) --

TEST(ObservabilityStress, RegistryAndTracerFromWorkQueueWorkers) {
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Global().Start());
  MetricsRegistry& registry = MetricsRegistry::Global();
  WorkQueue<int> queue;
#if IE_OBSERVABILITY
  queue.set_latency_histogram(
      &registry.GetHistogram("stress.queue_latency_seconds"));
#endif
  const uint64_t counter_before =
      registry.Snapshot().CounterOr("stress.items");

  constexpr int kWorkers = 4;
  constexpr int kItems = 2000;
  std::atomic<int> consumed{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      int item = 0;
      while (queue.Pop(&item)) {
        IE_TRACE_SCOPE("stress.item");
        IE_METRIC_COUNT("stress.items");
        IE_METRIC_GAUGE_SET("stress.last_item", item);
        IE_METRIC_HIST_OBSERVE("stress.item_value", item);
        IE_TRACE_COUNTER("stress.queue_depth", queue.size());
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread snapshotter([&] {
    // Concurrent snapshots while shards are being written: values may lag
    // but reads must be race-free (the TSan gate pins this).
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      (void)snapshot.CounterOr("stress.items");
    }
  });
  for (int i = 0; i < kItems; ++i) queue.Push(i);
  queue.Close();
  for (std::thread& worker : workers) worker.join();
  snapshotter.join();

  EXPECT_EQ(consumed.load(), kItems);
  const MetricsSnapshot snapshot = registry.Snapshot();
#if IE_OBSERVABILITY
  EXPECT_EQ(snapshot.CounterOr("stress.items"),
            counter_before + static_cast<uint64_t>(kItems));
  const HistogramSnapshot* lat =
      snapshot.FindHistogram("stress.queue_latency_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->TotalCount(), static_cast<uint64_t>(kItems));
#else
  EXPECT_EQ(snapshot.CounterOr("stress.items"), counter_before);
#endif
  ASSERT_TRUE(Tracer::Global().StopAndExport(path).ok());
  const std::string json = ReadFile(path);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  std::remove(path.c_str());
}

TEST(ObservabilityStress, ConcurrentLogLevelAndLogging) {
  // Pins the documented contract in common/logging.h: Get/SetLogLevel may
  // race freely with concurrent logging (atomic level, whole-message
  // writes).
  const LogLevel original = GetLogLevel();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SetLogLevel(LogLevel::kError);
      SetLogLevel(LogLevel::kWarn);
    }
  });
  std::vector<std::thread> loggers;
  loggers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        // kDebug stays below both toggled levels, so nothing prints and
        // the suite output stays clean while the level race is exercised.
        IE_LOG(kDebug) << "stress " << i;
      }
    });
  }
  for (std::thread& logger : loggers) logger.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  SetLogLevel(original);
}

}  // namespace
}  // namespace ie
