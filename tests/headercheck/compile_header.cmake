# Script-mode runner for one header self-sufficiency check. Invoked per
# header by ctest (see CMakeLists.txt here):
#
#   cmake -DCXX=<compiler> -DHEADER=<rel path under src/>
#         -DINCLUDE=<src dir> -DTU_DIR=<scratch dir>
#         -P compile_header.cmake
#
# Generates a translation unit whose only content is `#include "<hdr>"`
# and compiles it with the project's standard and warning set. A header
# that leans on whatever its includers happened to include first fails
# here — include-order coupling is exactly what the layering DAG is
# supposed to rule out.
cmake_minimum_required(VERSION 3.16)

foreach(var CXX HEADER INCLUDE TU_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compile_header.cmake: missing -D${var}=...")
  endif()
endforeach()

string(REPLACE "/" "_" tu_name "${HEADER}")
set(tu "${TU_DIR}/${tu_name}.cc")
file(WRITE "${tu}" "#include \"${HEADER}\"\n")

execute_process(
  COMMAND "${CXX}" -std=c++20 -fsyntax-only -Wall -Wextra
          "-I${INCLUDE}" "${tu}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "header ${HEADER} does not compile standalone — it "
    "depends on includes its includers must provide first:\n${out}${err}")
endif()
message(STATUS "header ${HEADER} is self-sufficient")
