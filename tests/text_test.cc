#include <gtest/gtest.h>

#include "text/document.h"
#include "text/featurizer.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ie {
namespace {

// ---- Vocabulary --------------------------------------------------------

TEST(VocabularyTest, InternAssignsSequentialIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupDoesNotIntern) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Lookup("missing"), Vocabulary::kInvalidId);
  EXPECT_EQ(vocab.size(), 0u);
}

TEST(VocabularyTest, TermRoundTrip) {
  Vocabulary vocab;
  const uint32_t id = vocab.Intern("gamma");
  EXPECT_EQ(vocab.Term(id), "gamma");
  EXPECT_TRUE(vocab.Contains("gamma"));
  EXPECT_FALSE(vocab.Contains("delta"));
}

TEST(VocabularyTest, ManyTermsStayStable) {
  Vocabulary vocab;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(vocab.Intern("term" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(vocab.Term(ids[i]), "term" + std::to_string(i));
  }
}

// ---- Tokenizer -----------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplits) {
  const auto tokens = TokenizeWords("A Tsunami swept HAWAII.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "tsunami");
  EXPECT_EQ(tokens[3], "hawaii");
}

TEST(TokenizerTest, KeepsInternalApostropheAndHyphen) {
  const auto tokens = TokenizeWords("O'Brien's man-made plan");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "o'brien's");
  EXPECT_EQ(tokens[1], "man-made");
}

TEST(TokenizerTest, DropsPunctuation) {
  const auto tokens = TokenizeWords("well, -- (really?)");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "well");
  EXPECT_EQ(tokens[1], "really");
}

TEST(TokenizerTest, NumbersAreTokens) {
  const auto tokens = TokenizeWords("in march 1994");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2], "1994");
}

TEST(TokenizerTest, EmptyText) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("  .. !").empty());
}

TEST(SentenceSplitTest, SplitsOnTerminators) {
  const auto sentences =
      SplitSentences("A tsunami hit. Many fled! Why? The end.");
  ASSERT_EQ(sentences.size(), 4u);
  EXPECT_EQ(sentences[0], "A tsunami hit.");
  EXPECT_EQ(sentences[2], " Why?");
}

TEST(SentenceSplitTest, SingleLetterAbbreviationDoesNotSplit) {
  const auto sentences = SplitSentences("The u.s. sent aid. Done.");
  ASSERT_EQ(sentences.size(), 2u);
}

TEST(SentenceSplitTest, TrailingTextWithoutTerminator) {
  const auto sentences = SplitSentences("First. trailing words");
  ASSERT_EQ(sentences.size(), 2u);
  EXPECT_EQ(sentences[1], " trailing words");
}

TEST(TextToDocumentTest, BuildsSentencesOfTokenIds) {
  Vocabulary vocab;
  const Document doc =
      TextToDocument(7, "A tsunami swept Hawaii. People fled.", vocab);
  EXPECT_EQ(doc.id, 7u);
  ASSERT_EQ(doc.sentences.size(), 2u);
  EXPECT_EQ(doc.sentences[0].size(), 4u);
  EXPECT_EQ(vocab.Term(doc.sentences[0].tokens[1]), "tsunami");
  EXPECT_EQ(doc.TokenCount(), 6u);
}

TEST(TextToDocumentTest, SentenceToStringRoundTrip) {
  Vocabulary vocab;
  const Document doc = TextToDocument(0, "a tsunami swept hawaii.", vocab);
  EXPECT_EQ(SentenceToString(doc.sentences[0], vocab),
            "a tsunami swept hawaii");
}

// ---- Featurizer ------------------------------------------------------------

class FeaturizerTest : public ::testing::Test {
 protected:
  Document MakeDoc(const std::string& text) {
    return TextToDocument(0, text, vocab_);
  }
  Vocabulary vocab_;
};

TEST_F(FeaturizerTest, UnigramsNormalized) {
  Featurizer featurizer(&vocab_);
  const Document doc = MakeDoc("storm storm surge.");
  const SparseVector v = featurizer.Featurize(doc);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_NEAR(v.L2Norm(), 1.0, 1e-6);
  // log-tf: the repeated word gets a higher (but sublinear) weight.
  EXPECT_GT(v.Get(vocab_.Lookup("storm")), v.Get(vocab_.Lookup("surge")));
  EXPECT_LT(v.Get(vocab_.Lookup("storm")),
            2.0f * v.Get(vocab_.Lookup("surge")));
}

TEST_F(FeaturizerTest, RawTfOption) {
  Featurizer featurizer(&vocab_, {.log_tf = false, .l2_normalize = false});
  const SparseVector v = featurizer.Featurize(MakeDoc("storm storm surge."));
  EXPECT_FLOAT_EQ(v.Get(vocab_.Lookup("storm")), 2.0f);
}

TEST_F(FeaturizerTest, BigramsInterned) {
  Featurizer featurizer(&vocab_,
                        {.use_bigrams = true, .l2_normalize = false});
  const SparseVector v = featurizer.Featurize(MakeDoc("storm surge."));
  const uint32_t bigram = vocab_.Lookup("storm_surge");
  ASSERT_NE(bigram, Vocabulary::kInvalidId);
  EXPECT_GT(v.Get(bigram), 0.0f);
}

TEST_F(FeaturizerTest, BigramsDoNotCrossSentences) {
  Featurizer featurizer(&vocab_,
                        {.use_bigrams = true, .l2_normalize = false});
  featurizer.Featurize(MakeDoc("storm. surge."));
  EXPECT_EQ(vocab_.Lookup("storm_surge"), Vocabulary::kInvalidId);
}

TEST_F(FeaturizerTest, AttributeFeatures) {
  Featurizer featurizer(&vocab_);
  const Document doc = MakeDoc("a tsunami swept hawaii.");
  const SparseVector v = featurizer.Featurize(doc, {"tsunami", "hawaii"});
  EXPECT_GT(v.Get(vocab_.Lookup("attr:tsunami")), 0.0f);
  EXPECT_GT(v.Get(vocab_.Lookup("attr:hawaii")), 0.0f);
  // Word features and attribute features coexist.
  EXPECT_GT(v.Get(vocab_.Lookup("tsunami")), 0.0f);
}

TEST_F(FeaturizerTest, AttributeFeatureIdStable) {
  Featurizer featurizer(&vocab_);
  EXPECT_EQ(featurizer.AttributeFeatureId("x"),
            featurizer.AttributeFeatureId("x"));
  EXPECT_NE(featurizer.AttributeFeatureId("x"),
            featurizer.AttributeFeatureId("y"));
}

TEST_F(FeaturizerTest, IdfReweighting) {
  Featurizer featurizer(&vocab_, {.l2_normalize = false});
  const Document doc = MakeDoc("common rare.");
  const uint32_t common = vocab_.Lookup("common");
  const uint32_t rare = vocab_.Lookup("rare");
  std::vector<float> idf(vocab_.size(), 1.0f);
  idf[common] = 0.5f;
  idf[rare] = 4.0f;
  featurizer.SetIdf(std::move(idf));
  ASSERT_TRUE(featurizer.has_idf());
  const SparseVector v = featurizer.Featurize(doc);
  EXPECT_FLOAT_EQ(v.Get(common), 0.5f);
  EXPECT_FLOAT_EQ(v.Get(rare), 4.0f);
}

TEST_F(FeaturizerTest, IdfDefaultForLateFeatures) {
  Featurizer featurizer(&vocab_, {.l2_normalize = false});
  vocab_.Intern("early");
  featurizer.SetIdf({3.0f}, /*default_idf=*/2.0f);
  // "late" is interned after the idf table was installed: default applies.
  const SparseVector v = featurizer.Featurize(MakeDoc("early late."));
  EXPECT_FLOAT_EQ(v.Get(vocab_.Lookup("early")), 3.0f);
  EXPECT_FLOAT_EQ(v.Get(vocab_.Lookup("late")), 2.0f);
}

}  // namespace
}  // namespace ie
