#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace ie {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void Add(DocId id, const std::string& text) {
    ASSERT_TRUE(index_.Add(TextToDocument(id, text, vocab_)).ok());
  }
  std::vector<TokenId> Terms(const std::string& words) {
    std::vector<TokenId> ids;
    for (const auto& w : TokenizeWords(words)) ids.push_back(vocab_.Intern(w));
    return ids;
  }

  Vocabulary vocab_;
  InvertedIndex index_;
};

TEST_F(IndexTest, EmptyIndexReturnsNothing) {
  EXPECT_TRUE(index_.Search(Terms("anything"), 10).empty());
}

TEST_F(IndexTest, DocFreqCountsDocuments) {
  Add(0, "storm at sea. storm again.");
  Add(1, "calm sea.");
  EXPECT_EQ(index_.DocFreq(vocab_.Lookup("storm")), 1u);
  EXPECT_EQ(index_.DocFreq(vocab_.Lookup("sea")), 2u);
  EXPECT_EQ(index_.DocFreq(999999), 0u);
}

TEST_F(IndexTest, DuplicateAddRejected) {
  Add(0, "a.");
  EXPECT_TRUE(
      index_.Add(TextToDocument(0, "b.", vocab_)).IsInvalidArgument());
}

TEST_F(IndexTest, SingleTermRetrieval) {
  Add(0, "earthquake in tokyo.");
  Add(1, "election in oslo.");
  const auto hits = index_.Search(Terms("earthquake"), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, 0.0f);
}

TEST_F(IndexTest, TermFrequencyBoostsScore) {
  Add(0, "storm storm storm hit the coast today with heavy rain falling.");
  Add(1, "storm was mentioned once in this otherwise unrelated report.");
  const auto hits = index_.Search(Terms("storm"), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST_F(IndexTest, RareTermsScoreHigherThanCommon) {
  for (DocId id = 0; id < 20; ++id) {
    Add(id, "common words fill this entire document body completely.");
  }
  Add(20, "common words plus the rare volcano mention here today now.");
  const auto common_hits = index_.Search(Terms("common"), 25);
  const auto rare_hits = index_.Search(Terms("volcano"), 25);
  ASSERT_FALSE(common_hits.empty());
  ASSERT_EQ(rare_hits.size(), 1u);
  // idf: the rare term contributes a larger score.
  EXPECT_GT(rare_hits[0].score, common_hits[0].score);
}

TEST_F(IndexTest, DisjunctiveMultiTermAccumulates) {
  Add(0, "lava flowed from the volcano.");
  Add(1, "lava only here.");
  Add(2, "volcano only here.");
  const auto hits = index_.Search(Terms("lava volcano"), 10);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc, 0u);  // matches both query terms
}

TEST_F(IndexTest, TopKLimitsResults) {
  for (DocId id = 0; id < 30; ++id) Add(id, "shared token body.");
  EXPECT_EQ(index_.Search(Terms("shared"), 5).size(), 5u);
  EXPECT_EQ(index_.Search(Terms("shared"), 0).size(), 0u);
}

TEST_F(IndexTest, TieBreakByDocIdIsDeterministic) {
  Add(3, "tied token here now.");
  Add(1, "tied token here now.");
  Add(2, "tied token here now.");
  const auto hits = index_.Search(Terms("tied"), 10);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_EQ(hits[1].doc, 2u);
  EXPECT_EQ(hits[2].doc, 3u);
}

TEST_F(IndexTest, UnknownQueryTermsIgnored) {
  Add(0, "known words here.");
  const auto hits = index_.SearchText("known nonexistentzz", vocab_, 5);
  ASSERT_EQ(hits.size(), 1u);
}

TEST_F(IndexTest, SearchTextAllUnknown) {
  Add(0, "text.");
  EXPECT_TRUE(index_.SearchText("zzz yyy", vocab_, 5).empty());
}

TEST_F(IndexTest, ShorterDocumentWinsAtEqualTf) {
  Add(0, "needle plus many many many other words in a long document body.");
  Add(1, "needle short.");
  const auto hits = index_.Search(Terms("needle"), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);  // BM25 length normalization
}

TEST_F(IndexTest, NumDocsAndPostings) {
  Add(0, "a b.");
  Add(1, "a.");
  EXPECT_EQ(index_.NumDocs(), 2u);
  EXPECT_EQ(index_.NumPostings(), 3u);  // (a,0),(b,0),(a,1)
}

}  // namespace
}  // namespace ie
