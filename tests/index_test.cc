#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "text/tokenizer.h"

namespace ie {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void Add(DocId id, const std::string& text) {
    ASSERT_TRUE(index_.Add(TextToDocument(id, text, vocab_)).ok());
  }
  std::vector<TokenId> Terms(const std::string& words) {
    std::vector<TokenId> ids;
    for (const auto& w : TokenizeWords(words)) ids.push_back(vocab_.Intern(w));
    return ids;
  }

  Vocabulary vocab_;
  InvertedIndex index_;
};

TEST_F(IndexTest, EmptyIndexReturnsNothing) {
  EXPECT_TRUE(index_.Search(Terms("anything"), 10).empty());
}

TEST_F(IndexTest, DocFreqCountsDocuments) {
  Add(0, "storm at sea. storm again.");
  Add(1, "calm sea.");
  EXPECT_EQ(index_.DocFreq(vocab_.Lookup("storm")), 1u);
  EXPECT_EQ(index_.DocFreq(vocab_.Lookup("sea")), 2u);
  EXPECT_EQ(index_.DocFreq(999999), 0u);
}

TEST_F(IndexTest, DuplicateAddRejected) {
  Add(0, "a.");
  EXPECT_TRUE(
      index_.Add(TextToDocument(0, "b.", vocab_)).IsInvalidArgument());
}

TEST_F(IndexTest, SingleTermRetrieval) {
  Add(0, "earthquake in tokyo.");
  Add(1, "election in oslo.");
  const auto hits = index_.Search(Terms("earthquake"), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, 0.0f);
}

TEST_F(IndexTest, TermFrequencyBoostsScore) {
  Add(0, "storm storm storm hit the coast today with heavy rain falling.");
  Add(1, "storm was mentioned once in this otherwise unrelated report.");
  const auto hits = index_.Search(Terms("storm"), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST_F(IndexTest, RareTermsScoreHigherThanCommon) {
  for (DocId id = 0; id < 20; ++id) {
    Add(id, "common words fill this entire document body completely.");
  }
  Add(20, "common words plus the rare volcano mention here today now.");
  const auto common_hits = index_.Search(Terms("common"), 25);
  const auto rare_hits = index_.Search(Terms("volcano"), 25);
  ASSERT_FALSE(common_hits.empty());
  ASSERT_EQ(rare_hits.size(), 1u);
  // idf: the rare term contributes a larger score.
  EXPECT_GT(rare_hits[0].score, common_hits[0].score);
}

TEST_F(IndexTest, DisjunctiveMultiTermAccumulates) {
  Add(0, "lava flowed from the volcano.");
  Add(1, "lava only here.");
  Add(2, "volcano only here.");
  const auto hits = index_.Search(Terms("lava volcano"), 10);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc, 0u);  // matches both query terms
}

TEST_F(IndexTest, TopKLimitsResults) {
  for (DocId id = 0; id < 30; ++id) Add(id, "shared token body.");
  EXPECT_EQ(index_.Search(Terms("shared"), 5).size(), 5u);
  EXPECT_EQ(index_.Search(Terms("shared"), 0).size(), 0u);
}

TEST_F(IndexTest, TieBreakByDocIdIsDeterministic) {
  Add(3, "tied token here now.");
  Add(1, "tied token here now.");
  Add(2, "tied token here now.");
  const auto hits = index_.Search(Terms("tied"), 10);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_EQ(hits[1].doc, 2u);
  EXPECT_EQ(hits[2].doc, 3u);
}

TEST_F(IndexTest, UnknownQueryTermsIgnored) {
  Add(0, "known words here.");
  const auto hits = index_.SearchText("known nonexistentzz", vocab_, 5);
  ASSERT_EQ(hits.size(), 1u);
}

TEST_F(IndexTest, SearchTextAllUnknown) {
  Add(0, "text.");
  EXPECT_TRUE(index_.SearchText("zzz yyy", vocab_, 5).empty());
}

TEST_F(IndexTest, ShorterDocumentWinsAtEqualTf) {
  Add(0, "needle plus many many many other words in a long document body.");
  Add(1, "needle short.");
  const auto hits = index_.Search(Terms("needle"), 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);  // BM25 length normalization
}

TEST_F(IndexTest, NumDocsAndPostings) {
  Add(0, "a b.");
  Add(1, "a.");
  EXPECT_EQ(index_.NumDocs(), 2u);
  EXPECT_EQ(index_.NumPostings(), 3u);  // (a,0),(b,0),(a,1)
}

TEST_F(IndexTest, DuplicateQueryTermNotDoubleCounted) {
  // Regression: a repeated query token used to re-walk its posting list
  // and double-add its contribution, so {t, t} diverged from {t}.
  Add(0, "storm storm hit the coast with rain.");
  Add(1, "storm was mentioned here once only.");
  const auto once = index_.Search(Terms("storm"), 10);
  const auto twice = index_.Search(Terms("storm storm"), 10);
  ASSERT_EQ(once.size(), 2u);
  ASSERT_EQ(twice.size(), 2u);
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].doc, twice[i].doc);
    EXPECT_EQ(once[i].score, twice[i].score);  // exact, not approximate
  }
  // Mixed duplicates too: {a, b, a} == {a, b}.
  const auto pair_hits = index_.Search(Terms("storm coast"), 10);
  const auto dup_hits = index_.Search(Terms("storm coast storm"), 10);
  ASSERT_EQ(pair_hits.size(), dup_hits.size());
  for (size_t i = 0; i < pair_hits.size(); ++i) {
    EXPECT_EQ(pair_hits[i].doc, dup_hits[i].doc);
    EXPECT_EQ(pair_hits[i].score, dup_hits[i].score);
  }
}

TEST_F(IndexTest, KLargerThanNumDocs) {
  Add(0, "alpha beta.");
  Add(1, "alpha gamma.");
  const auto hits = index_.Search(Terms("alpha"), 1000);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(IndexTest, SingleDocCorpusAvgLenPath) {
  // One document: avg_len == len exactly, so the BM25 length term reduces
  // to k1 * 1.0 — the score must be finite and positive, not NaN.
  Add(0, "solo document with a handful of words.");
  const auto hits = index_.Search(Terms("solo words"), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(std::isfinite(hits[0].score));
  EXPECT_GT(hits[0].score, 0.0f);
}

TEST_F(IndexTest, SearchTextSplitsOnAllWhitespace) {
  Add(0, "alpha beta gamma.");
  // Tabs, carriage returns and newlines are separators, not token bytes —
  // a query pasted from a file must not glue terms together.
  const auto hits = index_.SearchText("alpha\tbeta\r\ngamma", vocab_, 10);
  ASSERT_EQ(hits.size(), 1u);
  const auto space_hits = index_.SearchText("alpha beta gamma", vocab_, 10);
  ASSERT_EQ(space_hits.size(), 1u);
  EXPECT_EQ(hits[0].score, space_hits[0].score);
}

}  // namespace
}  // namespace ie
