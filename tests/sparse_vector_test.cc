#include "text/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ie {
namespace {

SparseVector Make(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

TEST(SparseVectorTest, FromUnsortedSortsById) {
  const SparseVector v = Make({{5, 1.0f}, {1, 2.0f}, {3, 3.0f}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].first, 1u);
  EXPECT_EQ(v.entries()[1].first, 3u);
  EXPECT_EQ(v.entries()[2].first, 5u);
}

TEST(SparseVectorTest, FromUnsortedSumsDuplicates) {
  const SparseVector v = Make({{2, 1.0f}, {2, 2.5f}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_FLOAT_EQ(v.Get(2), 3.5f);
}

TEST(SparseVectorTest, FromUnsortedDropsZeros) {
  const SparseVector v = Make({{2, 1.0f}, {2, -1.0f}, {4, 0.0f}});
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, GetMissingIsZero) {
  const SparseVector v = Make({{1, 1.0f}});
  EXPECT_FLOAT_EQ(v.Get(0), 0.0f);
  EXPECT_FLOAT_EQ(v.Get(2), 0.0f);
}

TEST(SparseVectorTest, Norms) {
  const SparseVector v = Make({{0, 3.0f}, {1, -4.0f}});
  EXPECT_DOUBLE_EQ(v.L2NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
}

TEST(SparseVectorTest, DimensionBound) {
  EXPECT_EQ(SparseVector().DimensionBound(), 0u);
  EXPECT_EQ(Make({{7, 1.0f}}).DimensionBound(), 8u);
}

TEST(SparseVectorTest, ScaleAndNormalize) {
  SparseVector v = Make({{0, 3.0f}, {1, 4.0f}});
  v.Scale(2.0f);
  EXPECT_FLOAT_EQ(v.Get(0), 6.0f);
  v.Normalize();
  EXPECT_NEAR(v.L2Norm(), 1.0, 1e-6);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.Normalize();
  EXPECT_TRUE(v.empty());
}

TEST(DotTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(Dot(Make({{0, 1.0f}}), Make({{1, 1.0f}})), 0.0);
}

TEST(DotTest, OverlappingSum) {
  const SparseVector a = Make({{0, 1.0f}, {2, 2.0f}, {5, 3.0f}});
  const SparseVector b = Make({{2, 4.0f}, {5, -1.0f}, {9, 10.0f}});
  EXPECT_DOUBLE_EQ(Dot(a, b), 8.0 - 3.0);
}

TEST(DotTest, Commutative) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SparseVector::Entry> ea, eb;
    for (int i = 0; i < 30; ++i) {
      ea.emplace_back(rng.NextBounded(50),
                      static_cast<float>(rng.NextGaussian()));
      eb.emplace_back(rng.NextBounded(50),
                      static_cast<float>(rng.NextGaussian()));
    }
    const SparseVector a = Make(ea), b = Make(eb);
    EXPECT_NEAR(Dot(a, b), Dot(b, a), 1e-9);
  }
}

TEST(CosineTest, IdenticalIsOne) {
  const SparseVector a = Make({{0, 1.0f}, {3, 2.0f}});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
}

TEST(CosineTest, OrthogonalIsZero) {
  EXPECT_DOUBLE_EQ(
      CosineSimilarity(Make({{0, 1.0f}}), Make({{1, 1.0f}})), 0.0);
}

TEST(CosineTest, ZeroVectorIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(SparseVector(), Make({{0, 1.0f}})),
                   0.0);
}

// ---- WeightVector ------------------------------------------------------

TEST(WeightVectorTest, GetBeyondSizeIsZero) {
  WeightVector w;
  EXPECT_DOUBLE_EQ(w.Get(100), 0.0);
}

TEST(WeightVectorTest, SetGrowsVector) {
  WeightVector w;
  w.Set(5, 2.0);
  EXPECT_EQ(w.dimension(), 6u);
  EXPECT_DOUBLE_EQ(w.Get(5), 2.0);
  EXPECT_DOUBLE_EQ(w.Get(3), 0.0);
}

TEST(WeightVectorTest, AddScaled) {
  WeightVector w;
  w.AddScaled(Make({{1, 2.0f}, {3, 1.0f}}), 0.5);
  EXPECT_DOUBLE_EQ(w.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(w.Get(3), 0.5);
}

TEST(WeightVectorTest, DotWithSparse) {
  WeightVector w;
  w.Set(0, 2.0);
  w.Set(4, -1.0);
  EXPECT_DOUBLE_EQ(w.Dot(Make({{0, 3.0f}, {4, 2.0f}, {9, 5.0f}})), 4.0);
}

TEST(WeightVectorTest, NonZeroCount) {
  WeightVector w;
  w.Set(0, 1.0);
  w.Set(1, 0.0);
  w.Set(2, 1e-15);
  w.Set(3, -2.0);
  EXPECT_EQ(w.NonZeroCount(), 2u);
}

TEST(WeightVectorTest, SoftThreshold) {
  WeightVector w;
  w.Set(0, 1.0);
  w.Set(1, -0.3);
  w.Set(2, 0.1);
  w.SoftThreshold(0.2);
  EXPECT_DOUBLE_EQ(w.Get(0), 0.8);
  EXPECT_NEAR(w.Get(1), -0.1, 1e-12);
  EXPECT_DOUBLE_EQ(w.Get(2), 0.0);
}

TEST(WeightVectorTest, SoftThresholdNonPositiveIsNoop) {
  WeightVector w;
  w.Set(0, 1.0);
  w.SoftThreshold(0.0);
  EXPECT_DOUBLE_EQ(w.Get(0), 1.0);
}

TEST(WeightVectorTest, CosineOfScaledCopies) {
  WeightVector a, b;
  a.Set(0, 1.0);
  a.Set(2, 2.0);
  b.Set(0, 3.0);
  b.Set(2, 6.0);
  EXPECT_NEAR(WeightVector::Cosine(a, b), 1.0, 1e-12);
}

TEST(WeightVectorTest, CosineHandlesDifferentDimensions) {
  WeightVector a, b;
  a.Set(0, 1.0);
  b.Set(0, 1.0);
  b.Set(10, 1.0);
  EXPECT_NEAR(WeightVector::Cosine(a, b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(WeightVectorTest, CosineZeroVector) {
  WeightVector a, b;
  a.Set(0, 1.0);
  EXPECT_DOUBLE_EQ(WeightVector::Cosine(a, b), 0.0);
}

TEST(WeightVectorTest, ToSparseRoundTrip) {
  WeightVector w;
  w.Set(3, 1.5);
  w.Set(7, -2.0);
  w.Set(9, 1e-15);  // below eps: dropped
  const SparseVector sparse = w.ToSparse();
  ASSERT_EQ(sparse.size(), 2u);
  EXPECT_FLOAT_EQ(sparse.Get(3), 1.5f);
  EXPECT_FLOAT_EQ(sparse.Get(7), -2.0f);
}

}  // namespace
}  // namespace ie
