#include "text/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ie {
namespace {

SparseVector Make(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

TEST(SparseVectorTest, FromUnsortedSortsById) {
  const SparseVector v = Make({{5, 1.0f}, {1, 2.0f}, {3, 3.0f}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.id(0), 1u);
  EXPECT_EQ(v.id(1), 3u);
  EXPECT_EQ(v.id(2), 5u);
}

TEST(SparseVectorTest, FromUnsortedSumsDuplicates) {
  const SparseVector v = Make({{2, 1.0f}, {2, 2.5f}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_FLOAT_EQ(v.Get(2), 3.5f);
}

TEST(SparseVectorTest, FromUnsortedDropsZeros) {
  const SparseVector v = Make({{2, 1.0f}, {2, -1.0f}, {4, 0.0f}});
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, GetMissingIsZero) {
  const SparseVector v = Make({{1, 1.0f}});
  EXPECT_FLOAT_EQ(v.Get(0), 0.0f);
  EXPECT_FLOAT_EQ(v.Get(2), 0.0f);
}

TEST(SparseVectorTest, Norms) {
  const SparseVector v = Make({{0, 3.0f}, {1, -4.0f}});
  EXPECT_DOUBLE_EQ(v.L2NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
}

TEST(SparseVectorTest, DimensionBound) {
  EXPECT_EQ(SparseVector().DimensionBound(), 0u);
  EXPECT_EQ(Make({{7, 1.0f}}).DimensionBound(), 8u);
}

TEST(SparseVectorTest, ScaleAndNormalize) {
  SparseVector v = Make({{0, 3.0f}, {1, 4.0f}});
  v.Scale(2.0f);
  EXPECT_FLOAT_EQ(v.Get(0), 6.0f);
  v.Normalize();
  EXPECT_NEAR(v.L2Norm(), 1.0, 1e-6);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.Normalize();
  EXPECT_TRUE(v.empty());
}

TEST(DotTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(Dot(Make({{0, 1.0f}}), Make({{1, 1.0f}})), 0.0);
}

TEST(DotTest, OverlappingSum) {
  const SparseVector a = Make({{0, 1.0f}, {2, 2.0f}, {5, 3.0f}});
  const SparseVector b = Make({{2, 4.0f}, {5, -1.0f}, {9, 10.0f}});
  EXPECT_DOUBLE_EQ(Dot(a, b), 8.0 - 3.0);
}

TEST(DotTest, Commutative) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SparseVector::Entry> ea, eb;
    for (int i = 0; i < 30; ++i) {
      ea.emplace_back(rng.NextBounded(50),
                      static_cast<float>(rng.NextGaussian()));
      eb.emplace_back(rng.NextBounded(50),
                      static_cast<float>(rng.NextGaussian()));
    }
    const SparseVector a = Make(ea), b = Make(eb);
    EXPECT_NEAR(Dot(a, b), Dot(b, a), 1e-9);
  }
}

TEST(CosineTest, IdenticalIsOne) {
  const SparseVector a = Make({{0, 1.0f}, {3, 2.0f}});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
}

TEST(CosineTest, OrthogonalIsZero) {
  EXPECT_DOUBLE_EQ(
      CosineSimilarity(Make({{0, 1.0f}}), Make({{1, 1.0f}})), 0.0);
}

TEST(CosineTest, ZeroVectorIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity(SparseVector(), Make({{0, 1.0f}})),
                   0.0);
}

// ---- WeightVector ------------------------------------------------------

TEST(WeightVectorTest, GetBeyondSizeIsZero) {
  WeightVector w;
  EXPECT_DOUBLE_EQ(w.Get(100), 0.0);
}

TEST(WeightVectorTest, SetGrowsVector) {
  WeightVector w;
  w.Set(5, 2.0);
  EXPECT_EQ(w.dimension(), 6u);
  EXPECT_DOUBLE_EQ(w.Get(5), 2.0);
  EXPECT_DOUBLE_EQ(w.Get(3), 0.0);
}

TEST(WeightVectorTest, AddScaled) {
  WeightVector w;
  w.AddScaled(Make({{1, 2.0f}, {3, 1.0f}}), 0.5);
  EXPECT_DOUBLE_EQ(w.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(w.Get(3), 0.5);
}

TEST(WeightVectorTest, DotWithSparse) {
  WeightVector w;
  w.Set(0, 2.0);
  w.Set(4, -1.0);
  EXPECT_DOUBLE_EQ(w.Dot(Make({{0, 3.0f}, {4, 2.0f}, {9, 5.0f}})), 4.0);
}

TEST(WeightVectorTest, NonZeroCount) {
  WeightVector w;
  w.Set(0, 1.0);
  w.Set(1, 0.0);
  w.Set(2, 1e-15);
  w.Set(3, -2.0);
  EXPECT_EQ(w.NonZeroCount(), 2u);
}

TEST(WeightVectorTest, SoftThreshold) {
  WeightVector w;
  w.Set(0, 1.0);
  w.Set(1, -0.3);
  w.Set(2, 0.1);
  w.SoftThreshold(0.2);
  EXPECT_DOUBLE_EQ(w.Get(0), 0.8);
  EXPECT_NEAR(w.Get(1), -0.1, 1e-12);
  EXPECT_DOUBLE_EQ(w.Get(2), 0.0);
}

TEST(WeightVectorTest, SoftThresholdNonPositiveIsNoop) {
  WeightVector w;
  w.Set(0, 1.0);
  w.SoftThreshold(0.0);
  EXPECT_DOUBLE_EQ(w.Get(0), 1.0);
}

TEST(WeightVectorTest, CosineOfScaledCopies) {
  WeightVector a, b;
  a.Set(0, 1.0);
  a.Set(2, 2.0);
  b.Set(0, 3.0);
  b.Set(2, 6.0);
  EXPECT_NEAR(WeightVector::Cosine(a, b), 1.0, 1e-12);
}

TEST(WeightVectorTest, CosineHandlesDifferentDimensions) {
  WeightVector a, b;
  a.Set(0, 1.0);
  b.Set(0, 1.0);
  b.Set(10, 1.0);
  EXPECT_NEAR(WeightVector::Cosine(a, b), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(WeightVectorTest, CosineZeroVector) {
  WeightVector a, b;
  a.Set(0, 1.0);
  EXPECT_DOUBLE_EQ(WeightVector::Cosine(a, b), 0.0);
}

TEST(WeightVectorTest, ToSparseRoundTrip) {
  WeightVector w;
  w.Set(3, 1.5);
  w.Set(7, -2.0);
  w.Set(9, 1e-15);  // below eps: dropped
  const SparseVector sparse = w.ToSparse();
  ASSERT_EQ(sparse.size(), 2u);
  EXPECT_FLOAT_EQ(sparse.Get(3), 1.5f);
  EXPECT_FLOAT_EQ(sparse.Get(7), -2.0f);
}

TEST(WeightVectorTest, SignMassSumsSignsOverSupport) {
  WeightVector w;
  w.Set(1, 0.5);
  w.Set(4, -2.0);
  w.Set(6, 3.0);
  // Feature 2 has no weight, feature 4 is negative, feature 9 is past the
  // vector's size — only the sign of the stored weight matters.
  const SparseVector x = Make({{1, 2.0f}, {2, 5.0f}, {4, 3.0f}, {9, 1.0f}});
  EXPECT_DOUBLE_EQ(w.SignMass(x), 2.0 - 3.0);
}

TEST(WeightVectorTest, SignMassZeroWeightContributesNothing) {
  WeightVector w;
  w.Set(0, 0.0);
  const SparseVector x = Make({{0, 7.0f}});
  EXPECT_DOUBLE_EQ(w.SignMass(x), 0.0);
}

TEST(WeightVectorTest, DeltaFromListsChangedFeaturesOnly) {
  WeightVector prev, now;
  prev.Set(0, 1.0);
  prev.Set(2, -0.5);
  prev.Set(5, 2.0);
  now.Set(0, 1.0);    // unchanged: excluded
  now.Set(2, 0.0);    // zeroed: included
  now.Set(5, 2.25);   // moved: included
  now.Set(8, -1.0);   // new: included
  const WeightDelta delta = now.DeltaFrom(prev);
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta.ids[0], 2u);
  EXPECT_DOUBLE_EQ(delta.values[0], 0.5);
  EXPECT_EQ(delta.ids[1], 5u);
  EXPECT_DOUBLE_EQ(delta.values[1], 0.25);
  EXPECT_EQ(delta.ids[2], 8u);
  EXPECT_DOUBLE_EQ(delta.values[2], -1.0);
}

TEST(WeightVectorTest, DeltaDotMatchesFullDotDifference) {
  WeightVector prev, now;
  prev.Set(1, 0.75);
  prev.Set(3, -1.5);
  now = prev;
  now.Set(3, -1.0);
  now.Set(6, 0.5);
  const SparseVector x = Make({{1, 1.0f}, {3, 2.0f}, {6, 4.0f}, {7, 9.0f}});
  const WeightDelta delta = now.DeltaFrom(prev);
  EXPECT_NEAR(DeltaDot(delta, x), now.Dot(x) - prev.Dot(x), 1e-12);
}

TEST(WeightVectorTest, ForEachNonZeroSkipsZeros) {
  WeightVector w;
  w.Set(0, 1.0);
  w.Set(1, 0.0);
  w.Set(2, -2.0);
  std::vector<std::pair<uint32_t, double>> seen;
  w.ForEachNonZero([&](uint32_t id, double value) { seen.push_back({id, value}); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_DOUBLE_EQ(seen[0].second, 1.0);
  EXPECT_EQ(seen[1].first, 2u);
  EXPECT_DOUBLE_EQ(seen[1].second, -2.0);
}

}  // namespace
}  // namespace ie
