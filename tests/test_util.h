// Shared test fixtures: a lazily built, cached small world (corpus +
// trained extractors + outcomes) reused across test suites to keep the
// suite fast while still exercising real end-to-end behaviour.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "corpus/generator.h"
#include "extract/extraction_system.h"
#include "pipeline/pipeline.h"

namespace ie::test {

/// A small but realistic corpus (shared across all tests in a binary).
inline const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    GeneratorOptions options;
    options.num_documents = 3000;
    options.seed = 4242;
    return new Corpus(GenerateCorpus(options));
  }();
  return *corpus;
}

/// Trained extraction system for a relation, cached per binary.
inline const ExtractionSystem& SharedSystem(RelationId relation) {
  static auto* cache =
      new std::map<RelationId, std::unique_ptr<ExtractionSystem>>();
  auto it = cache->find(relation);
  if (it == cache->end()) {
    ExtractorTrainingOptions options;
    options.training_documents = 900;
    it = cache
             ->emplace(relation,
                       TrainExtractionSystem(
                           relation, SharedCorpus().shared_vocab(), options))
             .first;
  }
  return *it->second;
}

/// Cached extraction outcomes over the shared corpus.
inline const ExtractionOutcomes& SharedOutcomes(RelationId relation) {
  static auto* cache = new std::map<RelationId, ExtractionOutcomes>();
  auto it = cache->find(relation);
  if (it == cache->end()) {
    // threads=2 exercises the parallel Compute path (and, under TSan, the
    // thread safety of ExtractionSystem::Process) in every test binary;
    // results are identical to the serial pass.
    it = cache
             ->emplace(relation,
                       ExtractionOutcomes::Compute(SharedSystem(relation),
                                                   SharedCorpus(), 2))
             .first;
  }
  return it->second;
}

/// Featurizer bound to the shared corpus vocabulary.
inline Featurizer& SharedFeaturizer() {
  static auto* featurizer =
      new Featurizer(&const_cast<Corpus&>(SharedCorpus()).vocab());
  return *featurizer;
}

/// Word features for the shared corpus (computed once).
inline const std::vector<SparseVector>& SharedWordFeatures() {
  static const auto* features = new std::vector<SparseVector>(
      FeaturizePool(SharedCorpus(), SharedFeaturizer(), 2));
  return *features;
}

/// Search index over the shared corpus test split.
inline const InvertedIndex& SharedIndex() {
  static const auto* index = new InvertedIndex(
      BuildPoolIndex(SharedCorpus(), SharedCorpus().splits().test));
  return *index;
}

/// Assembled shared (read-only) context over the shared world.
inline ie::SharedContext MakeSharedContext(RelationId relation) {
  ie::SharedContext context;
  context.corpus = &SharedCorpus();
  context.pool = &SharedCorpus().splits().test;
  context.outcomes = &SharedOutcomes(relation);
  context.relation = &GetRelation(relation);
  context.featurizer = &SharedFeaturizer();
  context.word_features = &SharedWordFeatures();
  context.index = &SharedIndex();
  return context;
}

}  // namespace ie::test
