// Streaming corpus generation + on-disk format round-trip (DESIGN.md §13):
// the streaming generator must be byte-identical to batch GenerateCorpus,
// and write → mmap-read must reproduce every document, annotation, split
// and vocabulary term exactly.
#include "corpus/corpus_io.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"

namespace ie {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.num_documents = 300;
  options.seed = 7;
  return options;
}

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameDoc(const Document& a, const Document& b) {
  EXPECT_EQ(a.id, b.id);
  ASSERT_EQ(a.sentences.size(), b.sentences.size());
  for (size_t s = 0; s < a.sentences.size(); ++s) {
    EXPECT_EQ(a.sentences[s].tokens, b.sentences[s].tokens);
  }
}

void ExpectSameAnnotations(const DocAnnotations& a, const DocAnnotations& b) {
  ASSERT_EQ(a.mentions.size(), b.mentions.size());
  for (size_t i = 0; i < a.mentions.size(); ++i) {
    EXPECT_EQ(a.mentions[i].sentence, b.mentions[i].sentence);
    EXPECT_EQ(a.mentions[i].begin, b.mentions[i].begin);
    EXPECT_EQ(a.mentions[i].end, b.mentions[i].end);
    EXPECT_EQ(a.mentions[i].type, b.mentions[i].type);
    EXPECT_EQ(a.mentions[i].value, b.mentions[i].value);
  }
  ASSERT_EQ(a.tuples.size(), b.tuples.size());
  for (size_t i = 0; i < a.tuples.size(); ++i) {
    EXPECT_EQ(a.tuples[i].relation, b.tuples[i].relation);
    EXPECT_EQ(a.tuples[i].attr1, b.tuples[i].attr1);
    EXPECT_EQ(a.tuples[i].attr2, b.tuples[i].attr2);
    EXPECT_EQ(a.tuples[i].sentence, b.tuples[i].sentence);
  }
}

void ExpectSameSplits(const CorpusSplits& a, const CorpusSplits& b) {
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.dev, b.dev);
  EXPECT_EQ(a.test, b.test);
}

TEST(StreamingGeneratorTest, ByteIdenticalToBatchGeneration) {
  const Corpus batch = GenerateCorpus(SmallOptions());

  StreamingCorpusGenerator gen(SmallOptions());
  EXPECT_EQ(gen.num_documents(), 300u);
  Document doc;
  DocAnnotations ann;
  size_t count = 0;
  while (gen.Next(&doc, &ann)) {
    ASSERT_LT(count, batch.size());
    EXPECT_EQ(doc.id, count);
    ExpectSameDoc(batch.doc(static_cast<DocId>(count)), doc);
    ExpectSameAnnotations(batch.annotations(static_cast<DocId>(count)), ann);
    ++count;
  }
  EXPECT_EQ(count, batch.size());
  EXPECT_EQ(gen.num_generated(), count);
  ExpectSameSplits(batch.splits(), gen.MakeSplits());
  // Same vocabulary, term for term.
  ASSERT_EQ(gen.shared_vocab()->size(), batch.vocab().size());
  for (uint32_t id = 0; id < batch.vocab().size(); ++id) {
    EXPECT_EQ(gen.shared_vocab()->Term(id), batch.vocab().Term(id));
  }
}

TEST(StreamingGeneratorTest, VisitorConvenienceCoversAllDocuments) {
  size_t visits = 0;
  DocId last_id = 0;
  const StreamedCorpusInfo info =
      GenerateCorpusStreaming(SmallOptions(), [&](Document&& doc,
                                                  DocAnnotations&&) {
        EXPECT_EQ(doc.id, visits);
        last_id = doc.id;
        ++visits;
      });
  EXPECT_EQ(visits, 300u);
  EXPECT_EQ(last_id, 299u);
  EXPECT_EQ(info.splits.train.size() + info.splits.dev.size() +
                info.splits.test.size(),
            300u);
  EXPECT_GT(info.vocab->size(), 0u);
}

TEST(CorpusIoTest, WriteReadRoundTrip) {
  const std::string path = TmpPath("roundtrip.iecp");
  const auto written = WriteGeneratedCorpus(SmallOptions(), path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, 300u);

  const Corpus batch = GenerateCorpus(SmallOptions());
  auto read = ReadCorpusFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const Corpus& loaded = *read;

  ASSERT_EQ(loaded.size(), batch.size());
  for (DocId id = 0; id < batch.size(); ++id) {
    ExpectSameDoc(batch.doc(id), loaded.doc(id));
    ExpectSameAnnotations(batch.annotations(id), loaded.annotations(id));
  }
  ExpectSameSplits(batch.splits(), loaded.splits());
  ASSERT_EQ(loaded.vocab().size(), batch.vocab().size());
  for (uint32_t id = 0; id < batch.vocab().size(); ++id) {
    EXPECT_EQ(loaded.vocab().Term(id), batch.vocab().Term(id));
  }
}

TEST(CorpusIoTest, ReaderRandomAccess) {
  const std::string path = TmpPath("random_access.iecp");
  ASSERT_TRUE(WriteGeneratedCorpus(SmallOptions(), path).ok());
  const Corpus batch = GenerateCorpus(SmallOptions());

  auto reader = CorpusReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->NumDocs(), 300u);

  Document doc;
  DocAnnotations ann;
  // Arbitrary ids, out of write order; annotations optional.
  for (DocId id : {299u, 0u, 150u, 7u, 298u}) {
    ASSERT_TRUE(reader->ReadDoc(id, &doc, &ann).ok());
    ExpectSameDoc(batch.doc(id), doc);
    ExpectSameAnnotations(batch.annotations(id), ann);
    ASSERT_TRUE(reader->ReadDoc(id, &doc).ok());  // without annotations
    ExpectSameDoc(batch.doc(id), doc);
  }
  EXPECT_TRUE(reader->ReadDoc(300, &doc).IsOutOfRange());
}

TEST(CorpusIoTest, UnfinishedFileRejected) {
  const std::string path = TmpPath("unfinished.iecp");
  {
    auto writer = CorpusWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    Document doc;
    doc.id = 0;
    doc.sentences.push_back(Sentence{{1, 2, 3}});
    ASSERT_TRUE(writer->Append(doc, DocAnnotations{}).ok());
    // Dropped without Finish(): header never gets a footer offset.
  }
  EXPECT_FALSE(CorpusReader::Open(path).ok());
}

TEST(CorpusIoTest, WriterEnforcesSequentialIds) {
  const std::string path = TmpPath("idorder.iecp");
  auto writer = CorpusWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  Document doc;
  doc.id = 5;
  EXPECT_TRUE(writer->Append(doc, DocAnnotations{}).IsInvalidArgument());
  doc.id = 0;
  EXPECT_TRUE(writer->Append(doc, DocAnnotations{}).ok());
  EXPECT_TRUE(writer->Append(doc, DocAnnotations{}).IsInvalidArgument());
  EXPECT_EQ(writer->num_docs(), 1u);
}

TEST(CorpusIoTest, GarbageFileRejected) {
  const std::string path = TmpPath("garbage.iecp");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a corpus file, not even close to one....";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(CorpusReader::Open(path).ok());
}

}  // namespace
}  // namespace ie
