// Property-style parameterized sweeps over core invariants: metric
// identities under random orders, kernel positive-semidefiniteness,
// footrule metric-like behaviour, SGD boundedness, and generator density
// scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "corpus/generator.h"
#include "eval/metrics.h"
#include "extract/relation_extractor.h"
#include "learn/elastic_net_sgd.h"
#include "learn/feature_selection.h"

namespace ie {
namespace {

// ---- Metrics properties under random orders -------------------------------

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, ApOfRandomOrderApproximatesDensity) {
  Rng rng(GetParam());
  const double density = 0.05 + 0.2 * rng.NextDouble();
  std::vector<uint8_t> order;
  size_t useful = 0;
  for (int i = 0; i < 4000; ++i) {
    const bool u = rng.NextBool(density);
    useful += u;
    order.push_back(u ? 1 : 0);
  }
  if (useful == 0) GTEST_SKIP();
  // For a random permutation, AP concentrates near the prevalence.
  EXPECT_NEAR(AveragePrecision(order, useful), density, 0.08);
}

TEST_P(MetricsPropertyTest, RecallCurveIsMonotoneAndEndsAtOne) {
  Rng rng(GetParam() + 1000);
  std::vector<uint8_t> order;
  size_t useful = 0;
  for (int i = 0; i < 500; ++i) {
    const bool u = rng.NextBool(0.1);
    useful += u;
    order.push_back(u ? 1 : 0);
  }
  if (useful == 0) GTEST_SKIP();
  const auto curve = RecallCurve(order, useful);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-12);
}

TEST_P(MetricsPropertyTest, AucInvariantToUniformPrefixTruncationDenial) {
  // AUC of the reversed order equals 1 - AUC of the original.
  Rng rng(GetParam() + 2000);
  std::vector<uint8_t> order;
  for (int i = 0; i < 300; ++i) order.push_back(rng.NextBool(0.2) ? 1 : 0);
  std::vector<uint8_t> reversed(order.rbegin(), order.rend());
  EXPECT_NEAR(RocAuc(order) + RocAuc(reversed), 1.0, 1e-9);
}

TEST_P(MetricsPropertyTest, DocsToReachRecallConsistentWithRecallAt) {
  Rng rng(GetParam() + 3000);
  std::vector<uint8_t> order;
  size_t useful = 0;
  for (int i = 0; i < 400; ++i) {
    const bool u = rng.NextBool(0.15);
    useful += u;
    order.push_back(u ? 1 : 0);
  }
  if (useful == 0) GTEST_SKIP();
  for (double target : {0.2, 0.5, 0.9}) {
    const size_t docs = DocsToReachRecall(order, useful, target);
    if (docs > order.size()) continue;  // unreachable
    EXPECT_GE(RecallAt(order, useful, docs), target - 1e-9);
    if (docs > 0) {
      EXPECT_LT(RecallAt(order, useful, docs - 1), target);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- Subsequence kernel PSD-ish properties ---------------------------------

class KernelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelPropertyTest, GramMatrix2x2IsPsd) {
  Rng rng(GetParam());
  SubsequenceKernelRelationExtractor extractor;
  auto random_seq = [&]() {
    std::vector<TokenId> seq;
    const size_t len = 2 + rng.NextBounded(8);
    for (size_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<TokenId>(rng.NextBounded(12)));
    }
    return seq;
  };
  const auto a = random_seq();
  const auto b = random_seq();
  const double kaa = extractor.NormalizedKernel(a, a);
  const double kbb = extractor.NormalizedKernel(b, b);
  const double kab = extractor.NormalizedKernel(a, b);
  // Cauchy-Schwarz for a valid kernel: K(a,b)^2 <= K(a,a) K(b,b).
  EXPECT_LE(kab * kab, kaa * kbb + 1e-9);
  EXPECT_NEAR(kaa, 1.0, 1e-9);
  EXPECT_NEAR(kbb, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ---- Footrule metric-ish properties -------------------------------------

class FootrulePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FootrulePropertyTest, NonNegativeSymmetricZeroOnIdentity) {
  Rng rng(GetParam());
  auto random_list = [&](uint32_t base) {
    std::vector<WeightedFeature> list;
    const size_t n = 3 + rng.NextBounded(10);
    for (size_t i = 0; i < n; ++i) {
      list.push_back({base + static_cast<uint32_t>(rng.NextBounded(30)),
                      0.1 + rng.NextDouble()});
    }
    return list;
  };
  const auto a = random_list(0);
  const auto b = random_list(0);
  const double dab = GeneralizedFootrule(a, b);
  EXPECT_GE(dab, 0.0);
  EXPECT_NEAR(dab, GeneralizedFootrule(b, a), 1e-9);
  EXPECT_NEAR(GeneralizedFootrule(a, a), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootrulePropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25));

// ---- SGD boundedness --------------------------------------------------------

class SgdPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SgdPropertyTest, ScoresStayBoundedUnderAdversarialLabels) {
  // Randomly flipping labels must not blow the weights up: the regularizer
  // keeps scores of unit vectors within a λ-dependent envelope.
  ElasticNetSgd sgd({.lambda_all = GetParam(), .lambda_l2_share = 0.99});
  Rng rng(31);
  std::vector<SparseVector::Entry> entries;
  for (int i = 0; i < 3000; ++i) {
    entries.clear();
    for (int k = 0; k < 5; ++k) {
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(40)),
                           1.0f);
    }
    SparseVector v = SparseVector::FromUnsorted(entries);
    v.Normalize();
    sgd.Step(v, rng.NextBool(0.5) ? 1 : -1);
  }
  // Pegasos-style bound: ||w|| <= ~1/sqrt(λ2eff) up to constants.
  const double bound = 5.0 / std::sqrt(GetParam() * 0.99);
  for (uint32_t id = 0; id < 40; ++id) {
    SparseVector probe =
        SparseVector::FromUnsorted({{id, 1.0f}});
    EXPECT_LT(std::fabs(sgd.Score(probe)), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SgdPropertyTest,
                         ::testing::Values(0.01, 0.1, 0.5));

// ---- Generator density scaling --------------------------------------------

class DensityScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(DensityScaleTest, GoldDensityTracksScale) {
  GeneratorOptions options;
  options.num_documents = 2500;
  options.seed = 404;
  options.density_scale = GetParam();
  const Corpus corpus = GenerateCorpus(options);
  std::vector<DocId> all(corpus.size());
  for (DocId id = 0; id < corpus.size(); ++id) all[id] = id;
  const RelationSpec& spec = GetRelation(RelationId::kPersonCharge);
  const double density =
      static_cast<double>(corpus.CountGoldUseful(spec.id, all)) /
      static_cast<double>(corpus.size());
  const double expected = spec.paper_density * GetParam();
  EXPECT_NEAR(density, expected, expected * 0.6 + 0.004);
}

INSTANTIATE_TEST_SUITE_P(Scales, DensityScaleTest,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace ie
