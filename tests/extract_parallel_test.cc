// Speculative parallel extraction (DESIGN.md §9): unit tests for the
// threading primitives and the ExtractExecutor, plus end-to-end proofs
// that pipeline output is byte-identical at every extract_threads setting
// across rankers, detectors, access modes, and live-vs-cached extraction.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/work_queue.h"
#include "pipeline/extract_executor.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

// ---- WorkQueue -------------------------------------------------------------

TEST(WorkQueueTest, FifoOrder) {
  WorkQueue<int> queue;
  for (int i = 0; i < 5; ++i) queue.Push(i);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(WorkQueueTest, PopReturnsFalseAfterCloseAndDrain) {
  WorkQueue<int> queue;
  queue.Push(7);
  queue.Close();
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(WorkQueueTest, PushAfterCloseIsRejected) {
  WorkQueue<int> queue;
  EXPECT_TRUE(queue.Push(0));
  queue.Close();
  EXPECT_FALSE(queue.Push(1));
  EXPECT_EQ(queue.size(), 1u);  // only the pre-close item remains
  int out = -1;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(WorkQueueTest, RemoveIfDropsOnlyMatching) {
  WorkQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.Push(i);
  EXPECT_EQ(queue.RemoveIf([](int v) { return v % 2 == 0; }), 5u);
  int out = -1;
  for (int expected : {1, 3, 5, 7, 9}) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, expected);
  }
}

TEST(WorkQueueTest, ConcurrentProducersConsumersDeliverEachItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  WorkQueue<int> queue;
  std::vector<std::atomic<int>> delivered(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &delivered] {
      int item = 0;
      while (queue.Pop(&item)) delivered[item].fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  for (const auto& count : delivered) EXPECT_EQ(count.load(), 1);
}

TEST(WorkQueueTest, ConcurrentCloseReleasesBlockedPoppers) {
  // Close() racing blocked Pop() waits: every popper must wake and exit,
  // and the two pre-close items must both be delivered exactly once.
  constexpr int kRounds = 25;
  constexpr int kPoppers = 4;
  for (int round = 0; round < kRounds; ++round) {
    WorkQueue<int> queue;
    std::atomic<int> popped{0};
    std::vector<std::thread> poppers;
    for (int i = 0; i < kPoppers; ++i) {
      poppers.emplace_back([&queue, &popped] {
        int item = 0;
        while (queue.Pop(&item)) popped.fetch_add(1);
      });
    }
    queue.Push(1);
    queue.Push(2);
    queue.Close();  // races the poppers' blocking waits
    for (std::thread& t : poppers) t.join();  // must not hang
    EXPECT_EQ(popped.load(), 2);
  }
}

TEST(WorkQueueTest, ConcurrentPushVsCloseNeverLosesAcceptedItems) {
  // A Push that returns true is a delivery promise even when Close() lands
  // mid-loop: everything accepted must still be drainable afterwards.
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    WorkQueue<int> queue;
    std::atomic<int> accepted{0};
    std::thread producer([&queue, &accepted] {
      for (int i = 0; i < 1000; ++i) {
        if (queue.Push(i)) accepted.fetch_add(1);
      }
    });
    std::thread closer([&queue] { queue.Close(); });
    producer.join();
    closer.join();
    int drained = 0;
    int item = 0;
    while (queue.Pop(&item)) ++drained;
    EXPECT_EQ(drained, accepted.load());
  }
}

// ---- Latch -----------------------------------------------------------------

TEST(LatchTest, WaitReleasesAfterAllCountDowns) {
  Latch latch(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&latch] { latch.CountDown(); });
  }
  latch.Wait();  // must not deadlock
  for (std::thread& t : threads) t.join();
}

TEST(LatchTest, ZeroCountDoesNotBlock) {
  Latch latch(0);
  latch.Wait();
}

TEST(LatchTest, ExtraCountDownsAreBenign) {
  Latch latch(1);
  latch.CountDown();
  latch.CountDown();
  latch.Wait();
}

TEST(LatchTest, ReleasedLatchNeverRearms) {
  // A Latch is single-use: once the count hits zero it stays released, and
  // CountDown past zero must not re-arm it or deadlock a later Wait.
  Latch latch(2);
  latch.CountDown();
  latch.CountDown();
  latch.Wait();
  latch.CountDown();  // past zero
  latch.Wait();       // must return immediately, not block
}

TEST(LatchTest, RepeatedWaitReturnsImmediately) {
  Latch latch(1);
  latch.CountDown();
  for (int i = 0; i < 3; ++i) latch.Wait();
}

TEST(LatchTest, ConcurrentWaitersAllRelease) {
  constexpr int kRounds = 25;
  constexpr int kWaiters = 4;
  for (int round = 0; round < kRounds; ++round) {
    Latch latch(kWaiters);
    std::atomic<int> released{0};
    std::vector<std::thread> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&latch, &released] {
        latch.CountDown();  // waiters double as counters: max contention
        latch.Wait();
        released.fetch_add(1);
      });
    }
    for (std::thread& t : waiters) t.join();  // must not hang
    EXPECT_EQ(released.load(), kWaiters);
  }
}

// ---- ExtractExecutor -------------------------------------------------------

LabeledExample MakeExample(DocId doc) {
  LabeledExample example;
  example.features = SparseVector::FromUnsorted(
      {{doc, 1.0f}, {doc + 1, static_cast<float>(doc)}});
  example.label = (doc % 2 == 0) ? 1 : -1;
  return example;
}

void ExpectExample(const LabeledExample& example, DocId doc) {
  const LabeledExample expected = MakeExample(doc);
  EXPECT_EQ(example.label, expected.label);
  ASSERT_EQ(example.features.size(), expected.features.size());
  for (size_t i = 0; i < expected.features.size(); ++i) {
    EXPECT_EQ(example.features.id(i), expected.features.id(i));
    EXPECT_EQ(example.features.value(i), expected.features.value(i));
  }
}

TEST(ExtractExecutorTest, SerialModeComputesInline) {
  ExtractExecutorOptions options;
  options.threads = 1;
  ExtractExecutor executor(MakeExample, options);
  EXPECT_FALSE(executor.speculative());
  executor.Prefetch(3);  // no-op
  for (DocId doc : {3u, 1u, 2u}) ExpectExample(executor.Take(doc), doc);
  const ExtractExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.waits, 0u);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(ExtractExecutorTest, SpeculativeResultsMatchSerial) {
  ExtractExecutorOptions options;
  options.threads = 4;
  options.prefetch_window = 16;
  ExtractExecutor executor(MakeExample, options);
  EXPECT_TRUE(executor.speculative());
  for (DocId doc = 0; doc < 200; ++doc) {
    executor.Prefetch(doc);  // window caps outstanding work at 16
    ExpectExample(executor.Take(doc), doc);
  }
  const ExtractExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.hits + stats.waits + stats.misses, 200u);
}

TEST(ExtractExecutorTest, TakeWithoutPrefetchIsAMiss) {
  ExtractExecutorOptions options;
  options.threads = 2;
  ExtractExecutor executor(MakeExample, options);
  ExpectExample(executor.Take(42), 42);
  EXPECT_EQ(executor.stats().misses, 1u);
}

TEST(ExtractExecutorTest, CancelQueuedDropsPendingWork) {
  // One worker blocked on the first document keeps later prefetches queued
  // so CancelQueued has something deterministic to drop.
  Latch release(1);
  std::atomic<size_t> executed{0};
  ExtractExecutorOptions options;
  options.threads = 2;  // both workers end up blocked on gated docs
  options.prefetch_window = 8;
  ExtractExecutor executor(
      [&](DocId doc) {
        executed.fetch_add(1);
        if (doc < 2) release.Wait();
        return MakeExample(doc);
      },
      options);
  executor.Prefetch(0);
  executor.Prefetch(1);
  while (executed.load() < 2) std::this_thread::yield();  // workers gated
  for (DocId doc = 2; doc < 8; ++doc) executor.Prefetch(doc);
  EXPECT_EQ(executor.CancelQueued(), 6u);
  EXPECT_EQ(executor.stats().cancelled, 6u);
  release.CountDown();
  // Cancelled docs are recomputed inline; gated docs are awaited or ready.
  for (DocId doc = 0; doc < 8; ++doc) ExpectExample(executor.Take(doc), doc);
}

TEST(ExtractExecutorTest, PropagatesWorkFunctionExceptions) {
  ExtractExecutorOptions options;
  options.threads = 2;
  ExtractExecutor executor(
      [](DocId doc) -> LabeledExample {
        if (doc == 13) throw std::runtime_error("boom");
        return MakeExample(doc);
      },
      options);
  executor.Prefetch(13);
  executor.Prefetch(14);
  EXPECT_THROW(executor.Take(13), std::runtime_error);
  ExpectExample(executor.Take(14), 14);
}

TEST(ExtractExecutorStress, RandomizedPrefetchTakeCancel) {
  // TSan-focused stress: hammer the prefetch/take/cancel surface from the
  // consumer while workers race on the cache. run_sanitized_tests.sh
  // repeats this suite under the tsan preset.
  ExtractExecutorOptions options;
  options.threads = 8;
  options.prefetch_window = 32;
  ExtractExecutor executor(MakeExample, options);
  DocId next = 0;
  for (int round = 0; round < 50; ++round) {
    const DocId base = next;
    for (DocId doc = base; doc < base + 40; ++doc) executor.Prefetch(doc);
    for (DocId doc = base; doc < base + 20; ++doc) {
      ExpectExample(executor.Take(doc), doc);
    }
    executor.CancelQueued();
    for (DocId doc = base + 20; doc < base + 40; ++doc) {
      ExpectExample(executor.Take(doc), doc);
    }
    next = base + 40;
  }
  const ExtractExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.hits + stats.waits + stats.misses, 50u * 40u);
}

// ---- End-to-end determinism ------------------------------------------------

void ExpectSameRun(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.processing_order, b.processing_order);
  EXPECT_EQ(a.processed_useful, b.processed_useful);
  EXPECT_EQ(a.update_positions, b.update_positions);
  EXPECT_EQ(a.warmup_documents, b.warmup_documents);
  EXPECT_EQ(a.pool_size, b.pool_size);
  EXPECT_EQ(a.pool_useful, b.pool_useful);
  EXPECT_DOUBLE_EQ(a.extraction_seconds, b.extraction_seconds);
  EXPECT_EQ(a.full_rescores(), b.full_rescores());
  EXPECT_EQ(a.delta_rescores(), b.delta_rescores());
  EXPECT_EQ(a.rerank_density_fallbacks(), b.rerank_density_fallbacks());
  EXPECT_EQ(a.delta_documents_rescored(), b.delta_documents_rescored());
  EXPECT_EQ(a.peak_buffer_examples(), b.peak_buffer_examples());
  EXPECT_EQ(a.final_model_features, b.final_model_features);
  EXPECT_EQ(a.features_added_per_update, b.features_added_per_update);
  EXPECT_EQ(a.features_removed_per_update, b.features_removed_per_update);
}

PipelineConfig ParallelConfig(RankerKind ranker, UpdateKind update,
                              uint64_t seed) {
  PipelineConfig config =
      PipelineConfig::Defaults(ranker, SamplerKind::kSRS, update, seed);
  config.sample_size = 120;
  return config;
}

struct MatrixCase {
  RankerKind ranker;
  UpdateKind update;
  uint64_t seed;
};

class ExtractParallelMatrixTest
    : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ExtractParallelMatrixTest, ByteIdenticalAcrossThreadCounts) {
  const MatrixCase param = GetParam();
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      ParallelConfig(param.ranker, param.update, param.seed);
  const PipelineResult serial =
      AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_EQ(serial.speculative_hits(), 0u);
  for (size_t threads : {2u, 8u}) {
    config.extract_threads = threads;
    const PipelineResult speculative =
        AdaptiveExtractionPipeline::Run(context, config);
    ExpectSameRun(serial, speculative);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RankersAndDetectors, ExtractParallelMatrixTest,
    ::testing::Values(
        MatrixCase{RankerKind::kRSVMIE, UpdateKind::kModC, 101},
        MatrixCase{RankerKind::kRSVMIE, UpdateKind::kFeatS, 103},
        MatrixCase{RankerKind::kBAggIE, UpdateKind::kModC, 107},
        MatrixCase{RankerKind::kBAggIE, UpdateKind::kFeatS, 109},
        MatrixCase{RankerKind::kRSVMIE, UpdateKind::kModC, 113},
        MatrixCase{RankerKind::kRandom, UpdateKind::kNone, 127},
        MatrixCase{RankerKind::kPerfect, UpdateKind::kNone, 131}));

TEST(ExtractParallelTest, NarrowWindowStaysByteIdentical) {
  // prefetch_window smaller than the re-rank cadence exercises the
  // requeue-on-update path aggressively.
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      ParallelConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 137);
  const PipelineResult serial =
      AdaptiveExtractionPipeline::Run(context, config);
  config.extract_threads = 4;
  for (size_t window : {1u, 3u, 256u}) {
    config.prefetch_window = window;
    ExpectSameRun(serial, AdaptiveExtractionPipeline::Run(context, config));
  }
}

TEST(ExtractParallelTest, SearchInterfaceByteIdentical) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      ParallelConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 139);
  config.access = AccessMode::kSearchInterface;
  const PipelineResult serial =
      AdaptiveExtractionPipeline::Run(context, config);
  config.extract_threads = 8;
  ExpectSameRun(serial, AdaptiveExtractionPipeline::Run(context, config));
}

TEST(ExtractParallelTest, SpeculationActuallyEngages) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      ParallelConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 149);
  config.extract_threads = 2;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_GT(result.speculative_hits() + result.speculative_waits(), 0u);
  EXPECT_GT(result.extract_cpu_seconds, 0.0);
}

TEST(ExtractParallelTest, LiveExtractionMatchesCachedOutcomes) {
  SharedContext context = test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      ParallelConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 151);
  const PipelineResult cached =
      AdaptiveExtractionPipeline::Run(context, config);
  context.extraction_system = &test::SharedSystem(RelationId::kPersonCharge);
  const PipelineResult live =
      AdaptiveExtractionPipeline::Run(context, config);
  ExpectSameRun(cached, live);
  // And the live path is itself thread-count invariant.
  config.extract_threads = 8;
  ExpectSameRun(cached, AdaptiveExtractionPipeline::Run(context, config));
}

TEST(ExtractParallelTest, ParallelOutcomeComputeMatchesSerial) {
  const Corpus& corpus = test::SharedCorpus();
  const ExtractionSystem& system =
      test::SharedSystem(RelationId::kPersonCharge);
  const ExtractionOutcomes serial = ExtractionOutcomes::Compute(
      system, corpus);
  const ExtractionOutcomes parallel = ExtractionOutcomes::Compute(
      system, corpus, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (DocId id = 0; id < corpus.size(); ++id) {
    ASSERT_EQ(serial.useful(id), parallel.useful(id)) << "doc " << id;
    ASSERT_EQ(serial.tuples(id).size(), parallel.tuples(id).size())
        << "doc " << id;
    ASSERT_EQ(serial.AttributeValues(id), parallel.AttributeValues(id))
        << "doc " << id;
  }
}

TEST(ExtractParallelTest, ParallelFeaturizePoolMatchesSerial) {
  const Corpus& corpus = test::SharedCorpus();
  // Fresh featurizers with bigrams on: the bigram-id cache and its serial
  // warm pass must give parallel runs the exact serial intern order.
  FeaturizerOptions options;
  options.use_bigrams = true;
  Featurizer serial_featurizer(&const_cast<Corpus&>(corpus).vocab(), options);
  const std::vector<SparseVector> serial =
      FeaturizePool(corpus, serial_featurizer);
  Featurizer parallel_featurizer(&const_cast<Corpus&>(corpus).vocab(),
                                 options);
  const std::vector<SparseVector> parallel =
      FeaturizePool(corpus, parallel_featurizer, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size()) << "doc " << i;
    for (size_t j = 0; j < serial[i].size(); ++j) {
      ASSERT_EQ(serial[i].id(j), parallel[i].id(j));
      ASSERT_EQ(serial[i].value(j), parallel[i].value(j));
    }
  }
}

TEST(ExtractParallelTest, ParallelIdfMatchesSerial) {
  const Corpus& corpus = test::SharedCorpus();
  const std::vector<float> serial = ComputeIdf(corpus);
  const std::vector<float> parallel = ComputeIdf(corpus, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "token " << i;
  }
}

}  // namespace
}  // namespace ie
