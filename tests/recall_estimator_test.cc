#include "eval/recall_estimator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/diversity.h"
#include "test_util.h"

namespace ie {
namespace {

// Synthetic scored population: useful docs score ~N(1, 0.5), useless
// ~N(-1, 0.5), prevalence p.
struct ScoredPopulation {
  std::vector<double> scores;
  std::vector<bool> labels;

  ScoredPopulation(size_t n, double prevalence, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const bool useful = rng.NextBool(prevalence);
      labels.push_back(useful);
      scores.push_back((useful ? 1.0 : -1.0) + 0.5 * rng.NextGaussian());
    }
  }
};

TEST(PlattCalibratorTest, FitsSeparableScores) {
  ScoredPopulation pop(2000, 0.3, 1);
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(pop.scores, pop.labels));
  EXPECT_GT(calibrator.Probability(2.0), 0.85);
  EXPECT_LT(calibrator.Probability(-2.0), 0.15);
  EXPECT_GT(calibrator.a(), 0.0);  // higher score => more likely useful
}

TEST(PlattCalibratorTest, RejectsDegenerateLabels) {
  PlattCalibrator calibrator;
  EXPECT_FALSE(calibrator.Fit({1.0, 2.0}, {true, true}));
  EXPECT_FALSE(calibrator.Fit({}, {}));
  EXPECT_FALSE(calibrator.Fit({1.0}, {true, false}));
}

TEST(PlattCalibratorTest, CalibratedProbabilitiesMatchPrevalenceByBucket) {
  ScoredPopulation pop(4000, 0.2, 2);
  PlattCalibrator calibrator;
  ASSERT_TRUE(calibrator.Fit(pop.scores, pop.labels));
  // Mean predicted probability should approximate overall prevalence.
  double mean_p = 0.0;
  for (double s : pop.scores) mean_p += calibrator.Probability(s);
  mean_p /= static_cast<double>(pop.scores.size());
  EXPECT_NEAR(mean_p, 0.2, 0.04);
}

TEST(EstimateRecallTest, RecoversTrueRecall) {
  // Process the top-scoring half; estimate recall against ground truth.
  ScoredPopulation pop(4000, 0.15, 3);
  std::vector<size_t> order(pop.scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pop.scores[a] > pop.scores[b];
  });

  std::vector<double> processed_scores, remaining_scores;
  std::vector<bool> processed_labels;
  size_t found = 0, total_useful = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    total_useful += pop.labels[order[i]];
    if (i < order.size() / 2) {
      processed_scores.push_back(pop.scores[order[i]]);
      processed_labels.push_back(pop.labels[order[i]]);
      found += pop.labels[order[i]];
    } else {
      remaining_scores.push_back(pop.scores[order[i]]);
    }
  }
  const RecallEstimate estimate = EstimateRecall(
      processed_scores, processed_labels, remaining_scores);
  const double true_recall =
      static_cast<double>(found) / static_cast<double>(total_useful);
  EXPECT_EQ(estimate.found, found);
  EXPECT_NEAR(estimate.estimated_recall, true_recall, 0.08);
}

TEST(EstimateRecallTest, FallsBackToPrevalenceOnDegenerateLabels) {
  const RecallEstimate estimate =
      EstimateRecall({1.0, 2.0}, {true, true}, {0.0, 0.0});
  EXPECT_EQ(estimate.found, 2u);
  // Prevalence 1.0 over 2 remaining docs => ~2 estimated remaining.
  EXPECT_NEAR(estimate.estimated_remaining, 2.0, 1e-9);
  EXPECT_NEAR(estimate.estimated_recall, 0.5, 1e-9);
}

TEST(EstimateDocsToTargetRecallTest, ZeroWhenAlreadyReached) {
  ScoredPopulation pop(1000, 0.3, 4);
  // All useful docs already processed: remaining scores are all low.
  std::vector<double> remaining(500, -3.0);
  EXPECT_EQ(EstimateDocsToTargetRecall(pop.scores, pop.labels, remaining,
                                       0.5),
            0u);
}

TEST(EstimateDocsToTargetRecallTest, MonotoneInTarget) {
  ScoredPopulation processed(1000, 0.2, 5);
  ScoredPopulation remaining_pop(1000, 0.2, 6);
  const size_t d50 = EstimateDocsToTargetRecall(
      processed.scores, processed.labels, remaining_pop.scores, 0.5);
  const size_t d80 = EstimateDocsToTargetRecall(
      processed.scores, processed.labels, remaining_pop.scores, 0.8);
  const size_t d95 = EstimateDocsToTargetRecall(
      processed.scores, processed.labels, remaining_pop.scores, 0.95);
  EXPECT_LE(d50, d80);
  EXPECT_LE(d80, d95);
}

// ---- Tuple diversity ------------------------------------------------------

TEST(DiversityTest, CurveIsMonotoneAndEndsAtTotals) {
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCareer);
  const auto& pool = test::SharedCorpus().splits().test;
  const auto curve = TupleDiversityCurve(pool, outcomes, 10);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].distinct_tuples, curve[i - 1].distinct_tuples);
    EXPECT_GE(curve[i].documents_processed,
              curve[i - 1].documents_processed);
  }
  EXPECT_EQ(curve.back().documents_processed, pool.size());
  EXPECT_GT(curve.back().distinct_tuples, 0u);
  EXPECT_GE(curve.back().distinct_tuples,
            curve.back().distinct_attr1_values);
}

TEST(DiversityTest, UsefulFirstOrderHasHigherEarlyDiversity) {
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCareer);
  const auto& pool = test::SharedCorpus().splits().test;
  std::vector<DocId> useful_first, useless_first;
  for (DocId id : pool) {
    (outcomes.useful(id) ? useful_first : useless_first).push_back(id);
  }
  std::vector<DocId> good = useful_first;
  good.insert(good.end(), useless_first.begin(), useless_first.end());
  std::vector<DocId> bad = useless_first;
  bad.insert(bad.end(), useful_first.begin(), useful_first.end());
  EXPECT_GT(EarlyDiversityIndex(good, outcomes),
            EarlyDiversityIndex(bad, outcomes));
}

TEST(DiversityTest, EmptyOrderGivesEmptyCurve) {
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCareer);
  EXPECT_TRUE(TupleDiversityCurve({}, outcomes).empty());
  EXPECT_DOUBLE_EQ(EarlyDiversityIndex({}, outcomes), 0.0);
}

}  // namespace
}  // namespace ie
