// Arena bump-allocator tests (common/arena.h): alignment, chunk growth,
// Reset() reuse without freeing, and the featurizer-style
// allocate/fill/reset cycle the hot path depends on.
#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"

namespace ie {
namespace {

bool IsAligned(const void* p, size_t align) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto* a = arena.AllocateArray<uint8_t>(3);
  auto* b = arena.AllocateArray<uint64_t>(4);
  auto* c = arena.AllocateArray<float>(5);
  EXPECT_TRUE(IsAligned(b, alignof(uint64_t)));
  EXPECT_TRUE(IsAligned(c, alignof(float)));
  // Fill every region, then verify none clobbered another.
  std::memset(a, 0xaa, 3);
  for (int i = 0; i < 4; ++i) b[i] = 0x0101010101010101ULL * (i + 1);
  for (int i = 0; i < 5; ++i) c[i] = static_cast<float>(i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a[i], 0xaa);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b[i], 0x0101010101010101ULL * (i + 1));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(c[i], static_cast<float>(i));
}

TEST(ArenaTest, GrowsBeyondFirstChunk) {
  Arena arena(256);  // small first chunk to force growth
  std::vector<uint32_t*> blocks;
  for (int i = 0; i < 64; ++i) {
    uint32_t* p = arena.AllocateArray<uint32_t>(32);  // 128 bytes each
    for (int j = 0; j < 32; ++j) p[j] = static_cast<uint32_t>(i * 100 + j);
    blocks.push_back(p);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.TotalCapacity(), 64u * 128u);
  // Growth must not have moved or corrupted earlier blocks.
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(blocks[i][j], static_cast<uint32_t>(i * 100 + j));
    }
  }
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  uint8_t* big = arena.AllocateArray<uint8_t>(100000);
  std::memset(big, 0x5a, 100000);
  EXPECT_EQ(big[0], 0x5a);
  EXPECT_EQ(big[99999], 0x5a);
  EXPECT_GE(arena.TotalCapacity(), 100000u);
}

TEST(ArenaTest, ResetRecyclesWithoutGrowing) {
  Arena arena(256);
  // Warm to steady state.
  for (int doc = 0; doc < 4; ++doc) {
    arena.Reset();
    arena.AllocateArray<uint64_t>(200);
    arena.AllocateArray<float>(300);
  }
  const size_t warm_capacity = arena.TotalCapacity();
  const size_t warm_chunks = arena.chunk_count();
  // The same per-"document" workload must never allocate again.
  for (int doc = 0; doc < 100; ++doc) {
    arena.Reset();
    uint64_t* keys = arena.AllocateArray<uint64_t>(200);
    float* counts = arena.AllocateArray<float>(300);
    keys[0] = doc;
    counts[0] = static_cast<float>(doc);
    EXPECT_EQ(keys[0], static_cast<uint64_t>(doc));
  }
  EXPECT_EQ(arena.TotalCapacity(), warm_capacity);
  EXPECT_EQ(arena.chunk_count(), warm_chunks);
}

TEST(ArenaTest, ResetOnEmptyArenaIsSafe) {
  Arena arena;
  arena.Reset();
  EXPECT_EQ(arena.chunk_count(), 0u);
  uint32_t* p = arena.AllocateArray<uint32_t>(8);
  p[7] = 42;
  EXPECT_EQ(p[7], 42u);
}

TEST(ArenaTest, ResetReusesChunksInOrder) {
  Arena arena(128);
  arena.AllocateArray<uint8_t>(100);
  arena.AllocateArray<uint8_t>(200);  // second chunk
  const size_t chunks = arena.chunk_count();
  ASSERT_GE(chunks, 2u);
  arena.Reset();
  // Same allocation sequence walks the same chunks — no new ones.
  arena.AllocateArray<uint8_t>(100);
  arena.AllocateArray<uint8_t>(200);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

}  // namespace
}  // namespace ie
