// Bit-exactness tests for the SoA sparse kernels (text/sparse_kernels.h):
// every kernel must be bitwise identical to a naive scalar reference, since
// the golden-hash determinism matrix pins scores derived from them. The
// references here deliberately mirror the pre-SoA implementations: per-entry
// bounds checks, branchy "skip zero weight" sign mass, no unrolling.
#include "text/sparse_kernels.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "text/sparse_vector.h"

namespace ie {
namespace {

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

// ---- scalar references (the old AoS per-entry code) ----

double RefDot(const double* w, size_t dim, const uint32_t* ids,
              const float* vals, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] < dim) s += w[ids[i]] * static_cast<double>(vals[i]);
  }
  return s;
}

double RefSignMass(const double* w, size_t dim, const uint32_t* ids,
                   const float* vals, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= dim) continue;
    const double weight = w[ids[i]];
    if (weight > 0.0) {
      s += static_cast<double>(vals[i]);
    } else if (weight < 0.0) {
      s -= static_cast<double>(vals[i]);
    }
  }
  return s;
}

void RefAxpy(double* w, double factor, const uint32_t* ids, const float* vals,
             size_t n) {
  for (size_t i = 0; i < n; ++i) {
    w[ids[i]] += factor * static_cast<double>(vals[i]);
  }
}

// Random sorted unique ids in [0, id_bound) with values that include
// negatives, exact zeros, and subnormal-scale magnitudes.
struct RandomSparse {
  std::vector<uint32_t> ids;
  std::vector<float> vals;
};

RandomSparse MakeSparse(Rng& rng, size_t n, uint32_t id_bound) {
  RandomSparse s;
  uint32_t next = 0;
  for (size_t i = 0; i < n && next < id_bound; ++i) {
    next += static_cast<uint32_t>(rng.NextBounded(id_bound / (n + 1) + 2));
    if (next >= id_bound) break;
    s.ids.push_back(next);
    float v = static_cast<float>(rng.NextDouble(-2.0, 2.0));
    if (rng.NextBool(0.05)) v = 0.0f;
    s.vals.push_back(v);
    ++next;
  }
  return s;
}

std::vector<double> MakeWeights(Rng& rng, size_t dim) {
  std::vector<double> w(dim);
  for (auto& x : w) {
    x = rng.NextDouble(-1.0, 1.0);
    if (rng.NextBool(0.2)) x = 0.0;   // exercise the sign(0) path
    if (rng.NextBool(0.02)) x = -0.0; // and the -0.0 weight path
  }
  return w;
}

TEST(SparseKernelTest, BoundedPrefixMatchesPerEntryCheck) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = MakeSparse(rng, 1 + rng.NextBounded(64), 500);
    const size_t dim = rng.NextBounded(600);
    size_t expected = 0;
    for (size_t i = 0; i < s.ids.size(); ++i) {
      if (s.ids[i] < dim) ++expected;
    }
    // Sorted ids: in-range entries are exactly a prefix.
    EXPECT_EQ(kernels::BoundedPrefix(s.ids.data(), s.ids.size(), dim),
              expected);
  }
  EXPECT_EQ(kernels::BoundedPrefix(nullptr, 0, 10), 0u);
}

TEST(SparseKernelTest, GatherDotBitParityRandomized) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    // Lengths cover empty, single, and unaligned (n % 4 != 0) shapes.
    const size_t n = rng.NextBounded(67);
    const auto s = MakeSparse(rng, n, 1000);
    const size_t dim = 1 + rng.NextBounded(1200);  // some ids beyond dim
    const auto w = MakeWeights(rng, dim);
    const double got =
        kernels::GatherDot(w.data(), dim, s.ids.data(), s.vals.data(),
                           s.ids.size());
    const double want =
        RefDot(w.data(), dim, s.ids.data(), s.vals.data(), s.ids.size());
    EXPECT_EQ(Bits(got), Bits(want)) << "trial " << trial;
  }
}

TEST(SparseKernelTest, GatherSignMassBitParityRandomized) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBounded(67);
    const auto s = MakeSparse(rng, n, 1000);
    const size_t dim = 1 + rng.NextBounded(1200);
    const auto w = MakeWeights(rng, dim);
    const double got = kernels::GatherSignMass(w.data(), dim, s.ids.data(),
                                               s.vals.data(), s.ids.size());
    const double want = RefSignMass(w.data(), dim, s.ids.data(),
                                    s.vals.data(), s.ids.size());
    EXPECT_EQ(Bits(got), Bits(want)) << "trial " << trial;
  }
}

TEST(SparseKernelTest, FusedKernelMatchesStandaloneKernelsBitwise) {
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBounded(67);
    const auto s = MakeSparse(rng, n, 1000);
    const size_t dim = 1 + rng.NextBounded(1200);
    const auto w = MakeWeights(rng, dim);
    double dot = -1.0;
    double sign_mass = -1.0;
    kernels::GatherDotAndSignMass(w.data(), dim, s.ids.data(), s.vals.data(),
                                  s.ids.size(), &dot, &sign_mass);
    EXPECT_EQ(Bits(dot), Bits(kernels::GatherDot(w.data(), dim, s.ids.data(),
                                                 s.vals.data(),
                                                 s.ids.size())));
    EXPECT_EQ(Bits(sign_mass),
              Bits(kernels::GatherSignMass(w.data(), dim, s.ids.data(),
                                           s.vals.data(), s.ids.size())));
  }
}

TEST(SparseKernelTest, AxpyBitParityRandomized) {
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = rng.NextBounded(67);
    const auto s = MakeSparse(rng, n, 800);
    const auto base = MakeWeights(rng, 800);
    const double factor = rng.NextDouble(-3.0, 3.0);
    auto got = base;
    auto want = base;
    kernels::Axpy(got.data(), factor, s.ids.data(), s.vals.data(),
                  s.ids.size());
    RefAxpy(want.data(), factor, s.ids.data(), s.vals.data(), s.ids.size());
    for (size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(Bits(got[i]), Bits(want[i])) << "trial " << trial << " i=" << i;
    }
  }
}

TEST(SparseKernelTest, SparseSparseDotBitParityRandomized) {
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = MakeSparse(rng, rng.NextBounded(67), 400);
    const auto b = MakeSparse(rng, rng.NextBounded(67), 400);
    // Reference: hash-free quadratic match in a's order (ids unique &
    // sorted, so match order equals ascending id order — same as the merge).
    double want = 0.0;
    for (size_t i = 0; i < a.ids.size(); ++i) {
      for (size_t j = 0; j < b.ids.size(); ++j) {
        if (a.ids[i] == b.ids[j]) {
          want += static_cast<double>(a.vals[i]) *
                  static_cast<double>(b.vals[j]);
        }
      }
    }
    const double got =
        kernels::SparseSparseDot(a.ids.data(), a.vals.data(), a.ids.size(),
                                 b.ids.data(), b.vals.data(), b.ids.size());
    EXPECT_EQ(Bits(got), Bits(want)) << "trial " << trial;
  }
}

TEST(SparseKernelTest, SparseDeltaDotBitParityRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const auto x = MakeSparse(rng, rng.NextBounded(67), 400);
    const auto d = MakeSparse(rng, rng.NextBounded(67), 400);
    std::vector<double> d_vals(d.vals.begin(), d.vals.end());
    for (auto& v : d_vals) v *= 1.7;  // give the delta non-float doubles
    double want = 0.0;
    for (size_t i = 0; i < d.ids.size(); ++i) {
      for (size_t j = 0; j < x.ids.size(); ++j) {
        if (d.ids[i] == x.ids[j]) {
          want += d_vals[i] * static_cast<double>(x.vals[j]);
        }
      }
    }
    const double got =
        kernels::SparseDeltaDot(d.ids.data(), d_vals.data(), d.ids.size(),
                                x.ids.data(), x.vals.data(), x.ids.size());
    EXPECT_EQ(Bits(got), Bits(want)) << "trial " << trial;
  }
}

TEST(SparseKernelTest, EdgeShapesEmptySingleUnaligned) {
  const std::vector<double> w = {0.5, -1.0, 0.0, 2.0, -0.0};
  // Empty.
  EXPECT_EQ(kernels::GatherDot(w.data(), w.size(), nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(kernels::GatherSignMass(w.data(), w.size(), nullptr, nullptr, 0),
            0.0);
  // Single entry.
  const uint32_t one_id[] = {1};
  const float one_val[] = {3.0f};
  EXPECT_EQ(kernels::GatherDot(w.data(), w.size(), one_id, one_val, 1), -3.0);
  EXPECT_EQ(kernels::GatherSignMass(w.data(), w.size(), one_id, one_val, 1),
            -3.0);
  // Unaligned lengths n = 1..7 against the reference.
  const uint32_t ids[] = {0, 1, 2, 3, 4, 5, 6};
  const float vals[] = {1.f, 2.f, 3.f, 4.f, 5.f, 6.f, 7.f};
  for (size_t n = 1; n <= 7; ++n) {
    EXPECT_EQ(Bits(kernels::GatherDot(w.data(), w.size(), ids, vals, n)),
              Bits(RefDot(w.data(), w.size(), ids, vals, n)))
        << n;
    EXPECT_EQ(Bits(kernels::GatherSignMass(w.data(), w.size(), ids, vals, n)),
              Bits(RefSignMass(w.data(), w.size(), ids, vals, n)))
        << n;
  }
}

TEST(SparseKernelTest, SignOfNegativeZeroWeightContributesNothing) {
  // A -0.0 weight must behave exactly like +0.0 under the branchy
  // reference (skip), i.e. contribute ±0.0 that cannot flip the
  // accumulator's sign bit.
  const std::vector<double> w = {-0.0, 1.0};
  const uint32_t ids[] = {0, 1};
  const float vals[] = {5.0f, 2.0f};
  const double got = kernels::GatherSignMass(w.data(), w.size(), ids, vals, 2);
  EXPECT_EQ(Bits(got), Bits(2.0));
}

// End-to-end through SparseVector/WeightVector (the production entry
// points) on randomized data — guards the wiring, not just the kernels.
TEST(SparseKernelTest, WeightVectorRoutesThroughKernelsConsistently) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = MakeSparse(rng, 1 + rng.NextBounded(40), 300);
    std::vector<SparseVector::Entry> entries;
    for (size_t i = 0; i < s.ids.size(); ++i) {
      entries.push_back({s.ids[i], s.vals[i]});
    }
    const SparseVector x = SparseVector::FromUnsorted(std::move(entries));
    WeightVector weights;
    const auto delta_src = MakeSparse(rng, 1 + rng.NextBounded(40), 300);
    const SparseVector g = [&] {
      std::vector<SparseVector::Entry> e;
      for (size_t i = 0; i < delta_src.ids.size(); ++i) {
        e.push_back({delta_src.ids[i], delta_src.vals[i]});
      }
      return SparseVector::FromUnsorted(std::move(e));
    }();
    weights.AddScaled(g, 0.25);
    const double dot = weights.Dot(x);
    double want = 0.0;
    for (const auto& [id, value] : x) {
      want += weights.Get(id) * static_cast<double>(value);
    }
    EXPECT_EQ(Bits(dot), Bits(want)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ie
