#include "sampling/sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "sampling/cqs_learning.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace ie {
namespace {

std::vector<DocId> Pool(size_t n) {
  std::vector<DocId> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = static_cast<DocId>(i);
  return pool;
}

// ---- SRS --------------------------------------------------------------

TEST(SrsSamplerTest, SamplesRequestedCountDistinct) {
  SrsSampler sampler;
  Rng rng(1);
  const auto sample = sampler.Sample(Pool(100), 30, &rng);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<DocId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
}

TEST(SrsSamplerTest, CapsAtPoolSize) {
  SrsSampler sampler;
  Rng rng(1);
  EXPECT_EQ(sampler.Sample(Pool(10), 50, &rng).size(), 10u);
}

TEST(SrsSamplerTest, SamplesFromPoolValues) {
  SrsSampler sampler;
  Rng rng(1);
  std::vector<DocId> pool = {7, 13, 21, 42};
  for (DocId id : sampler.Sample(pool, 4, &rng)) {
    EXPECT_TRUE(id == 7 || id == 13 || id == 21 || id == 42);
  }
}

TEST(SrsSamplerTest, DeterministicGivenRngState) {
  SrsSampler sampler;
  Rng a(9), b(9);
  EXPECT_EQ(sampler.Sample(Pool(50), 10, &a),
            sampler.Sample(Pool(50), 10, &b));
}

// ---- CQS --------------------------------------------------------------

class CqsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Docs 0-19 about courts, 20-59 about weather.
    for (DocId id = 0; id < 60; ++id) {
      const std::string text = id < 20
                                   ? "courtroom trial verdict jury."
                                   : "sunny weather breeze calm skies.";
      ASSERT_TRUE(index_.Add(TextToDocument(id, text, vocab_)).ok());
    }
  }
  Vocabulary vocab_;
  InvertedIndex index_;
};

TEST_F(CqsTest, PrefersQueryMatchedDocuments) {
  CqsSampler sampler({"courtroom", "jury"}, &index_, &vocab_,
                     /*batch_per_query=*/5);
  Rng rng(2);
  const auto sample = sampler.Sample(Pool(60), 15, &rng);
  ASSERT_EQ(sample.size(), 15u);
  // All 15 should come from the 20 court docs (queries can satisfy it).
  for (DocId id : sample) EXPECT_LT(id, 20u);
}

TEST_F(CqsTest, FallsBackToRandomWhenQueriesExhausted) {
  CqsSampler sampler({"courtroom"}, &index_, &vocab_, 5);
  Rng rng(3);
  const auto sample = sampler.Sample(Pool(60), 40, &rng);
  EXPECT_EQ(sample.size(), 40u);
  const std::set<DocId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  size_t beyond = 0;
  for (DocId id : sample) beyond += id >= 20;
  EXPECT_GT(beyond, 0u);  // random fill used
}

TEST_F(CqsTest, RespectsPoolMembership) {
  CqsSampler sampler({"courtroom"}, &index_, &vocab_, 5);
  Rng rng(4);
  // Pool excludes the first 10 court docs.
  std::vector<DocId> pool;
  for (DocId id = 10; id < 60; ++id) pool.push_back(id);
  for (DocId id : sampler.Sample(pool, 20, &rng)) EXPECT_GE(id, 10u);
}

TEST_F(CqsTest, UnknownQueryTermsHandled) {
  CqsSampler sampler({"nonexistentzz"}, &index_, &vocab_, 5);
  Rng rng(5);
  EXPECT_EQ(sampler.Sample(Pool(60), 10, &rng).size(), 10u);
}

TEST_F(CqsTest, NoDuplicatesAcrossQueries) {
  // Both queries retrieve the same docs; the sample must stay distinct.
  CqsSampler sampler({"courtroom", "trial", "verdict"}, &index_, &vocab_,
                     10);
  Rng rng(6);
  const auto sample = sampler.Sample(Pool(60), 20, &rng);
  const std::set<DocId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

// ---- CQS query-list learning ---------------------------------------------

TEST(CqsLearningTest, LearnsListsFromAuxCorpus) {
  const Corpus& corpus = test::SharedCorpus();
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCharge);
  CqsLearningOptions options;
  options.num_lists = 3;
  options.terms_per_list = 10;
  const auto lists = LearnCqsQueryLists(corpus, outcomes,
                                        test::SharedFeaturizer(), options);
  ASSERT_EQ(lists.size(), 3u);
  for (const auto& list : lists) {
    EXPECT_FALSE(list.empty());
    EXPECT_LE(list.size(), 10u);
    for (const std::string& term : list) {
      EXPECT_FALSE(term.empty());
      EXPECT_EQ(term.find(':'), std::string::npos);
    }
  }
  // Lists learned from different shuffles should not all be identical.
  EXPECT_FALSE(lists[0] == lists[1] && lists[1] == lists[2]);
}

}  // namespace
}  // namespace ie
