// Violation: an ARCH waiver WITHOUT the mandatory reason. An empty
// parenthesis is not a justification; the waiver must be rejected and
// const-escape must still fire.
int Bump(const int* counter) {
  // ARCH: const-escape ()
  ++*const_cast<int*>(counter);
  return *counter;
}
