// Violation: a const_cast stripping the const contract readers rely on.
// No waiver, no NOLINT — must trip const-escape.
int Bump(const int* counter) {
  ++*const_cast<int*>(counter);
  return *counter;
}
