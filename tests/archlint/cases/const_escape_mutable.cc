// Violation: an undocumented `mutable` member — const objects of this
// type are silently writable, which breaks the shared-state immutability
// story. Must trip const-escape.
struct Cache {
  mutable long hits = 0;

  long Hits() const { return ++hits; }
};
