// Control: a well-layered module file with a deep-const shared type.
// Attributed to `learn`, it includes only layers below itself and marks
// a type IE_SHARED_IMMUTABLE whose members satisfy the contract. Must
// lint clean, proving the architecture rules don't over-fire on
// conforming code.
// archlint: module=learn
#include "common/arch.h"
#include "common/status.h"

struct Model {
  double weight = 0.0;
};

struct IE_SHARED_IMMUTABLE SharedView {
  const Model* model = nullptr;
  const double* bias = nullptr;

  double BiasOrZero() const { return bias != nullptr ? *bias : 0.0; }
};
