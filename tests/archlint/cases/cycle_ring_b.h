// Support header for cycle_ring.cc (not a case itself).
#pragma once
#include "cycle_ring_c.h"

inline constexpr int kRingB = 2;
