// Violation: a three-header include ring (a → b → c → a), reached
// transitively from this TU. Longer cycles must collapse into a single
// finding naming every member, anchored deterministically at the
// lexicographically first one.
#include "cycle_ring_a.h"

int Use() { return kRingA + kRingB + kRingC; }
