// Control-flavoured violation pair: a mutable sync-facade primitive is
// the sanctioned synchronized-interior handle and must NOT fire, but the
// mutable payload next to it still needs its own waiver and MUST fire.
// Exactly one const-escape finding (the payload line).
namespace ie {
class SharedMutex {};
}  // namespace ie

struct LazyTable {
  mutable ie::SharedMutex mu;
  mutable long table = 0;
};
