// Violation: a two-header include cycle. The TU itself is innocent — it
// includes one header of a mutually-including pair (cycle_pair_a.h ↔
// cycle_pair_b.h); the graph analysis must chase the transitive closure
// and report the cycle even though neither header was passed explicitly.
#include "cycle_pair_a.h"

int Use() { return kPairA + kPairB; }
