// Violation: an IE_SHARED_IMMUTABLE-marked type with a non-const member
// function. Even with all-const members, a mutating entry point breaks
// the read-only contract sessions rely on.
#include "common/arch.h"

struct IE_SHARED_IMMUTABLE SharedView {
  const int* table = nullptr;

  void Rebind(const int* next) { table = next; }
};
