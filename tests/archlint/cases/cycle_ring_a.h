// Support header for cycle_ring.cc (not a case itself).
#pragma once
#include "cycle_ring_b.h"

inline constexpr int kRingA = 1;
