// Violation: a text-layer file reaching up past its own layer into
// corpus. The DAG is common → text → corpus → ...; text must not know
// about the corpus structures built on top of it.
// archlint: module=text
#include "corpus/corpus.h"

int Noop() { return 0; }
