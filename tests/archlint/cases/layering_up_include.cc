// Violation: a ranking-layer file reaching UP into the pipeline layer.
// The declared DAG places ranking below pipeline; the dependency must be
// inverted (pipeline includes ranking), not the other way around.
// archlint: module=ranking
#include "pipeline/rerank_engine.h"

int Noop() { return 0; }
