// Control: per-site NOLINT escapes naming the exact architecture rule
// they silence. Each escape is scoped to one line and one rule id; this
// file must lint clean, proving targeted suppression works for the
// architecture rules without blanket opt-outs.
// archlint: module=ranking
#include "common/status.h"
#include "pipeline/result.h"  // NOLINT(ie-layering-violation)

int Strip(const int* p) {
  return *const_cast<int*>(p);  // NOLINT(ie-const-escape)
}
