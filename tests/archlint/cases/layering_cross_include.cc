// Violation: a learn-layer file including a sibling mid-layer module it
// has no declared edge to. extract → learn is a declared intra-layer
// edge; the reverse direction is not, so learn including extract is a
// layering violation even though both sit in the same layer.
// archlint: module=learn
#include "extract/extraction_system.h"

int Noop() { return 0; }
