// Violation: an IE_SHARED_IMMUTABLE-marked type with a non-const data
// member. Shared context must be deeply const — a plain `Model*` member
// would let any session mutate state every other session reads.
#include "common/arch.h"

struct Model {
  double weight = 0.0;
};

struct IE_SHARED_IMMUTABLE SharedView {
  const Model* model = nullptr;
  Model* scratch = nullptr;
};
