// Control: architecture waivers carrying the mandatory reason. The
// layering waiver covers an up-include, the const-escape waiver a
// documented synchronized interior; both reasons wrap across comment
// lines, which the waiver scanner must tolerate. Must lint clean.
// archlint: module=eval
#include "common/status.h"
// ARCH: layering (corpus control: consuming the pipeline's passive
// output record only — mirrors eval/experiment.h, no behavioral
// dependency on the layer above)
#include "pipeline/result.h"

struct Accumulator {
  // ARCH: const-escape (corpus control: cache filled under the owner's
  // lock; readers observe a stable value)
  mutable long cached_total = -1;
};
