// Support header for cycle_pair.cc (not a case itself): the other half
// of the deliberate two-header include cycle.
#pragma once
#include "cycle_pair_a.h"

inline constexpr int kPairB = 2;
