// Support header for cycle_ring.cc (not a case itself).
#pragma once
#include "cycle_ring_a.h"

inline constexpr int kRingC = 3;
