// Support header for cycle_pair.cc (not a case itself): one half of a
// deliberate two-header include cycle.
#pragma once
#include "cycle_pair_b.h"

inline constexpr int kPairA = 1;
