#!/usr/bin/env python3
"""Ctest driver for one detlint violation-corpus case.

Usage: run_case.py <lint.py> <case.cc> <expected-rule-id|CLEAN>

Runs the linter on exactly one corpus file (with --treat-as-src, since the
corpus lives under tests/) and checks the outcome strictly:

  * expected rule id: the case must produce at least one finding, and
    EVERY finding must carry that id. A case that trips a different rule —
    even alongside the intended one — fails: each corpus file must fail
    for exactly the reason it documents, or it silently stops guarding
    that rule.
  * CLEAN: the linter must exit 0 with zero findings.

Exit status 0 iff the case behaves as declared.
"""

import json
import subprocess
import sys


def fail(msg, proc=None):
    print(f"run_case.py: FAIL: {msg}", file=sys.stderr)
    if proc is not None:
        print(f"--- lint stdout ---\n{proc.stdout}", file=sys.stderr)
        print(f"--- lint stderr ---\n{proc.stderr}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 4:
        return fail(f"usage: {argv[0]} <lint.py> <case.cc> <rule-id|CLEAN>")
    lint_py, case, expected = argv[1:4]
    proc = subprocess.run(
        [sys.executable, lint_py, "--format=json", "--treat-as-src", case],
        capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        return fail(f"linter errored (exit {proc.returncode})", proc)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        return fail(f"--format=json output is not JSON: {err}", proc)
    rules = [f["rule"] for f in doc.get("findings", ())]

    if expected == "CLEAN":
        if proc.returncode != 0 or rules:
            return fail(f"control case expected clean, got findings "
                        f"{rules} (exit {proc.returncode})", proc)
        print(f"run_case.py: OK ({case}: clean as declared)")
        return 0

    if proc.returncode != 1 or not rules:
        return fail(f"case did not trip any rule (expected "
                    f"'{expected}', exit {proc.returncode})", proc)
    wrong = sorted({r for r in rules if r != expected})
    if wrong:
        return fail(f"case tripped wrong rule(s) {wrong} "
                    f"(expected only '{expected}'; all findings: {rules})",
                    proc)
    print(f"run_case.py: OK ({case}: tripped '{expected}' "
          f"x{len(rules)} as declared)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
