// Violation: std::hash over a pointer type hashes the address, which
// differs run to run — any structure seeded from it inherits the
// nondeterminism.
// Expected: pointer-key
#include <cstddef>
#include <functional>

struct Node {
  int id;
};

std::size_t Fingerprint(const Node* node) {
  return std::hash<const Node*>{}(node);
}
