// Control: an unordered-container loop carrying a justified waiver —
// the reason is present (and wraps across comment lines, which the rule
// must tolerate). Must lint clean.
#include <unordered_map>

std::unordered_map<int, long> tally;

long Count() {
  long total = 0;
  // DETERMINISM: order-insensitive (integer addition commutes exactly; the
  // total is independent of visit order)
  for (const auto& [key, value] : tally) {
    total += value;
  }
  return total;
}
