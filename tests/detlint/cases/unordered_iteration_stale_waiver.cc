// Violation: the waiver comment is present but carries no reason. The
// reason is mandatory — an empty waiver documents nothing and rots into
// a blanket suppression, so the rule must keep firing.
// Expected: unordered-iteration
#include <unordered_map>

std::unordered_map<int, double> counts;

double Sum() {
  double total = 0.0;
  // DETERMINISM: order-insensitive ()
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}
