// Violation: range-for over a std::unordered_map without the ordered
// facade or a waiver. Iteration order is a hash artifact — anything
// order-dependent built from this loop differs across stdlib
// implementations and hash seeds.
// Expected: unordered-iteration
#include <unordered_map>

std::unordered_map<int, double> counts;

double Sum() {
  double total = 0.0;
  for (const auto& [key, value] : counts) {
    total += value;  // accumulation order follows bucket order
  }
  return total;
}
