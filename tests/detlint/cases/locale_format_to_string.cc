// Violation: std::to_string(double) in an export path. It honors the
// global C locale (decimal comma under e.g. de_DE) and truncates to six
// fixed digits, so exported values neither round-trip nor stay
// byte-stable across environments.
// Expected: locale-format
// detlint: export-path
#include <string>

std::string ExportValue(double value) {
  return "{\"value\": " + std::to_string(value) + "}";
}
