// Violation: bare std::mutex outside src/common/sync.h. Raw primitives
// bypass the capability-annotated wrappers, so -Wthread-safety cannot
// see the lock discipline (DESIGN.md §11).
// Expected: raw-mutex
#include <mutex>

std::mutex mu;
int counter = 0;

void Bump() {
  std::lock_guard<std::mutex> lock(mu);
  ++counter;
}
