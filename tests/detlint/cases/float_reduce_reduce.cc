// Violation: std::reduce over doubles in a file that uses the parallel
// layer. std::reduce explicitly permits arbitrary association/commuting,
// so a floating result is unspecified by construction.
// Expected: float-reduce
#include <numeric>
#include <vector>

#include "common/parallel.h"

double Total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), double{0});
}
