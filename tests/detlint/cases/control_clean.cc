// Control: the sanctioned way to do everything the violation cases do
// wrong — ordered facade for iteration, FixedOrderSum for the floating
// reduction, FormatJsonNumber in the export path, stable integer keys.
// Must lint clean with zero waivers or suppressions.
// detlint: export-path
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered.h"
#include "common/parallel.h"
#include "common/string_util.h"

std::unordered_map<int, double> counts;

double Sum() {
  double total = 0.0;
  ie::ForEachSorted(counts, [&](int /*key*/, double value) {
    total += value;
  });
  return total;
}

double Total(const std::vector<double>& xs) {
  return ie::FixedOrderSum(xs.begin(), xs.end(), 0.0);
}

std::string ExportValue(double value) {
  std::string out = "{\"value\": ";
  ie::AppendJsonNumber(&out, value);
  out += "}";
  return out;
}
