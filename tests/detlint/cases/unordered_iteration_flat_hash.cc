// Violation: slot-order visitation of an ie::FlatHashMap via .ForEach()
// without an order-insensitivity waiver — open-addressing slot order is
// as nondeterministic as unordered_map bucket order (it depends on the
// hash mix, capacity, and insertion history).
// Expected: unordered-iteration
#include <cstdint>
#include <vector>

#include "common/flat_hash.h"

ie::FlatHashMap<uint32_t, float> counts;

std::vector<uint32_t> Keys() {
  std::vector<uint32_t> out;
  counts.ForEach([&out](uint32_t key, float value) {
    (void)value;
    out.push_back(key);  // emitted in slot order
  });
  return out;
}
