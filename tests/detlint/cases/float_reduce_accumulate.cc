// Violation: std::accumulate over a floating accumulator in a file that
// uses the parallel layer. Float addition is non-associative; if this
// reduction is ever moved onto the parallel scaffolding the association
// order — and the result bits — change with the thread count.
// Expected: float-reduce
#include <numeric>
#include <vector>

#include "common/parallel.h"

double Total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
