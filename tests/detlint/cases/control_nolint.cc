// Control: a per-site NOLINT escape naming the exact rule it silences.
// The escape is scoped to one line and one rule id; this file must lint
// clean, proving targeted suppression works without blanket opt-outs.
#include <unordered_map>

struct Interned {
  int id;
};

// Interning table keyed by the singleton's address; ids are assigned from
// a counter, never from the address itself.
std::unordered_map<const Interned*, int> ids;  // NOLINT(ie-pointer-key)

int IdOf(const Interned* object) {
  auto it = ids.find(object);
  return it == ids.end() ? -1 : it->second;
}
