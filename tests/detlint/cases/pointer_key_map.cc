// Violation: pointer-keyed unordered map. Heap addresses differ run to
// run, so hashing/ordering by them is nondeterministic even if the map
// is never iterated directly (rehash order, bucket placement, and any
// later export leak it).
// Expected: pointer-key
#include <unordered_map>

struct Document {
  int id;
};

std::unordered_map<const Document*, int> visits;

void Record(const Document* doc) { ++visits[doc]; }
