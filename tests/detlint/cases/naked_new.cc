// Violation: naked new/delete. Manual lifetime management leaks on every
// early return and exception path; the repo requires std::make_unique or
// containers.
// Expected: naked-new
struct Buffer {
  int size;
};

int Use() {
  Buffer* buffer = new Buffer{64};
  int size = buffer->size;
  delete buffer;
  return size;
}
