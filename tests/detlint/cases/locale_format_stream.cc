// Violation: iostream formatting in an export path. Streams imbue the
// global locale at construction and default to six significant digits,
// so the emitted bytes are environment-dependent and lossy.
// Expected: locale-format
// detlint: export-path
#include <iomanip>
#include <sstream>
#include <string>

std::string ExportValue(double value) {
  std::ostringstream os;
  os << std::setprecision(9) << value;
  return os.str();
}
