// Violation: explicit iterator loop via .begin() over a
// std::unordered_set — same hash-order hazard as a range-for, just
// spelled with iterators.
// Expected: unordered-iteration
#include <unordered_set>
#include <vector>

std::unordered_set<int> seen;

std::vector<int> Snapshot() {
  std::vector<int> out;
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    out.push_back(*it);  // emitted in bucket order
  }
  return out;
}
