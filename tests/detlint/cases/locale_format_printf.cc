// Violation: printf-family %g conversion in an export path. printf
// float conversions honor LC_NUMERIC and pick a fixed precision, so the
// emitted bytes depend on the environment and lose digits.
// Expected: locale-format
// detlint: export-path
#include <cstdio>
#include <string>

std::string ExportValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}
