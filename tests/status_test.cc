#include "common/status.h"

#include <gtest/gtest.h>

namespace ie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, NotFound) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
}

TEST(StatusTest, OutOfRange) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, FailedPrecondition) {
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, Internal) {
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

namespace {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  IE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

StatusOr<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Status UseAssign(int x, int* out) {
  IE_ASSIGN_OR_RETURN(const int doubled, Doubled(x));
  *out = doubled;
  return Status::OK();
}
}  // namespace

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssign(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssign(-1, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace ie
