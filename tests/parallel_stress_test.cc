// TSan-targeted stress tests: hammer ParallelFor under contention and drive
// the parallel re-rank path repeatedly. These tests are expected to pass
// under -DIE_SANITIZE=thread (tsan preset) as well as the default build;
// they are the gate for future scaling work on top of the threading.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"
#include "eval/experiment.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

// Back-to-back ParallelFor rounds over shared atomics: exercises thread
// creation/join churn and contended fetch_add across rounds.
TEST(ParallelStressTest, RepeatedContendedCounters) {
  constexpr size_t kRounds = 50;
  constexpr size_t kN = 512;
  std::vector<std::atomic<uint32_t>> counters(kN);
  std::atomic<uint64_t> total{0};
  for (size_t round = 0; round < kRounds; ++round) {
    ParallelFor(kN, 8, [&](size_t i) {
      counters[i].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counters[i].load(), kRounds) << "i=" << i;
  }
  EXPECT_EQ(total.load(), kRounds * (kN * (kN - 1) / 2));
}

// Mutex-guarded aggregation: TSan sees the lock pattern, and the aggregate
// must be exact regardless of interleaving.
TEST(ParallelStressTest, MutexAggregationIsExact) {
  constexpr size_t kN = 10000;
  Mutex mu;
  uint64_t sum = 0;
  ParallelFor(kN, 8, [&](size_t i) {
    MutexLock lock(mu);
    sum += i;
  });
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

// Disjoint slot writes with no synchronization: the core contract the
// pipeline's bulk scoring relies on. Any overlap is a TSan race.
TEST(ParallelStressTest, DisjointSlotWritesRaceFree) {
  constexpr size_t kRounds = 20;
  constexpr size_t kN = 4096;
  std::vector<uint64_t> slots(kN, 0);
  for (size_t round = 0; round < kRounds; ++round) {
    ParallelFor(kN, 8, [&](size_t i) { slots[i] += i + round; });
  }
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(slots[i], kRounds * i + kRounds * (kRounds - 1) / 2);
  }
}

// Varying thread counts against the same workload: block partitioning must
// cover every index exactly once for ragged and even splits alike.
TEST(ParallelStressTest, ThreadCountSweepCoversAll) {
  constexpr size_t kN = 1009;  // prime
  for (size_t threads : {2u, 3u, 4u, 7u, 8u, 16u, 64u}) {
    std::vector<std::atomic<uint8_t>> hits(kN);
    ParallelFor(kN, threads, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

// Exceptions under churn: repeated throwing rounds must neither terminate
// nor leak threads (TSan reports leaked threads at exit).
TEST(ParallelStressTest, ExceptionChurn) {
  for (int round = 0; round < 30; ++round) {
    std::atomic<size_t> visited{0};
    try {
      ParallelFor(256, 8, [&](size_t i) {
        if (i % 97 == 13) throw std::runtime_error("churn");
        visited.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error&) {
      EXPECT_GT(visited.load(), 0u);
    }
  }
}

// The real consumer: the pipeline's threaded bulk re-rank. Scored slots are
// written concurrently, then sorted; the result must be byte-identical to
// the serial run, every time, under contention.
TEST(ParallelStressTest, ThreadedRerankMatchesSerialRepeatedly) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 131);
  config.sample_size = 120;
  const PipelineResult serial =
      AdaptiveExtractionPipeline::Run(context, config);
  for (size_t threads : {2u, 4u, 8u}) {
    config.scoring_threads = threads;
    const PipelineResult threaded =
        AdaptiveExtractionPipeline::Run(context, config);
    EXPECT_EQ(serial.processing_order, threaded.processing_order)
        << "threads=" << threads;
    EXPECT_EQ(serial.update_positions, threaded.update_positions)
        << "threads=" << threads;
    EXPECT_EQ(EvaluateRun(serial).auc, EvaluateRun(threaded).auc)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ie
