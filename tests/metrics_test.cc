#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment.h"

namespace ie {
namespace {

TEST(RecallCurveTest, PerfectOrderFrontLoads) {
  // 3 useful docs first, then 7 useless.
  const std::vector<uint8_t> order = {1, 1, 1, 0, 0, 0, 0, 0, 0, 0};
  const auto curve = RecallCurve(order, 3, 10);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  EXPECT_DOUBLE_EQ(curve[3], 1.0);  // after 30% processed
  EXPECT_DOUBLE_EQ(curve[10], 1.0);
}

TEST(RecallCurveTest, UniformOrderIsLinearish) {
  std::vector<uint8_t> order;
  for (int i = 0; i < 100; ++i) order.push_back(i % 10 == 0 ? 1 : 0);
  const auto curve = RecallCurve(order, 10, 10);
  EXPECT_NEAR(curve[5], 0.5, 0.1);
}

TEST(RecallCurveTest, EmptyInputsGiveZeroCurve) {
  const auto curve = RecallCurve({}, 5, 10);
  for (double r : curve) EXPECT_DOUBLE_EQ(r, 0.0);
  const auto curve2 = RecallCurve({1, 0}, 0, 10);
  for (double r : curve2) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(RecallCurveTest, DenominatorBeyondProcessedCapsBelowOne) {
  const std::vector<uint8_t> order = {1, 1};
  const auto curve = RecallCurve(order, 4, 10);
  EXPECT_DOUBLE_EQ(curve[10], 0.5);
}

TEST(AveragePrecisionTest, PerfectOrderIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 1, 1, 0, 0}, 3), 1.0);
}

TEST(AveragePrecisionTest, WorstOrder) {
  // Useful docs at ranks 4 and 5: AP = (1/4 + 2/5)/2.
  EXPECT_NEAR(AveragePrecision({0, 0, 0, 1, 1}, 2), (0.25 + 0.4) / 2.0,
              1e-12);
}

TEST(AveragePrecisionTest, MissingUsefulCountsAsMiss) {
  // Only 1 of the 2 useful docs was ever processed.
  EXPECT_NEAR(AveragePrecision({1, 0}, 2), 0.5, 1e-12);
}

TEST(AveragePrecisionTest, ZeroUsefulIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0, 0}, 0), 0.0);
}

TEST(RocAucTest, PerfectOrderIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1, 0, 0, 0}), 1.0);
}

TEST(RocAucTest, ReversedOrderIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, AlternatingNearHalf) {
  std::vector<uint8_t> order;
  for (int i = 0; i < 1000; ++i) order.push_back(i % 2);
  EXPECT_NEAR(RocAuc(order), 0.5, 0.01);
}

TEST(RocAucTest, RandomOrderNearHalf) {
  Rng rng(3);
  std::vector<uint8_t> order;
  for (int i = 0; i < 5000; ++i) order.push_back(rng.NextBool(0.1) ? 1 : 0);
  EXPECT_NEAR(RocAuc(order), 0.5, 0.05);
}

TEST(RocAucTest, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({}), 0.5);
}

TEST(RocAucTest, ExactSmallCase) {
  // Order: 1 0 1 0. Pairs: (p1 before both n) + (p2 before n2) = 3 of 4.
  EXPECT_DOUBLE_EQ(RocAuc({1, 0, 1, 0}), 0.75);
}

TEST(RecallAtTest, CountsPrefix) {
  const std::vector<uint8_t> order = {1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RecallAt(order, 3, 0), 0.0);
  EXPECT_DOUBLE_EQ(RecallAt(order, 3, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAt(order, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAt(order, 3, 99), 1.0);
}

TEST(DocsToReachRecallTest, FindsMinimalPrefix) {
  const std::vector<uint8_t> order = {0, 1, 0, 1, 1};
  EXPECT_EQ(DocsToReachRecall(order, 3, 1.0 / 3.0), 2u);
  EXPECT_EQ(DocsToReachRecall(order, 3, 2.0 / 3.0), 4u);
  EXPECT_EQ(DocsToReachRecall(order, 3, 1.0), 5u);
}

TEST(DocsToReachRecallTest, UnreachableReturnsSizePlusOne) {
  EXPECT_EQ(DocsToReachRecall({0, 1}, 3, 1.0), 3u);
}

// ---- EvaluateRun / RunExperiment ----------------------------------------

PipelineResult FakeResult(std::vector<uint8_t> useful, size_t warmup,
                          size_t pool_useful) {
  PipelineResult result;
  result.processed_useful = std::move(useful);
  result.processing_order.resize(result.processed_useful.size());
  result.warmup_documents = warmup;
  result.pool_size = result.processed_useful.size();
  result.pool_useful = pool_useful;
  result.extraction_seconds = 10.0;
  return result;
}

TEST(EvaluateRunTest, ExcludesWarmupByDefault) {
  // Warmup consumed 1 useful doc; the ranked suffix is perfect.
  const RunMetrics metrics =
      EvaluateRun(FakeResult({1, 0, 1, 1, 0, 0}, 2, 3));
  EXPECT_DOUBLE_EQ(metrics.average_precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.auc, 1.0);
}

TEST(EvaluateRunTest, IncludeWarmupCountsEverything) {
  const RunMetrics metrics =
      EvaluateRun(FakeResult({1, 0, 1, 1, 0, 0}, 2, 3), true);
  EXPECT_LT(metrics.average_precision, 1.0);
}

TEST(RunExperimentTest, AggregatesAcrossSeeds) {
  const AggregateMetrics agg = RunExperiment("x", 4, [](size_t seed) {
    // Alternate perfect and reversed orders.
    return FakeResult(seed % 2 == 0
                          ? std::vector<uint8_t>{1, 1, 0, 0}
                          : std::vector<uint8_t>{0, 0, 1, 1},
                      0, 2);
  });
  EXPECT_EQ(agg.runs, 4u);
  EXPECT_NEAR(agg.auc_mean, 0.5, 1e-12);
  EXPECT_GT(agg.auc_std, 0.4);
  EXPECT_DOUBLE_EQ(agg.extraction_seconds_mean, 10.0);
  ASSERT_FALSE(agg.mean_recall_curve.empty());
  EXPECT_NEAR(agg.mean_recall_curve.back(), 1.0, 1e-12);
  EXPECT_NEAR(agg.mean_recall_curve[50], 0.5, 1e-12);
}

}  // namespace
}  // namespace ie
