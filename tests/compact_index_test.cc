// CompactIndex correctness: the byte-identity contract with InvertedIndex
// (DESIGN.md §13) — same hits, same float bits, same order — plus the
// build-protocol errors and the block/skip machinery at multi-block scale.
#include "index/compact_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/inverted_index.h"
#include "pipeline/pipeline.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace ie {
namespace {

// Bit-level hit comparison: score equality is exact, not approximate —
// the whole point of the contract.
void ExpectSameHits(const std::vector<SearchHit>& expected,
                    const std::vector<SearchHit>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].doc, actual[i].doc) << label << " hit " << i;
    uint32_t expected_bits = 0;
    uint32_t actual_bits = 0;
    std::memcpy(&expected_bits, &expected[i].score, sizeof(expected_bits));
    std::memcpy(&actual_bits, &actual[i].score, sizeof(actual_bits));
    EXPECT_EQ(expected_bits, actual_bits)
        << label << " hit " << i << ": scores " << expected[i].score
        << " vs " << actual[i].score << " differ in bits";
  }
}

class CompactIndexTest : public ::testing::Test {
 protected:
  void AddBoth(DocId id, const std::string& text) {
    const Document doc = TextToDocument(id, text, vocab_);
    ASSERT_TRUE(inverted_.Add(doc).ok());
    ASSERT_TRUE(compact_.Add(doc).ok());
  }
  std::vector<TokenId> Terms(const std::string& words) {
    std::vector<TokenId> ids;
    for (const auto& w : TokenizeWords(words)) ids.push_back(vocab_.Intern(w));
    return ids;
  }
  void CheckQuery(const std::string& words, size_t k) {
    ExpectSameHits(inverted_.Search(Terms(words), k),
                   compact_.Search(Terms(words), k),
                   "query '" + words + "' k=" + std::to_string(k));
  }

  Vocabulary vocab_;
  InvertedIndex inverted_;
  CompactIndex compact_;
};

TEST_F(CompactIndexTest, EmptyIndexReturnsNothing) {
  compact_.Finalize();
  EXPECT_TRUE(compact_.Search({0, 1}, 10).empty());
  EXPECT_TRUE(compact_.Search({}, 10).empty());
  EXPECT_EQ(compact_.NumDocs(), 0u);
  EXPECT_EQ(compact_.NumPostings(), 0u);
}

TEST_F(CompactIndexTest, BuildProtocolEnforced) {
  const Document doc = TextToDocument(0, "a b c.", vocab_);
  ASSERT_TRUE(compact_.Add(doc).ok());
  EXPECT_TRUE(compact_.Add(doc).IsInvalidArgument());  // duplicate id
  EXPECT_FALSE(compact_.finalized());
  compact_.Finalize();
  EXPECT_TRUE(compact_.finalized());
  const Document late = TextToDocument(1, "d.", vocab_);
  EXPECT_TRUE(compact_.Add(late).IsFailedPrecondition());
  compact_.Finalize();  // idempotent
  EXPECT_EQ(compact_.NumDocs(), 1u);
}

TEST_F(CompactIndexTest, HandcraftedEquivalence) {
  AddBoth(0, "lava flowed from the volcano.");
  AddBoth(1, "lava only here.");
  AddBoth(2, "volcano only here.");
  AddBoth(3, "an entirely unrelated report about elections.");
  compact_.Finalize();
  CheckQuery("lava volcano", 10);
  CheckQuery("lava", 10);
  CheckQuery("volcano lava here", 2);
  CheckQuery("elections", 1);
}

TEST_F(CompactIndexTest, EdgeCasesMatchInvertedIndex) {
  AddBoth(0, "known words here.");
  compact_.Finalize();
  // k = 0, empty query, all-unknown terms, k > NumDocs.
  EXPECT_TRUE(compact_.Search(Terms("known"), 0).empty());
  EXPECT_TRUE(compact_.Search({}, 10).empty());
  EXPECT_TRUE(compact_.Search({999999u, 888888u}, 10).empty());
  CheckQuery("known", 50);
  // Single-doc corpus: avg_len == len, denominator exercises the b-term.
  const auto hits = compact_.Search(Terms("known"), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(std::isfinite(hits[0].score));
  EXPECT_GT(hits[0].score, 0.0f);
}

TEST_F(CompactIndexTest, DuplicateQueryTermsDedupedInBothBackends) {
  AddBoth(0, "storm storm hit the coast.");
  AddBoth(1, "storm was mentioned once here.");
  AddBoth(2, "calm day at the coast.");
  compact_.Finalize();
  const auto once_inv = inverted_.Search(Terms("storm"), 10);
  const auto twice_inv = inverted_.Search(Terms("storm storm"), 10);
  ExpectSameHits(once_inv, twice_inv, "inverted {t,t} vs {t}");
  const auto twice_cmp = compact_.Search(Terms("storm storm"), 10);
  ExpectSameHits(once_inv, twice_cmp, "compact {t,t} vs inverted {t}");
}

TEST_F(CompactIndexTest, DocFreqAndCountsMatch) {
  AddBoth(0, "storm at sea. storm again.");
  AddBoth(1, "calm sea.");
  compact_.Finalize();
  EXPECT_EQ(compact_.NumDocs(), inverted_.NumDocs());
  EXPECT_EQ(compact_.NumPostings(), inverted_.NumPostings());
  for (const char* word : {"storm", "sea", "calm"}) {
    EXPECT_EQ(compact_.DocFreq(vocab_.Lookup(word)),
              inverted_.DocFreq(vocab_.Lookup(word)))
        << word;
  }
  EXPECT_EQ(compact_.DocFreq(999999u), 0u);
}

TEST_F(CompactIndexTest, MultiBlockPostingListsWithPruning) {
  // > 3 blocks for "shared"; "rare" appears in a handful of spread-out
  // docs, so conjunctive-ish queries exercise the block-skip path and
  // small k exercises the WAND threshold.
  for (DocId id = 0; id < 400; ++id) {
    std::string text = "shared body text number" + std::to_string(id % 17);
    if (id % 61 == 0) text += " rare";
    if (id % 7 == 0) text += " sevens sevens";
    text += ".";
    AddBoth(id, text);
  }
  compact_.Finalize();
  for (size_t k : {1u, 3u, 10u, 100u, 1000u}) {
    CheckQuery("rare", k);
    CheckQuery("shared rare", k);
    CheckQuery("rare sevens", k);
    CheckQuery("shared sevens number3", k);
  }
}

TEST_F(CompactIndexTest, RandomizedEquivalence200QueriesPerSeed) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Vocabulary vocab;
    InvertedIndex inverted;
    CompactIndex compact;
    Rng rng(seed);
    constexpr uint32_t kVocabSize = 300;

    const size_t num_docs = 200 + rng.NextBounded(200);
    for (DocId id = 0; id < num_docs; ++id) {
      Document doc;
      doc.id = id;
      const size_t num_sentences = 1 + rng.NextBounded(4);
      for (size_t s = 0; s < num_sentences; ++s) {
        Sentence sentence;
        const size_t len = 3 + rng.NextBounded(20);
        for (size_t t = 0; t < len; ++t) {
          // Skewed draw so some terms are frequent (multi-block) and some
          // rare (high idf).
          const auto token = static_cast<TokenId>(
              rng.NextZipf(kVocabSize, 1.1));
          sentence.tokens.push_back(token);
        }
        doc.sentences.push_back(std::move(sentence));
      }
      ASSERT_TRUE(inverted.Add(doc).ok());
      ASSERT_TRUE(compact.Add(doc).ok());
    }
    compact.Finalize();
    EXPECT_EQ(compact.NumPostings(), inverted.NumPostings());

    for (int q = 0; q < 200; ++q) {
      std::vector<TokenId> terms;
      const size_t num_terms = 1 + rng.NextBounded(5);
      for (size_t t = 0; t < num_terms; ++t) {
        // 320 > vocab size: some terms are unknown; duplicates happen
        // naturally and must be deduped identically by both backends.
        terms.push_back(static_cast<TokenId>(rng.NextBounded(320)));
      }
      const size_t k_choices[] = {1, 5, 10, 50, 5000};
      const size_t k = k_choices[rng.NextBounded(5)];
      ExpectSameHits(inverted.Search(terms, k), compact.Search(terms, k),
                     "seed " + std::to_string(seed) + " query " +
                         std::to_string(q));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST_F(CompactIndexTest, ParallelFinalizeIsByteIdenticalToSerial) {
  // Build the same randomized corpus into four indexes and finalize with
  // 1, 2, 4, and 16 threads: every observable — compressed byte count,
  // doc freqs, and bit-level search results — must match the serial build.
  Rng rng(77);
  constexpr uint32_t kVocabSize = 400;
  std::vector<Document> docs;
  for (DocId id = 0; id < 300; ++id) {
    Document doc;
    doc.id = id;
    Sentence sentence;
    const size_t len = 4 + rng.NextBounded(24);
    for (size_t t = 0; t < len; ++t) {
      sentence.tokens.push_back(
          static_cast<TokenId>(rng.NextZipf(kVocabSize, 1.1)));
    }
    doc.sentences.push_back(std::move(sentence));
    docs.push_back(std::move(doc));
  }

  CompactIndex serial;
  for (const auto& doc : docs) ASSERT_TRUE(serial.Add(doc).ok());
  serial.Finalize(1);

  for (size_t threads : {2u, 4u, 16u}) {
    CompactIndex parallel;
    for (const auto& doc : docs) ASSERT_TRUE(parallel.Add(doc).ok());
    parallel.Finalize(threads);

    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(parallel.NumDocs(), serial.NumDocs()) << label;
    EXPECT_EQ(parallel.NumPostings(), serial.NumPostings()) << label;
    EXPECT_EQ(parallel.PostingsBytes(), serial.PostingsBytes()) << label;
    for (TokenId term = 0; term < kVocabSize; ++term) {
      ASSERT_EQ(parallel.DocFreq(term), serial.DocFreq(term))
          << label << " term " << term;
    }
    Rng qrng(threads);
    for (int q = 0; q < 100; ++q) {
      std::vector<TokenId> terms;
      const size_t num_terms = 1 + qrng.NextBounded(4);
      for (size_t t = 0; t < num_terms; ++t) {
        terms.push_back(static_cast<TokenId>(qrng.NextBounded(kVocabSize)));
      }
      const size_t k = 1 + qrng.NextBounded(50);
      ExpectSameHits(serial.Search(terms, k), parallel.Search(terms, k),
                     label + " query " + std::to_string(q));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST_F(CompactIndexTest, SharedCorpusPoolEquivalenceAndCompression) {
  const Corpus& corpus = test::SharedCorpus();
  const InvertedIndex& inverted = test::SharedIndex();
  const CompactIndex compact =
      BuildCompactPoolIndex(corpus, corpus.splits().test);
  EXPECT_EQ(compact.NumDocs(), inverted.NumDocs());
  EXPECT_EQ(compact.NumPostings(), inverted.NumPostings());

  // Realistic word queries through the shared SearchText path.
  for (const char* query :
       {"courtroom trial fraud prosecutor", "volcano", "storm damage",
        "university of", "election campaign vote", "disease outbreak",
        "charged with fraud", "the", "zzz-not-a-word"}) {
    for (size_t k : {1u, 10u, 200u}) {
      ExpectSameHits(inverted.SearchText(query, corpus.vocab(), k),
                     compact.SearchText(query, corpus.vocab(), k),
                     std::string("shared corpus query '") + query + "'");
    }
  }

  // Compressed postings must be smaller than the uncompressed reference
  // even on this tiny pool, where per-term metadata is at its least
  // amortized (singleton terms dominate a 3k-doc vocabulary). The >= 4x
  // acceptance ratio is measured where it matters — the 1M-doc bench
  // (bench/bench_index.cc) — and recorded in BENCH_index.json.
  EXPECT_LT(compact.PostingsBytes(), inverted.PostingsBytes());
}

// --- pipeline-level equivalence: the PR 6 golden-hash matrix -------------
//
// Runs the full adaptive pipeline over the golden matrix cells with the
// index-hungry configuration (CQS sampling + search-interface access) and
// asserts the two backends produce identical runs — processing order,
// verdicts, update positions, final weights, simulated cost.

void ExpectSameRun(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.processing_order, b.processing_order);
  EXPECT_EQ(a.processed_useful, b.processed_useful);
  EXPECT_EQ(a.update_positions, b.update_positions);
  EXPECT_EQ(a.warmup_documents, b.warmup_documents);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (size_t i = 0; i < a.final_weights.size(); ++i) {
    EXPECT_EQ(a.final_weights[i].first, b.final_weights[i].first);
    EXPECT_EQ(a.final_weights[i].second, b.final_weights[i].second);
  }
  EXPECT_EQ(a.extraction_seconds, b.extraction_seconds);
}

struct MatrixCase {
  RankerKind ranker;
  uint64_t seed;
};

class BackendMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(BackendMatrixTest, GoldenMatrixCellBackendInvariant) {
  const MatrixCase param = GetParam();
  SharedContext context = test::MakeSharedContext(RelationId::kPersonCharge);
  const std::vector<std::string> queries = {"courtroom", "trial", "fraud",
                                            "prosecutor"};
  context.cqs_queries = &queries;
  PipelineConfig config = PipelineConfig::Defaults(
      param.ranker, SamplerKind::kCQS, UpdateKind::kModC, param.seed);
  config.sample_size = 120;
  config.access = AccessMode::kSearchInterface;

  const PipelineResult with_inverted =
      AdaptiveExtractionPipeline::Run(context, config);

  const CompactIndex compact = BuildCompactPoolIndex(
      test::SharedCorpus(), test::SharedCorpus().splits().test);
  context.index = &compact;
  const PipelineResult with_compact =
      AdaptiveExtractionPipeline::Run(context, config);

  ExpectSameRun(with_inverted, with_compact);
}

INSTANTIATE_TEST_SUITE_P(
    RankersAndSeeds, BackendMatrixTest,
    ::testing::Values(MatrixCase{RankerKind::kRSVMIE, 1},
                      MatrixCase{RankerKind::kRSVMIE, 7},
                      MatrixCase{RankerKind::kBAggIE, 1},
                      MatrixCase{RankerKind::kBAggIE, 7}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.ranker == RankerKind::kRSVMIE ? "RSVM"
                                                                  : "BAgg") +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace ie
