#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/parallel.h"
#include "eval/experiment.h"
#include "pipeline/qxtract_pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

// ---- ParallelFor -----------------------------------------------------------

TEST(ParallelForTest, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialFallback) {
  std::vector<int> hits(50, 0);
  ParallelFor(50, 1, [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelForTest, SmallNDegeneratesToSerial) {
  std::vector<int> hits(3, 0);
  ParallelFor(3, 8, [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, 4, [](size_t) { FAIL(); });
}

TEST(ParallelScoringTest, ThreadedRerankIsDeterministic) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 71);
  config.sample_size = 120;
  const PipelineResult serial =
      AdaptiveExtractionPipeline::Run(context, config);
  config.scoring_threads = 4;
  const PipelineResult threaded =
      AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_EQ(serial.processing_order, threaded.processing_order);
  EXPECT_EQ(serial.update_positions, threaded.update_positions);
}

// ---- QXtract baseline -------------------------------------------------------

TEST(QXtractPipelineTest, RunInvariants) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  QXtractConfig config;
  config.sample_size = 120;
  config.seed = 73;
  const PipelineResult result = QXtractPipeline::Run(context, config);
  EXPECT_EQ(result.processing_order.size(), context.pool->size());
  std::set<DocId> processed(result.processing_order.begin(),
                            result.processing_order.end());
  EXPECT_EQ(processed.size(), context.pool->size());
  EXPECT_EQ(result.pool_useful,
            context.outcomes->CountUseful(*context.pool));
}

TEST(QXtractPipelineTest, BeatsRandomOnTopicalRelation) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  double qx = 0.0;
  for (uint64_t seed : {79, 83, 89}) {
    QXtractConfig config;
    config.sample_size = 120;
    config.seed = seed;
    config.retrieved_per_query = 150;
    qx += EvaluateRun(QXtractPipeline::Run(context, config)).auc / 3.0;
  }
  EXPECT_GT(qx, 0.55);
}

TEST(QXtractPipelineTest, RetrievalOrderNotUsefulnessOrder) {
  // QXtract processes by retrieval rank, so it should trail the adaptive
  // learned ranker — the paper's reason to move beyond it.
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  QXtractConfig qx_config;
  qx_config.sample_size = 120;
  qx_config.seed = 97;
  qx_config.retrieved_per_query = 150;
  const double qx =
      EvaluateRun(QXtractPipeline::Run(context, qx_config)).auc;

  PipelineConfig rsvm_config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 97);
  rsvm_config.sample_size = 120;
  const double rsvm =
      EvaluateRun(AdaptiveExtractionPipeline::Run(context, rsvm_config))
          .auc;
  EXPECT_GT(rsvm, qx);
}

}  // namespace
}  // namespace ie
