// Tests for the open-addressing flat hash tables (common/flat_hash.h):
// growth, erase-free semantics, collision chains, and randomized parity
// against std::unordered_map on 100k keys.
#include "common/flat_hash.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace ie {
namespace {

TEST(FlatHashMapTest, EmptyMapFindsNothing) {
  FlatHashMap<uint64_t, uint32_t> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(42), nullptr);
}

TEST(FlatHashMapTest, EmplaceFindRoundTrip) {
  FlatHashMap<uint64_t, uint32_t> map;
  auto [slot, inserted] = map.Emplace(7, 100);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 100u);
  // Existing mapping wins, mirroring unordered_map::emplace.
  auto [slot2, inserted2] = map.Emplace(7, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*slot2, 100u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 100u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowthPreservesAllMappings) {
  FlatHashMap<uint32_t, uint32_t> map;
  constexpr uint32_t kN = 10000;  // forces many doublings from capacity 16
  for (uint32_t k = 0; k < kN; ++k) map.Emplace(k, k * 3);
  EXPECT_EQ(map.size(), kN);
  // Power-of-two capacity with load factor <= 3/4.
  EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
  EXPECT_GE(map.capacity() * 3, map.size() * 4);
  for (uint32_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 3);
  }
  EXPECT_EQ(map.Find(kN), nullptr);
}

TEST(FlatHashMapTest, CollidingKeysChainLinearly) {
  // Keys an exact capacity apart collide after masking only if the mixer
  // maps them there — instead craft collisions by brute force: find keys
  // whose mixed hash shares the low bits, then verify probing resolves
  // them all.
  FlatHashMap<uint64_t, uint32_t> map;
  map.Reserve(64);
  const size_t mask = map.capacity() - 1;
  std::vector<uint64_t> colliders;
  const size_t want = Mix64(12345) & mask;
  for (uint64_t k = 0; colliders.size() < 8; ++k) {
    if ((Mix64(k) & mask) == want) colliders.push_back(k);
  }
  for (size_t i = 0; i < colliders.size(); ++i) {
    map.Emplace(colliders[i], static_cast<uint32_t>(i));
  }
  EXPECT_EQ(map.size(), colliders.size());
  for (size_t i = 0; i < colliders.size(); ++i) {
    ASSERT_NE(map.Find(colliders[i]), nullptr);
    EXPECT_EQ(*map.Find(colliders[i]), static_cast<uint32_t>(i));
  }
}

TEST(FlatHashMapTest, ClearKeepsCapacityDropsMappings) {
  FlatHashMap<uint32_t, float> map;
  for (uint32_t k = 0; k < 100; ++k) map.Emplace(k, 1.0f);
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  for (uint32_t k = 0; k < 100; ++k) EXPECT_EQ(map.Find(k), nullptr);
  map.Emplace(5, 2.5f);
  EXPECT_EQ(*map.Find(5), 2.5f);
}

TEST(FlatHashMapTest, OperatorIndexDefaultConstructs) {
  FlatHashMap<uint32_t, float> map;
  map[3] += 1.0f;
  map[3] += 1.0f;
  EXPECT_EQ(*map.Find(3), 2.0f);
}

TEST(FlatHashMapTest, RandomizedParityVsUnorderedMap100k) {
  FlatHashMap<uint64_t, uint32_t> flat;
  std::unordered_map<uint64_t, uint32_t> reference;
  Rng rng(20260808);
  // Insert-if-absent over a key space with deliberate repeats, so both
  // first-insert-wins semantics and probe chains get exercised.
  for (size_t i = 0; i < 100000; ++i) {
    const uint64_t key = rng.NextBounded(70000);
    const uint32_t value = static_cast<uint32_t>(i);
    flat.Emplace(key, value);
    reference.emplace(key, value);
  }
  ASSERT_EQ(flat.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(flat.Find(key), nullptr) << key;
    EXPECT_EQ(*flat.Find(key), value) << key;
  }
  // Probe misses against keys never inserted.
  for (size_t i = 0; i < 1000; ++i) {
    const uint64_t absent = 1000000 + rng.NextBounded(1000000);
    EXPECT_EQ(flat.Find(absent), nullptr);
    EXPECT_EQ(reference.count(absent), 0u);
  }
}

TEST(FlatHashMapTest, ForEachSortedVisitsAscendingKeys) {
  FlatHashMap<uint32_t, uint32_t> map;
  for (uint32_t k : {9u, 1u, 7u, 3u, 5u}) map.Emplace(k, k * 10);
  std::vector<uint32_t> keys;
  ForEachSorted(map, [&](uint32_t key, uint32_t value) {
    EXPECT_EQ(value, key * 10);
    keys.push_back(key);
  });
  EXPECT_EQ(keys, (std::vector<uint32_t>{1, 3, 5, 7, 9}));
}

TEST(FlatIdIndexTest, InterningParityVsUnorderedMap100k) {
  // Drive FlatIdIndex exactly as Vocabulary does: terms_ is the backing
  // store, ids are assigned densely in insertion order.
  FlatIdIndex index;
  std::vector<std::string> terms;
  std::unordered_map<std::string, uint32_t> reference;
  Rng rng(42);
  auto intern = [&](const std::string& term) {
    const uint64_t hash = HashBytes(term);
    const uint32_t found =
        index.Find(hash, [&](uint32_t id) { return terms[id] == term; });
    if (found != FlatIdIndex::kNotFound) return found;
    const uint32_t id = static_cast<uint32_t>(terms.size());
    terms.push_back(term);
    index.Insert(hash, id);
    return id;
  };
  for (size_t i = 0; i < 100000; ++i) {
    const std::string term = "term-" + std::to_string(rng.NextBounded(60000));
    const uint32_t id = intern(term);
    auto [it, inserted] = reference.emplace(term, id);
    EXPECT_EQ(it->second, id) << term;
  }
  ASSERT_EQ(index.size(), reference.size());
  ASSERT_EQ(terms.size(), reference.size());
  for (const auto& [term, id] : reference) {
    const uint32_t found = index.Find(
        HashBytes(term), [&](uint32_t i) { return terms[i] == term; });
    EXPECT_EQ(found, id) << term;
  }
  const uint32_t absent = index.Find(
      HashBytes("never-interned"),
      [&](uint32_t i) { return terms[i] == "never-interned"; });
  EXPECT_EQ(absent, FlatIdIndex::kNotFound);
}

TEST(FlatIdIndexTest, SharedHashDisambiguatedByEq) {
  // Two distinct "keys" deliberately stored under one hash: Find must use
  // eq() to pick the right id, proving hash collisions cannot alias terms.
  FlatIdIndex index;
  const std::vector<std::string> terms = {"alpha", "beta"};
  const uint64_t hash = 0x12345678u;
  index.Insert(hash, 0);
  index.Insert(hash, 1);
  EXPECT_EQ(index.Find(hash, [&](uint32_t id) { return terms[id] == "beta"; }),
            1u);
  EXPECT_EQ(
      index.Find(hash, [&](uint32_t id) { return terms[id] == "alpha"; }),
      0u);
  EXPECT_EQ(
      index.Find(hash, [&](uint32_t id) { return terms[id] == "gamma"; }),
      FlatIdIndex::kNotFound);
}

TEST(FlatIdIndexTest, GrowthReinsertsByStoredHash) {
  FlatIdIndex index;
  std::vector<std::string> terms;
  for (uint32_t i = 0; i < 5000; ++i) {
    terms.push_back("t" + std::to_string(i));
    index.Insert(HashBytes(terms.back()), i);
  }
  EXPECT_EQ(index.size(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) {
    const uint32_t found = index.Find(
        HashBytes(terms[i]), [&](uint32_t id) { return terms[id] == terms[i]; });
    EXPECT_EQ(found, i);
  }
}

TEST(Mix64Test, MixesSequentialKeysApart) {
  // Sequential keys (the token-id workload) must not produce sequential
  // hashes — that is precisely the std::hash<uint64_t> identity hazard the
  // mixer exists to fix.
  size_t same_low_byte = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if ((Mix64(k) & 0xffu) == (k & 0xffu)) ++same_low_byte;
  }
  EXPECT_LT(same_low_byte, 16u);  // identity would give 256
}

}  // namespace
}  // namespace ie
