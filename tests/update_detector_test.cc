#include "update/update_detector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "ranking/learned_rankers.h"

namespace ie {
namespace {

SparseVector Vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

// Stream whose useful documents use features [base, base+width).
std::vector<LabeledExample> Stream(size_t n, uint32_t base, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledExample> out;
  for (size_t i = 0; i < n; ++i) {
    const bool useful = i % 2 == 0;
    std::vector<SparseVector::Entry> entries;
    const uint32_t offset = useful ? base : 500;
    for (int k = 0; k < 3; ++k) {
      entries.emplace_back(offset + rng.NextBounded(8), 1.0f);
    }
    SparseVector v = Vec(std::move(entries));
    v.Normalize();
    out.push_back({std::move(v), useful ? 1 : -1});
  }
  return out;
}

std::unique_ptr<RsvmIeRanker> TrainedRanker(
    const std::vector<LabeledExample>& sample) {
  auto ranker = std::make_unique<RsvmIeRanker>();
  ranker->TrainInitial(sample);
  return ranker;
}

// ---- NeverUpdate / Wind-F ----------------------------------------------

TEST(NeverUpdateTest, NeverTriggers) {
  NeverUpdateDetector detector;
  RsvmIeRanker ranker;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.Observe(Vec({{0, 1.0f}}), true, ranker));
  }
}

TEST(WindFTest, TriggersAtExactInterval) {
  WindFDetector detector(10);
  RsvmIeRanker ranker;
  int triggers = 0;
  for (int i = 1; i <= 100; ++i) {
    const bool fired = detector.Observe(Vec({{0, 1.0f}}), false, ranker);
    EXPECT_EQ(fired, i % 10 == 0);
    triggers += fired;
  }
  EXPECT_EQ(triggers, 10);
}

// ---- Top-K ------------------------------------------------------------

TEST(TopKTest, ShiftTriggersMoreThanSteadyStream) {
  auto run = [](uint32_t continuation_base) {
    const auto sample = Stream(200, 0, 1);
    auto ranker = TrainedRanker(sample);
    TopKDetector detector;
    // Warm the side classifier on the reference distribution.
    for (const auto& ex : sample) {
      detector.Observe(ex.features, ex.label > 0, *ranker);
    }
    detector.OnModelUpdated(*ranker, sample);
    double max_distance = 0.0;
    for (const auto& ex : Stream(150, continuation_base, 2)) {
      detector.Observe(ex.features, ex.label > 0, *ranker);
      max_distance = std::max(max_distance, detector.last_distance());
    }
    return max_distance;
  };
  const double steady = run(0);      // same distribution
  const double shifted = run(100);   // new useful-feature block
  EXPECT_GT(shifted, steady);
}

TEST(TopKTest, DistributionShiftTriggers) {
  const auto sample = Stream(200, 0, 1);
  auto ranker = TrainedRanker(sample);
  TopKDetector detector;
  for (const auto& ex : sample) {
    detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  detector.OnModelUpdated(*ranker, sample);
  // Useful documents switch to an entirely new feature block.
  int triggers = 0;
  for (const auto& ex : Stream(300, 100, 3)) {
    triggers += detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  EXPECT_GT(triggers, 0);
  EXPECT_GT(detector.last_distance(), 0.0);
}

TEST(TopKTest, CheckIntervalSkipsChecks) {
  TopKOptions options;
  options.check_interval = 50;
  TopKDetector detector(options);
  RsvmIeRanker ranker;
  // 49 observations: no check performed, distance never computed.
  for (const auto& ex : Stream(49, 100, 4)) {
    EXPECT_FALSE(detector.Observe(ex.features, ex.label > 0, ranker));
  }
}

// ---- Mod-C ------------------------------------------------------------

TEST(ModCTest, RequiresOnModelUpdatedFirst) {
  ModCDetector detector;
  RsvmIeRanker ranker;
  EXPECT_FALSE(detector.Observe(Vec({{0, 1.0f}}), true, ranker));
}

TEST(ModCTest, SteadyStreamKeepsAngleSmall) {
  const auto sample = Stream(300, 0, 5);
  auto ranker = TrainedRanker(sample);
  ModCDetector detector({.rho = 0.5, .alpha_degrees = 25.0}, 7);
  detector.OnModelUpdated(*ranker, sample);
  int triggers = 0;
  for (const auto& ex : Stream(200, 0, 6)) {
    triggers += detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  EXPECT_EQ(triggers, 0);
}

TEST(ModCTest, ShiftedStreamGrowsAngleAndTriggers) {
  const auto sample = Stream(300, 0, 5);
  auto ranker = TrainedRanker(sample);
  ModCDetector detector({.rho = 1.0, .alpha_degrees = 2.0}, 7);
  detector.OnModelUpdated(*ranker, sample);
  int triggers = 0;
  for (const auto& ex : Stream(400, 100, 8)) {
    triggers += detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  EXPECT_GT(triggers, 0);
  EXPECT_GT(detector.last_angle_degrees(), 0.0);
}

TEST(ModCTest, RhoZeroNeverFeedsShadow) {
  const auto sample = Stream(100, 0, 5);
  auto ranker = TrainedRanker(sample);
  ModCDetector detector({.rho = 0.0, .alpha_degrees = 0.001}, 7);
  detector.OnModelUpdated(*ranker, sample);
  for (const auto& ex : Stream(100, 100, 9)) {
    EXPECT_FALSE(detector.Observe(ex.features, ex.label > 0, *ranker));
  }
}

// ---- Feat-S ------------------------------------------------------------

TEST(FeatSTest, NoCheckBeforeMinDocs) {
  FeatSOptions options;
  options.min_docs_between_checks = 1000;
  FeatSDetector detector(options);
  const auto sample = Stream(50, 0, 11);
  auto ranker = TrainedRanker(sample);
  detector.OnModelUpdated(*ranker, sample);
  for (const auto& ex : Stream(500, 100, 12)) {
    EXPECT_FALSE(detector.Observe(ex.features, ex.label > 0, *ranker));
  }
}

TEST(FeatSTest, ShiftedDistributionTriggers) {
  FeatSOptions options;
  options.min_docs_between_checks = 50;
  options.window = 50;
  FeatSDetector detector(options);
  const auto sample = Stream(200, 0, 13);
  auto ranker = TrainedRanker(sample);
  detector.OnModelUpdated(*ranker, sample);
  int triggers = 0;
  for (const auto& ex : Stream(200, 300, 14)) {
    triggers += detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  EXPECT_GT(triggers, 0);
  EXPECT_GT(detector.last_shift(), 0.5);
}

TEST(FeatSTest, InDistributionStreamQuiet) {
  FeatSOptions options;
  options.min_docs_between_checks = 50;
  options.window = 50;
  // A conservative margin keeps in-distribution inlier rates well above
  // the trigger threshold (the production default of 0.45 is calibrated
  // for the noisier real pipeline streams).
  options.margin_quantile = 0.15;
  FeatSDetector detector(options);
  const auto sample = Stream(300, 0, 15);
  auto ranker = TrainedRanker(sample);
  detector.OnModelUpdated(*ranker, sample);
  int triggers = 0;
  for (const auto& ex : Stream(300, 0, 16)) {
    triggers += detector.Observe(ex.features, ex.label > 0, *ranker);
  }
  EXPECT_EQ(triggers, 0);
}

}  // namespace
}  // namespace ie
