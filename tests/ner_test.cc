#include "extract/ner.h"

#include <gtest/gtest.h>

#include "extract/crf_ner.h"
#include "extract/hmm_ner.h"
#include "extract/memm_ner.h"
#include "extract/sequence_tagger.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace ie {
namespace {

class RuleNerTest : public ::testing::Test {
 protected:
  Document Doc(const std::string& text) {
    return TextToDocument(0, text, vocab_);
  }
  Vocabulary vocab_;
};

// ---- GazetteerNer ---------------------------------------------------------

TEST_F(RuleNerTest, GazetteerFindsSingleToken) {
  GazetteerNer ner(EntityType::kDisease, {"cholera", "malaria"}, &vocab_);
  const auto mentions = ner.Recognize(Doc("an outbreak of cholera struck."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "cholera");
  EXPECT_EQ(mentions[0].type, EntityType::kDisease);
  EXPECT_EQ(mentions[0].begin, 3u);
  EXPECT_EQ(mentions[0].end, 4u);
}

TEST_F(RuleNerTest, GazetteerLongestMatchWins) {
  GazetteerNer ner(EntityType::kNaturalDisaster,
                   {"storm", "tropical storm"}, &vocab_);
  const auto mentions = ner.Recognize(Doc("a tropical storm formed."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "tropical storm");
}

TEST_F(RuleNerTest, GazetteerFindsMultipleMentions) {
  GazetteerNer ner(EntityType::kDisease, {"cholera"}, &vocab_);
  const auto mentions =
      ner.Recognize(Doc("cholera here. more cholera there."));
  EXPECT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[1].sentence, 1u);
}

TEST_F(RuleNerTest, GazetteerCoverageDropsEntries) {
  std::vector<std::string> entries;
  for (int i = 0; i < 200; ++i) entries.push_back("term" + std::to_string(i));
  GazetteerNer full(EntityType::kDisease, entries, &vocab_, 1.0);
  GazetteerNer partial(EntityType::kDisease, entries, &vocab_, 0.5, 3);
  EXPECT_EQ(full.DictionarySize(), 200u);
  EXPECT_LT(partial.DictionarySize(), 140u);
  EXPECT_GT(partial.DictionarySize(), 60u);
}

TEST_F(RuleNerTest, GazetteerNoMatchesInUnrelatedText) {
  GazetteerNer ner(EntityType::kDisease, {"cholera"}, &vocab_);
  EXPECT_TRUE(ner.Recognize(Doc("nothing to see here.")).empty());
}

// ---- PatternNer -----------------------------------------------------------

TEST_F(RuleNerTest, PatternMatchesStemSuffix) {
  PatternNer ner({"corporation", "institute"}, &vocab_);
  const auto mentions =
      ner.Recognize(Doc("he joined acme corporation yesterday."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "acme corporation");
  EXPECT_EQ(mentions[0].type, EntityType::kOrganization);
}

TEST_F(RuleNerTest, PatternRejectsStopwordStems) {
  PatternNer ner({"corporation"}, &vocab_);
  EXPECT_TRUE(ner.Recognize(Doc("the corporation acted.")).empty());
}

TEST_F(RuleNerTest, PatternMatchesUniversityOf) {
  PatternNer ner({"university"}, &vocab_);
  const auto mentions = ner.Recognize(Doc("at the university of lisbon."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "university of lisbon");
}

TEST_F(RuleNerTest, PatternRejectsDoubleSuffix) {
  PatternNer ner({"corporation", "industries"}, &vocab_);
  // "corporation industries" would match "<word> <suffix>" with a suffix
  // stem; the stop rule rejects it.
  EXPECT_TRUE(
      ner.Recognize(Doc("the corporation industries merged.")).empty());
}

// ---- TemporalNer ------------------------------------------------------------

TEST_F(RuleNerTest, TemporalMatchesMonthYear) {
  TemporalNer ner(&vocab_);
  const auto mentions = ner.Recognize(Doc("it began in march 1994 there."));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "march 1994");
  EXPECT_EQ(mentions[0].type, EntityType::kTemporal);
}

TEST_F(RuleNerTest, TemporalRejectsBareMonthOrOddYear) {
  TemporalNer ner(&vocab_);
  EXPECT_TRUE(ner.Recognize(Doc("in march they left.")).empty());
  EXPECT_TRUE(ner.Recognize(Doc("march 94 was cold.")).empty());
  EXPECT_TRUE(ner.Recognize(Doc("march 99999 invalid.")).empty());
}

// ---- MergeMentions -----------------------------------------------------------

TEST(MergeMentionsTest, DropsContainedSpans) {
  std::vector<EntityMention> a = {
      {0, 2, 3, EntityType::kNaturalDisaster, "storm"}};
  std::vector<EntityMention> b = {
      {0, 1, 3, EntityType::kNaturalDisaster, "tropical storm"}};
  const auto merged = MergeMentions({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].value, "tropical storm");
}

TEST(MergeMentionsTest, KeepsDisjointSpans) {
  std::vector<EntityMention> a = {{0, 0, 1, EntityType::kPerson, "x"}};
  std::vector<EntityMention> b = {{0, 5, 6, EntityType::kLocation, "y"}};
  EXPECT_EQ(MergeMentions({a, b}).size(), 2u);
}

TEST(MergeMentionsTest, DifferentSentencesNotMerged) {
  std::vector<EntityMention> a = {{0, 0, 2, EntityType::kPerson, "x y"}};
  std::vector<EntityMention> b = {{1, 0, 1, EntityType::kPerson, "x"}};
  EXPECT_EQ(MergeMentions({a, b}).size(), 2u);
}

TEST(MergeMentionsTest, OutputSortedByPosition) {
  std::vector<EntityMention> a = {{1, 4, 5, EntityType::kPerson, "b"},
                                  {0, 2, 3, EntityType::kPerson, "a"}};
  const auto merged = MergeMentions({a});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].sentence, 0u);
  EXPECT_EQ(merged[1].sentence, 1u);
}

// ---- BIO helpers ---------------------------------------------------------

TEST(DecodeBioTest, DecodesSpans) {
  Vocabulary vocab;
  Sentence s{{vocab.Intern("maria"), vocab.Intern("lopez"),
              vocab.Intern("spoke")}};
  const std::vector<uint8_t> labels = {kB, kI, kO};
  const auto mentions = DecodeBio(s, labels, 0, EntityType::kPerson, vocab);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "maria lopez");
}

TEST(DecodeBioTest, OrphanInsideStartsMention) {
  Vocabulary vocab;
  Sentence s{{vocab.Intern("a"), vocab.Intern("b")}};
  const std::vector<uint8_t> labels = {kO, kI};
  const auto mentions = DecodeBio(s, labels, 0, EntityType::kPerson, vocab);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].value, "b");
}

TEST(DecodeBioTest, AdjacentMentionsViaBB) {
  Vocabulary vocab;
  Sentence s{{vocab.Intern("a"), vocab.Intern("b")}};
  const std::vector<uint8_t> labels = {kB, kB};
  EXPECT_EQ(
      DecodeBio(s, labels, 0, EntityType::kPerson, vocab).size(), 2u);
}

TEST(CollectTaggedSentencesTest, LabelsMatchAnnotations) {
  const Corpus& corpus = test::SharedCorpus();
  const auto data = CollectTaggedSentences(
      corpus, corpus.splits().train, EntityType::kPerson, 0.1, 5);
  ASSERT_FALSE(data.empty());
  size_t b_labels = 0;
  for (const TaggedSentence& ts : data) {
    ASSERT_EQ(ts.labels.size(), ts.sentence->size());
    for (uint8_t l : ts.labels) {
      ASSERT_LE(l, kI);
      b_labels += l == kB;
    }
  }
  EXPECT_GT(b_labels, 0u);
}

// ---- Learned taggers ---------------------------------------------------
// Trained the way the production factory trains them: on a dedicated
// relation-dense generated corpus sharing the main corpus vocabulary (the
// shared corpus train split is far too sparse for standalone training);
// evaluated against the shared corpus dev split.

const Corpus& TaggerTrainingCorpus() {
  static const Corpus* corpus = [] {
    GeneratorOptions options = GeneratorOptions::ForExtractorTraining(
        RelationId::kNaturalDisaster, 900, 71);
    options.shared_vocab = test::SharedCorpus().shared_vocab();
    return new Corpus(GenerateCorpus(options));
  }();
  return *corpus;
}

std::vector<TaggedSentence> TaggerTrainingData(EntityType type) {
  const Corpus& corpus = TaggerTrainingCorpus();
  return CollectTaggedSentences(corpus, corpus.splits().train, type, 0.25,
                                7);
}

struct TaggerQuality {
  double precision = 0.0;
  double recall = 0.0;
};

template <typename Ner>
TaggerQuality EvaluateTagger(const Ner& ner, EntityType type) {
  const Corpus& corpus = test::SharedCorpus();
  size_t tp = 0, fp = 0, fn = 0;
  const auto& dev = corpus.splits().dev;
  for (size_t i = 0; i < 300 && i < dev.size(); ++i) {
    const DocId id = dev[i];
    const auto found = ner.Recognize(corpus.doc(id));
    std::vector<const EntityMention*> gold;
    for (const EntityMention& m : corpus.annotations(id).mentions) {
      if (m.type == type) gold.push_back(&m);
    }
    for (const EntityMention& f : found) {
      bool matched = false;
      for (const EntityMention* g : gold) {
        if (g->sentence == f.sentence && g->begin == f.begin &&
            g->end == f.end) {
          matched = true;
          break;
        }
      }
      (matched ? tp : fp) += 1;
    }
    for (const EntityMention* g : gold) {
      bool matched = false;
      for (const EntityMention& f : found) {
        if (g->sentence == f.sentence && g->begin == f.begin &&
            g->end == f.end) {
          matched = true;
          break;
        }
      }
      if (!matched) ++fn;
    }
  }
  TaggerQuality q;
  q.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  q.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  return q;
}

TEST(HmmNerTest, LearnsPersonRecognition) {
  const Corpus& corpus = test::SharedCorpus();
  HmmNer ner(EntityType::kPerson, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kPerson));
  ASSERT_TRUE(ner.trained());
  const TaggerQuality q = EvaluateTagger(ner, EntityType::kPerson);
  EXPECT_GT(q.recall, 0.7);
  EXPECT_GT(q.precision, 0.5);
}

TEST(HmmNerTest, UntrainedLabelsEverythingOutside) {
  const Corpus& corpus = test::SharedCorpus();
  HmmNer ner(EntityType::kPerson, &corpus.vocab());
  EXPECT_TRUE(ner.Recognize(corpus.doc(0)).empty());
}

TEST(MemmNerTest, LearnsDisasterRecognition) {
  const Corpus& corpus = test::SharedCorpus();
  MemmNer ner(EntityType::kNaturalDisaster, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kNaturalDisaster));
  const TaggerQuality q = EvaluateTagger(ner, EntityType::kNaturalDisaster);
  EXPECT_GT(q.recall, 0.6);
  EXPECT_GT(q.precision, 0.5);
}

TEST(CrfLiteNerTest, LearnsLocationRecognition) {
  const Corpus& corpus = test::SharedCorpus();
  CrfLiteNer ner(EntityType::kLocation, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kLocation));
  const TaggerQuality q = EvaluateTagger(ner, EntityType::kLocation);
  EXPECT_GT(q.recall, 0.7);
  EXPECT_GT(q.precision, 0.6);
}

// Both learned taggers decode through reusable per-thread scratch buffers
// (flat DP tables in CrfLiteNer::Viterbi, the feature vector in
// MemmNer::Label). Pin that reuse never leaks state between sentences: a
// second decoding pass — running with scratch warm from every earlier
// sentence, including longer ones — must reproduce the first pass exactly,
// in both orders.
template <typename Ner>
void ExpectStableTags(const Ner& ner) {
  const Corpus& corpus = test::SharedCorpus();
  const auto& dev = corpus.splits().dev;
  std::vector<std::vector<std::vector<uint8_t>>> first;
  for (size_t i = 0; i < 50 && i < dev.size(); ++i) {
    const Document& doc = corpus.doc(dev[i]);
    auto& tags = first.emplace_back();
    for (const Sentence& sentence : doc.sentences) {
      tags.push_back(ner.LabelSentence(sentence));
    }
  }
  for (size_t i = first.size(); i-- > 0;) {
    const Document& doc = corpus.doc(dev[i]);
    for (size_t s = doc.sentences.size(); s-- > 0;) {
      ASSERT_EQ(ner.LabelSentence(doc.sentences[s]), first[i][s])
          << "doc " << dev[i] << " sentence " << s;
    }
  }
}

TEST(MemmNerTest, ScratchReuseKeepsTagsStable) {
  const Corpus& corpus = test::SharedCorpus();
  MemmNer ner(EntityType::kNaturalDisaster, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kNaturalDisaster));
  ExpectStableTags(ner);
}

TEST(CrfLiteNerTest, ScratchReuseKeepsTagsStable) {
  const Corpus& corpus = test::SharedCorpus();
  CrfLiteNer ner(EntityType::kLocation, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kLocation));
  ExpectStableTags(ner);
}

TEST(CrfLiteNerTest, LearnsChargeRecognition) {
  const Corpus& corpus = test::SharedCorpus();
  CrfLiteNer ner(EntityType::kCharge, &corpus.vocab());
  ner.Train(TaggerTrainingData(EntityType::kCharge));
  const TaggerQuality q = EvaluateTagger(ner, EntityType::kCharge);
  EXPECT_GT(q.recall, 0.6);
}

}  // namespace
}  // namespace ie
