// Full-pipeline golden-hash determinism test (DESIGN.md §12). Each run is
// canonically serialized — processing order, per-document usefulness,
// update positions, the extracted tuples of every processed document, the
// final model weights, and the simulated extraction cost, all floats
// rendered through ie::FormatDouble so the bytes are locale-independent
// and shortest-round-trip — and folded into an FNV-1a digest.
//
// Two layers of protection:
//   1. Cross-thread byte-stability (strict, always on): for a fixed
//      (ranker, seed) the digest must be identical at extract_threads
//      1, 2, and 8. Any divergence means speculation or a hash-order
//      dependence leaked into results.
//   2. Pinned golden digests: the digest must equal the recorded
//      constant, catching silent behavior drift from refactors that
//      "look" equivalent (map-iteration reorderings, float reassociation,
//      format changes). The pins assume one floating environment; on a
//      toolchain with a different libm set IE_GOLDEN_SKIP_PIN=1 to keep
//      layer 1 while skipping layer 2, and re-pin deliberately.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

// 64-bit FNV-1a. Stable by construction (no library hashing involved).
class Digest {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= 1099511628211ull;
    }
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  void U64(uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    Bytes(b, 8);
  }
  /// Doubles go through FormatDouble: the digest pins the exact bytes an
  /// export would contain, not a bit-pattern that could mask format bugs.
  void Double(double v) { Str(FormatDouble(v)); }

  std::string Hex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = kDigits[(state_ >> (4 * i)) & 0xF];
    }
    return out;
  }

 private:
  uint64_t state_ = 14695981039346656037ull;
};

std::string RunDigest(const SharedContext& context,
                      const PipelineResult& result) {
  Digest d;
  d.U64(result.processing_order.size());
  for (DocId doc : result.processing_order) d.U64(doc);
  for (uint8_t useful : result.processed_useful) d.U64(useful);
  d.U64(result.update_positions.size());
  for (size_t pos : result.update_positions) d.U64(pos);
  d.U64(result.warmup_documents);
  // Ranked tuple stream: the extractions in consumption order — the
  // artifact the paper's user actually receives.
  for (DocId doc : result.processing_order) {
    for (const ExtractedTuple& tuple : context.outcomes->tuples(doc)) {
      d.U64(static_cast<uint64_t>(tuple.relation));
      d.Str(tuple.attr1);
      d.Str(tuple.attr2);
      d.U64(tuple.sentence);
    }
  }
  d.U64(result.final_weights.size());
  for (const auto& [id, weight] : result.final_weights) {
    d.U64(id);
    d.Double(weight);
  }
  d.Double(result.extraction_seconds);
  return d.Hex();
}

struct GoldenCase {
  RankerKind ranker;
  uint64_t seed;
  /// Expected digest; pinned from the reference toolchain.
  const char* pinned;
};

class DeterminismGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(DeterminismGoldenTest, ByteStableAcrossThreadsAndPinned) {
  const GoldenCase param = GetParam();
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config = PipelineConfig::Defaults(
      param.ranker, SamplerKind::kSRS, UpdateKind::kModC, param.seed);
  config.sample_size = 120;
  // The flight recorder is a passive observer: running with it on must
  // reproduce the pinned digests bit for bit (inert no-op in obs-off).
  config.record_iterations = true;

  std::string first;
  for (size_t threads : {1u, 2u, 8u}) {
    config.extract_threads = threads;
    const PipelineResult result =
        AdaptiveExtractionPipeline::Run(context, config);
    ASSERT_FALSE(result.final_weights.empty());
    // final_weights must arrive id-sorted: the facade guarantee.
    for (size_t i = 1; i < result.final_weights.size(); ++i) {
      ASSERT_LT(result.final_weights[i - 1].first,
                result.final_weights[i].first);
    }
    const std::string digest = RunDigest(context, result);
    if (first.empty()) {
      first = digest;
    } else {
      EXPECT_EQ(digest, first)
          << "digest diverged at extract_threads=" << threads;
    }
  }

  if (std::getenv("IE_GOLDEN_SKIP_PIN") != nullptr) {
    GTEST_LOG_(INFO) << "IE_GOLDEN_SKIP_PIN set; computed digest " << first;
    return;
  }
  EXPECT_EQ(first, param.pinned)
      << "golden digest drifted — if the change is intentional, re-pin "
         "with the digest above (see DESIGN.md §12)";
}

INSTANTIATE_TEST_SUITE_P(
    RankersAndSeeds, DeterminismGoldenTest,
    ::testing::Values(
        GoldenCase{RankerKind::kRSVMIE, 1, "54f792feff0fe676"},
        GoldenCase{RankerKind::kRSVMIE, 7, "117e9de66fedc05a"},
        GoldenCase{RankerKind::kBAggIE, 1, "e49e16915087925a"},
        GoldenCase{RankerKind::kBAggIE, 7, "7e3674ddc89acdb3"}));

}  // namespace
}  // namespace ie
