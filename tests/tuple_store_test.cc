#include "extract/tuple_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ie {
namespace {

ExtractedTuple Tuple(const std::string& a1, const std::string& a2,
                     uint32_t sentence = 0) {
  return {RelationId::kNaturalDisaster, a1, a2, sentence};
}

TEST(TupleStoreTest, DeduplicatesByAttributePair) {
  TupleStore store(RelationId::kNaturalDisaster);
  ASSERT_TRUE(store.Add(1, {Tuple("earthquake", "tokyo")}).ok());
  ASSERT_TRUE(store.Add(2, {Tuple("earthquake", "tokyo", 3)}).ok());
  ASSERT_TRUE(store.Add(2, {Tuple("tsunami", "hawaii")}).ok());
  EXPECT_EQ(store.NumFacts(), 2u);
  EXPECT_EQ(store.NumMentions(), 3u);
}

TEST(TupleStoreTest, TracksProvenance) {
  TupleStore store(RelationId::kNaturalDisaster);
  ASSERT_TRUE(store.Add(1, {Tuple("earthquake", "tokyo")}).ok());
  ASSERT_TRUE(store.Add(5, {Tuple("earthquake", "tokyo")}).ok());
  ASSERT_TRUE(store.Add(5, {Tuple("earthquake", "tokyo", 7)}).ok());
  ASSERT_EQ(store.NumFacts(), 1u);
  const TupleStore::Fact& fact = store.facts()[0];
  EXPECT_EQ(fact.supporting_documents, (std::vector<DocId>{1, 5}));
  EXPECT_EQ(fact.mention_count, 3u);
}

TEST(TupleStoreTest, RejectsWrongRelation) {
  TupleStore store(RelationId::kNaturalDisaster);
  ExtractedTuple wrong{RelationId::kPersonCharge, "a", "b", 0};
  EXPECT_TRUE(store.Add(0, {wrong}).IsInvalidArgument());
}

TEST(TupleStoreTest, LookupByEitherAttribute) {
  TupleStore store(RelationId::kNaturalDisaster);
  ASSERT_TRUE(store.Add(1, {Tuple("earthquake", "tokyo")}).ok());
  ASSERT_TRUE(store.Add(2, {Tuple("earthquake", "osaka")}).ok());
  ASSERT_TRUE(store.Add(3, {Tuple("flood", "tokyo")}).ok());
  EXPECT_EQ(store.FindByAttr1("earthquake").size(), 2u);
  EXPECT_EQ(store.FindByAttr2("tokyo").size(), 2u);
  EXPECT_TRUE(store.FindByAttr1("volcano").empty());
  EXPECT_EQ(store.FindByAttr2("osaka")[0]->attr1, "earthquake");
}

TEST(TupleStoreTest, TopFactsBySupport) {
  TupleStore store(RelationId::kNaturalDisaster);
  for (DocId doc = 0; doc < 5; ++doc) {
    ASSERT_TRUE(store.Add(doc, {Tuple("earthquake", "tokyo")}).ok());
  }
  ASSERT_TRUE(store.Add(9, {Tuple("flood", "osaka")}).ok());
  const auto top = store.TopFactsBySupport(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0]->attr1, "earthquake");
  EXPECT_EQ(store.TopFactsBySupport(10).size(), 2u);
}

TEST(TupleStoreTest, PopulatedFromRealOutcomes) {
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCareer);
  TupleStore store(RelationId::kPersonCareer);
  const auto& pool = test::SharedCorpus().splits().test;
  for (DocId id : pool) {
    ASSERT_TRUE(store.Add(id, outcomes.tuples(id)).ok());
  }
  EXPECT_GT(store.NumFacts(), 100u);
  EXPECT_GE(store.NumMentions(), store.NumFacts());
  // Spot check: every fact's provenance docs actually produced the fact.
  const auto top = store.TopFactsBySupport(3);
  for (const TupleStore::Fact* fact : top) {
    for (DocId doc : fact->supporting_documents) {
      bool found = false;
      for (const ExtractedTuple& t : outcomes.tuples(doc)) {
        found |= t.attr1 == fact->attr1 && t.attr2 == fact->attr2;
      }
      EXPECT_TRUE(found);
    }
  }
}

}  // namespace
}  // namespace ie
