#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "learn/bagging.h"
#include "learn/binary_svm.h"
#include "learn/elastic_net_sgd.h"
#include "learn/feature_selection.h"
#include "learn/one_class_svm.h"
#include "learn/rank_svm.h"

namespace ie {
namespace {

SparseVector Vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

// Synthetic linearly separable task: positive docs use features {0,1},
// negative docs use features {2,3}, with shared noise feature 4.
struct SeparableData {
  std::vector<LabeledExample> examples;

  explicit SeparableData(size_t n, uint64_t seed = 1) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      const bool positive = i % 2 == 0;
      std::vector<SparseVector::Entry> entries;
      entries.emplace_back(positive ? 0 : 2,
                           0.5f + 0.5f * static_cast<float>(rng.NextDouble()));
      entries.emplace_back(positive ? 1 : 3,
                           0.5f + 0.5f * static_cast<float>(rng.NextDouble()));
      entries.emplace_back(4, static_cast<float>(rng.NextDouble()));
      SparseVector v = Vec(std::move(entries));
      v.Normalize();
      examples.push_back({std::move(v), positive ? 1 : -1});
    }
  }
};

// ---- ElasticNetSgd -------------------------------------------------------

TEST(ElasticNetSgdTest, InitialScoreIsZero) {
  ElasticNetSgd sgd;
  EXPECT_DOUBLE_EQ(sgd.Score(Vec({{0, 1.0f}})), 0.0);
  EXPECT_EQ(sgd.steps(), 0u);
}

TEST(ElasticNetSgdTest, StepMovesScoreTowardLabel) {
  ElasticNetSgd sgd({.lambda_all = 0.1, .lambda_l2_share = 1.0});
  const SparseVector x = Vec({{0, 1.0f}});
  EXPECT_TRUE(sgd.Step(x, 1));  // margin 0 < 1: violation
  EXPECT_GT(sgd.Score(x), 0.0);
}

TEST(ElasticNetSgdTest, MarginOscillatesAroundOneOnRepeatedExample) {
  // Pegasos on a single repeated example converges to margin ~1/λ2eff with
  // the hinge active only part of the time: late steps must include some
  // satisfied margins (no gradient).
  ElasticNetSgd sgd({.lambda_all = 0.5, .lambda_l2_share = 1.0});
  const SparseVector x = Vec({{0, 1.0f}});
  for (int i = 0; i < 300; ++i) sgd.Step(x, 1);
  int violations = 0;
  for (int i = 0; i < 100; ++i) violations += sgd.Step(x, 1);
  EXPECT_LT(violations, 100);
  EXPECT_NEAR(sgd.Score(x), 1.0, 1.2);
}

TEST(ElasticNetSgdTest, LearnsSeparableProblem) {
  ElasticNetSgd sgd({.lambda_all = 0.05, .lambda_l2_share = 0.99});
  SeparableData data(400);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& ex : data.examples) sgd.Step(ex.features, ex.label);
  }
  size_t correct = 0;
  for (const auto& ex : data.examples) {
    const double score = sgd.Score(ex.features);
    correct += (score > 0) == (ex.label > 0);
  }
  EXPECT_GT(static_cast<double>(correct) / data.examples.size(), 0.95);
}

TEST(ElasticNetSgdTest, L1ProducesSparserModelThanL2) {
  // Many irrelevant noise features: the elastic net must zero (many of)
  // them while pure ℓ2 keeps them merely small.
  Rng rng(7);
  std::vector<LabeledExample> data;
  for (int i = 0; i < 600; ++i) {
    const bool positive = i % 2 == 0;
    std::vector<SparseVector::Entry> entries;
    entries.emplace_back(positive ? 0 : 1, 1.0f);
    for (int k = 0; k < 4; ++k) {
      entries.emplace_back(2 + rng.NextBounded(40),
                           0.3f * static_cast<float>(rng.NextDouble()));
    }
    SparseVector v = Vec(std::move(entries));
    v.Normalize();
    data.push_back({std::move(v), positive ? 1 : -1});
  }
  ElasticNetSgd pure_l2({.lambda_all = 0.05, .lambda_l2_share = 1.0});
  ElasticNetSgd elastic({.lambda_all = 0.05, .lambda_l2_share = 0.2});
  for (const auto& ex : data) {
    pure_l2.Step(ex.features, ex.label);
    elastic.Step(ex.features, ex.label);
  }
  EXPECT_LT(elastic.NonZeroCount(1e-6), pure_l2.NonZeroCount(1e-6));
  // Both still separate the signal features.
  EXPECT_GT(elastic.Score(data[0].features), elastic.Score(data[1].features));
}

TEST(ElasticNetSgdTest, DenseWeightsMatchScores) {
  ElasticNetSgd sgd({.lambda_all = 0.1, .lambda_l2_share = 0.9});
  SeparableData data(100, 3);
  for (const auto& ex : data.examples) sgd.Step(ex.features, ex.label);
  const WeightVector w = sgd.DenseWeights();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(w.Dot(data.examples[i].features),
                sgd.Score(data.examples[i].features), 1e-9);
  }
}

TEST(ElasticNetSgdTest, PairStepPrefersPositive) {
  ElasticNetSgd sgd({.lambda_all = 0.1, .lambda_l2_share = 0.99});
  const SparseVector pos = Vec({{0, 1.0f}});
  const SparseVector neg = Vec({{1, 1.0f}});
  for (int i = 0; i < 50; ++i) sgd.PairStep(pos, neg);
  EXPECT_GT(sgd.Score(pos), sgd.Score(neg));
}

TEST(ElasticNetSgdTest, ForcedStepAppliesGradient) {
  ElasticNetSgd sgd;
  const SparseVector x = Vec({{0, 1.0f}});
  sgd.ForcedStep(x, 1.0);
  EXPECT_GT(sgd.Score(x), 0.0);
  const double before = sgd.Score(x);
  sgd.ForcedStep(SparseVector(), 0.0);  // decay-only step
  EXPECT_LT(sgd.Score(x), before);
}

TEST(ElasticNetSgdTest, StepClampKeepsLearningRateAlive) {
  ElasticNetOptions clamped{.lambda_all = 0.1,
                            .lambda_l2_share = 1.0,
                            .step_offset = 2.0,
                            .step_clamp = 100};
  ElasticNetOptions unclamped{.lambda_all = 0.1, .lambda_l2_share = 1.0};
  ElasticNetSgd a(clamped), b(unclamped);
  const SparseVector warm = Vec({{0, 1.0f}});
  for (int i = 0; i < 5000; ++i) {
    a.ForcedStep(warm, 0.0);
    b.ForcedStep(warm, 0.0);
  }
  const SparseVector fresh = Vec({{1, 1.0f}});
  a.ForcedStep(fresh, 1.0);
  b.ForcedStep(fresh, 1.0);
  // The clamped learner still takes meaningful steps late in the run.
  EXPECT_GT(a.Score(fresh), 10.0 * b.Score(fresh));
}

TEST(ElasticNetSgdTest, FactoredCommitDeltaTracksScores) {
  // The incremental re-rank engine advances cached margins m = w·x and sign
  // masses z = Σ sign(w)·x through the factored delta of CommitAll():
  //   m' = scale·m − penalty·z + margin_correction·x
  //   z' = z + sign_correction·x
  // Verify that against direct scoring with the committed dense weights.
  ElasticNetSgd sgd({.lambda_all = 0.05, .lambda_l2_share = 0.9});
  SeparableData data(200, 17);
  for (size_t i = 0; i < 80; ++i) {
    sgd.Step(data.examples[i].features, data.examples[i].label);
  }
  sgd.CommitAll();  // baseline snapshot
  const WeightVector w1 = sgd.DenseWeights();

  std::vector<double> m, z;
  for (size_t i = 0; i < 20; ++i) {
    m.push_back(w1.Dot(data.examples[i].features));
    z.push_back(w1.SignMass(data.examples[i].features));
  }

  for (size_t i = 80; i < 200; ++i) {
    sgd.Step(data.examples[i].features, data.examples[i].label);
  }
  const FactoredWeightDelta delta = sgd.CommitAll();
  const WeightVector w2 = sgd.DenseWeights();
  EXPECT_FALSE(delta.identity());

  for (size_t i = 0; i < 20; ++i) {
    const SparseVector& x = data.examples[i].features;
    const double advanced = delta.scale * m[i] - delta.penalty * z[i] +
                            DeltaDot(delta.margin_correction, x);
    EXPECT_NEAR(advanced, w2.Dot(x), 1e-10) << "doc " << i;
    const double sign_advanced = z[i] + DeltaDot(delta.sign_correction, x);
    EXPECT_NEAR(sign_advanced, w2.SignMass(x), 1e-12) << "doc " << i;
  }
}

TEST(ElasticNetSgdTest, CommitAllIsIdempotentIdentity) {
  ElasticNetSgd sgd({.lambda_all = 0.05, .lambda_l2_share = 0.9});
  SeparableData data(40, 3);
  for (const auto& ex : data.examples) sgd.Step(ex.features, ex.label);
  sgd.CommitAll();
  // No steps between commits: the delta must be the exact identity.
  const FactoredWeightDelta delta = sgd.CommitAll();
  EXPECT_TRUE(delta.identity());
}

TEST(ElasticNetSgdTest, CopyIsIndependent) {
  ElasticNetSgd a({.lambda_all = 0.1, .lambda_l2_share = 1.0});
  const SparseVector x = Vec({{0, 1.0f}});
  a.Step(x, 1);
  const double a_score = a.Score(x);
  ElasticNetSgd b = a;
  EXPECT_DOUBLE_EQ(b.Score(x), a_score);
  b.Step(x, 1);
  b.Step(x, 1);
  // Stepping the copy must not disturb the original.
  EXPECT_DOUBLE_EQ(a.Score(x), a_score);
  EXPECT_NE(a.steps(), b.steps());
  EXPECT_NE(b.Score(x), a_score);
}

// ---- OnlineBinarySvm ------------------------------------------------------

TEST(OnlineBinarySvmTest, LearnsSeparableTask) {
  OnlineBinarySvm svm({.lambda_all = 0.05, .lambda_l2_share = 0.99});
  SeparableData data(400, 11);
  Rng rng(5);
  svm.TrainBatch(data.examples, 4, &rng);
  size_t correct = 0;
  for (const auto& ex : data.examples) {
    correct += svm.Predict(ex.features) == (ex.label > 0);
  }
  EXPECT_GT(static_cast<double>(correct) / data.examples.size(), 0.95);
}

TEST(OnlineBinarySvmTest, ConfidenceIsSigmoidOfMargin) {
  OnlineBinarySvm svm;
  SeparableData data(50, 13);
  Rng rng(5);
  svm.TrainBatch(data.examples, 2, &rng);
  for (size_t i = 0; i < 5; ++i) {
    const double margin = svm.Margin(data.examples[i].features);
    const double conf = svm.Confidence(data.examples[i].features);
    EXPECT_NEAR(conf, 1.0 / (1.0 + std::exp(-margin)), 1e-12);
    EXPECT_GT(conf, 0.0);
    EXPECT_LT(conf, 1.0);
  }
}

TEST(OnlineBinarySvmTest, BiasLearnsSkewedPrior) {
  // All-positive data should push the bias up.
  OnlineBinarySvm svm;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    svm.Update(Vec({{static_cast<uint32_t>(i % 7), 1.0f}}), 1);
  }
  EXPECT_GT(svm.bias(), 0.0);
}

// ---- OnlineRankSvm ---------------------------------------------------------

TEST(OnlineRankSvmTest, RanksUsefulAboveUseless) {
  OnlineRankSvm svm({.sgd = {.lambda_all = 0.1, .lambda_l2_share = 0.99}},
                    3);
  SeparableData data(300, 17);
  for (const auto& ex : data.examples) {
    svm.Observe(ex.features, ex.label > 0);
  }
  svm.TrainPairs(2000);
  double pos_mean = 0.0, neg_mean = 0.0;
  size_t pos_n = 0, neg_n = 0;
  for (const auto& ex : data.examples) {
    if (ex.label > 0) {
      pos_mean += svm.Score(ex.features);
      ++pos_n;
    } else {
      neg_mean += svm.Score(ex.features);
      ++neg_n;
    }
  }
  EXPECT_GT(pos_mean / pos_n, neg_mean / neg_n);
}

TEST(OnlineRankSvmTest, NoTrainingWithoutBothClasses) {
  OnlineRankSvm svm({}, 3);
  svm.Observe(Vec({{0, 1.0f}}), true);
  svm.Observe(Vec({{1, 1.0f}}), true);
  EXPECT_EQ(svm.steps(), 0u);  // no useless docs yet: no pairs possible
  svm.Observe(Vec({{2, 1.0f}}), false);
  EXPECT_GT(svm.steps(), 0u);
}

TEST(OnlineRankSvmTest, ReservoirCapsPoolSize) {
  RankSvmOptions options;
  options.pool_capacity = 10;
  options.steps_per_observation = 0;
  OnlineRankSvm svm(options, 3);
  for (int i = 0; i < 100; ++i) {
    svm.Observe(Vec({{static_cast<uint32_t>(i), 1.0f}}), true);
  }
  EXPECT_EQ(svm.useful_pool_size(), 10u);
}

// ---- BaggingCommittee ------------------------------------------------------

TEST(BaggingCommitteeTest, ScoreBoundedByCommitteeSize) {
  BaggingCommittee committee({.sgd = {}, .committee_size = 3}, 5);
  SeparableData data(60, 19);
  committee.TrainInitial(data.examples);
  for (const auto& ex : data.examples) {
    const double s = committee.Score(ex.features);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 3.0);
  }
}

TEST(BaggingCommitteeTest, SeparatesClassesAfterTraining) {
  BaggingCommittee committee(
      {.sgd = {.lambda_all = 0.05, .lambda_l2_share = 0.99},
       .committee_size = 3,
       .initial_epochs = 6},
      5);
  SeparableData data(300, 23);
  committee.TrainInitial(data.examples);
  double pos = 0.0, neg = 0.0;
  for (const auto& ex : data.examples) {
    (ex.label > 0 ? pos : neg) += committee.Score(ex.features);
  }
  EXPECT_GT(pos, neg);
}

TEST(BaggingCommitteeTest, OnlineObserveImprovesNewPattern) {
  BaggingCommittee committee(
      {.sgd = {.lambda_all = 0.1,
               .lambda_l2_share = 0.99,
               .step_offset = 2.0,
               .step_clamp = 500},
       .committee_size = 3},
      5);
  SeparableData data(200, 29);
  committee.TrainInitial(data.examples);
  // A new positive pattern on unseen features.
  const SparseVector novel = Vec({{40, 0.7f}, {41, 0.7f}});
  const double before = committee.Score(novel);
  for (int i = 0; i < 60; ++i) committee.Observe(novel, true);
  EXPECT_GT(committee.Score(novel), before);
}

TEST(BaggingCommitteeTest, MeanDenseWeightsAveragesMembers) {
  BaggingCommittee committee({.sgd = {}, .committee_size = 2}, 5);
  SeparableData data(100, 31);
  committee.TrainInitial(data.examples);
  const WeightVector mean = committee.MeanDenseWeights();
  const WeightVector w0 = committee.member(0).DenseWeights();
  const WeightVector w1 = committee.member(1).DenseWeights();
  for (uint32_t id = 0; id < 5; ++id) {
    EXPECT_NEAR(mean.Get(id), 0.5 * (w0.Get(id) + w1.Get(id)), 1e-9);
  }
}

// ---- OneClassSvm -----------------------------------------------------------

TEST(OneClassSvmTest, InlierScoresHigherThanOutlier) {
  OneClassSvm svm({.gamma = 4.0, .lambda = 0.01, .budget = 64}, 7);
  Rng rng(3);
  // Training cloud: features {0,1}.
  for (int i = 0; i < 200; ++i) {
    SparseVector v = Vec({{0, 0.6f + 0.1f * (float)rng.NextDouble()},
                          {1, 0.6f + 0.1f * (float)rng.NextDouble()}});
    v.Normalize();
    svm.Observe(v);
  }
  SparseVector inlier = Vec({{0, 0.65f}, {1, 0.65f}});
  inlier.Normalize();
  SparseVector outlier = Vec({{5, 1.0f}});
  EXPECT_GT(svm.Decision(inlier), svm.Decision(outlier));
}

TEST(OneClassSvmTest, BudgetEnforced) {
  OneClassSvm svm({.gamma = 4.0, .lambda = 0.01, .budget = 16}, 7);
  for (int i = 0; i < 100; ++i) {
    svm.Observe(Vec({{static_cast<uint32_t>(i), 1.0f}}));
  }
  EXPECT_LE(svm.NumSupportVectors(), 17u);
}

// ---- Feature selection ------------------------------------------------------

TEST(TopKFeaturesTest, OrdersByAbsoluteWeight) {
  WeightVector w;
  w.Set(0, 0.1);
  w.Set(1, -2.0);
  w.Set(2, 1.0);
  const auto top = TopKFeatures(w, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_DOUBLE_EQ(top[0].weight, 2.0);
  EXPECT_EQ(top[1].id, 2u);
}

TEST(TopKFeaturesTest, FewerThanKReturnsAll) {
  WeightVector w;
  w.Set(3, 1.0);
  EXPECT_EQ(TopKFeatures(w, 10).size(), 1u);
}

TEST(FootruleTest, IdenticalListsHaveZeroDistance) {
  const std::vector<WeightedFeature> list = {{0, 2.0}, {1, 1.0}, {2, 0.5}};
  EXPECT_NEAR(GeneralizedFootrule(list, list), 0.0, 1e-12);
}

TEST(FootruleTest, EmptyListsHaveZeroDistance) {
  EXPECT_DOUBLE_EQ(GeneralizedFootrule({}, {}), 0.0);
}

TEST(FootruleTest, DisjointListsFarApart) {
  const std::vector<WeightedFeature> a = {{0, 1.0}, {1, 1.0}};
  const std::vector<WeightedFeature> b = {{10, 1.0}, {11, 1.0}};
  const std::vector<WeightedFeature> c = {{0, 1.0}, {1, 0.9}};
  EXPECT_GT(GeneralizedFootrule(a, b), GeneralizedFootrule(a, c));
}

TEST(FootruleTest, SwapOfHeavyFeaturesCostsMoreThanLight) {
  const std::vector<WeightedFeature> base = {
      {0, 10.0}, {1, 5.0}, {2, 1.0}, {3, 0.5}};
  std::vector<WeightedFeature> heavy_swap = {
      {1, 10.0}, {0, 5.0}, {2, 1.0}, {3, 0.5}};
  std::vector<WeightedFeature> light_swap = {
      {0, 10.0}, {1, 5.0}, {3, 1.0}, {2, 0.5}};
  EXPECT_GT(GeneralizedFootrule(base, heavy_swap),
            GeneralizedFootrule(base, light_swap));
}

TEST(FootruleTest, Symmetric) {
  const std::vector<WeightedFeature> a = {{0, 3.0}, {1, 1.0}, {5, 0.5}};
  const std::vector<WeightedFeature> b = {{1, 2.0}, {7, 1.5}, {0, 0.5}};
  EXPECT_NEAR(GeneralizedFootrule(a, b), GeneralizedFootrule(b, a), 1e-12);
}

}  // namespace
}  // namespace ie
