// VIOLATION — releasing a mutex that is not held. Expected diagnostic:
// "releasing mutex 'mu_' that was not held".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void StrayUnlock() {
    mu_.Unlock();  // BAD: never locked
  }

 private:
  ie::Mutex mu_;
};

}  // namespace

int main() {
  Guarded g;
  g.StrayUnlock();
  return 0;
}
