// VIOLATION — a raw Lock() with no matching Unlock() on one path.
// Expected diagnostic: "mutex 'mu_' is still held at the end of function".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void Leak() {
    mu_.Lock();
    ++value_;
    // BAD: returns without mu_.Unlock()
  }

 private:
  ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Leak();
  return 0;
}
