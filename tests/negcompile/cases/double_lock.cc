// VIOLATION — acquiring a mutex that is already held (self-deadlock with
// std::mutex). Expected diagnostic: "acquiring mutex 'mu_' that is
// already held".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void DoubleLock() {
    mu_.Lock();
    mu_.Lock();  // BAD: already held
    mu_.Unlock();
    mu_.Unlock();
  }

 private:
  ie::Mutex mu_;
};

}  // namespace

int main() {
  Guarded g;
  g.DoubleLock();
  return 0;
}
