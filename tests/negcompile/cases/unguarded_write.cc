// VIOLATION — writing a GUARDED_BY field without holding its mutex.
// Expected diagnostic: "writing variable 'value_' requires holding mutex
// 'mu_' exclusively" [-Wthread-safety-analysis].
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void Increment() {
    ++value_;  // BAD: mu_ not held
  }

 private:
  ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  return 0;
}
