// VIOLATION — writing a field guarded by a SharedMutex while holding only
// the shared (reader) side. Expected diagnostic: "writing variable
// 'value_' requires holding shared_mutex 'mu_' exclusively".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void SneakyWrite() {
    ie::ReaderLock lock(mu_);
    value_ = 7;  // BAD: reader lock only permits reads
  }

 private:
  ie::SharedMutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.SneakyWrite();
  return 0;
}
