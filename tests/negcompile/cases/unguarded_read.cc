// VIOLATION — reading a GUARDED_BY field without holding its mutex (reads
// need at least a shared capability). Expected diagnostic: "reading
// variable 'value_' requires holding mutex 'mu_'".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  int Get() const {
    return value_;  // BAD: mu_ not held
  }

 private:
  mutable ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Get();
}
