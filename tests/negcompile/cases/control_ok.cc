// CONTROL CASE — must COMPILE cleanly under -Wthread-safety[-beta]
// -Werror. Exercises every wrapper (Mutex, SharedMutex, CondVar, scoped
// locks, raw Lock/Unlock) with correct discipline; if this fails, the
// harness flags would be broken and every violation "failure" below it
// meaningless.
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void Increment() EXCLUDES(mu_) {
    ie::MutexLock lock(mu_);
    ++value_;
  }

  void IncrementSplit() EXCLUDES(mu_) {
    mu_.Lock();
    ++value_;
    mu_.Unlock();
  }

  int WaitForPositive() EXCLUDES(mu_) {
    ie::MutexLock lock(mu_);
    while (value_ <= 0) cv_.Wait(mu_);
    return value_;
  }

  void Signal() EXCLUDES(mu_) {
    {
      ie::MutexLock lock(mu_);
      value_ = 1;
    }
    cv_.NotifyAll();
  }

  int ReadShared() EXCLUDES(smu_) {
    ie::ReaderLock lock(smu_);
    return shared_value_;
  }

  void WriteShared(int v) EXCLUDES(smu_) {
    ie::WriterLock lock(smu_);
    shared_value_ = v;
  }

 private:
  ie::Mutex mu_;
  ie::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
  ie::SharedMutex smu_;
  int shared_value_ GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  g.IncrementSplit();
  g.Signal();
  g.WriteShared(2);
  return g.WaitForPositive() + g.ReadShared();
}
