// VIOLATION — acquiring two mutexes against their declared ACQUIRED_BEFORE
// order (the static lock-ordering hint; checked under -Wthread-safety-beta).
// Expected diagnostic: "mutex 'first_' must be acquired before 'second_'"
// / cycle warning from the beta analysis.
#include "common/sync.h"

namespace {

class Ordered {
 public:
  void WrongOrder() {
    ie::MutexLock b(second_);
    ie::MutexLock a(first_);  // BAD: violates first_ ACQUIRED_BEFORE second_
    ++both_;
  }

 private:
  ie::Mutex first_ ACQUIRED_BEFORE(second_);
  ie::Mutex second_;
  int both_ GUARDED_BY(first_) GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Ordered o;
  o.WrongOrder();
  return 0;
}
