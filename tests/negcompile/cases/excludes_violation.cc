// VIOLATION — calling an EXCLUDES(mu) function while holding mu (the
// re-entrancy pattern EXCLUDES exists to forbid: with std::mutex underneath
// this deadlocks at runtime). Expected diagnostic: "cannot call function
// 'Outer' while mutex 'mu_' is held".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void Outer() EXCLUDES(mu_) {
    ie::MutexLock lock(mu_);
    ++value_;
  }

  void Reentrant() {
    ie::MutexLock lock(mu_);
    Outer();  // BAD: mu_ held, Outer would lock it again
  }

 private:
  ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Reentrant();
  return 0;
}
