// VIOLATION — manually unlocking a mutex that a scoped MutexLock still
// owns: the scope's destructor then releases it a second time. Expected
// diagnostic: "releasing mutex 'mu_' that was not held" at end of scope.
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void DoubleRelease() {
    ie::MutexLock lock(mu_);
    ++value_;
    mu_.Unlock();  // BAD: lock's destructor will release mu_ again
  }

 private:
  ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.DoubleRelease();
  return 0;
}
