// VIOLATION — calling a REQUIRES(mu) function without holding the mutex.
// Expected diagnostic: "calling function 'UnsafeIncrement' requires
// holding mutex 'mu_' exclusively".
#include "common/sync.h"

namespace {

class Guarded {
 public:
  void UnsafeIncrement() REQUIRES(mu_) { ++value_; }

  void Broken() {
    UnsafeIncrement();  // BAD: mu_ not held
  }

 private:
  ie::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Broken();
  return 0;
}
