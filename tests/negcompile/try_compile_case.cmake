# Script-mode try_compile runner for one negative-compile case
# (DESIGN.md §11). Invoked per case by ctest (see CMakeLists.txt here):
#
#   cmake -DCXX=<compiler> -DCASE=<file.cc> -DINCLUDE=<src dir>
#         -DFLAGS=<;-list> -DEXPECT=FAIL|OK -P try_compile_case.cmake
#
# EXPECT=FAIL asserts the case does NOT compile *and* that the diagnostic
# actually comes from the thread-safety analysis — a case dying of an
# unrelated syntax error would otherwise masquerade as a pass and the
# harness would prove nothing.
# EXPECT=OK (the control case) asserts a correctly-locked translation unit
# sails through the very same flag set.
cmake_minimum_required(VERSION 3.16)

foreach(var CXX CASE INCLUDE FLAGS EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "try_compile_case.cmake: missing -D${var}=...")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")

execute_process(
  COMMAND "${CXX}" -std=c++20 -fsyntax-only -Wall -Wextra ${flag_list}
          "-I${INCLUDE}" "${CASE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "OK")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "control case failed to compile — the harness "
      "flags are broken, so the violation-case failures below prove "
      "nothing:\n${out}${err}")
  endif()
  message(STATUS "control case compiles cleanly (as required)")
  return()
endif()

if(rc EQUAL 0)
  message(FATAL_ERROR "violation case ${CASE} COMPILED, but the analysis "
    "must reject it — the thread-safety gate is not biting")
endif()
if(NOT "${out}${err}" MATCHES "thread-safety")
  message(FATAL_ERROR "violation case ${CASE} failed to compile, but not "
    "from the thread-safety analysis (wrong reason):\n${out}${err}")
endif()
message(STATUS "violation case rejected by -Wthread-safety (as required)")
