#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "corpus/generator.h"
#include "corpus/lexicon.h"
#include "corpus/relation.h"
#include "test_util.h"

namespace ie {
namespace {

// ---- Relation registry -------------------------------------------------

TEST(RelationTest, SevenRelations) {
  EXPECT_EQ(AllRelations().size(), kNumRelations);
}

TEST(RelationTest, CodesUniqueAndLookupWorks) {
  std::set<std::string> codes;
  for (const RelationSpec& spec : AllRelations()) {
    EXPECT_TRUE(codes.insert(spec.code).second) << spec.code;
    const RelationSpec* found = FindRelationByCode(spec.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, spec.id);
  }
  EXPECT_EQ(FindRelationByCode("XX"), nullptr);
}

TEST(RelationTest, DensitiesMatchPaperTable1) {
  EXPECT_NEAR(GetRelation(RelationId::kPersonOrganization).paper_density,
              0.1695, 1e-9);
  EXPECT_NEAR(GetRelation(RelationId::kDiseaseOutbreak).paper_density,
              0.0008, 1e-9);
  EXPECT_NEAR(GetRelation(RelationId::kPersonCareer).paper_density, 0.4216,
              1e-9);
  EXPECT_NEAR(GetRelation(RelationId::kElectionWinner).paper_density,
              0.0050, 1e-9);
}

TEST(RelationTest, CostModelPreservesPaperSpeedContrast) {
  // The paper: ND ~6 s/doc (slow), PO ~0.01 s/doc (fast).
  EXPECT_DOUBLE_EQ(
      GetRelation(RelationId::kNaturalDisaster).extraction_cost_seconds,
      6.0);
  EXPECT_DOUBLE_EQ(
      GetRelation(RelationId::kPersonOrganization).extraction_cost_seconds,
      0.01);
}

TEST(RelationTest, DenseFlagsMatchPaper) {
  EXPECT_TRUE(GetRelation(RelationId::kPersonCareer).dense);
  EXPECT_TRUE(GetRelation(RelationId::kPersonOrganization).dense);
  EXPECT_FALSE(GetRelation(RelationId::kNaturalDisaster).dense);
}

TEST(RelationTest, EntityTypeNames) {
  EXPECT_STREQ(EntityTypeName(EntityType::kPerson), "Person");
  EXPECT_STREQ(EntityTypeName(EntityType::kTemporal), "Temporal");
}

// ---- Lexicon invariants --------------------------------------------------

TEST(LexiconTest, EveryRelationHasSubtopicsAndTriggers) {
  const Lexicon& lex = GetLexicon();
  for (const RelationSpec& spec : AllRelations()) {
    const size_t rel = static_cast<size_t>(spec.id);
    EXPECT_FALSE(lex.subtopics[rel].empty()) << spec.code;
    EXPECT_FALSE(lex.triggers[rel].empty()) << spec.code;
    for (const auto& st : lex.subtopics[rel]) {
      EXPECT_FALSE(st.entity_terms.empty()) << spec.code << "/" << st.name;
      EXPECT_FALSE(st.flavor_words.empty()) << spec.code << "/" << st.name;
      EXPECT_GT(st.prevalence, 0.0);
    }
  }
}

TEST(LexiconTest, SubtopicPrevalenceSkewed) {
  // ND subtopics must include a rare one (the paper's volcano example).
  const Lexicon& lex = GetLexicon();
  const auto& nd =
      lex.subtopics[static_cast<size_t>(RelationId::kNaturalDisaster)];
  double lo = 1.0, hi = 0.0;
  for (const auto& st : nd) {
    lo = std::min(lo, st.prevalence);
    hi = std::max(hi, st.prevalence);
  }
  EXPECT_GE(hi / lo, 5.0);
}

TEST(LexiconTest, DiseaseSubtopicTermsAreKnownDiseases) {
  const Lexicon& lex = GetLexicon();
  const std::set<std::string> diseases(lex.diseases.begin(),
                                       lex.diseases.end());
  for (const auto& st :
       lex.subtopics[static_cast<size_t>(RelationId::kDiseaseOutbreak)]) {
    for (const auto& term : st.entity_terms) {
      EXPECT_TRUE(diseases.count(term) > 0) << term;
    }
  }
}

TEST(LexiconTest, ChargeSubtopicTermsAreKnownCharges) {
  const Lexicon& lex = GetLexicon();
  const std::set<std::string> charges(lex.charges.begin(),
                                      lex.charges.end());
  for (const auto& st :
       lex.subtopics[static_cast<size_t>(RelationId::kPersonCharge)]) {
    for (const auto& term : st.entity_terms) {
      EXPECT_TRUE(charges.count(term) > 0) << term;
    }
  }
}

TEST(LexiconTest, VolcanoSubtopicCarriesPaperFlavor) {
  // The motivating example: "lava", "sulfuric" only reachable through the
  // rare volcano subtopic.
  const Lexicon& lex = GetLexicon();
  const auto& nd =
      lex.subtopics[static_cast<size_t>(RelationId::kNaturalDisaster)];
  bool found = false;
  for (const auto& st : nd) {
    if (st.name != "volcano") continue;
    found = true;
    EXPECT_NE(std::find(st.flavor_words.begin(), st.flavor_words.end(),
                        "lava"),
              st.flavor_words.end());
    EXPECT_LT(st.prevalence, 0.1);
  }
  EXPECT_TRUE(found);
}

// ---- Generator -----------------------------------------------------------

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.num_documents = 200;
  options.seed = 99;
  const Corpus a = GenerateCorpus(options);
  const Corpus b = GenerateCorpus(options);
  ASSERT_EQ(a.size(), b.size());
  for (DocId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.doc(id).sentences.size(), b.doc(id).sentences.size());
    for (size_t s = 0; s < a.doc(id).sentences.size(); ++s) {
      EXPECT_EQ(a.doc(id).sentences[s].tokens,
                b.doc(id).sentences[s].tokens);
    }
    EXPECT_EQ(a.annotations(id).tuples.size(),
              b.annotations(id).tuples.size());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions options;
  options.num_documents = 50;
  options.seed = 1;
  const Corpus a = GenerateCorpus(options);
  options.seed = 2;
  const Corpus b = GenerateCorpus(options);
  size_t differing = 0;
  for (DocId id = 0; id < 50; ++id) {
    if (a.doc(id).TokenCount() != b.doc(id).TokenCount()) ++differing;
  }
  EXPECT_GT(differing, 10u);
}

TEST(GeneratorTest, SplitsPartitionCorpus) {
  const Corpus& corpus = test::SharedCorpus();
  const CorpusSplits& splits = corpus.splits();
  std::unordered_set<DocId> seen;
  for (const auto* split : {&splits.train, &splits.dev, &splits.test}) {
    for (DocId id : *split) {
      EXPECT_LT(id, corpus.size());
      EXPECT_TRUE(seen.insert(id).second) << "doc in two splits: " << id;
    }
  }
  EXPECT_EQ(seen.size(), corpus.size());
}

TEST(GeneratorTest, SplitProportionsMatchOptions) {
  const Corpus& corpus = test::SharedCorpus();
  EXPECT_NEAR(
      static_cast<double>(corpus.splits().train.size()) / corpus.size(),
      0.054, 0.01);
  EXPECT_NEAR(
      static_cast<double>(corpus.splits().dev.size()) / corpus.size(),
      0.373, 0.01);
}

TEST(GeneratorTest, MentionSpansAreValid) {
  const Corpus& corpus = test::SharedCorpus();
  for (DocId id = 0; id < corpus.size(); id += 7) {
    const Document& doc = corpus.doc(id);
    for (const EntityMention& m : corpus.annotations(id).mentions) {
      ASSERT_LT(m.sentence, doc.sentences.size());
      ASSERT_LT(m.begin, m.end);
      ASSERT_LE(m.end, doc.sentences[m.sentence].size());
      EXPECT_NE(m.type, EntityType::kNone);
      EXPECT_FALSE(m.value.empty());
    }
  }
}

TEST(GeneratorTest, MentionValuesMatchSpanTokens) {
  const Corpus& corpus = test::SharedCorpus();
  size_t checked = 0;
  for (DocId id = 0; id < corpus.size() && checked < 500; id += 3) {
    const Document& doc = corpus.doc(id);
    for (const EntityMention& m : corpus.annotations(id).mentions) {
      std::string joined;
      for (uint32_t i = m.begin; i < m.end; ++i) {
        if (i > m.begin) joined.push_back(' ');
        joined += corpus.vocab().Term(doc.sentences[m.sentence].tokens[i]);
      }
      EXPECT_EQ(joined, m.value);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(GeneratorTest, GoldTuplesHaveMatchingMentions) {
  const Corpus& corpus = test::SharedCorpus();
  for (DocId id = 0; id < corpus.size(); id += 5) {
    const DocAnnotations& ann = corpus.annotations(id);
    for (const GoldTuple& t : ann.tuples) {
      const RelationSpec& spec = GetRelation(t.relation);
      bool a1 = false, a2 = false;
      for (const EntityMention& m : ann.mentions) {
        if (m.sentence != t.sentence) continue;
        a1 |= m.type == spec.attr1 && m.value == t.attr1;
        a2 |= m.type == spec.attr2 && m.value == t.attr2;
      }
      EXPECT_TRUE(a1) << spec.code << " " << t.attr1;
      EXPECT_TRUE(a2) << spec.code << " " << t.attr2;
    }
  }
}

// Gold density should approximate Table 1 for every relation
// (property-style check across the whole registry).
class GoldDensityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GoldDensityTest, ApproximatesPaperDensity) {
  const RelationSpec& spec = AllRelations()[GetParam()];
  const Corpus& corpus = test::SharedCorpus();
  std::vector<DocId> all(corpus.size());
  for (DocId id = 0; id < corpus.size(); ++id) all[id] = id;
  const double density =
      static_cast<double>(corpus.CountGoldUseful(spec.id, all)) /
      static_cast<double>(corpus.size());
  // Generous tolerance: 3000 docs is small for the sparsest relations.
  EXPECT_LT(density, spec.paper_density * 2.5 + 0.004) << spec.code;
  EXPECT_GT(density, spec.paper_density * 0.3 - 0.001) << spec.code;
}

INSTANTIATE_TEST_SUITE_P(AllRelations, GoldDensityTest,
                         ::testing::Range<size_t>(0, kNumRelations));

TEST(GeneratorTest, SharedVocabularyIsReused) {
  GeneratorOptions options;
  options.num_documents = 50;
  options.seed = 5;
  Corpus first = GenerateCorpus(options);
  const size_t vocab_size = first.vocab().size();
  GeneratorOptions aux;
  aux.num_documents = 50;
  aux.seed = 6;
  aux.shared_vocab = first.shared_vocab();
  const Corpus second = GenerateCorpus(aux);
  EXPECT_EQ(&second.vocab(), &first.vocab());
  EXPECT_GE(first.vocab().size(), vocab_size);  // may grow, never resets
}

TEST(GeneratorTest, ExtractorTrainingPresetIsDense) {
  GeneratorOptions options = GeneratorOptions::ForExtractorTraining(
      RelationId::kElectionWinner, 400, 9);
  const Corpus corpus = GenerateCorpus(options);
  EXPECT_EQ(corpus.splits().train.size(), corpus.size());
  const size_t useful =
      corpus.CountGoldUseful(RelationId::kElectionWinner,
                             corpus.splits().train);
  // The preset anchors ~35% of documents to the target relation.
  EXPECT_GT(static_cast<double>(useful) / corpus.size(), 0.15);
}

TEST(GeneratorTest, DocumentShapeWithinBounds) {
  const Corpus& corpus = test::SharedCorpus();
  for (DocId id = 0; id < corpus.size(); id += 11) {
    const Document& doc = corpus.doc(id);
    EXPECT_GE(doc.sentences.size(), 8u);
    // Base sentences plus up to a handful of planted ones.
    EXPECT_LE(doc.sentences.size(), 40u);
    for (const Sentence& s : doc.sentences) EXPECT_FALSE(s.tokens.empty());
  }
}

TEST(CorpusTest, AddAssignsIds) {
  Corpus corpus;
  Document doc;
  doc.sentences.push_back({{corpus.vocab().Intern("x")}});
  const DocId id = corpus.Add(std::move(doc), {});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(corpus.doc(0).id, 0u);
  EXPECT_EQ(corpus.size(), 1u);
}

}  // namespace
}  // namespace ie
