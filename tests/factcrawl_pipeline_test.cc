// Cross-strategy integration tests: the paper's headline orderings, checked
// end-to-end on the shared world with real extractors — RSVM-IE and BAgg-IE
// must beat the FactCrawl baselines, the adaptive variants must not regress
// the base ones, and Perfect/Random must bracket everything.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "pipeline/factcrawl_pipeline.h"
#include "pipeline/pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

double MeanAuc(RankerKind kind, UpdateKind update, RelationId relation) {
  const SharedContext context = test::MakeSharedContext(relation);
  double total = 0.0;
  for (uint64_t seed : {101, 103, 107}) {
    PipelineConfig config = PipelineConfig::Defaults(
        kind, SamplerKind::kSRS, update, seed);
    config.sample_size = 120;
    total +=
        EvaluateRun(AdaptiveExtractionPipeline::Run(context, config)).auc;
  }
  return total / 3.0;
}

double MeanFcAuc(bool adaptive, RelationId relation) {
  const SharedContext context = test::MakeSharedContext(relation);
  double total = 0.0;
  for (uint64_t seed : {101, 103, 107}) {
    FactCrawlConfig config;
    config.adaptive = adaptive;
    config.sample_size = 120;
    // Paper-like absolute retrieval depth: the shared test pool is small,
    // so the pool-proportional auto depth would leave FC nearly blind.
    config.factcrawl.retrieved_per_query = 200;
    config.seed = seed;
    total += EvaluateRun(FactCrawlPipeline::Run(context, config)).auc;
  }
  return total / 3.0;
}

TEST(StrategyOrderingTest, LearnedRankersBeatFactCrawl) {
  const RelationId relation = RelationId::kPersonCharge;
  const double rsvm = MeanAuc(RankerKind::kRSVMIE, UpdateKind::kModC,
                              relation);
  const double bagg = MeanAuc(RankerKind::kBAggIE, UpdateKind::kModC,
                              relation);
  const double fc = MeanFcAuc(false, relation);
  EXPECT_GT(rsvm, fc);
  EXPECT_GT(bagg, fc);
}

TEST(StrategyOrderingTest, EverythingBeatsRandomLosesToPerfect) {
  const RelationId relation = RelationId::kPersonCharge;
  const double random = MeanAuc(RankerKind::kRandom, UpdateKind::kNone,
                                relation);
  const double perfect = MeanAuc(RankerKind::kPerfect, UpdateKind::kNone,
                                 relation);
  const double rsvm = MeanAuc(RankerKind::kRSVMIE, UpdateKind::kModC,
                              relation);
  EXPECT_GT(rsvm, random + 0.1);
  EXPECT_GT(perfect, rsvm);
  EXPECT_GT(perfect, 0.99);
  EXPECT_NEAR(random, 0.5, 0.08);
}

TEST(StrategyOrderingTest, DenseRelationLearnedRankerStrong) {
  // The RSVM-IE-vs-FactCrawl ordering on dense relations needs bench-scale
  // pools to stabilize (see bench_table4 / EXPERIMENTS.md); at the shared
  // test scale we assert the learned ranker's absolute strength instead.
  const RelationId relation = RelationId::kPersonCareer;
  const double rsvm = MeanAuc(RankerKind::kRSVMIE, UpdateKind::kModC,
                              relation);
  EXPECT_GT(rsvm, 0.7);
}

}  // namespace
}  // namespace ie
