#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace ie {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedResets) {
  Rng a(7);
  const uint64_t first = a.NextUint64();
  a.NextUint64();
  a.Seed(7);
  EXPECT_EQ(a.NextUint64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.NextZipf(50, 1.1), 50u);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 10) ++low;
  }
  // A Zipf(1.2) law puts far more than uniform (1%) mass on the top 10.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(10);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(14);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Every index should be picked roughly equally often across repetitions.
  std::vector<int> counts(20, 0);
  for (int rep = 0; rep < 4000; ++rep) {
    Rng rng(1000 + rep);
    for (size_t idx : rng.SampleWithoutReplacement(20, 5)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 4000.0, 0.25, 0.05);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    equal += parent.NextUint64() == child.NextUint64();
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace ie
