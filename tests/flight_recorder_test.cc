// Tests for the pipeline flight recorder (DESIGN.md §15) and its common-
// layer substrate: SampledRing/TimeSeries deterministic downsampling
// (common/timeseries.h), RunningStats empty-side merges (common/stats.h),
// histogram quantile estimates vs exact sorts (common/metrics.h),
// Prometheus text exposition, the PipelineRecorder's JSONL ledger, and the
// recorder's pipeline integration (PipelineResult::iterations, passivity).
// In obs-off builds the recorder collapses to an inert stub and
// PipelineResult has no `iterations` member — asserted below with a
// requires-expression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/timeseries.h"
#include "pipeline/pipeline.h"
#include "pipeline/recorder.h"
#include "test_util.h"

namespace ie {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" + info->name() +
         "_" + name;
}

/// splitmix64: deterministic value stream for quantile comparisons.
uint64_t Mix(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---- SampledRing / TimeSeries ------------------------------------------

TEST(SampledRingTest, RetainsEveryStridethIndexDeterministically) {
  SampledRing<TimeSeriesSample> ring(8);
  for (uint64_t i = 0; i < 1000; ++i) {
    ring.Append([](uint64_t index) {
      return TimeSeriesSample{index, static_cast<double>(index) * 0.5};
    });
  }
  EXPECT_EQ(ring.total_appended(), 1000u);
  const std::vector<TimeSeriesSample>& samples = ring.samples();
  ASSERT_FALSE(samples.empty());
  ASSERT_LE(samples.size(), 8u);
  // The retained set is exactly the multiples of the final stride, in
  // order, values intact.
  const uint64_t stride = ring.stride();
  EXPECT_EQ(samples.front().index, 0u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index, stride * i);
    EXPECT_DOUBLE_EQ(samples[i].value,
                     static_cast<double>(samples[i].index) * 0.5);
  }
  EXPECT_EQ(samples.size(), (1000 + stride - 1) / stride);

  // Pure function of (capacity, append count): a second ring agrees.
  SampledRing<TimeSeriesSample> again(8);
  for (uint64_t i = 0; i < 1000; ++i) {
    again.Append(
        [](uint64_t index) { return TimeSeriesSample{index, 0.0}; });
  }
  EXPECT_EQ(again.stride(), stride);
  ASSERT_EQ(again.samples().size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(again.samples()[i].index, samples[i].index);
  }
}

TEST(SampledRingTest, NoDownsamplingBelowCapacity) {
  SampledRing<TimeSeriesSample> ring(16);
  for (uint64_t i = 0; i < 16; ++i) {
    ring.Append([](uint64_t index) { return TimeSeriesSample{index, 0.0}; });
  }
  EXPECT_EQ(ring.stride(), 1u);
  EXPECT_EQ(ring.samples().size(), 16u);
}

TEST(SampledRingTest, TakeSamplesDrainsButKeepsCounting) {
  SampledRing<TimeSeriesSample> ring(4);
  for (uint64_t i = 0; i < 3; ++i) {
    ring.Append([](uint64_t index) { return TimeSeriesSample{index, 0.0}; });
  }
  const std::vector<TimeSeriesSample> taken = ring.TakeSamples();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(ring.samples().empty());
  EXPECT_EQ(ring.total_appended(), 3u);
}

TEST(TimeSeriesTest, SnapshotPreservesIndexValuePairs) {
  TimeSeries series(64);
  for (int i = 0; i < 40; ++i) series.Append(i * 1.5);
  EXPECT_EQ(series.total_appended(), 40u);
  const std::vector<TimeSeriesSample> snap = series.Snapshot();
  ASSERT_EQ(snap.size(), 40u);
  for (const TimeSeriesSample& s : snap) {
    EXPECT_DOUBLE_EQ(s.value, static_cast<double>(s.index) * 1.5);
  }
}

TEST(TimeSeriesTest, ConcurrentAppendsAllCounted) {
  TimeSeries series(32);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&series] {
      for (int i = 0; i < kPerThread; ++i) series.Append(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(series.total_appended(),
            static_cast<uint64_t>(kThreads * kPerThread));
  for (const TimeSeriesSample& s : series.Snapshot()) {
    EXPECT_LT(s.index, static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(s.value, 1.0);
  }
}

// ---- RunningStats empty-side merges ------------------------------------

TEST(RunningStatsMergeTest, EmptyMergedWithEmptyStaysEmpty) {
  RunningStats a;
  a.Merge(RunningStats());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);  // empty accessors report 0, not ±inf
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStatsMergeTest, EmptyAdoptsNonEmptySide) {
  RunningStats other;
  other.Add(2.0);
  other.Add(-4.0);
  RunningStats empty;
  empty.Merge(other);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), -1.0);
  EXPECT_DOUBLE_EQ(empty.min(), -4.0);
  EXPECT_DOUBLE_EQ(empty.max(), 2.0);
}

TEST(RunningStatsMergeTest, NonEmptyUnchangedByEmptySide) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  stats.Merge(RunningStats());
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(RunningStatsMergeTest, FromMomentsZeroCountIgnoresExtremaArgs) {
  // A shard that never observed reports garbage extrema slots; n == 0 must
  // win over them.
  const RunningStats stats = RunningStats::FromMoments(0, 123.0, 456.0,
                                                       /*min=*/99.0,
                                                       /*max=*/-99.0);
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
  RunningStats base;
  base.Add(5.0);
  base.Merge(stats);  // merging it in must not poison real extrema
  EXPECT_DOUBLE_EQ(base.min(), 5.0);
  EXPECT_DOUBLE_EQ(base.max(), 5.0);
}

TEST(RunningStatsMergeTest, FromMomentsNormalizesInvertedExtrema) {
  // Mid-update shard reads can transiently present min > max (relaxed
  // atomics carry no cross-field ordering); FromMoments re-sorts them.
  const RunningStats stats =
      RunningStats::FromMoments(3, 1.0, 0.5, /*min=*/7.0, /*max=*/2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
}

// ---- Histogram quantiles vs exact sorts --------------------------------

/// Exact nearest-rank quantile over sorted values: element of rank
/// ceil(q·N), 1-based — the same rank definition Quantile() estimates.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

/// Returns [lo, hi] of the snapshot bucket containing `value` — the same
/// interval arithmetic Quantile() interpolates within.
std::pair<double, double> BucketInterval(const HistogramSnapshot& snapshot,
                                         double value) {
  size_t b = snapshot.bounds.size();
  for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
    if (value <= snapshot.bounds[i]) {
      b = i;
      break;
    }
  }
  const double lo = b == 0 ? snapshot.summary.min() : snapshot.bounds[b - 1];
  const double hi = b < snapshot.bounds.size() ? snapshot.bounds[b]
                                               : snapshot.summary.max();
  return {lo, hi};
}

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  Histogram hist({1.0, 2.0});
  EXPECT_DOUBLE_EQ(hist.Snapshot().P50(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(0.99), 0.0);
}

TEST(HistogramQuantileTest, SingleValueIsEveryQuantile) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(7.5);
  const HistogramSnapshot snapshot = hist.Snapshot();
  // Clamped to [min, max] = [7.5, 7.5]: exact at any q.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(snapshot.P50(), 7.5);
  EXPECT_DOUBLE_EQ(snapshot.P99(), 7.5);
}

TEST(HistogramQuantileTest, MatchesExactSortWithinBucket) {
  // Log-spaced bounds over a deterministic heavy-tailed value stream: the
  // estimate must land in the same bucket as the exact sorted rank sample,
  // i.e. within that bucket's width of the exact value.
  Histogram hist({0.001, 0.01, 0.1, 1.0, 10.0});
  std::vector<double> values;
  uint64_t rng = 42;
  for (int i = 0; i < 2000; ++i) {
    const double u =
        static_cast<double>(Mix(rng) >> 11) / 9007199254740992.0;  // [0,1)
    values.push_back(std::pow(10.0, u * 5.0 - 4.0));  // 1e-4 .. 1e1
    hist.Observe(values.back());
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = hist.Snapshot();
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.99, 1.0}) {
    const double exact = ExactQuantile(values, q);
    const double estimate = snapshot.Quantile(q);
    const auto [lo, hi] = BucketInterval(snapshot, exact);
    EXPECT_GE(estimate, lo - 1e-12) << "q=" << q;
    EXPECT_LE(estimate, hi + 1e-12) << "q=" << q;
    EXPECT_LE(std::abs(estimate - exact), (hi - lo) + 1e-12) << "q=" << q;
  }
}

TEST(HistogramQuantileTest, ShardMergedQuantilesMatchExactSort) {
  // Observations spread across four recording threads (four shards); the
  // merged quantiles must agree with an exact sort of the union.
  Histogram hist({0.01, 0.1, 1.0, 10.0});
  std::vector<std::vector<double>> per_thread(4);
  for (int t = 0; t < 4; ++t) {
    uint64_t rng = 1000 + static_cast<uint64_t>(t);
    for (int i = 0; i < 500; ++i) {
      const double u =
          static_cast<double>(Mix(rng) >> 11) / 9007199254740992.0;
      per_thread[t].push_back(std::pow(10.0, u * 4.0 - 3.0));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist, &per_thread, t] {
      for (double v : per_thread[t]) hist.Observe(v);
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<double> all;
  for (const auto& chunk : per_thread) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end());
  const HistogramSnapshot snapshot = hist.Snapshot();
  ASSERT_EQ(snapshot.TotalCount(), all.size());
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact = ExactQuantile(all, q);
    const double estimate = snapshot.Quantile(q);
    const auto [lo, hi] = BucketInterval(snapshot, exact);
    EXPECT_GE(estimate, lo - 1e-12) << "q=" << q;
    EXPECT_LE(estimate, hi + 1e-12) << "q=" << q;
  }
}

// ---- Prometheus exposition ---------------------------------------------

TEST(PrometheusExportTest, RendersFamiliesBucketsAndQuantiles) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("pipeline.docs", 42);
  snapshot.gauges.emplace_back("detector.angle", 1.5);
  Histogram hist({1.0, 10.0});
  for (double v : {0.5, 5.0, 50.0}) hist.Observe(v);
  HistogramSnapshot h = hist.Snapshot();
  h.name = "rank.seconds";
  snapshot.histograms.push_back(std::move(h));

  const std::string text = snapshot.ToPrometheus();
  EXPECT_NE(text.find("# TYPE ie_pipeline_docs counter"), std::string::npos);
  EXPECT_NE(text.find("ie_pipeline_docs 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ie_detector_angle gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ie_rank_seconds histogram"),
            std::string::npos);
  // Cumulative buckets end in a mandatory +Inf bucket equal to _count.
  EXPECT_NE(text.find("ie_rank_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ie_rank_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("ie_rank_seconds_p50"), std::string::npos);
  EXPECT_NE(text.find("ie_rank_seconds_p99"), std::string::npos);

  // Bucket series must be non-decreasing in the order rendered.
  uint64_t prev = 0;
  size_t pos = 0;
  while ((pos = text.find("ie_rank_seconds_bucket", pos)) !=
         std::string::npos) {
    const size_t space = text.find(' ', pos);
    const uint64_t count = std::stoull(text.substr(space + 1));
    EXPECT_GE(count, prev);
    prev = count;
    pos = space;
  }
}

// ---- PipelineRecorder ledger -------------------------------------------

#if IE_OBSERVABILITY

TEST(PipelineRecorderTest, LedgerHasHeaderIterAndFooterLines) {
  const std::string path = TempPath("ledger.jsonl");
  PipelineRecorder::Options options;
  options.ledger_path = path;
  options.record_series = true;
  options.series_capacity = 4;
  PipelineRecorder recorder(std::move(options));
  ASSERT_TRUE(recorder.active());

  RecorderRunInfo info;
  info.ranker = "RSVM-IE";
  recorder.BeginRun(info);
  for (int i = 0; i < 10; ++i) {
    IterationRecord record;
    record.doc = static_cast<uint32_t>(i);
    record.useful = i % 2 == 0;
    record.useful_total = static_cast<uint64_t>(i / 2 + 1);
    record.executor_misses = static_cast<uint64_t>(i + 1);
    if (i == 3) {
      record.retrained = true;
      record.weight_delta_norm = 0.25;
      record.component_delta_norms = {0.25};
    }
    recorder.RecordIteration(record);
  }
  EXPECT_EQ(recorder.iterations(), 10u);
  RecorderRunSummary summary;
  summary.updates = 1;
  summary.useful_total = 5;
  recorder.EndRun(summary);

  const std::string contents = ReadFile(path);
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  std::vector<std::string> lines;
  std::istringstream stream(contents);
  for (std::string line; std::getline(stream, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 12u);  // header + 10 iters + footer
  EXPECT_NE(lines.front().find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"schema\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"iter\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"i\":1"), std::string::npos);
  // dw/dw_c appear exactly on the retrained iteration.
  EXPECT_NE(lines[4].find("\"retrain\":1"), std::string::npos);
  EXPECT_NE(lines[4].find("\"dw\":"), std::string::npos);
  EXPECT_NE(lines[4].find("\"dw_c\":[0.25]"), std::string::npos);
  EXPECT_EQ(lines[5].find("\"dw\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"type\":\"end\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"iterations\":10"), std::string::npos);

  // The in-memory series downsampled to the ring bound.
  const std::vector<IterationRecord> series = recorder.TakeSeries();
  ASSERT_FALSE(series.empty());
  ASSERT_LE(series.size(), 4u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series[i - 1].index, series[i].index);
  }
}

TEST(PipelineRecorderTest, InactiveWithoutSinks) {
  PipelineRecorder recorder(PipelineRecorder::Options{});
  EXPECT_FALSE(recorder.active());
  recorder.RecordIteration(IterationRecord{});
  EXPECT_EQ(recorder.iterations(), 1u);  // counts, but records nothing
  EXPECT_TRUE(recorder.TakeSeries().empty());
}

// ---- Pipeline integration ----------------------------------------------

TEST(FlightRecorderPipelineTest, RecordsSeriesAndLedgerWithoutChangingRun) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 11);
  config.sample_size = 120;

  const PipelineResult baseline =
      AdaptiveExtractionPipeline::Run(context, config);

  const std::string ledger_path = TempPath("run.jsonl");
  config.ledger_path = ledger_path;
  config.record_iterations = true;
  const PipelineResult recorded =
      AdaptiveExtractionPipeline::Run(context, config);

  // Passivity: the recorder must not perturb the run.
  EXPECT_EQ(recorded.processing_order, baseline.processing_order);
  EXPECT_EQ(recorded.update_positions, baseline.update_positions);
  EXPECT_EQ(recorded.final_weights, baseline.final_weights);

  // Series invariants: ascending indices, cumulative counters monotone,
  // executor identity hits + waits + misses == iterations consumed.
  ASSERT_FALSE(recorded.iterations.empty());
  const IterationRecord* prev = nullptr;
  uint64_t series_retrains = 0;
  for (const IterationRecord& rec : recorded.iterations) {
    if (prev != nullptr) {
      EXPECT_LT(prev->index, rec.index);
      EXPECT_LE(prev->useful_total, rec.useful_total);
      EXPECT_LE(prev->executor_misses, rec.executor_misses);
      EXPECT_LE(prev->full_rescores, rec.full_rescores);
    }
    EXPECT_EQ(rec.executor_hits + rec.executor_waits + rec.executor_misses,
              rec.index + 1);
    EXPECT_NEAR(rec.useful_rate,
                static_cast<double>(rec.useful_total) /
                    static_cast<double>(rec.index + 1),
                1e-12);
    if (rec.retrained) {
      ++series_retrains;
      EXPECT_GT(rec.weight_delta_norm, 0.0);
      ASSERT_EQ(rec.component_delta_norms.size(), 1u);  // RSVM-IE
      EXPECT_NEAR(rec.weight_delta_norm, rec.component_delta_norms[0],
                  1e-12);
    } else {
      EXPECT_EQ(rec.weight_delta_norm, 0.0);
    }
    prev = &rec;
  }
  // Downsampling may drop retrain iterations; it must not invent them.
  EXPECT_LE(series_retrains, recorded.update_positions.size());

  // Ledger: header + one line per processed document + footer.
  const std::string contents = ReadFile(ledger_path);
  ASSERT_FALSE(contents.empty());
  const size_t lines =
      static_cast<size_t>(std::count(contents.begin(), contents.end(), '\n'));
  EXPECT_EQ(lines, recorded.processing_order.size() + 2);
  EXPECT_NE(contents.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(contents.find("\"ranker\":\"RSVM-IE\""), std::string::npos);
  EXPECT_NE(contents.find("\"type\":\"end\""), std::string::npos);
  // Every update the pipeline logged appears as a retrain line.
  const std::string needle = "\"retrain\":1";
  size_t retrain_lines = 0;
  for (size_t pos = contents.find(needle); pos != std::string::npos;
       pos = contents.find(needle, pos + needle.size())) {
    ++retrain_lines;
  }
  EXPECT_EQ(retrain_lines, recorded.update_positions.size());
}

#else  // !IE_OBSERVABILITY

// obs-off: the recorder is inert and PipelineResult carries no iterations
// member at all — zero size cost, checked structurally. The check goes
// through a template parameter so the failed requirement is a substitution
// failure (false) instead of a hard error in this non-dependent context.
template <typename T>
constexpr bool kHasIterationsMember = requires(T r) { r.iterations; };
static_assert(!kHasIterationsMember<PipelineResult>,
              "PipelineResult::iterations must not exist in obs-off builds");

TEST(FlightRecorderObsOffTest, RecorderIsInert) {
  PipelineRecorder::Options options;
  options.ledger_path = "/nonexistent/dir/never-written.jsonl";
  options.record_series = true;
  PipelineRecorder recorder(std::move(options));
  EXPECT_FALSE(recorder.active());
  recorder.BeginRun(RecorderRunInfo{});
  recorder.RecordIteration(IterationRecord{});
  recorder.EndRun(RecorderRunSummary{});
  EXPECT_EQ(recorder.iterations(), 0u);
  EXPECT_TRUE(recorder.TakeSeries().empty());
}

TEST(FlightRecorderObsOffTest, PipelineIgnoresRecorderConfig) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 11);
  config.sample_size = 120;
  const std::string ledger_path = TempPath("run.jsonl");
  config.ledger_path = ledger_path;
  config.record_iterations = true;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_FALSE(result.processing_order.empty());
  EXPECT_TRUE(ReadFile(ledger_path).empty());  // never opened
}

#endif  // IE_OBSERVABILITY

}  // namespace
}  // namespace ie
